"""Scenario 1 — the paper's flagship experiment: VGG19 on CIFAR-10.

Reproduces the Table II(a) workflow at CPU scale through the experiment
registry: ``experiments.build("vgg19-cifar10-quant")`` resolves the
named preset into a config, a context, and the default pipeline.  On
top of the preset this script demonstrates:

* a pipeline callback streaming per-iteration progress (the hook
  protocol sweeps and loggers plug into),
* the iteration-2a variant that *removes* the dead last conv layer,
* analytical (Table I) and PIM (Table IV) energy accounting side by side.

The same run, headless:  python -m repro run --preset vgg19-cifar10-quant

Run:  python examples/vgg19_cifar10_quantization.py
"""

from repro.api import PipelineCallback, experiments, remove_layer_and_retrain
from repro.energy import profile_model
from repro.pim import PIMEnergyModel
from repro.utils import format_table


class IterationPrinter(PipelineCallback):
    """Minimal observer: one line per Algorithm-1 iteration."""

    def on_iteration_end(self, ctx, row):
        print(
            f"  iteration {row.label or row.iteration}: "
            f"bits {row.bit_widths}, acc {row.test_accuracy * 100:.2f}%"
        )


def main():
    experiment = experiments.build("vgg19-cifar10-quant")
    report = experiment.run(callbacks=[IterationPrinter()])

    # Paper iteration 2a: the last conv layer's AD is very low — remove
    # it entirely and retrain briefly.
    ctx = experiment.context
    conv16_ad = ctx.trainer.monitor.latest()["conv16"]
    print(f"conv16 activation density after final iteration: {conv16_ad:.3f}")
    report.rows.append(remove_layer_and_retrain(ctx, "conv16", epochs=3))
    print(report.format())

    # AD trajectory summary (Fig. 1/3 flavour).
    monitor = ctx.trainer.monitor
    rows = [
        [name, f"{monitor.series(name)[0]:.2f}", f"{monitor.series(name)[-1]:.2f}"]
        for name in monitor.layer_names
    ]
    print()
    print(format_table(["Layer", "AD @ epoch 0", "AD @ end"], rows,
                       title="Per-layer activation density"))

    # PIM-platform energy of the final model (Table V flavour).
    pim = PIMEnergyModel()
    base = pim.network_energy(profile_model(ctx.model, default_bits=16)).total_uj
    mixed = pim.network_energy(ctx.profiles()).total_uj
    print(
        f"\nPIM platform energy: 16-bit {base:.4f} uJ -> mixed {mixed:.4f} uJ "
        f"({base / mixed:.2f}x reduction; paper reports ~5x at full scale)"
    )


if __name__ == "__main__":
    main()
