"""Scenario 1 — the paper's flagship experiment: VGG19 on CIFAR-10.

Reproduces the Table II(a) workflow at CPU scale, including:

* per-layer AD monitoring during training (the data behind Figs. 1/3),
* Algorithm-1 in-training quantization over multiple iterations,
* the iteration-2a variant that *removes* the dead last conv layer,
* analytical (Table I) and PIM (Table IV) energy accounting side by side.

Run:  python examples/vgg19_cifar10_quantization.py
"""

import numpy as np

from repro.core import ExperimentRunner, QuantizationSchedule
from repro.data import DataLoader, SyntheticCIFAR10
from repro.density import SaturationDetector
from repro.energy import profile_model
from repro.models import vgg19
from repro.nn import Adam, CrossEntropyLoss
from repro.pim import PIMEnergyModel
from repro.utils import format_table

IMAGE_SIZE = 16


def main():
    rng = np.random.default_rng(7)
    train_set, test_set = SyntheticCIFAR10(
        train_per_class=24, test_per_class=8, image_size=IMAGE_SIZE, noise=0.8, seed=7
    )
    train_loader = DataLoader(train_set, batch_size=30, shuffle=True, rng=rng)
    test_loader = DataLoader(test_set, batch_size=80)

    model = vgg19(
        num_classes=10, width_multiplier=0.125, image_size=IMAGE_SIZE, rng=rng
    )
    runner = ExperimentRunner(
        model,
        train_loader,
        test_loader,
        Adam(model.parameters(), lr=3e-3),
        CrossEntropyLoss(),
        input_shape=(3, IMAGE_SIZE, IMAGE_SIZE),
        schedule=QuantizationSchedule(
            max_iterations=3, max_epochs_per_iteration=12, min_epochs_per_iteration=6
        ),
        saturation=SaturationDetector(window=3, tolerance=0.04),
        architecture="VGG19",
        dataset="SyntheticCIFAR10",
    )
    report = runner.run()

    # Paper iteration 2a: the last conv layer's AD is very low — remove
    # it entirely and retrain briefly.
    conv16_ad = runner.trainer.monitor.latest()["conv16"]
    print(f"conv16 activation density after final iteration: {conv16_ad:.3f}")
    report.rows.append(runner.remove_layer_and_retrain("conv16", epochs=3))
    print(report.format())

    # AD trajectory summary (Fig. 1/3 flavour).
    monitor = runner.trainer.monitor
    rows = [
        [name, f"{monitor.series(name)[0]:.2f}", f"{monitor.series(name)[-1]:.2f}"]
        for name in monitor.layer_names
    ]
    print()
    print(format_table(["Layer", "AD @ epoch 0", "AD @ end"], rows,
                       title="Per-layer activation density"))

    # PIM-platform energy of the final model (Table V flavour).
    pim = PIMEnergyModel()
    final_plan = runner.quantizer.plan
    base = pim.network_energy(profile_model(model, default_bits=16)).total_uj
    mixed = pim.network_energy(profile_model(model, plan=final_plan)).total_uj
    print(
        f"\nPIM platform energy: 16-bit {base:.4f} uJ -> mixed {mixed:.4f} uJ "
        f"({base / mixed:.2f}x reduction; paper reports ~5x at full scale)"
    )


if __name__ == "__main__":
    main()
