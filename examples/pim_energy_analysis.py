"""Scenario 3 — the PIM hardware platform, end to end (paper §V).

1. Executes an actual layer's integer GEMM on the functional PIM
   simulator (input decoder -> 1-bit SRAM multiply array -> hierarchical
   shift-accumulators) and verifies it against exact integer matmul.
2. Reports component activity (cell multiplies, ACC4/8/16 operations).
3. Regenerates the paper's Tables IV, V and VI energy comparisons using
   the paper's own bit-width/channel vectors on paper-size models —
   no training required.

Run:  python examples/pim_energy_analysis.py
"""

import numpy as np

from repro.energy import profile_model, trace_geometry
from repro.models import vgg19
from repro.pim import (
    TABLE_IV_MAC_ENERGY_FJ,
    PIMAccelerator,
    PIMEnergyModel,
    map_layer,
)
from repro.quant import LayerQuantSpec, QuantizationPlan, UniformQuantizer
from repro.utils import format_table

# Table II(a) iteration-2 bit-widths (17 layers of VGG19).
PAPER_BITS = [16, 4, 5, 4, 3, 2, 2, 2, 3, 3, 3, 4, 3, 3, 3, 3, 16]


def functional_demo():
    """Run a 4-bit quantized linear layer on the simulated hardware."""
    rng = np.random.default_rng(0)
    bits = 4
    activations = np.abs(rng.normal(size=(8, 32)))  # post-ReLU
    weights = rng.normal(size=(32, 16))

    act_q = UniformQuantizer(bits, dynamic=False).calibrate(activations)
    weight_q = UniformQuantizer(bits, dynamic=False).calibrate(weights)

    accelerator = PIMAccelerator(rows=32, cols=64)
    accelerator.load_matrix(weight_q.encode(weights), bits)
    result = accelerator.matmul(act_q.encode(activations))
    expected = act_q.encode(activations) @ weight_q.encode(weights)
    assert np.array_equal(result, expected), "PIM datapath must be exact"

    report = accelerator.activity()
    print("Functional PIM execution (4-bit, 32x16 GEMM, batch 8): exact ✓")
    print(
        f"  activity: {report.cell_ops} cell multiplies, "
        f"{report.accumulator.acc4_ops} ACC4 + {report.accumulator.acc8_ops} ACC8 "
        f"+ {report.accumulator.acc16_ops} ACC16 ops, "
        f"{report.decoder_fetches} decoder fetches"
    )


def table_iv():
    rows = [[f"{b}-bit", f"{e:.3f}"] for b, e in TABLE_IV_MAC_ENERGY_FJ.items()]
    print()
    print(format_table(["Precision", "E_MAC (fJ)"], rows,
                       title="Table IV — PIM MAC energy per precision"))


def tables_v_vi():
    model = vgg19(num_classes=10, width_multiplier=1.0)
    trace_geometry(model, (3, 32, 32))
    pim = PIMEnergyModel()

    full = pim.network_energy(profile_model(model, default_bits=16))
    names = model.layer_handles().names()
    plan = QuantizationPlan(
        [LayerQuantSpec(n, b) for n, b in zip(names, PAPER_BITS)]
    )
    mixed = pim.network_energy(profile_model(model, plan=plan))

    print()
    print(
        format_table(
            ["Model", "Energy (uJ)", "Reduction", "Paper"],
            [
                ["VGG19 16-bit full precision", f"{full.total_uj:.3f}", "1x",
                 "110.154 uJ"],
                ["VGG19 mixed (Table II(a) bits)", f"{mixed.total_uj:.3f}",
                 f"{full.total_uj / mixed.total_uj:.2f}x", "21.506 uJ / 5.12x"],
            ],
            title="Table V — network energy on the PIM platform",
        )
    )

    # Layer mapping summary for the first few layers.
    profiles = profile_model(model, plan=plan)
    rows = []
    for profile in profiles[:5]:
        mapping = map_layer(profile, rows=128, cols=128)
        rows.append(
            [profile.name, f"{profile.bits} -> {mapping.hardware_bits}",
             mapping.total_tiles, f"{mapping.macs:,}"]
        )
    print()
    print(
        format_table(
            ["Layer", "bits (algo -> hw)", "array tiles (128x128)", "MACs"],
            rows,
            title="Layer placement on the PIM platform",
        )
    )


def main():
    functional_demo()
    table_iv()
    tables_v_vi()


if __name__ == "__main__":
    main()
