"""Quickstart: AD-based mixed-precision quantization in ~60 lines.

Trains a small VGG on a synthetic CIFAR-10 stand-in with Algorithm 1:
train until activation density (AD) saturates, re-quantize every layer
to ``round(k_l * AD_l)`` bits (eqn. 3 of the paper), repeat, and report
accuracy / energy-efficiency / training-complexity — the columns of the
paper's Table II.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro.core import ExperimentRunner, QuantizationSchedule
from repro.data import DataLoader, SyntheticCIFAR10
from repro.density import SaturationDetector
from repro.models import vgg11
from repro.nn import Adam, CrossEntropyLoss


def main():
    rng = np.random.default_rng(0)

    # 1. Data: a deterministic synthetic stand-in for CIFAR-10
    #    (10 classes, 3x16x16 here for CPU speed).
    train_set, test_set = SyntheticCIFAR10(
        train_per_class=24, test_per_class=8, image_size=16, seed=0
    )
    train_loader = DataLoader(train_set, batch_size=30, shuffle=True, rng=rng)
    test_loader = DataLoader(test_set, batch_size=80)

    # 2. Model: VGG11 with AD/quantization instrumentation built in.
    model = vgg11(num_classes=10, width_multiplier=0.25, image_size=16, rng=rng)

    # 3. Algorithm 1 end to end, via the experiment runner.
    runner = ExperimentRunner(
        model,
        train_loader,
        test_loader,
        optimizer=Adam(model.parameters(), lr=3e-3),
        loss_fn=CrossEntropyLoss(),
        input_shape=(3, 16, 16),
        schedule=QuantizationSchedule(
            initial_bits=16,
            max_iterations=3,
            max_epochs_per_iteration=10,
            min_epochs_per_iteration=5,
        ),
        saturation=SaturationDetector(window=3, tolerance=0.04),
        architecture="VGG11",
        dataset="SyntheticCIFAR10",
    )
    report = runner.run()

    # 4. The Table II-style summary.
    print(report.format())
    final = report.rows[-1]
    print(
        f"\nFinal mixed-precision model: {final.bit_widths}\n"
        f"analytical energy efficiency {final.energy_efficiency:.2f}x, "
        f"training complexity {final.train_complexity:.3f}x vs baseline"
    )


if __name__ == "__main__":
    main()
