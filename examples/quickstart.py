"""Quickstart: AD-based mixed-precision quantization, declaratively.

Describes the whole experiment as one :class:`ExperimentConfig` — a
small VGG on a synthetic CIFAR-10 stand-in, trained with Algorithm 1:
train until activation density (AD) saturates, re-quantize every layer
to ``round(k_l * AD_l)`` bits (eqn. 3 of the paper), repeat, and report
accuracy / energy-efficiency / training-complexity — the columns of the
paper's Table II.

The same experiment is registered as the ``quickstart-vgg11`` preset, so
this whole file is equivalent to:

    python -m repro run --preset quickstart-vgg11

Run:  python examples/quickstart.py
"""

from repro.api import (
    DataConfig,
    ExperimentConfig,
    ModelConfig,
    Pipeline,
    QuantConfig,
    QuantizeStage,
    build_context,
)


def main():
    # 1. Declare the experiment: model, data, and Algorithm-1 schedule.
    #    Configs are frozen, validated, and JSON round-trippable.
    config = ExperimentConfig(
        name="quickstart",
        architecture="VGG11",
        dataset="SyntheticCIFAR10",
        model=ModelConfig(arch="vgg11", num_classes=10,
                          width_multiplier=0.25, image_size=16, seed=0),
        data=DataConfig(dataset="synthetic-cifar10", train_per_class=24,
                        test_per_class=8, image_size=16, seed=0,
                        train_batch_size=30, test_batch_size=80),
        quant=QuantConfig(initial_bits=16, max_iterations=3,
                          max_epochs_per_iteration=10,
                          min_epochs_per_iteration=5,
                          saturation_window=3, saturation_tolerance=0.04),
    )

    # 2. Build the live objects (model, loaders, trainer, quantizer)...
    ctx = build_context(config)

    # 3. ...and run Algorithm 1 as a one-stage pipeline.
    report = Pipeline([QuantizeStage()]).run(ctx)

    # 4. The Table II-style summary.
    print(report.format())
    final = report.rows[-1]
    print(
        f"\nFinal mixed-precision model: {final.bit_widths}\n"
        f"analytical energy efficiency {final.energy_efficiency:.2f}x, "
        f"training complexity {final.train_complexity:.3f}x vs baseline"
    )


if __name__ == "__main__":
    main()
