"""Scenario 2 — joint quantization + channel pruning (Table III).

ResNet18 on a synthetic CIFAR-100 stand-in.  Every eqn.-3
re-quantization step also applies eqn.-5 channel pruning from the same
activation-density snapshot, compounding the energy savings (the paper
reports 150-300x analytical / ~44x PIM for ResNet18).

Also demonstrates the skip-connection rule of Fig. 2: downsample convs
and skip-branch activation quantizers always carry the destination
layer's bit-width.

Run:  python examples/resnet18_quant_plus_prune.py
"""

import numpy as np

from repro.core import ExperimentRunner, QuantizationSchedule
from repro.data import DataLoader, SyntheticCIFAR100
from repro.density import SaturationDetector
from repro.models import resnet18
from repro.nn import Adam, CrossEntropyLoss
from repro.utils import format_table


def main():
    rng = np.random.default_rng(1)
    train_set, test_set = SyntheticCIFAR100(
        train_per_class=8, test_per_class=3, image_size=16, noise=0.6, seed=1
    )
    train_loader = DataLoader(train_set, batch_size=40, shuffle=True, rng=rng)
    test_loader = DataLoader(test_set, batch_size=100)

    model = resnet18(num_classes=100, width_multiplier=0.125, rng=rng)
    runner = ExperimentRunner(
        model,
        train_loader,
        test_loader,
        Adam(model.parameters(), lr=3e-3),
        CrossEntropyLoss(),
        input_shape=(3, 16, 16),
        # Two quant+prune rounds: at width-multiplier 0.125 a third round
        # prunes layers to 2-3 channels and collapses accuracy (the
        # paper's full-width model tolerates 3 rounds, Table III(b)).
        schedule=QuantizationSchedule(
            max_iterations=2, max_epochs_per_iteration=8, min_epochs_per_iteration=4
        ),
        saturation=SaturationDetector(window=3, tolerance=0.04),
        prune=True,
        architecture="ResNet18 (quant+prune)",
        dataset="SyntheticCIFAR100",
    )
    report = runner.run()
    print(report.format())

    # Fig. 2 rule, verified on the live model.
    rows = []
    for handle in model.layer_handles():
        if handle.name.endswith("conv2"):
            block = handle.host
            downsample = (
                handle.follower_units[0].conv.weight_fake_quant.bits
                if handle.follower_units
                else "-"
            )
            rows.append(
                [handle.name, handle.current_bits(), block.skip_quant.bits, downsample]
            )
    print()
    print(
        format_table(
            ["Destination layer", "k_l", "skip-branch act bits", "downsample W bits"],
            rows,
            title="Fig. 2 — skip branches follow the destination layer",
        )
    )

    final = report.rows[-1]
    print(
        f"\nFinal: {sum(final.channel_counts)} channels "
        f"(baseline {sum(report.rows[0].channel_counts)}), "
        f"analytical energy efficiency {final.energy_efficiency:.1f}x"
    )


if __name__ == "__main__":
    main()
