"""Scenario 2 — joint quantization + channel pruning (Table III).

ResNet18 on a synthetic CIFAR-100 stand-in, via the declarative API:
the ``resnet18-cifar100-quant-prune`` preset enables fused eqn.-5
pruning, so every eqn.-3 re-quantization step also prunes channels from
the same activation-density snapshot, compounding the energy savings
(the paper reports 150-300x analytical / ~44x PIM for ResNet18).

The preset's schedule is overridden to two rounds here: at
width-multiplier 0.125 a third round prunes layers to 2-3 channels and
collapses accuracy (the paper's full-width model tolerates 3 rounds,
Table III(b)).

Also demonstrates the skip-connection rule of Fig. 2: downsample convs
and skip-branch activation quantizers always carry the destination
layer's bit-width.

Run:  python examples/resnet18_quant_plus_prune.py
"""

from repro.api import experiments
from repro.utils import format_table


def main():
    experiment = experiments.build(
        "resnet18-cifar100-quant-prune",
        quant={"max_iterations": 2, "max_epochs_per_iteration": 8,
               "min_epochs_per_iteration": 4},
    )
    report = experiment.run()
    print(report.format())

    # Fig. 2 rule, verified on the live model.
    model = experiment.model
    rows = []
    for handle in model.layer_handles():
        if handle.name.endswith("conv2"):
            block = handle.host
            downsample = (
                handle.follower_units[0].conv.weight_fake_quant.bits
                if handle.follower_units
                else "-"
            )
            rows.append(
                [handle.name, handle.current_bits(), block.skip_quant.bits, downsample]
            )
    print()
    print(
        format_table(
            ["Destination layer", "k_l", "skip-branch act bits", "downsample W bits"],
            rows,
            title="Fig. 2 — skip branches follow the destination layer",
        )
    )

    final = report.rows[-1]
    print(
        f"\nFinal: {sum(final.channel_counts)} channels "
        f"(baseline {sum(report.rows[0].channel_counts)}), "
        f"analytical energy efficiency {final.energy_efficiency:.1f}x"
    )


if __name__ == "__main__":
    main()
