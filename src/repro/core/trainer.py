"""Quantization-aware training loop with activation-density collection.

The trainer runs standard minibatch SGD/Adam epochs.  While training,
the model's density meters accumulate AD statistics from the actual
training forward passes (the paper "monitors the activation density
AD_l for all the layers" during training); at the end of each epoch the
per-layer densities are recorded into a
:class:`~repro.density.monitor.DensityMonitor` and the meters reset.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.autograd import Tensor, no_grad
from repro.density import DensityMonitor


@dataclass
class EpochStats:
    """Summary of one training epoch."""

    epoch: int
    loss: float
    accuracy: float
    densities: dict[str, float] = field(default_factory=dict)


class Trainer:
    """Minibatch trainer bound to a model with a layer registry.

    Parameters
    ----------
    model:
        A :class:`~repro.models.vgg.VGG` / ResNet (anything exposing
        ``layer_handles()`` and a ``ctx`` measurement context).
    optimizer / loss_fn:
        Optimization objects from :mod:`repro.nn`.
    collect_density:
        When True (default) density meters run during training forwards.
    """

    def __init__(self, model, optimizer, loss_fn, collect_density: bool = True):
        self.model = model
        self.optimizer = optimizer
        self.loss_fn = loss_fn
        self.collect_density = collect_density
        self.registry = model.layer_handles()
        self.monitor = DensityMonitor(self.registry.names())
        self.epochs_completed = 0
        self.history: list[EpochStats] = []

    # ------------------------------------------------------------------
    def _reset_meters(self) -> None:
        for handle in self.registry:
            handle.meter.reset()

    def _snapshot_densities(self) -> dict[str, float]:
        # Disabled (removed) layers have empty meters; their density is
        # reported as 0.0 — they produce no activations at all.
        return {
            h.name: (h.meter.density() if h.meter.count else 0.0)
            for h in self.registry
        }

    # ------------------------------------------------------------------
    def train_epoch(self, loader) -> EpochStats:
        """Run one epoch; returns loss/accuracy/AD stats."""
        self.model.train()
        self._reset_meters()
        self.model.ctx.enabled = self.collect_density
        total_loss = 0.0
        correct = 0
        seen = 0
        try:
            for images, labels in loader:
                self.optimizer.zero_grad()
                logits = self.model(Tensor(images))
                loss = self.loss_fn(logits, labels)
                loss.backward()
                self.optimizer.step()
                batch = len(labels)
                total_loss += loss.item() * batch
                correct += int((logits.data.argmax(axis=1) == labels).sum())
                seen += batch
        finally:
            self.model.ctx.enabled = False
        if seen == 0:
            raise RuntimeError("training loader yielded no batches")
        densities = self._snapshot_densities() if self.collect_density else {}
        if self.collect_density:
            self.monitor.record(densities)
        stats = EpochStats(
            epoch=self.epochs_completed,
            loss=total_loss / seen,
            accuracy=correct / seen,
            densities=densities,
        )
        self.epochs_completed += 1
        self.history.append(stats)
        return stats

    def fit(self, loader, epochs: int, scheduler=None) -> list[EpochStats]:
        """Train for a fixed number of epochs."""
        stats = []
        for _ in range(epochs):
            stats.append(self.train_epoch(loader))
            if scheduler is not None:
                scheduler.step()
        return stats

    # ------------------------------------------------------------------
    def evaluate(self, loader) -> float:
        """Top-1 accuracy on ``loader`` (eval mode, no gradient tape)."""
        self.model.eval()
        correct = 0
        seen = 0
        with no_grad():
            for images, labels in loader:
                logits = self.model(Tensor(images))
                correct += int((logits.data.argmax(axis=1) == labels).sum())
                seen += len(labels)
        self.model.train()
        if seen == 0:
            raise RuntimeError("evaluation loader yielded no batches")
        return correct / seen

    def measure_density(self, loader, max_batches: int | None = None) -> dict[str, float]:
        """Explicit AD sweep: forward the loader with meters enabled.

        Uses eval mode (frozen BN statistics) and no gradient recording;
        suitable for one-shot measurements outside the training loop.
        """
        self.model.eval()
        self._reset_meters()
        self.model.ctx.enabled = True
        try:
            with no_grad():
                for batch_index, (images, _) in enumerate(loader):
                    if max_batches is not None and batch_index >= max_batches:
                        break
                    self.model(Tensor(images))
        finally:
            self.model.ctx.enabled = False
            self.model.train()
        return self._snapshot_densities()

    def layer_activation_counts(self) -> dict[str, int]:
        """Per-layer activation counts from the most recent meter pass."""
        return {h.name: h.meter.count for h in self.registry}
