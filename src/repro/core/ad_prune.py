"""Activation-Density based channel pruning (paper eqn. 5, from [23]).

    C_l <- round(C_l_initial * AD_l)

Channels to *keep* are ranked by per-channel activation density (the
channels that fire most often carry the layer's information; rarely
firing channels are the redundancy AD exposes).  Pruning is realized as
structured masking — masked channels output exactly zero, receive no
gradient signal, and are excluded from subsequent AD measurement — so
that energy models can count the surviving channels while skip
connections keep their shapes.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np


@dataclass
class PruningPlan:
    """Per-layer channel budgets — one "nchannels" row of Table III."""

    channels: dict[str, int] = field(default_factory=dict)

    def __getitem__(self, name: str) -> int:
        return self.channels[name]

    def __contains__(self, name: str) -> bool:
        return name in self.channels

    def channel_counts(self, order: list[str]) -> list[int]:
        return [self.channels[name] for name in order if name in self.channels]

    def __repr__(self) -> str:
        return f"PruningPlan({self.channels})"


class ADPruner:
    """Applies eqn.-(5) channel pruning through a model's layer registry.

    Parameters
    ----------
    registry:
        The model's :class:`~repro.models.registry.LayerRegistry`.
    min_channels:
        Lower bound so no layer is pruned away entirely.
    """

    def __init__(self, registry, min_channels: int = 1):
        if min_channels < 1:
            raise ValueError("min_channels must be >= 1")
        self.registry = registry
        self.min_channels = min_channels
        self.plans: list[PruningPlan] = []

    def prunable_handles(self):
        """Conv layers eligible for pruning (first/last excluded)."""
        return [h for h in self.registry if h.prunable and h.is_conv]

    def current_plan(self) -> PruningPlan:
        """Active channel counts as currently installed on the model."""
        return PruningPlan(
            {h.name: h.active_channels() for h in self.prunable_handles()}
        )

    def compute_plan(self, densities: dict[str, float]) -> PruningPlan:
        """Eqn. 5 on the *currently active* channel counts."""
        channels = {}
        for handle in self.prunable_handles():
            density = densities[handle.name]
            if not 0.0 <= density <= 1.0:
                raise ValueError(f"AD out of range for {handle.name}: {density}")
            current = handle.active_channels()
            channels[handle.name] = max(
                self.min_channels, int(round(current * density))
            )
        return PruningPlan(channels)

    def apply_plan(self, plan: PruningPlan) -> None:
        """Install masks keeping the highest-channel-density channels.

        The per-channel ranking comes from each layer's meter statistics
        accumulated during the preceding training epochs; ties are broken
        deterministically by channel index.
        """
        for handle in self.prunable_handles():
            if handle.name not in plan:
                continue
            target = plan[handle.name]
            total = handle.out_channels
            if not self.min_channels <= target <= total:
                raise ValueError(
                    f"invalid channel budget {target} for {handle.name} "
                    f"(layer has {total})"
                )
            current_mask = np.asarray(handle.mask_host.channel_mask).copy()
            active = np.flatnonzero(current_mask)
            if target >= active.size:
                continue  # pruning never re-grows channels
            per_channel = handle.meter.channel_density()
            if per_channel.shape[0] == active.size:
                # Meter saw only active channels; scores align with them.
                scores = per_channel
            elif per_channel.shape[0] == total:
                scores = per_channel[active]
            else:
                raise RuntimeError(
                    f"channel statistics shape mismatch on {handle.name}"
                )
            # Highest-density channels survive; stable order for ties.
            order = np.argsort(-scores, kind="stable")
            keep = active[np.sort(order[:target])]
            new_mask = np.zeros(total)
            new_mask[keep] = 1.0
            handle.set_channel_mask(new_mask)
        self.plans.append(plan)

    def prune_step(self, densities: dict[str, float]) -> PruningPlan:
        """Compute and apply one eqn.-(5) pruning step; returns the plan."""
        plan = self.compute_plan(densities)
        self.apply_plan(plan)
        return plan
