"""Training-complexity metric (paper eqn. 4, from [23]).

    TC = sum over quantization iterations i of
         (MAC reduction_i)^-1 * (# epochs_i)

Each iteration trains a progressively cheaper model; weighting its epoch
count by the inverse of its MAC(-energy) reduction expresses total
training compute in "baseline-epoch equivalents".  The paper reports TC
relative to the baseline run (e.g. 0.524x for VGG19/CIFAR-10), where the
baseline trains at full precision for the full epoch budget.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class TrainingComplexity:
    """Accumulates (mac_reduction, epochs) pairs across iterations.

    Parameters
    ----------
    baseline_epochs:
        Epoch budget of the full-precision baseline used for
        normalization (the paper's VGG19 baseline trains 210 epochs in
        Fig. 3; its TC is ``baseline_epochs * 1``).
    """

    baseline_epochs: int
    iterations: list[tuple[float, int]] = field(default_factory=list)

    def __post_init__(self):
        if self.baseline_epochs < 1:
            raise ValueError("baseline_epochs must be >= 1")

    def add_iteration(self, mac_reduction: float, epochs: int) -> None:
        """Record one quantization iteration."""
        if mac_reduction <= 0:
            raise ValueError("mac_reduction must be positive")
        if epochs < 0:
            raise ValueError("epochs must be non-negative")
        self.iterations.append((mac_reduction, epochs))

    def raw(self) -> float:
        """Eqn. 4: sum of epochs_i / mac_reduction_i."""
        if not self.iterations:
            raise RuntimeError("no iterations recorded")
        return sum(epochs / reduction for reduction, epochs in self.iterations)

    def relative(self) -> float:
        """TC normalized by the baseline (1.0 = baseline cost)."""
        return self.raw() / self.baseline_epochs

    def total_epochs(self) -> int:
        return sum(epochs for _, epochs in self.iterations)

    def __repr__(self) -> str:
        if not self.iterations:
            return "TrainingComplexity(empty)"
        return (
            f"TrainingComplexity(raw={self.raw():.2f} baseline-epochs, "
            f"relative={self.relative():.3f}x)"
        )
