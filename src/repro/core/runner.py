"""End-to-end experiment harness producing Tables II / III rows.

The :class:`ExperimentRunner` drives Algorithm 1 (optionally fused with
AD-based channel pruning, as in Table III), and after every iteration
computes the paper's reported columns:

* the layer-wise bit-width vector (and channel counts when pruning),
* test accuracy,
* total AD (mean of the latest per-layer ADs),
* analytical energy efficiency vs the iteration-1 baseline (§IV-A),
* epochs trained in this iteration,
* cumulative training complexity (eqn. 4).

Row 1 is the full-precision baseline by construction: its plan *is* the
reference plan, so its energy efficiency is exactly 1x.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.ad_prune import ADPruner
from repro.core.ad_quant import ADQuantizer, QuantizationSchedule
from repro.core.complexity import TrainingComplexity
from repro.core.trainer import Trainer
from repro.density import SaturationDetector
from repro.energy import (
    AnalyticalEnergyModel,
    energy_efficiency,
    profile_model,
    trace_geometry,
)
from repro.utils.tables import format_table


@dataclass
class TableRow:
    """One row of a Table II/III-shaped report."""

    iteration: int
    bit_widths: list[int]
    test_accuracy: float
    total_ad: float
    energy_efficiency: float
    epochs: int
    train_complexity: float
    channel_counts: list[int] | None = None
    label: str = ""


@dataclass
class ExperimentReport:
    """All rows of one experiment plus naming metadata."""

    architecture: str
    dataset: str
    layer_names: list[str]
    rows: list[TableRow] = field(default_factory=list)

    def format(self) -> str:
        """Monospace rendering in the paper's column order."""
        headers = ["Iter", "Bit-widths", "Test Acc", "Total AD",
                   "Energy Eff", "Epochs", "Train Compl"]
        include_channels = any(r.channel_counts is not None for r in self.rows)
        if include_channels:
            headers.insert(2, "nChannels")
        table_rows = []
        for row in self.rows:
            cells = [
                row.label or str(row.iteration),
                str(row.bit_widths),
                f"{row.test_accuracy * 100:.2f}%",
                f"{row.total_ad:.3f}",
                f"{row.energy_efficiency:.2f}x",
                str(row.epochs),
                f"{row.train_complexity:.3f}x",
            ]
            if include_channels:
                cells.insert(2, str(row.channel_counts or "-"))
            table_rows.append(cells)
        title = f"{self.architecture} on {self.dataset}"
        return format_table(headers, table_rows, title=title)


class ExperimentRunner:
    """Drives one experiment: Algorithm 1 [+ eqn.-5 pruning] end to end.

    Parameters
    ----------
    model / train_loader / test_loader:
        The workload; the model must expose ``layer_handles()``.
    optimizer / loss_fn:
        Training objects (the paper uses Adam).
    schedule / saturation:
        Algorithm-1 hyper-parameters.
    prune:
        When True, each re-quantization step also applies eqn.-(5)
        channel pruning from the same AD snapshot (Table III).
    input_shape:
        (C, H, W) used once to trace layer geometry for energy models.
    baseline_epochs:
        Epoch budget of the notional fully-trained baseline used to
        normalize training complexity (defaults to 2x the first
        iteration's epoch cap, mirroring the paper's Fig.-3 setup where
        the baseline trains 210 epochs but saturates at ~100).
    """

    def __init__(
        self,
        model,
        train_loader,
        test_loader,
        optimizer,
        loss_fn,
        input_shape: tuple[int, int, int],
        schedule: QuantizationSchedule | None = None,
        saturation: SaturationDetector | None = None,
        prune: bool = False,
        baseline_epochs: int | None = None,
        architecture: str = "model",
        dataset: str = "dataset",
    ):
        self.model = model
        self.train_loader = train_loader
        self.test_loader = test_loader
        self.schedule = schedule or QuantizationSchedule()
        self.trainer = Trainer(model, optimizer, loss_fn)
        self.quantizer = ADQuantizer(self.trainer, self.schedule, saturation)
        self.pruner = ADPruner(model.layer_handles()) if prune else None
        self.input_shape = tuple(input_shape)
        self.baseline_epochs = (
            baseline_epochs
            if baseline_epochs is not None
            else 2 * self.schedule.max_epochs_per_iteration
        )
        self.architecture = architecture
        self.dataset = dataset
        self.energy_model = AnalyticalEnergyModel()
        self._baseline_profiles = None
        self._complexity: TrainingComplexity | None = None

    # ------------------------------------------------------------------
    def _profiles(self):
        return profile_model(self.model, plan=self.quantizer.plan)

    def _make_row(
        self,
        iteration: int,
        epochs: int,
        complexity: TrainingComplexity,
        first_row: bool,
    ) -> TableRow:
        profiles = self._profiles()
        efficiency = energy_efficiency(self._baseline_profiles, profiles)
        test_accuracy = self.trainer.evaluate(self.test_loader)
        total_ad = self.trainer.monitor.total_density()
        row = TableRow(
            iteration=iteration,
            bit_widths=self.quantizer.plan.bit_widths(),
            test_accuracy=test_accuracy,
            total_ad=total_ad,
            energy_efficiency=efficiency,
            epochs=epochs,
            train_complexity=1.0 if first_row else complexity.relative(),
        )
        if self.pruner is not None:
            row.channel_counts = [
                h.active_channels() for h in self.pruner.prunable_handles()
            ]
        return row

    # ------------------------------------------------------------------
    def run(self) -> ExperimentReport:
        """Execute the full experiment; returns the report."""
        trace_geometry(self.model, self.input_shape)
        self.quantizer.apply_plan(self.quantizer.initial_plan())
        self._baseline_profiles = self._profiles()
        complexity = TrainingComplexity(self.baseline_epochs)
        self._complexity = complexity
        report = ExperimentReport(
            architecture=self.architecture,
            dataset=self.dataset,
            layer_names=self.model.layer_handles().names(),
        )
        for iteration in range(1, self.schedule.max_iterations + 1):
            epochs, _ = self.quantizer._train_until_saturation(self.train_loader)
            densities = self.trainer.monitor.latest()
            profiles = self._profiles()
            complexity.add_iteration(
                self.energy_model.mac_reduction(self._baseline_profiles, profiles),
                epochs,
            )
            report.rows.append(
                self._make_row(iteration, epochs, complexity, iteration == 1)
            )
            if iteration == self.schedule.max_iterations:
                break  # do not install a plan that will never be trained
            new_plan = self.quantizer.update_plan(densities)
            bits_changed = new_plan.bit_widths() != self.quantizer.plan.bit_widths()
            channels_changed = False
            if self.pruner is not None:
                before = self.pruner.current_plan()
                after = self.pruner.prune_step(densities)
                channels_changed = any(
                    after[name] != before[name] for name in before.channels
                )
            if not bits_changed and not channels_changed:
                break
            if bits_changed:
                self.quantizer.apply_plan(new_plan)
        if self.schedule.final_epochs > 0:
            self.trainer.fit(self.train_loader, self.schedule.final_epochs)
            last = report.rows[-1]
            last.epochs += self.schedule.final_epochs
            last.test_accuracy = self.trainer.evaluate(self.test_loader)
            last.total_ad = self.trainer.monitor.total_density()
        return report

    # ------------------------------------------------------------------
    def remove_layer_and_retrain(
        self, layer_name: str, epochs: int, label: str = "2a"
    ) -> TableRow:
        """Paper Table II row 2a: drop a dead layer, retrain, re-report.

        Only layers whose removal preserves tensor shapes (equal in/out
        channels) can be removed; the unit is disabled in place.
        """
        handle = self.model.layer_handles().by_name(layer_name)
        if not handle.is_conv:
            raise ValueError("only conv layers can be removed")
        unit = handle.unit
        if unit.conv.in_channels != unit.conv.out_channels:
            raise ValueError(
                f"{layer_name} changes channel count; removal would break shapes"
            )
        unit.enabled = False
        self.trainer.fit(self.train_loader, epochs)
        profiles = self._profiles()
        self._complexity.add_iteration(
            self.energy_model.mac_reduction(self._baseline_profiles, profiles),
            epochs,
        )
        bit_widths = [
            spec.bits for spec in self.quantizer.plan if spec.name != layer_name
        ]
        row = TableRow(
            iteration=len(self.quantizer.records) + 1,
            bit_widths=bit_widths,
            test_accuracy=self.trainer.evaluate(self.test_loader),
            total_ad=self.trainer.monitor.total_density(),
            energy_efficiency=energy_efficiency(self._baseline_profiles, profiles),
            epochs=epochs,
            train_complexity=self._complexity.relative(),
            label=label,
        )
        return row
