"""End-to-end experiment harness producing Tables II / III rows.

The :class:`ExperimentRunner` is the repository's original entry point,
kept backward-compatible as a thin façade over the declarative pipeline
API (:mod:`repro.api`).  It still drives Algorithm 1 (optionally fused
with AD-based channel pruning, as in Table III), and after every
iteration reports the paper's columns:

* the layer-wise bit-width vector (and channel counts when pruning),
* test accuracy,
* total AD (mean of the latest per-layer ADs),
* analytical energy efficiency vs the iteration-1 baseline (§IV-A),
* epochs trained in this iteration,
* cumulative training complexity (eqn. 4).

Row 1 is the full-precision baseline by construction: its plan *is* the
reference plan, so its energy efficiency is exactly 1x.

New code should prefer the pipeline API directly::

    from repro.api import experiments
    report = experiments.build("vgg19-cifar10-quant").run()

The report dataclasses (:class:`TableRow`, :class:`ExperimentReport`)
live in :mod:`repro.core.report` and are re-exported here unchanged.
"""

from __future__ import annotations

from repro.core.ad_prune import ADPruner
from repro.core.ad_quant import ADQuantizer, QuantizationSchedule
from repro.core.report import ExperimentReport, TableRow
from repro.core.trainer import Trainer
from repro.density import SaturationDetector

__all__ = ["ExperimentRunner", "ExperimentReport", "TableRow"]


class ExperimentRunner:
    """Drives one experiment: Algorithm 1 [+ eqn.-5 pruning] end to end.

    Parameters
    ----------
    model / train_loader / test_loader:
        The workload; the model must expose ``layer_handles()``.
    optimizer / loss_fn:
        Training objects (the paper uses Adam).
    schedule / saturation:
        Algorithm-1 hyper-parameters.
    prune:
        When True, each re-quantization step also applies eqn.-(5)
        channel pruning from the same AD snapshot (Table III).
    input_shape:
        (C, H, W) used once to trace layer geometry for energy models.
    baseline_epochs:
        Epoch budget of the notional fully-trained baseline used to
        normalize training complexity (defaults to 2x the first
        iteration's epoch cap, mirroring the paper's Fig.-3 setup where
        the baseline trains 210 epochs but saturates at ~100).
    """

    def __init__(
        self,
        model,
        train_loader,
        test_loader,
        optimizer,
        loss_fn,
        input_shape: tuple[int, int, int],
        schedule: QuantizationSchedule | None = None,
        saturation: SaturationDetector | None = None,
        prune: bool = False,
        baseline_epochs: int | None = None,
        architecture: str = "model",
        dataset: str = "dataset",
    ):
        # Imported lazily: repro.api depends on repro.core submodules, so
        # a module-level import here would be circular.
        from repro.api.context import ExperimentContext

        schedule = schedule or QuantizationSchedule()
        trainer = Trainer(model, optimizer, loss_fn)
        quantizer = ADQuantizer(trainer, schedule, saturation)
        self.ctx = ExperimentContext(
            model=model,
            train_loader=train_loader,
            test_loader=test_loader,
            trainer=trainer,
            quantizer=quantizer,
            pruner=ADPruner(model.layer_handles()) if prune else None,
            input_shape=tuple(input_shape),
            architecture=architecture,
            dataset=dataset,
            baseline_epochs=(
                baseline_epochs
                if baseline_epochs is not None
                else 2 * schedule.max_epochs_per_iteration
            ),
        )

    # ------------------------------------------------------------------
    # Backward-compatible surface (all state lives on the context).
    # ------------------------------------------------------------------
    @property
    def model(self):
        return self.ctx.model

    @property
    def train_loader(self):
        return self.ctx.train_loader

    @property
    def test_loader(self):
        return self.ctx.test_loader

    @property
    def trainer(self) -> Trainer:
        return self.ctx.trainer

    @property
    def quantizer(self) -> ADQuantizer:
        return self.ctx.quantizer

    @property
    def pruner(self) -> ADPruner | None:
        return self.ctx.pruner

    @property
    def schedule(self) -> QuantizationSchedule:
        return self.ctx.quantizer.schedule

    @property
    def energy_model(self):
        return self.ctx.energy_model

    @property
    def input_shape(self):
        return self.ctx.input_shape

    @property
    def baseline_epochs(self):
        return self.ctx.baseline_epochs

    @property
    def architecture(self) -> str:
        return self.ctx.architecture

    @property
    def dataset(self) -> str:
        return self.ctx.dataset

    @property
    def _baseline_profiles(self):
        return self.ctx.baseline_profiles

    @property
    def _complexity(self):
        return self.ctx.complexity

    def _profiles(self):
        return self.ctx.profiles()

    # ------------------------------------------------------------------
    def run(self) -> ExperimentReport:
        """Execute the full experiment; returns the report.

        Each call restarts the experiment (fresh report, baseline and
        complexity state, initial plan re-applied), matching the
        pre-façade contract; trained weights persist on the model.
        """
        from repro.api.pipeline import Pipeline
        from repro.api.stages import FinalTuneStage, QuantizeStage

        self.ctx.prepared = False
        stages = [QuantizeStage()]
        if self.schedule.final_epochs > 0:
            stages.append(FinalTuneStage())
        return Pipeline(stages).run(self.ctx)

    # ------------------------------------------------------------------
    def remove_layer_and_retrain(
        self, layer_name: str, epochs: int, label: str = "2a"
    ) -> TableRow:
        """Paper Table II row 2a: drop a dead layer, retrain, re-report.

        Only layers whose removal preserves tensor shapes (equal in/out
        channels) can be removed; the unit is disabled in place.  Raises
        :class:`RuntimeError` if called before :meth:`run`.
        """
        from repro.api.ops import remove_layer_and_retrain

        return remove_layer_and_retrain(self.ctx, layer_name, epochs, label=label)
