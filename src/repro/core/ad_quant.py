"""Algorithm 1: Activation-Density based in-training quantization.

Pseudocode from the paper::

    Initialize model M with random weights
    Set bit width k(0)_l = 16 of initial model, for all l in M
    for iter = 1 to N:
        for epoch = 1 to #(epochs):
            Forward and Backward Propagation of M
            Compute AD_l for all l in M        (eqn. 2)
            if AD_l is saturated for all l: break
        for each layer l in M:
            k(iter)_l = round(k(iter-1)_l * AD_l)   (eqn. 3)

The loop naturally terminates once AD reaches ~1.0 everywhere, because
``round(k * 1.0) == k`` leaves the plan unchanged; the paper observes
convergence "within 3 to 4 iterations" starting from 16-bit.  The first
and last layers are never re-quantized (kept at ``frozen_bits``), and
ResNet skip branches follow their destination layer via the registry's
follower mechanism (Fig. 2).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.trainer import Trainer
from repro.density import SaturationDetector
from repro.quant import LayerQuantSpec, QuantizationPlan


def scale_bits(bits: int, density: float, min_bits: int = 1) -> int:
    """Eqn. 3: ``k <- round(k * AD)``, floored at ``min_bits``.

    The single re-quantization rule of the paper, shared by the
    in-training :meth:`ADQuantizer.update_plan` step and the
    search-level proposal logic in
    :class:`repro.orchestration.search.ADSearchScheduler` (which applies
    it to a whole schedule's starting precision instead of one layer).
    """
    if not 0.0 <= density <= 1.0:
        raise ValueError(f"activation density out of range: {density}")
    if min_bits < 1:
        raise ValueError("min_bits must be >= 1")
    return max(min_bits, int(round(bits * density)))


@dataclass
class IterationRecord:
    """Outcome of one quantization iteration (one row of Table II)."""

    iteration: int
    plan: QuantizationPlan
    epochs_trained: int
    densities: dict[str, float]
    total_density: float
    train_accuracy: float
    test_accuracy: float | None = None


@dataclass
class QuantizationSchedule:
    """Hyper-parameters of the Algorithm-1 run.

    ``layer_bits`` overrides individual layers' *starting* precision
    (eqn.-3 scaling still drives them afterwards); names listed in
    ``layer_frozen`` are additionally pinned — their bits never change,
    like the role-frozen first/last layers.
    """

    initial_bits: int = 16
    frozen_bits: int = 16
    max_iterations: int = 4
    max_epochs_per_iteration: int = 100
    min_epochs_per_iteration: int = 1
    final_epochs: int = 0
    min_bits: int = 1
    layer_bits: dict[str, int] = field(default_factory=dict)
    layer_frozen: tuple = ()

    def __post_init__(self):
        if self.initial_bits < 1 or self.frozen_bits < 1:
            raise ValueError("bit-widths must be >= 1")
        if self.max_iterations < 1:
            raise ValueError("max_iterations must be >= 1")
        if self.min_epochs_per_iteration < 1:
            raise ValueError("min_epochs_per_iteration must be >= 1")
        if self.max_epochs_per_iteration < self.min_epochs_per_iteration:
            raise ValueError("max_epochs < min_epochs")
        if self.min_bits < 1:
            raise ValueError("min_bits must be >= 1")
        for name, bits in self.layer_bits.items():
            if not isinstance(name, str) or not name:
                raise ValueError(
                    f"layer_bits keys must be layer names, got {name!r}"
                )
            if not isinstance(bits, int) or isinstance(bits, bool) or bits < 1:
                raise ValueError(
                    f"layer_bits[{name!r}] must be an integer >= 1, "
                    f"got {bits!r}"
                )


class ADQuantizer:
    """Runs Algorithm 1 on a model through a :class:`Trainer`.

    Parameters
    ----------
    trainer:
        Bound to the model being quantized.
    schedule:
        Iteration/epoch/bit-width hyper-parameters.
    saturation:
        AD-stability criterion triggering each re-quantization.
    """

    def __init__(
        self,
        trainer: Trainer,
        schedule: QuantizationSchedule | None = None,
        saturation: SaturationDetector | None = None,
    ):
        self.trainer = trainer
        self.schedule = schedule or QuantizationSchedule()
        self.saturation = saturation or SaturationDetector(window=5, tolerance=0.02)
        self.registry = trainer.registry
        self.records: list[IterationRecord] = []
        self._plan: QuantizationPlan | None = None

    # ------------------------------------------------------------------
    # Plan management
    # ------------------------------------------------------------------
    def initial_plan(self) -> QuantizationPlan:
        """The ``initial_bits`` plan with frozen first/last layers.

        Per-layer ``schedule.layer_bits`` entries override the uniform
        start (an explicit entry wins even on the role-frozen first/last
        layers); names in ``schedule.layer_frozen`` are pinned so
        :meth:`update_plan` never rescales them.
        """
        overrides = dict(self.schedule.layer_bits)
        pinned = set(self.schedule.layer_frozen)
        known = set(self.registry.names())
        unknown = sorted((set(overrides) | pinned) - known)
        if unknown:
            raise ValueError(
                f"layer overrides name unknown layers {unknown} "
                f"(model layers: {sorted(known)})"
            )
        specs = []
        for handle in self.registry:
            frozen = handle.role in ("first", "last")
            default = self.schedule.frozen_bits if frozen else self.schedule.initial_bits
            bits = overrides.get(handle.name, default)
            specs.append(
                LayerQuantSpec(
                    handle.name,
                    bits,
                    frozen=frozen or handle.name in pinned,
                )
            )
        return QuantizationPlan(specs)

    def apply_plan(self, plan: QuantizationPlan) -> None:
        """Install fake-quantizers matching ``plan`` on the model."""
        if len(plan) != len(self.registry):
            raise ValueError("plan/registry length mismatch")
        for spec, handle in zip(plan, self.registry):
            if spec.name != handle.name:
                raise ValueError(
                    f"plan order mismatch: {spec.name} vs {handle.name}"
                )
            handle.apply_bits(spec.bits, enabled=True)
        self._plan = plan

    @property
    def plan(self) -> QuantizationPlan:
        if self._plan is None:
            raise RuntimeError("no plan applied yet — call run() or apply_plan()")
        return self._plan

    def update_plan(self, densities: dict[str, float]) -> QuantizationPlan:
        """Eqn. 3: ``k_l <- round(k_l * AD_l)`` for every non-frozen layer."""
        new_specs = []
        for spec in self.plan:
            if spec.frozen:
                new_specs.append(spec)
                continue
            density = densities[spec.name]
            try:
                bits = scale_bits(spec.bits, density, self.schedule.min_bits)
            except ValueError:
                raise ValueError(
                    f"AD out of range for {spec.name}: {density}"
                ) from None
            new_specs.append(
                LayerQuantSpec(
                    spec.name,
                    bits,
                    quantize_weights=spec.quantize_weights,
                    quantize_activations=spec.quantize_activations,
                    frozen=spec.frozen,
                )
            )
        return QuantizationPlan(new_specs)

    # ------------------------------------------------------------------
    # Training phases
    # ------------------------------------------------------------------
    def train_until_saturation(self, loader) -> tuple[int, float]:
        """Train epochs until every layer's AD saturates (or the cap).

        Returns (epochs trained this iteration, last train accuracy).
        Saturation is judged on the AD history *within this iteration*,
        so a plateau inherited from the previous precision does not
        spuriously trigger an immediate re-quantization.

        This is the inner "for epoch = 1 to #(epochs)" phase of
        Algorithm 1, exposed publicly so experiment harnesses can drive
        the iteration loop themselves (the plan bookkeeping stays with
        :meth:`update_plan` / :meth:`apply_plan`).
        """
        iteration_history: dict[str, list[float]] = {
            name: [] for name in self.registry.names()
        }
        epochs = 0
        accuracy = 0.0
        while epochs < self.schedule.max_epochs_per_iteration:
            stats = self.trainer.train_epoch(loader)
            epochs += 1
            accuracy = stats.accuracy
            for name, value in stats.densities.items():
                iteration_history[name].append(value)
            if (
                epochs >= self.schedule.min_epochs_per_iteration
                and self.saturation.all_saturated(iteration_history)
            ):
                break
        return epochs, accuracy

    def run(self, train_loader, test_loader=None) -> list[IterationRecord]:
        """Execute Algorithm 1 end to end; returns per-iteration records."""
        self.apply_plan(self.initial_plan())
        for iteration in range(1, self.schedule.max_iterations + 1):
            epochs, accuracy = self.train_until_saturation(train_loader)
            densities = self.trainer.monitor.latest()
            total_density = self.trainer.monitor.total_density()
            record = IterationRecord(
                iteration=iteration,
                plan=self.plan.copy(),
                epochs_trained=epochs,
                densities=dict(densities),
                total_density=total_density,
                train_accuracy=accuracy,
                test_accuracy=(
                    self.trainer.evaluate(test_loader) if test_loader else None
                ),
            )
            self.records.append(record)
            new_plan = self.update_plan(densities)
            if new_plan.bit_widths() == self.plan.bit_widths():
                break  # AD ~ 1 everywhere: further quantization impossible.
            self.apply_plan(new_plan)
        if self.schedule.final_epochs > 0:
            self.trainer.fit(train_loader, self.schedule.final_epochs)
            final = self.records[-1]
            final.epochs_trained += self.schedule.final_epochs
            final.densities = dict(self.trainer.monitor.latest())
            final.total_density = self.trainer.monitor.total_density()
            final.train_accuracy = self.trainer.history[-1].accuracy
            if test_loader is not None:
                final.test_accuracy = self.trainer.evaluate(test_loader)
        return self.records
