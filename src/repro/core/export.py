"""Report export: JSON and CSV serializations of experiment reports.

Downstream users typically want the Table II/III rows in machine-readable
form for plotting or aggregation across seeds; this module provides both
formats plus a loader for round-tripping.
"""

from __future__ import annotations

import csv
import json
from pathlib import Path

from repro.core.report import ExperimentReport, SweepEntry, SweepReport, TableRow


def report_to_dict(report: ExperimentReport) -> dict:
    """Plain-dict form of a report (JSON-serializable)."""
    return {
        "architecture": report.architecture,
        "dataset": report.dataset,
        "layer_names": list(report.layer_names),
        "rows": [
            {
                "iteration": row.iteration,
                "label": row.label,
                "bit_widths": list(row.bit_widths),
                "channel_counts": (
                    list(row.channel_counts) if row.channel_counts else None
                ),
                "test_accuracy": row.test_accuracy,
                "total_ad": row.total_ad,
                "energy_efficiency": row.energy_efficiency,
                "epochs": row.epochs,
                "train_complexity": row.train_complexity,
            }
            for row in report.rows
        ],
    }


def save_report_json(report: ExperimentReport, path) -> None:
    """Write the report as pretty-printed JSON."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(report_to_dict(report), indent=2))


def load_report_json(path) -> ExperimentReport:
    """Reconstruct a report from :func:`save_report_json` output."""
    return report_from_dict(json.loads(Path(path).read_text()))


def report_from_dict(payload: dict) -> ExperimentReport:
    """Inverse of :func:`report_to_dict`."""
    report = ExperimentReport(
        architecture=payload["architecture"],
        dataset=payload["dataset"],
        layer_names=list(payload["layer_names"]),
    )
    for row in payload["rows"]:
        report.rows.append(
            TableRow(
                iteration=row["iteration"],
                bit_widths=list(row["bit_widths"]),
                test_accuracy=row["test_accuracy"],
                total_ad=row["total_ad"],
                energy_efficiency=row["energy_efficiency"],
                epochs=row["epochs"],
                train_complexity=row["train_complexity"],
                channel_counts=(
                    list(row["channel_counts"]) if row["channel_counts"] else None
                ),
                label=row.get("label", ""),
            )
        )
    return report


def sweep_report_from_payload(payload: dict) -> SweepReport:
    """Rebuild the aggregate :class:`SweepReport` from a sweep ``--out``
    (or ``repro merge-sweeps``) JSON payload."""
    report = SweepReport(name=payload["sweep"])
    for point in payload["points"]:
        report.add(SweepEntry(
            label=point["label"],
            report=(
                report_from_dict(point["report"])
                if point.get("report") is not None
                else None
            ),
            status=point["status"],
            key=point.get("key", ""),
            error=point.get("error"),
        ))
    return report


def save_report_csv(report: ExperimentReport, path) -> None:
    """Write one CSV row per iteration (bit/channel vectors as JSON cells)."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with open(path, "w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(
            [
                "architecture",
                "dataset",
                "iteration",
                "label",
                "bit_widths",
                "channel_counts",
                "test_accuracy",
                "total_ad",
                "energy_efficiency",
                "epochs",
                "train_complexity",
            ]
        )
        for row in report.rows:
            writer.writerow(
                [
                    report.architecture,
                    report.dataset,
                    row.iteration,
                    row.label,
                    json.dumps(row.bit_widths),
                    json.dumps(row.channel_counts) if row.channel_counts else "",
                    f"{row.test_accuracy:.6f}",
                    f"{row.total_ad:.6f}",
                    f"{row.energy_efficiency:.6f}",
                    row.epochs,
                    f"{row.train_complexity:.6f}",
                ]
            )
