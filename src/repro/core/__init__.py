"""The paper's primary contribution: AD-driven in-training quantization.

* :class:`~repro.core.trainer.Trainer` — quantization-aware training
  loop with per-epoch AD collection.
* :class:`~repro.core.ad_quant.ADQuantizer` — Algorithm 1: train until
  AD saturates, re-quantize every layer to ``round(k_l * AD_l)`` bits
  (eqn. 3), repeat until the bit-widths stop changing.
* :class:`~repro.core.ad_prune.ADPruner` — AD-based channel pruning
  (eqn. 5), composable with quantization (Table III).
* :class:`~repro.core.complexity.TrainingComplexity` — eqn. 4 metric.
* :class:`~repro.core.runner.ExperimentRunner` — end-to-end harness
  producing rows shaped like the paper's Tables II and III.
"""

from repro.core.ad_prune import ADPruner, PruningPlan
from repro.core.ad_quant import (ADQuantizer, IterationRecord,
                                 QuantizationSchedule, scale_bits)
from repro.core.complexity import TrainingComplexity
from repro.core.export import (
    load_report_json,
    report_to_dict,
    save_report_csv,
    save_report_json,
)
from repro.core.runner import ExperimentReport, ExperimentRunner, TableRow
from repro.core.trainer import EpochStats, Trainer

__all__ = [
    "Trainer",
    "EpochStats",
    "ADQuantizer",
    "QuantizationSchedule",
    "IterationRecord",
    "ADPruner",
    "PruningPlan",
    "TrainingComplexity",
    "ExperimentRunner",
    "ExperimentReport",
    "TableRow",
    "report_to_dict",
    "save_report_json",
    "load_report_json",
    "save_report_csv",
    "scale_bits",
]
