"""Report dataclasses: the rows of the paper's Tables II / III.

Kept free of training/pipeline imports so that both the low-level
:mod:`repro.core` machinery and the declarative :mod:`repro.api` layer
can share them without import cycles.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.utils.tables import format_table


@dataclass
class TableRow:
    """One row of a Table II/III-shaped report."""

    iteration: int
    bit_widths: list[int]
    test_accuracy: float
    total_ad: float
    energy_efficiency: float
    epochs: int
    train_complexity: float
    channel_counts: list[int] | None = None
    label: str = ""


@dataclass
class ExperimentReport:
    """All rows of one experiment plus naming metadata."""

    architecture: str
    dataset: str
    layer_names: list[str]
    rows: list[TableRow] = field(default_factory=list)

    def format(self) -> str:
        """Monospace rendering in the paper's column order."""
        headers = ["Iter", "Bit-widths", "Test Acc", "Total AD",
                   "Energy Eff", "Epochs", "Train Compl"]
        include_channels = any(r.channel_counts is not None for r in self.rows)
        if include_channels:
            headers.insert(2, "nChannels")
        table_rows = []
        for row in self.rows:
            cells = [
                row.label or str(row.iteration),
                str(row.bit_widths),
                f"{row.test_accuracy * 100:.2f}%",
                f"{row.total_ad:.3f}",
                f"{row.energy_efficiency:.2f}x",
                str(row.epochs),
                f"{row.train_complexity:.3f}x",
            ]
            if include_channels:
                cells.insert(2, str(row.channel_counts or "-"))
            table_rows.append(cells)
        title = f"{self.architecture} on {self.dataset}"
        return format_table(headers, table_rows, title=title)
