"""Report dataclasses: the rows of the paper's Tables II / III.

Kept free of training/pipeline imports so that both the low-level
:mod:`repro.core` machinery and the declarative :mod:`repro.api` layer
can share them without import cycles.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.utils.tables import format_table


@dataclass
class TableRow:
    """One row of a Table II/III-shaped report."""

    iteration: int
    bit_widths: list[int]
    test_accuracy: float
    total_ad: float
    energy_efficiency: float
    epochs: int
    train_complexity: float
    channel_counts: list[int] | None = None
    label: str = ""


@dataclass
class ExperimentReport:
    """All rows of one experiment plus naming metadata."""

    architecture: str
    dataset: str
    layer_names: list[str]
    rows: list[TableRow] = field(default_factory=list)

    def format(self) -> str:
        """Monospace rendering in the paper's column order."""
        headers = ["Iter", "Bit-widths", "Test Acc", "Total AD",
                   "Energy Eff", "Epochs", "Train Compl"]
        include_channels = any(r.channel_counts is not None for r in self.rows)
        if include_channels:
            headers.insert(2, "nChannels")
        table_rows = []
        for row in self.rows:
            cells = [
                row.label or str(row.iteration),
                str(row.bit_widths),
                f"{row.test_accuracy * 100:.2f}%",
                f"{row.total_ad:.3f}",
                f"{row.energy_efficiency:.2f}x",
                str(row.epochs),
                f"{row.train_complexity:.3f}x",
            ]
            if include_channels:
                cells.insert(2, str(row.channel_counts or "-"))
            table_rows.append(cells)
        title = f"{self.architecture} on {self.dataset}"
        return format_table(headers, table_rows, title=title)


@dataclass
class SweepEntry:
    """One sweep point's outcome: a report, a cache hit, or a failure."""

    label: str
    report: ExperimentReport | None = None
    status: str = "ok"  # "ok" | "cached" | "failed"
    key: str = ""
    error: str | None = None

    @property
    def final_row(self) -> TableRow | None:
        if self.report is None or not self.report.rows:
            return None
        return self.report.rows[-1]


@dataclass
class SearchEntry(SweepEntry):
    """One search trial's outcome plus its place in the search.

    ``feasible`` records whether the trial met the search's acceptance
    rule (within the accuracy-drop budget for AD search, survived the
    pruning rung for successive halving); ``None`` means the rule never
    judged it (e.g. the trial crashed before producing a row).  ``best``
    marks the trial the search ultimately selected.
    """

    feasible: bool | None = None
    best: bool = False

    @property
    def bit_vector(self) -> dict | None:
        """The trial's final per-layer assignment as ``{name: bits}``."""
        row = self.final_row
        if row is None or self.report is None:
            return None
        names = self.report.layer_names
        if len(names) != len(row.bit_widths):
            return None
        return dict(zip(names, row.bit_widths))


@dataclass
class SearchReport:
    """Per-trial rows of an adaptive search (bit-width search, halving).

    The search analogue of :class:`SweepReport`: one entry per trial in
    proposal order, annotated with feasibility and the selected best.
    """

    name: str
    objective: str = "energy_efficiency"
    accuracy_drop: float | None = None
    entries: list[SearchEntry] = field(default_factory=list)

    def add(self, entry: SearchEntry) -> None:
        self.entries.append(entry)

    @property
    def best_entry(self) -> SearchEntry | None:
        for entry in self.entries:
            if entry.best:
                return entry
        return None

    @property
    def best_bit_vector(self) -> dict | None:
        """The winning trial's per-layer assignment (None without one)."""
        best = self.best_entry
        return best.bit_vector if best is not None else None

    @property
    def failed(self) -> list[SearchEntry]:
        return [e for e in self.entries if e.status == "failed"]

    def format(self) -> str:
        """One line per trial plus the selected best and any failures."""
        headers = ["Trial", "Status", "Bit-widths", "Test Acc", "Total AD",
                   "Energy Eff", "Epochs", "Feasible", "Best"]
        table_rows = []
        for entry in self.entries:
            row = entry.final_row
            feasible = "-" if entry.feasible is None else \
                ("yes" if entry.feasible else "no")
            best = "*" if entry.best else ""
            if row is None:
                table_rows.append([entry.label, entry.status, "-", "-", "-",
                                   "-", "-", feasible, best])
                continue
            table_rows.append([
                entry.label,
                entry.status,
                str(row.bit_widths),
                f"{row.test_accuracy * 100:.2f}%",
                f"{row.total_ad:.3f}",
                f"{row.energy_efficiency:.2f}x",
                str(sum(r.epochs for r in entry.report.rows)),
                feasible,
                best,
            ])
        title = f"Search — {self.name} (objective: {self.objective})"
        out = format_table(headers, table_rows, title=title)
        lines = [out]
        best = self.best_entry
        if best is not None and best.final_row is not None:
            row = best.final_row
            lines.append(
                f"best: {best.label} — acc {row.test_accuracy * 100:.2f}%, "
                f"energy eff {row.energy_efficiency:.2f}x"
            )
            vector = best.bit_vector
            if vector is not None:
                assignment = ", ".join(
                    f"{name}={bits}" for name, bits in vector.items()
                )
                lines.append(f"bit vector: {assignment}")
        if self.failed:
            lines.append("failures:")
            lines += [f"  {e.label}: {e.error}" for e in self.failed]
        return "\n".join(lines)


@dataclass
class SweepReport:
    """Cross-run aggregation: every point's rows under one roof.

    The per-point :class:`ExperimentReport` objects are kept whole (the
    sweep runner guarantees they are bit-identical to serial runs); the
    aggregate view summarises each point by its final row, the form the
    paper's tables take when read across a grid axis.
    """

    name: str
    entries: list[SweepEntry] = field(default_factory=list)

    def add(self, entry: SweepEntry) -> None:
        """Fold one more point outcome in (streaming aggregation)."""
        self.entries.append(entry)

    @classmethod
    def merged(cls, name: str, reports) -> "SweepReport":
        """Join several (e.g. per-shard) reports, entry order preserved."""
        merged = cls(name=name)
        for report in reports:
            merged.entries.extend(report.entries)
        return merged

    @property
    def succeeded(self) -> list[SweepEntry]:
        return [e for e in self.entries if e.report is not None]

    @property
    def failed(self) -> list[SweepEntry]:
        return [e for e in self.entries if e.status == "failed"]

    def reports(self) -> list[ExperimentReport]:
        return [e.report for e in self.succeeded]

    def rows(self) -> list[tuple[str, TableRow]]:
        """Every (point label, row) pair across the sweep, in order."""
        return [
            (entry.label, row)
            for entry in self.succeeded
            for row in entry.report.rows
        ]

    def format(self) -> str:
        """One summary line per point (final row), plus failures."""
        headers = ["Point", "Status", "Bit-widths", "Test Acc", "Total AD",
                   "Energy Eff", "Epochs", "Train Compl"]
        table_rows = []
        for entry in self.entries:
            row = entry.final_row
            if row is None:
                table_rows.append(
                    [entry.label, entry.status, "-", "-", "-", "-", "-", "-"]
                )
                continue
            table_rows.append([
                entry.label,
                entry.status,
                str(row.bit_widths),
                f"{row.test_accuracy * 100:.2f}%",
                f"{row.total_ad:.3f}",
                f"{row.energy_efficiency:.2f}x",
                str(sum(r.epochs for r in entry.report.rows)),
                f"{row.train_complexity:.3f}x",
            ])
        out = format_table(headers, table_rows, title=f"Sweep — {self.name}")
        if self.failed:
            lines = [out, "", "failures:"]
            lines += [f"  {e.label}: {e.error}" for e in self.failed]
            out = "\n".join(lines)
        return out


def format_job_table(jobs: list[dict]) -> str:
    """The ``repro status`` view of the master's queue.

    ``jobs`` is a list of ``Job.describe()`` payloads (as returned by
    the service's ``status`` method); the ``Points`` column compresses
    each finished job's summary stats into one cell.
    """
    headers = ["Job", "State", "Pri", "Kind", "Name", "Points"]
    rows = []
    for job in jobs:
        stats = (job.get("summary") or {}).get("stats") or {}
        if stats:
            detail = (f"{stats.get('total', 0)} "
                      f"({stats.get('executed', 0)} run, "
                      f"{stats.get('cached', 0)} cached, "
                      f"{stats.get('failed', 0)} failed)")
            if "speculated" in stats:
                # Speculative searches: how many of the scheduler's bets
                # the confirm step kept, straight from the result stats.
                detail += (f", {stats.get('confirmed', 0)}/"
                           f"{stats['speculated']} bets confirmed")
        elif job.get("error"):
            detail = job["error"]
        else:
            detail = "-"
        state = job.get("state", "?")
        if job.get("cancel_requested") and state == "running":
            state = "running*"  # cancel pending at the next round
        rows.append([
            str(job.get("id", "?")), state, str(job.get("priority", 0)),
            job.get("kind", "?"), job.get("name", "?"), detail,
        ])
    return format_table(headers, rows, title="Experiment queue")
