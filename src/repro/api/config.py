"""Frozen, validated experiment configuration objects.

An :class:`ExperimentConfig` is the declarative description of one
paper experiment — the model, the data, the Algorithm-1 schedule,
optional eqn.-5 pruning, and the energy accounting to attach.  Configs
are immutable, JSON round-trippable (via :mod:`repro.utils.serialization`),
and validate eagerly on construction so a bad sweep fails before any
training happens.

The config -> live-object translation lives in
:func:`repro.api.context.build_context`; nothing in this module touches
numpy or the training stack.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
from dataclasses import dataclass, field, fields

from repro.utils.serialization import load_json, save_json

ARCHITECTURES = ("vgg11", "vgg16", "vgg19", "resnet18")
DATASETS = {
    "synthetic-cifar10": 10,
    "synthetic-cifar100": 100,
    "synthetic-tinyimagenet": 200,
}
OPTIMIZERS = ("adam", "sgd")
# Mirrors repro.backend.available_backends(); kept static so this module
# stays import-light (no numpy / training stack at config time).
BACKENDS = ("reference", "fast")
DEFAULT_BACKEND = "reference"


def _from_dict(cls, payload: dict):
    """Construct a config dataclass from a plain dict, rejecting unknowns."""
    if not isinstance(payload, dict):
        raise TypeError(f"{cls.__name__} payload must be a dict, got {type(payload).__name__}")
    known = {f.name: f for f in fields(cls)}
    unknown = set(payload) - set(known)
    if unknown:
        raise ValueError(
            f"unknown {cls.__name__} keys: {sorted(unknown)} "
            f"(known: {sorted(known)})"
        )
    nested = getattr(cls, "_nested", {})
    kwargs = {}
    for name, value in payload.items():
        if name in nested:
            if isinstance(value, dict):
                kwargs[name] = _from_dict(nested[name], value)
            elif isinstance(value, nested[name]):
                kwargs[name] = value
            else:
                raise TypeError(
                    f"{cls.__name__}.{name} must be a dict, "
                    f"got {type(value).__name__}"
                )
        elif isinstance(value, list):
            kwargs[name] = tuple(value)
        else:
            kwargs[name] = value
    return cls(**kwargs)


def _to_dict(config) -> dict:
    """Recursive plain-dict form (tuples become lists for JSON).

    Nested configs render through their own ``to_dict`` so per-class
    canonicalization (e.g. :class:`QuantConfig`'s omitted-when-empty
    ``layer_bits``) applies at any nesting depth.
    """
    out = {}
    for spec in fields(config):
        value = getattr(config, spec.name)
        if isinstance(value, _ConfigBase):
            out[spec.name] = value.to_dict()
        elif dataclasses.is_dataclass(value):
            out[spec.name] = _to_dict(value)
        elif isinstance(value, tuple):
            out[spec.name] = list(value)
        else:
            out[spec.name] = value
    return out


def _canonical_layer_bits(value) -> tuple:
    """Normalize a per-layer bit map to a sorted ``((name, bits), ...)``.

    Accepts a ``{name: bits}`` mapping or an iterable of pairs (the JSON
    and evolve forms); the canonical tuple keeps frozen configs hashable
    and makes ``cache_key()`` independent of map insertion order.
    """
    if isinstance(value, dict):
        items = list(value.items())
    else:
        items = []
        for pair in value:
            pair = tuple(pair)
            if len(pair) != 2:
                raise ValueError(
                    f"layer_bits entries must be (name, bits) pairs, "
                    f"got {pair!r}"
                )
            items.append(pair)
    for name, bits in items:
        if not isinstance(name, str) or not name:
            raise ValueError(
                f"layer_bits keys must be non-empty layer names, got {name!r}"
            )
        if not isinstance(bits, int) or isinstance(bits, bool) or bits < 1:
            raise ValueError(
                f"layer_bits[{name!r}] must be an integer >= 1, got {bits!r}"
            )
    names = [name for name, _ in items]
    duplicates = sorted({name for name in names if names.count(name) > 1})
    if duplicates:
        raise ValueError(f"duplicate layer_bits entries for {duplicates}")
    return tuple(sorted(items))


def _canonical_layer_names(value, field_name: str) -> tuple:
    """Normalize a layer-name collection to a sorted, validated tuple."""
    names = list(value)
    for name in names:
        if not isinstance(name, str) or not name:
            raise ValueError(
                f"{field_name} entries must be non-empty layer names, "
                f"got {name!r}"
            )
    duplicates = sorted({name for name in names if names.count(name) > 1})
    if duplicates:
        raise ValueError(f"duplicate {field_name} entries for {duplicates}")
    return tuple(sorted(names))


def canonical_json(payload: dict) -> str:
    """Deterministic JSON form of a config dict.

    Keys are sorted and separators fixed so the rendering is independent
    of dict insertion order, the process, and the platform — the basis
    of the content-addressed result cache.
    """
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


def config_hash(payload: dict) -> str:
    """sha256 hex digest of :func:`canonical_json` of ``payload``."""
    return hashlib.sha256(canonical_json(payload).encode("utf-8")).hexdigest()


class _ConfigBase:
    """Shared dict/JSON plumbing for every config dataclass."""

    def to_dict(self) -> dict:
        return _to_dict(self)

    def cache_key(self) -> str:
        """Stable content hash of this config (see :func:`config_hash`).

        Two configs compare equal iff their keys match, regardless of how
        they were constructed (kwargs, from_dict with any key order,
        evolve) or in which process the key is computed.
        """
        return config_hash(self.to_dict())

    @classmethod
    def from_dict(cls, payload: dict):
        return _from_dict(cls, payload)

    def to_json(self, path) -> None:
        save_json(path, self.to_dict())

    @classmethod
    def from_json(cls, path):
        return cls.from_dict(load_json(path))

    def evolve(self, **updates):
        """Return a copy with ``updates`` applied.

        A dict value for a nested config field is merged into that
        sub-config rather than replacing it wholesale, so callers can
        override a single hyper-parameter:

        >>> config.evolve(quant={"max_iterations": 2}, lr=1e-3)
        """
        known = {f.name: f for f in fields(self)}
        changes = {}
        for name, value in updates.items():
            if name not in known:
                raise ValueError(f"unknown {type(self).__name__} field {name!r}")
            current = getattr(self, name)
            if dataclasses.is_dataclass(current) and isinstance(value, dict):
                changes[name] = current.evolve(**value)
            elif isinstance(value, list):
                changes[name] = tuple(value)
            else:
                changes[name] = value
        return dataclasses.replace(self, **changes)


@dataclass(frozen=True)
class ModelConfig(_ConfigBase):
    """Which instrumented architecture to build, and how wide."""

    arch: str = "vgg11"
    num_classes: int = 10
    width_multiplier: float = 1.0
    image_size: int = 16
    batch_norm: bool = True
    seed: int = 0

    def __post_init__(self):
        if self.arch not in ARCHITECTURES:
            raise ValueError(f"unknown arch {self.arch!r} (choose from {ARCHITECTURES})")
        if self.num_classes < 2:
            raise ValueError("num_classes must be >= 2")
        if self.width_multiplier <= 0:
            raise ValueError("width_multiplier must be positive")
        if self.image_size < 8:
            raise ValueError("image_size must be >= 8")


@dataclass(frozen=True)
class DataConfig(_ConfigBase):
    """Synthetic dataset family, scale, and loader settings."""

    dataset: str = "synthetic-cifar10"
    train_per_class: int = 24
    test_per_class: int = 8
    image_size: int = 16
    noise: float = 0.6
    train_batch_size: int = 32
    test_batch_size: int = 64
    shuffle: bool = True
    seed: int = 0

    def __post_init__(self):
        if self.dataset not in DATASETS:
            raise ValueError(
                f"unknown dataset {self.dataset!r} (choose from {sorted(DATASETS)})"
            )
        if self.train_per_class < 1 or self.test_per_class < 1:
            raise ValueError("per-class sample counts must be >= 1")
        if self.image_size < 8:
            raise ValueError("image_size must be >= 8")
        if self.noise < 0:
            raise ValueError("noise must be non-negative")
        if self.train_batch_size < 1 or self.test_batch_size < 1:
            raise ValueError("batch sizes must be >= 1")

    @property
    def num_classes(self) -> int:
        return DATASETS[self.dataset]


@dataclass(frozen=True)
class QuantConfig(_ConfigBase):
    """Algorithm-1 schedule plus the AD-saturation criterion.

    ``layer_bits`` overrides the starting precision of individual layers
    (by registry name); ``layer_frozen`` pins layers so eqn.-3 AD
    scaling never re-quantizes them — together they express one searched
    per-layer assignment (a Table II/III bit vector) as a config.  Both
    are stored canonically sorted and *omitted* from :meth:`to_dict`
    when empty, so configs that never touch them keep their historical
    ``cache_key()`` and the result cache stays warm.
    """

    initial_bits: int = 16
    frozen_bits: int = 16
    max_iterations: int = 4
    max_epochs_per_iteration: int = 100
    min_epochs_per_iteration: int = 1
    final_epochs: int = 0
    min_bits: int = 1
    saturation_window: int = 5
    saturation_tolerance: float = 0.02
    baseline_epochs: int | None = None
    layer_bits: tuple = ()
    layer_frozen: tuple = ()

    def __post_init__(self):
        # Normalize the per-layer maps before the shared validation so
        # dict / pair-list inputs (JSON, evolve) become one canonical
        # hashable form.
        object.__setattr__(
            self, "layer_bits", _canonical_layer_bits(self.layer_bits)
        )
        object.__setattr__(
            self,
            "layer_frozen",
            _canonical_layer_names(self.layer_frozen, "layer_frozen"),
        )
        # Reuse the schedule's own validation for the shared fields.
        self.to_schedule()
        if self.saturation_window < 2:
            raise ValueError("saturation_window must be >= 2")
        if self.saturation_tolerance <= 0:
            raise ValueError("saturation_tolerance must be positive")
        if self.baseline_epochs is not None and self.baseline_epochs < 1:
            raise ValueError("baseline_epochs must be >= 1 when set")

    @property
    def layer_bits_map(self) -> dict:
        """The per-layer override map as a plain ``{name: bits}`` dict."""
        return dict(self.layer_bits)

    def to_dict(self) -> dict:
        out = _to_dict(self)
        # Canonical dict form when set; omitted entirely when unset so
        # pre-override configs hash (and cache) identically to before.
        if self.layer_bits:
            out["layer_bits"] = self.layer_bits_map
        else:
            del out["layer_bits"]
        if not self.layer_frozen:
            del out["layer_frozen"]
        return out

    def validate_layers(self, layer_names) -> None:
        """Check every override/pin names a layer of the built model."""
        known = set(layer_names)
        for field_name, names in (
            ("layer_bits", [name for name, _ in self.layer_bits]),
            ("layer_frozen", self.layer_frozen),
        ):
            unknown = sorted(set(names) - known)
            if unknown:
                raise ValueError(
                    f"{field_name} names unknown layers {unknown} "
                    f"(model layers: {sorted(known)})"
                )

    def to_schedule(self):
        from repro.core.ad_quant import QuantizationSchedule

        return QuantizationSchedule(
            initial_bits=self.initial_bits,
            frozen_bits=self.frozen_bits,
            max_iterations=self.max_iterations,
            max_epochs_per_iteration=self.max_epochs_per_iteration,
            min_epochs_per_iteration=self.min_epochs_per_iteration,
            final_epochs=self.final_epochs,
            min_bits=self.min_bits,
            layer_bits=self.layer_bits_map,
            layer_frozen=self.layer_frozen,
        )

    def to_saturation(self):
        from repro.density import SaturationDetector

        return SaturationDetector(
            window=self.saturation_window, tolerance=self.saturation_tolerance
        )


@dataclass(frozen=True)
class PruneConfig(_ConfigBase):
    """Eqn.-5 channel pruning; fused with quantization by default."""

    enabled: bool = False
    fused: bool = True
    min_channels: int = 1
    retrain_epochs: int = 0

    def __post_init__(self):
        if self.min_channels < 1:
            raise ValueError("min_channels must be >= 1")
        if self.retrain_epochs < 0:
            raise ValueError("retrain_epochs must be >= 0")


@dataclass(frozen=True)
class EnergyConfig(_ConfigBase):
    """Which energy accountings to attach to the report."""

    analytical: bool = True
    pim: bool = False
    baseline_bits: int = 16

    def __post_init__(self):
        if self.baseline_bits < 1:
            raise ValueError("baseline_bits must be >= 1")


@dataclass(frozen=True)
class ExperimentConfig(_ConfigBase):
    """One fully-specified experiment (a paper table/figure setup)."""

    name: str = "experiment"
    architecture: str = "model"
    dataset: str = "dataset"
    model: ModelConfig = field(default_factory=ModelConfig)
    data: DataConfig = field(default_factory=DataConfig)
    quant: QuantConfig = field(default_factory=QuantConfig)
    prune: PruneConfig = field(default_factory=PruneConfig)
    energy: EnergyConfig = field(default_factory=EnergyConfig)
    optimizer: str = "adam"
    lr: float = 3e-3
    momentum: float = 0.9
    tables: tuple = ()
    description: str = ""
    backend: str = DEFAULT_BACKEND

    _nested = {
        "model": ModelConfig,
        "data": DataConfig,
        "quant": QuantConfig,
        "prune": PruneConfig,
        "energy": EnergyConfig,
    }

    def __post_init__(self):
        if not self.name:
            raise ValueError("name must be non-empty")
        if self.optimizer not in OPTIMIZERS:
            raise ValueError(
                f"unknown optimizer {self.optimizer!r} (choose from {OPTIMIZERS})"
            )
        if self.backend not in BACKENDS:
            raise ValueError(
                f"unknown backend {self.backend!r} (choose from {BACKENDS})"
            )
        if self.lr <= 0:
            raise ValueError("lr must be positive")
        if not 0 <= self.momentum < 1:
            raise ValueError("momentum must be in [0, 1)")
        if self.model.num_classes != self.data.num_classes:
            raise ValueError(
                f"model.num_classes ({self.model.num_classes}) does not match "
                f"{self.data.dataset} ({self.data.num_classes} classes)"
            )
        if self.model.arch.startswith("vgg") and self.model.image_size != self.data.image_size:
            raise ValueError(
                f"model.image_size ({self.model.image_size}) must match "
                f"data.image_size ({self.data.image_size}) for VGG classifiers"
            )

    def to_dict(self) -> dict:
        out = _to_dict(self)
        # Omitted when default so every pre-backend config keeps its
        # historical cache_key() (same trick as QuantConfig.layer_bits) —
        # and so reference results never cross-contaminate fast ones.
        if self.backend == DEFAULT_BACKEND:
            del out["backend"]
        return out

    @property
    def input_shape(self) -> tuple:
        return (3, self.data.image_size, self.data.image_size)
