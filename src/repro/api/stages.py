"""Composable pipeline stages.

Each stage is one phase of the paper's workflow, operating on a shared
:class:`~repro.api.context.ExperimentContext`:

* :class:`QuantizeStage` — the Algorithm-1 iteration loop (train until
  AD saturates, report a Table II row, re-quantize via eqn. 3); when the
  context carries a fused pruner, each re-quantization step also applies
  eqn.-5 channel pruning from the same AD snapshot (Table III).
* :class:`PruneStage` — a standalone eqn.-5 pruning step (post-hoc, for
  unfused pipelines) with optional retraining.
* :class:`FinalTuneStage` — extra training epochs folded into the last
  reported row (the schedule's ``final_epochs`` behaviour).
* :class:`EnergyReportStage` / :class:`PIMEvalStage` — analytical
  (Table I) and PIM-platform (Tables IV-VI) energy accounting attached
  to ``ctx.artifacts``.
* :class:`ExportStage` — persist the report (and artifacts) to disk.

Stages never construct models or loaders; that is
:func:`~repro.api.context.build_context`'s job.  The iteration hook
``on_iteration_end`` fires after every Table-row append, so sweeps,
loggers, and early-stop policies plug in without subclassing (a callback
may call :meth:`ExperimentContext.request_stop`).
"""

from __future__ import annotations

from repro.core.ad_prune import ADPruner
from repro.core.export import report_to_dict, save_report_csv
from repro.core.report import TableRow
from repro.energy.analytical import energy_efficiency
from repro.energy.profile import profile_model
from repro.utils.serialization import save_json


def make_table_row(ctx, iteration: int, epochs: int, first_row: bool) -> TableRow:
    """Compute one Table II/III row from the context's current state."""
    profiles = ctx.profiles()
    row = TableRow(
        iteration=iteration,
        bit_widths=ctx.quantizer.plan.bit_widths(),
        test_accuracy=ctx.trainer.evaluate(ctx.test_loader),
        total_ad=ctx.trainer.monitor.total_density(),
        energy_efficiency=energy_efficiency(ctx.baseline_profiles, profiles),
        epochs=epochs,
        train_complexity=1.0 if first_row else ctx.complexity.relative(),
    )
    if ctx.pruner is not None:
        row.channel_counts = [
            h.active_channels() for h in ctx.pruner.prunable_handles()
        ]
    return row


class Stage:
    """One pipeline phase; subclasses implement :meth:`run`."""

    name = "stage"

    def run(self, ctx) -> None:
        raise NotImplementedError

    def __repr__(self) -> str:
        return f"{type(self).__name__}()"


class QuantizeStage(Stage):
    """Algorithm 1: train-until-saturation / re-quantize iterations.

    Re-entrant: when the context already carries reported quantization
    rows (a checkpoint restore, or a second pipeline chained over a live
    context), the stage continues from the last reported iteration
    instead of restarting — it replays the eqn.-3/eqn.-5 update that
    follows the last row and resumes training at the next iteration.
    """

    name = "quantize"

    @staticmethod
    def completed_iterations(ctx) -> int:
        """Quantization iterations already reported on this context."""
        return max(
            (row.iteration for row in ctx.report.rows if not row.label),
            default=0,
        )

    @staticmethod
    def _requantize(ctx) -> bool:
        """Eqn.-3 (and fused eqn.-5) update; returns False on fixpoint."""
        quantizer = ctx.quantizer
        densities = ctx.trainer.monitor.latest()
        new_plan = quantizer.update_plan(densities)
        bits_changed = new_plan.bit_widths() != quantizer.plan.bit_widths()
        channels_changed = False
        if ctx.pruner is not None and ctx.fuse_prune:
            before = ctx.pruner.current_plan()
            after = ctx.pruner.prune_step(densities)
            channels_changed = any(
                after[name] != before[name] for name in before.channels
            )
        if bits_changed:
            quantizer.apply_plan(new_plan)
        return bits_changed or channels_changed

    def run(self, ctx) -> None:
        quantizer = ctx.quantizer
        schedule = quantizer.schedule
        start = self.completed_iterations(ctx)
        if start:
            # A restored early-stop means the original run declined to
            # iterate further; honour it rather than training on.
            if start >= schedule.max_iterations or ctx.stop_requested:
                return
            if not self._requantize(ctx):
                return
        for iteration in range(start + 1, schedule.max_iterations + 1):
            epochs, _ = quantizer.train_until_saturation(ctx.train_loader)
            profiles = ctx.profiles()
            ctx.complexity.add_iteration(
                ctx.energy_model.mac_reduction(ctx.baseline_profiles, profiles),
                epochs,
            )
            row = make_table_row(ctx, iteration, epochs, first_row=iteration == 1)
            ctx.report.rows.append(row)
            ctx.emit("on_iteration_end", ctx, row)
            if ctx.stop_requested or iteration == schedule.max_iterations:
                break  # do not install a plan that will never be trained
            if not self._requantize(ctx):
                break


class PruneStage(Stage):
    """One standalone eqn.-5 pruning step from the latest AD snapshot."""

    name = "prune"

    def __init__(self, retrain_epochs: int = 0, label: str = "prune"):
        if retrain_epochs < 0:
            raise ValueError("retrain_epochs must be >= 0")
        self.retrain_epochs = retrain_epochs
        self.label = label

    def run(self, ctx) -> None:
        # Skip only when resuming from a capture written *inside* this
        # stage (its row is the report's last): a boundary checkpoint
        # pointing here, or an earlier same-label stage's row, must not
        # suppress this stage's own work.
        resumed_here = (
            ctx._resume_cursor is not None
            and ctx._resume_mid_stage
            and ctx._stage_cursor == ctx._resume_cursor
        )
        if resumed_here and ctx.report.rows \
                and ctx.report.rows[-1].label == self.label:
            return
        if ctx.pruner is None:
            min_channels = (
                ctx.config.prune.min_channels if ctx.config is not None else 1
            )
            ctx.pruner = ADPruner(ctx.model.layer_handles(), min_channels=min_channels)
        if ctx.trainer.monitor.num_epochs:
            densities = ctx.trainer.monitor.latest()
        else:
            densities = ctx.trainer.measure_density(ctx.train_loader)
        ctx.pruner.prune_step(densities)
        epochs = self.retrain_epochs
        if epochs:
            ctx.trainer.fit(ctx.train_loader, epochs)
            ctx.complexity.add_iteration(
                ctx.energy_model.mac_reduction(ctx.baseline_profiles, ctx.profiles()),
                epochs,
            )
        last_iter = ctx.report.rows[-1].iteration if ctx.report.rows else 0
        row = make_table_row(ctx, last_iter + 1, epochs, first_row=False)
        row.label = self.label
        ctx.report.rows.append(row)
        ctx.emit("on_iteration_end", ctx, row)


class FinalTuneStage(Stage):
    """Extra training at the final precision, folded into the last row."""

    name = "final-tune"

    def __init__(self, epochs: int | None = None):
        self.epochs = epochs

    def run(self, ctx) -> None:
        epochs = self.epochs if self.epochs is not None else ctx.schedule.final_epochs
        if epochs <= 0:
            return
        ctx.trainer.fit(ctx.train_loader, epochs)
        if not ctx.report.rows:
            return
        last = ctx.report.rows[-1]
        last.epochs += epochs
        last.test_accuracy = ctx.trainer.evaluate(ctx.test_loader)
        last.total_ad = ctx.trainer.monitor.total_density()


class EnergyReportStage(Stage):
    """Analytical (Table I) energy summary -> ``ctx.artifacts``."""

    name = "energy-report"

    def run(self, ctx) -> None:
        baseline = ctx.energy_model.network_energy(ctx.baseline_profiles)
        plan = ctx.quantizer.plan
        current = ctx.energy_model.network_energy(ctx.profiles())
        ctx.artifacts["analytical_energy"] = {
            "baseline_total_pj": baseline.total_pj,
            "model_total_pj": current.total_pj,
            "model_mac_pj": current.mac_pj,
            "model_mem_pj": current.mem_pj,
            "efficiency": baseline.total_pj / current.total_pj,
            "per_layer_pj": dict(current.per_layer_pj),
            # The final assignment as a first-class artifact: the
            # algorithmic bit vector plus its hardware-snapped form
            # (what the PIM platform would actually execute).
            "bit_vector": plan.to_bit_vector(),
            "hardware_bit_widths": plan.hardware_bit_widths(),
        }


class PIMEvalStage(Stage):
    """PIM-platform (Table IV/V/VI) energy summary -> ``ctx.artifacts``."""

    name = "pim-eval"

    def __init__(self, baseline_bits: int | None = None):
        self.baseline_bits = baseline_bits

    def run(self, ctx) -> None:
        from repro.pim.energy_model import PIMEnergyModel

        bits = self.baseline_bits
        if bits is None:
            bits = (
                ctx.config.energy.baseline_bits if ctx.config is not None else 16
            )
        pim = PIMEnergyModel()
        full = pim.network_energy(profile_model(ctx.model, default_bits=bits))
        mixed = pim.network_energy(ctx.profiles())
        ctx.artifacts["pim_energy"] = {
            "baseline_bits": bits,
            "full_precision_uj": full.total_uj,
            "mixed_precision_uj": mixed.total_uj,
            "reduction": full.total_uj / mixed.total_uj,
            "hardware_bit_widths": ctx.quantizer.plan.hardware_bit_widths(),
        }


def export_payload(report_dict: dict, config=None, artifacts=None,
                   include_metadata: bool = True) -> dict:
    """The JSON shape of an exported run report.

    Single source of truth shared by :class:`ExportStage` and the CLI's
    cache-hit path, so a ``--out`` file looks the same whether the run
    executed live or was materialized from the result cache.
    """
    payload = {"report": report_dict}
    if include_metadata:
        if config is not None:
            payload["config"] = config.to_dict()
        payload["artifacts"] = artifacts if artifacts is not None else {}
    return payload


class ExportStage(Stage):
    """Write the report (JSON with config/artifacts, or CSV) to disk."""

    name = "export"

    def __init__(self, path, format: str = "json", include_metadata: bool = True):
        if format not in ("json", "csv"):
            raise ValueError(f"unknown export format {format!r}")
        self.path = path
        self.format = format
        self.include_metadata = include_metadata

    def run(self, ctx) -> None:
        if self.format == "csv":
            save_report_csv(ctx.report, self.path)
        else:
            save_json(self.path, export_payload(
                report_to_dict(ctx.report), ctx.config, ctx.artifacts,
                self.include_metadata,
            ))
        ctx.artifacts.setdefault("exports", []).append(str(self.path))
