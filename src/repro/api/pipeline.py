"""The pipeline: an ordered list of stages plus a hook protocol.

A :class:`Pipeline` prepares the shared context once (geometry trace,
initial plan, baseline energy snapshot) and then runs its stages in
order.  Observers attach as :class:`PipelineCallback` objects; hooks
fire through the context so stages stay decoupled from the callback
list:

* ``on_pipeline_start(ctx)`` / ``on_pipeline_end(ctx, report)``
* ``on_stage_start(ctx, stage)`` / ``on_stage_end(ctx, stage)``
* ``on_iteration_end(ctx, row)`` — after every Table-row append inside
  an iterating stage; calling ``ctx.request_stop()`` here implements an
  early-stop policy without subclassing any stage.
"""

from __future__ import annotations

from repro.api.context import ExperimentContext, build_context
from repro.api.stages import Stage
from repro.core.report import ExperimentReport

HOOK_NAMES = (
    "on_pipeline_start",
    "on_pipeline_end",
    "on_stage_start",
    "on_stage_end",
    "on_iteration_end",
)


class PipelineCallback:
    """No-op base class; override any subset of the hook methods."""

    def on_pipeline_start(self, ctx) -> None:
        pass

    def on_pipeline_end(self, ctx, report) -> None:
        pass

    def on_stage_start(self, ctx, stage) -> None:
        pass

    def on_stage_end(self, ctx, stage) -> None:
        pass

    def on_iteration_end(self, ctx, row) -> None:
        pass


class Pipeline:
    """Ordered, observable composition of :class:`Stage` objects."""

    def __init__(self, stages, callbacks=()):
        stages = list(stages)
        for stage in stages:
            if not isinstance(stage, Stage):
                raise TypeError(f"not a Stage: {stage!r}")
        self.stages = stages
        self.callbacks = list(callbacks)

    def add_callback(self, callback) -> "Pipeline":
        self.callbacks.append(callback)
        return self

    def emit(self, event: str, *args) -> None:
        """Dispatch one hook event to every callback that implements it."""
        if event not in HOOK_NAMES:
            raise ValueError(f"unknown hook {event!r}")
        for callback in self.callbacks:
            handler = getattr(callback, event, None)
            if handler is not None:
                handler(*args)

    # ------------------------------------------------------------------
    def run(self, ctx: ExperimentContext, start_at: int = 0) -> ExperimentReport:
        """Prepare the context (once) and run every stage in order.

        ``start_at`` skips the first N stages — the re-entry point used
        by :meth:`resume` after a checkpoint restore.  While running,
        ``ctx._stage_cursor`` tracks the index of the stage currently
        executing so checkpoint writers can record where a restored run
        must pick up.
        """
        if not 0 <= start_at <= len(self.stages):
            raise ValueError(
                f"start_at {start_at} out of range for {len(self.stages)} stages"
            )
        ctx._pipeline = self
        if ctx._resume_cursor is None:
            # A stop only applies to the run that requested it — but a
            # resumed run must keep the restored flag, or it would train
            # iterations the interrupted run had already declined.
            ctx.stop_requested = False
        try:
            ctx.prepare()
            self.emit("on_pipeline_start", ctx)
            for index, stage in enumerate(self.stages):
                if index < start_at:
                    continue
                ctx._stage_cursor = index
                self.emit("on_stage_start", ctx, stage)
                stage.run(ctx)
                self.emit("on_stage_end", ctx, stage)
            self.emit("on_pipeline_end", ctx, ctx.report)
            return ctx.report
        finally:
            ctx._pipeline = None
            ctx._stage_cursor = None

    def resume(self, ctx: ExperimentContext, checkpoint_path) -> ExperimentReport:
        """Restore ``checkpoint_path`` onto ``ctx`` and continue the run.

        The checkpoint's recorded stage cursor decides where execution
        picks up: stages it marks complete are skipped, the stage it was
        written inside re-enters (stages with appended rows detect their
        own restored progress and continue mid-loop).
        """
        from repro.utils.serialization import load_checkpoint

        state, metadata = load_checkpoint(checkpoint_path)
        if metadata is None:
            raise ValueError(f"checkpoint {checkpoint_path} carries no metadata")
        ctx.prepare()
        ctx.restore_state(state, metadata)
        start_at = min(int(metadata.get("stage_cursor", 0)), len(self.stages))
        # Mark where re-entry happens so stages that were interrupted
        # mid-loop can tell restored progress from a fresh invocation;
        # mid_stage distinguishes a capture written inside the stage (its
        # last row is already reported) from a boundary capture that
        # merely points at the stage as the next one to run.
        ctx._resume_cursor = start_at
        ctx._resume_mid_stage = bool(metadata.get("mid_stage", True))
        try:
            return self.run(ctx, start_at=start_at)
        finally:
            ctx._resume_cursor = None
            ctx._resume_mid_stage = False

    def run_config(self, config) -> ExperimentReport:
        """Convenience: build a fresh context from ``config`` and run."""
        return self.run(build_context(config))
