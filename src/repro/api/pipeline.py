"""The pipeline: an ordered list of stages plus a hook protocol.

A :class:`Pipeline` prepares the shared context once (geometry trace,
initial plan, baseline energy snapshot) and then runs its stages in
order.  Observers attach as :class:`PipelineCallback` objects; hooks
fire through the context so stages stay decoupled from the callback
list:

* ``on_pipeline_start(ctx)`` / ``on_pipeline_end(ctx, report)``
* ``on_stage_start(ctx, stage)`` / ``on_stage_end(ctx, stage)``
* ``on_iteration_end(ctx, row)`` — after every Table-row append inside
  an iterating stage; calling ``ctx.request_stop()`` here implements an
  early-stop policy without subclassing any stage.
"""

from __future__ import annotations

from repro.api.context import ExperimentContext, build_context
from repro.api.stages import Stage
from repro.core.report import ExperimentReport

HOOK_NAMES = (
    "on_pipeline_start",
    "on_pipeline_end",
    "on_stage_start",
    "on_stage_end",
    "on_iteration_end",
)


class PipelineCallback:
    """No-op base class; override any subset of the hook methods."""

    def on_pipeline_start(self, ctx) -> None:
        pass

    def on_pipeline_end(self, ctx, report) -> None:
        pass

    def on_stage_start(self, ctx, stage) -> None:
        pass

    def on_stage_end(self, ctx, stage) -> None:
        pass

    def on_iteration_end(self, ctx, row) -> None:
        pass


class Pipeline:
    """Ordered, observable composition of :class:`Stage` objects."""

    def __init__(self, stages, callbacks=()):
        stages = list(stages)
        for stage in stages:
            if not isinstance(stage, Stage):
                raise TypeError(f"not a Stage: {stage!r}")
        self.stages = stages
        self.callbacks = list(callbacks)

    def add_callback(self, callback) -> "Pipeline":
        self.callbacks.append(callback)
        return self

    def emit(self, event: str, *args) -> None:
        """Dispatch one hook event to every callback that implements it."""
        if event not in HOOK_NAMES:
            raise ValueError(f"unknown hook {event!r}")
        for callback in self.callbacks:
            handler = getattr(callback, event, None)
            if handler is not None:
                handler(*args)

    # ------------------------------------------------------------------
    def run(self, ctx: ExperimentContext) -> ExperimentReport:
        """Prepare the context (once) and run every stage in order."""
        ctx._pipeline = self
        ctx.stop_requested = False  # a stop only applies to the run that requested it
        try:
            ctx.prepare()
            self.emit("on_pipeline_start", ctx)
            for stage in self.stages:
                self.emit("on_stage_start", ctx, stage)
                stage.run(ctx)
                self.emit("on_stage_end", ctx, stage)
            self.emit("on_pipeline_end", ctx, ctx.report)
            return ctx.report
        finally:
            ctx._pipeline = None

    def run_config(self, config) -> ExperimentReport:
        """Convenience: build a fresh context from ``config`` and run."""
        return self.run(build_context(config))
