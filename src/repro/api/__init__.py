"""Declarative experiment API: configs, pipelines, and an experiment registry.

The three layers (see ISSUE 1 / the module docstrings):

1. **Configs** — frozen, validated, JSON round-trippable dataclasses
   (:class:`ExperimentConfig` and friends) describing an experiment.
2. **Pipeline** — composable :class:`Stage` objects over a shared
   :class:`ExperimentContext`, with a callback/hook protocol
   (``on_iteration_end``, ``on_stage_end``, ...).
3. **Registry** — :func:`repro.api.experiments.build` resolves named
   presets (every paper table setup) into ready-to-run experiments.

Quick tour:

>>> from repro.api import experiments
>>> exp = experiments.build("vgg19-cifar10-quant")
>>> report = exp.run()

or, fully explicit:

>>> from repro.api import ExperimentConfig, Pipeline, QuantizeStage, build_context
>>> ctx = build_context(ExperimentConfig(...))
>>> report = Pipeline([QuantizeStage()]).run(ctx)
"""

from repro.api import experiments
from repro.api.config import (
    DataConfig,
    EnergyConfig,
    ExperimentConfig,
    ModelConfig,
    PruneConfig,
    QuantConfig,
)
from repro.api.context import ExperimentContext, build_context
from repro.api.ops import remove_layer_and_retrain
from repro.api.pipeline import Pipeline, PipelineCallback
from repro.api.stages import (
    EnergyReportStage,
    ExportStage,
    FinalTuneStage,
    PIMEvalStage,
    PruneStage,
    QuantizeStage,
    Stage,
)

__all__ = [
    "ModelConfig",
    "DataConfig",
    "QuantConfig",
    "PruneConfig",
    "EnergyConfig",
    "ExperimentConfig",
    "ExperimentContext",
    "build_context",
    "Pipeline",
    "PipelineCallback",
    "Stage",
    "QuantizeStage",
    "PruneStage",
    "FinalTuneStage",
    "EnergyReportStage",
    "PIMEvalStage",
    "ExportStage",
    "remove_layer_and_retrain",
    "experiments",
]
