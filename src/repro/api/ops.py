"""Post-run operations on a prepared experiment context.

These are the paper's one-off report variants that do not fit the
stage-per-phase shape — currently the Table II row-2a manoeuvre of
removing a dead layer and retraining.  Both the pipeline API and the
:class:`~repro.core.runner.ExperimentRunner` façade share this code.
"""

from __future__ import annotations

from repro.core.report import TableRow
from repro.energy.analytical import energy_efficiency


def remove_layer_and_retrain(
    ctx, layer_name: str, epochs: int, label: str = "2a"
) -> TableRow:
    """Paper Table II row 2a: drop a dead conv layer, retrain, re-report.

    Only layers whose removal preserves tensor shapes (equal in/out
    channels) can be removed; the unit is disabled in place.  Requires a
    prepared context (i.e. after a pipeline / ``run()`` has executed).
    """
    if not ctx.prepared or ctx.complexity is None or ctx.baseline_profiles is None:
        raise RuntimeError(
            "run() must be called first: the experiment has no baseline "
            "profiles or complexity state to report against"
        )
    handle = ctx.model.layer_handles().by_name(layer_name)
    if not handle.is_conv:
        raise ValueError("only conv layers can be removed")
    unit = handle.unit
    if unit.conv.in_channels != unit.conv.out_channels:
        raise ValueError(
            f"{layer_name} changes channel count; removal would break shapes"
        )
    unit.enabled = False
    ctx.trainer.fit(ctx.train_loader, epochs)
    profiles = ctx.profiles()
    ctx.complexity.add_iteration(
        ctx.energy_model.mac_reduction(ctx.baseline_profiles, profiles),
        epochs,
    )
    bit_widths = [
        spec.bits for spec in ctx.quantizer.plan if spec.name != layer_name
    ]
    return TableRow(
        iteration=len(ctx.quantizer.records) + 1,
        bit_widths=bit_widths,
        test_accuracy=ctx.trainer.evaluate(ctx.test_loader),
        total_ad=ctx.trainer.monitor.total_density(),
        energy_efficiency=energy_efficiency(ctx.baseline_profiles, profiles),
        epochs=epochs,
        train_complexity=ctx.complexity.relative(),
        label=label,
    )
