"""Experiment registry: every paper table/figure setup as a named preset.

``build("vgg19-cifar10-quant")`` returns a ready-to-run
:class:`Experiment` — a config, a freshly-built context, and the default
pipeline for that config.  Presets carry the CPU-scale hyper-parameters
the repository's benchmarks use (paper topologies at reduced width and
resolution; see ``benchmarks/common.py``), so benchmark tables, the CLI,
and user scripts all resolve to identical runs.

Overrides nest like the config itself::

    build("vgg19-cifar10-quant", quant={"max_iterations": 2}, lr=1e-3)
"""

from __future__ import annotations

from repro.api.config import (
    DataConfig,
    EnergyConfig,
    ExperimentConfig,
    ModelConfig,
    PruneConfig,
    QuantConfig,
)
from repro.api.context import build_context
from repro.api.pipeline import Pipeline
from repro.api.stages import (
    EnergyReportStage,
    FinalTuneStage,
    PIMEvalStage,
    PruneStage,
    QuantizeStage,
)

_REGISTRY: dict[str, ExperimentConfig] = {}


def register(config: ExperimentConfig) -> ExperimentConfig:
    """Add a preset to the registry (name collisions are errors)."""
    if config.name in _REGISTRY:
        raise ValueError(f"preset {config.name!r} already registered")
    _REGISTRY[config.name] = config
    return config


def names() -> list[str]:
    """All registered preset names, sorted."""
    return sorted(_REGISTRY)


def get_config(name: str) -> ExperimentConfig:
    """Look up a preset's config (without building anything)."""
    try:
        return _REGISTRY[name]
    except KeyError:
        raise KeyError(
            f"unknown preset {name!r}; available: {', '.join(names())}"
        ) from None


def default_pipeline(config: ExperimentConfig) -> Pipeline:
    """The canonical stage list implied by a config."""
    stages = [QuantizeStage()]
    if config.prune.enabled and not config.prune.fused:
        stages.append(PruneStage(retrain_epochs=config.prune.retrain_epochs))
    if config.quant.final_epochs > 0:
        stages.append(FinalTuneStage())
    if config.energy.analytical:
        stages.append(EnergyReportStage())
    if config.energy.pim:
        stages.append(PIMEvalStage())
    return Pipeline(stages)


class Experiment:
    """A config bound to its context and pipeline; run() yields the report."""

    def __init__(self, config: ExperimentConfig, pipeline: Pipeline | None = None):
        self.config = config
        self.pipeline = pipeline or default_pipeline(config)
        self.context = build_context(config)

    def run(self, callbacks=()):
        """Run the pipeline; ``callbacks`` attach for this run only
        (use ``pipeline.add_callback`` for permanent observers).

        Each call restarts the experiment — fresh report, baseline and
        complexity state — while trained weights persist on the model
        (same contract as ``ExperimentRunner.run``).
        """
        from repro.backend import set_active_backend

        # Re-activate this config's backend: warm contexts are reused
        # across runs (e.g. by the master service), and another run may
        # have switched the process-wide backend in between.
        set_active_backend(getattr(self.config, "backend", "reference"))
        self.context.prepared = False
        persistent = list(self.pipeline.callbacks)
        self.pipeline.callbacks = persistent + list(callbacks)
        try:
            return self.pipeline.run(self.context)
        finally:
            self.pipeline.callbacks = persistent

    # Convenience accessors mirroring the old runner attributes.
    @property
    def model(self):
        return self.context.model

    @property
    def trainer(self):
        return self.context.trainer

    @property
    def quantizer(self):
        return self.context.quantizer

    @property
    def report(self):
        return self.context.report

    @property
    def artifacts(self):
        return self.context.artifacts


def build(name: str, **overrides) -> Experiment:
    """Resolve a preset (with optional nested overrides) into an Experiment."""
    config = get_config(name)
    if overrides:
        config = config.evolve(**overrides)
    return Experiment(config)


def apply_backend(kind: str, preset, backend: str | None):
    """Return ``preset`` retargeted onto ``backend`` (no-op when None).

    ``kind`` follows :func:`resolve_any`: a ``"run"`` config evolves its
    ``backend`` field, a ``"sweep"`` gains a one-value ``backend`` axis
    (which works for both ``base``- and ``presets``-form sweeps and
    shows up in point labels/cache keys), and a ``"search"`` evolves its
    base config — resolving a preset-form search to its concrete config
    first.  Used by the CLI ``--backend`` flags and the master's
    server-side spec resolution.
    """
    if backend is None:
        return preset
    if kind == "run":
        return preset.evolve(backend=backend)
    if kind == "sweep":
        import dataclasses

        from repro.orchestration.sweep import SweepAxis

        return dataclasses.replace(
            preset, axes=tuple(preset.axes) + (SweepAxis("backend", (backend,)),)
        )
    if kind == "search":
        base = preset.base if preset.base is not None else get_config(preset.preset)
        return preset.evolve(base=base.evolve(backend=backend), preset="")
    raise ValueError(f"unknown preset kind {kind!r}")


def apply_speculation(kind: str, preset, speculate: int | None):
    """Return ``preset`` with speculative execution set (no-op when None).

    Only ``"search"`` jobs speculate — the knob races a sequential
    search's likely next trials on idle workers, bit-identically (see
    :class:`~repro.orchestration.search.SpeculativeScheduler`) — so any
    other kind refuses rather than silently dropping the request.  Used
    by the master's server-side ``submit`` spec resolution.
    """
    if speculate is None:
        return preset
    if kind != "search":
        raise ValueError(
            f"speculate only applies to search jobs, not {kind!r}"
        )
    return preset.evolve(speculation=speculate)


# ---------------------------------------------------------------------------
# Sweep presets — the paper's grids (Tables II/III across models/seeds)
# and the DESIGN §5 ablation grids, runnable via `repro sweep --preset`.
#
# Registration is lazy: repro.orchestration imports this module's config
# presets, so the SweepConfig import must wait until first access.
# ---------------------------------------------------------------------------

_SWEEPS: dict = {}
_SWEEPS_READY = False


def register_sweep(sweep) -> object:
    """Add a sweep preset to the registry (name collisions are errors)."""
    _ensure_sweeps()
    if sweep.name in _SWEEPS:
        raise ValueError(f"sweep preset {sweep.name!r} already registered")
    _SWEEPS[sweep.name] = sweep
    return sweep


def sweep_names() -> list[str]:
    """All registered sweep preset names, sorted."""
    _ensure_sweeps()
    return sorted(_SWEEPS)


def get_sweep(name: str):
    """Look up a sweep preset (without expanding anything)."""
    _ensure_sweeps()
    try:
        return _SWEEPS[name]
    except KeyError:
        raise KeyError(
            f"unknown sweep preset {name!r}; available: {', '.join(sweep_names())}"
        ) from None


def get_sweep_points(name: str, shard=None) -> list:
    """Expanded points of a registered sweep preset, optionally sharded.

    ``shard`` is an ``"i/N"`` spec string (or a
    :class:`~repro.orchestration.sweep.ShardSpec`): the returned slice is
    the one host ``i`` of ``N`` owns, assigned deterministically by each
    point's config cache key — mirroring ``repro sweep --preset NAME
    --shard i/N`` so programmatic callers shard the paper grids the same
    way the CLI does.
    """
    from repro.orchestration.sweep import ShardSpec, expand, shard_points

    points = expand(get_sweep(name))
    if shard is None:
        return points
    spec = ShardSpec.parse(shard) if isinstance(shard, str) else shard
    return shard_points(points, spec)


def resolve_any(name: str) -> tuple:
    """Resolve a preset name across *every* registry.

    Returns ``(kind, preset)`` where ``kind`` is ``"search"``,
    ``"sweep"``, or ``"run"`` — the ``repro master`` uses this so
    ``repro submit --preset NAME`` works without the client knowing
    which kind of preset the name refers to.  Search presets shadow
    sweep presets shadow single experiments (most-orchestrated wins;
    registries keep their names distinct in practice).
    """
    _ensure_searches()
    if name in _SEARCHES:
        return "search", _SEARCHES[name]
    _ensure_sweeps()
    if name in _SWEEPS:
        return "sweep", _SWEEPS[name]
    if name in _REGISTRY:
        return "run", _REGISTRY[name]
    known = sorted(
        set(search_names()) | set(sweep_names()) | set(names())
    )
    raise KeyError(
        f"unknown preset {name!r}; available: {', '.join(known)}"
    )


# ---------------------------------------------------------------------------
# Search presets — adaptive AD-guided bit-width searches and successive-
# halving grids, runnable via `repro search --preset`.  Lazy for the same
# reason as the sweep registry.
# ---------------------------------------------------------------------------

_SEARCHES: dict = {}
_SEARCHES_READY = False


def register_search(search) -> object:
    """Add a search preset to the registry (name collisions are errors)."""
    _ensure_searches()
    if search.name in _SEARCHES:
        raise ValueError(f"search preset {search.name!r} already registered")
    _SEARCHES[search.name] = search
    return search


def search_names() -> list[str]:
    """All registered search preset names, sorted."""
    _ensure_searches()
    return sorted(_SEARCHES)


def get_search(name: str):
    """Look up a search preset (without running anything)."""
    _ensure_searches()
    try:
        return _SEARCHES[name]
    except KeyError:
        raise KeyError(
            f"unknown search preset {name!r}; available: "
            f"{', '.join(search_names())}"
        ) from None


def _ensure_searches() -> None:
    global _SEARCHES_READY
    if _SEARCHES_READY:
        return
    from repro.orchestration.search import SearchConfig
    from repro.orchestration.sweep import SweepAxis

    _SEARCHES["search-vgg19-bits"] = SearchConfig(
        name="search-vgg19-bits",
        description=("AD-guided starting-precision search on the Table "
                     "II(a) workload (eqn. 3 lifted to the schedule)."),
        preset="vgg19-cifar10-quant",
        strategy="ad-bits",
        objective="energy_efficiency",
        accuracy_drop=0.10,
        max_trials=5,
        min_bits=2,
    )
    _SEARCHES["search-vgg19-halving"] = SearchConfig(
        name="search-vgg19-halving",
        description=("Successive halving over VGG19 starting precisions: "
                     "one cheap iteration prunes the grid, survivors get "
                     "the full schedule."),
        preset="vgg19-cifar10-quant",
        strategy="halving",
        objective="energy_efficiency",
        axes=(SweepAxis("quant.initial_bits", (4, 8, 16, 32)),),
        budget_path="quant.max_iterations",
        budgets=(1, 3),
        keep=0.5,
    )
    _SEARCHES["search-vgg19-layer-bits"] = SearchConfig(
        name="search-vgg19-layer-bits",
        description=("Per-layer bit-vector search on the Table II(a) "
                     "workload: the scalar AD descent seeds a survivor, "
                     "then energy-ranked -1-bit layer moves refine it "
                     "within the accuracy budget."),
        preset="vgg19-cifar10-quant",
        strategy="layer-bits",
        objective="energy_efficiency",
        accuracy_drop=0.10,
        max_trials=10,
        seed_trials=4,
        min_bits=2,
    )
    _SEARCHES["search-smoke-bits"] = SearchConfig(
        name="search-smoke-bits",
        description=("Seconds-scale AD bit-width search for CI "
                     "(<= 4 trained trials)."),
        preset="vgg11-micro-smoke",
        strategy="ad-bits",
        objective="energy_efficiency",
        accuracy_drop=0.30,
        max_trials=4,
        min_bits=2,
    )
    # The seed phase mirrors search-smoke-bits exactly (same base, drop,
    # min_bits, 4 seed trials), so its trials replay as cache hits after
    # the scalar smoke search and the winning vector's energy is <= the
    # scalar winner's by construction.
    _SEARCHES["search-smoke-layer-bits"] = SearchConfig(
        name="search-smoke-layer-bits",
        description=("Seconds-scale per-layer bit-vector search for CI "
                     "(scalar seed phase shared with search-smoke-bits)."),
        preset="vgg11-micro-smoke",
        strategy="layer-bits",
        objective="energy_efficiency",
        accuracy_drop=0.30,
        max_trials=7,
        seed_trials=4,
        min_bits=2,
    )
    # Only mark ready once every preset built (see _ensure_sweeps).
    _SEARCHES_READY = True


def _ensure_sweeps() -> None:
    global _SWEEPS_READY
    if _SWEEPS_READY:
        return
    from repro.orchestration.sweep import SweepAxis, SweepConfig

    # The DESIGN §5 saturation-tolerance ablation (benchmarks run this
    # same grid through `repro.orchestration.SweepRunner`).
    ablation_base = get_config("vgg19-cifar10-quant").evolve(
        model={"seed": 5},
        data={"seed": 5},
        quant={"max_iterations": 2, "max_epochs_per_iteration": 12,
               "min_epochs_per_iteration": 3, "saturation_window": 3},
    )
    _SWEEPS["ablation-saturation"] = SweepConfig(
        name="ablation-saturation",
        description=("DESIGN §5: saturation-detector tolerance sweep "
                     "(looser tolerance -> earlier re-quantization)."),
        base=ablation_base,
        axes=(SweepAxis("quant.saturation_tolerance", (0.005, 0.05, 0.5)),),
    )
    _SWEEPS["ablation-initial-bits"] = SweepConfig(
        name="ablation-initial-bits",
        description=("DESIGN §5: starting precision sweep (Table II(c) "
                     "uses a 32-bit start)."),
        base=get_config("vgg19-cifar10-quant").evolve(
            quant={"max_iterations": 2}
        ),
        axes=(SweepAxis("quant.initial_bits", (8, 16, 32)),),
    )
    _SWEEPS["table2-grid"] = SweepConfig(
        name="table2-grid",
        description="Table II: every quantization-only model/dataset pair.",
        presets=("vgg19-cifar10-quant", "resnet18-cifar100-quant",
                 "resnet18-tinyimagenet-quant"),
    )
    _SWEEPS["table3-grid"] = SweepConfig(
        name="table3-grid",
        description="Table III: fused quantization + pruning pairs.",
        presets=("vgg19-cifar10-quant-prune", "resnet18-cifar100-quant-prune"),
    )
    _SWEEPS["table2-vgg19-seeds"] = SweepConfig(
        name="table2-vgg19-seeds",
        description="Table II(a) across four seeds (variance band).",
        base=get_config("vgg19-cifar10-quant"),
        seeds=(0, 1, 2, 3),
    )
    _SWEEPS["smoke-seeds"] = SweepConfig(
        name="smoke-seeds",
        description="Seconds-scale 2-point seed sweep for CI.",
        base=get_config("vgg11-micro-smoke"),
        seeds=(0, 1),
    )
    # Only mark ready once every preset built, so a failure above is
    # re-raised (not masked by an empty registry) on the next access.
    _SWEEPS_READY = True


# ---------------------------------------------------------------------------
# Presets — paper tables/figures at the repository's benchmark scale.
# ---------------------------------------------------------------------------

register(ExperimentConfig(
    name="quickstart-vgg11",
    architecture="VGG11",
    dataset="SyntheticCIFAR10",
    description="README quickstart: VGG11, Algorithm 1 only, ~1 minute on CPU.",
    model=ModelConfig(arch="vgg11", num_classes=10, width_multiplier=0.25,
                      image_size=16, seed=0),
    data=DataConfig(dataset="synthetic-cifar10", train_per_class=24,
                    test_per_class=8, image_size=16, noise=0.6, seed=0,
                    train_batch_size=30, test_batch_size=80),
    quant=QuantConfig(max_iterations=3, max_epochs_per_iteration=10,
                      min_epochs_per_iteration=5, saturation_window=3,
                      saturation_tolerance=0.04),
))

register(ExperimentConfig(
    name="vgg19-cifar10-quant",
    architecture="VGG19",
    dataset="SyntheticCIFAR10",
    description="Table II(a): AD quantization, VGG19 on CIFAR-10.",
    tables=("Table II(a)", "Fig. 1", "Fig. 3"),
    model=ModelConfig(arch="vgg19", num_classes=10, width_multiplier=0.125,
                      image_size=16, seed=0),
    data=DataConfig(dataset="synthetic-cifar10", train_per_class=24,
                    test_per_class=8, image_size=16, noise=0.8, seed=0,
                    train_batch_size=25, test_batch_size=50),
    quant=QuantConfig(max_iterations=3, max_epochs_per_iteration=12,
                      min_epochs_per_iteration=6, saturation_window=3,
                      saturation_tolerance=0.04),
))

register(ExperimentConfig(
    name="resnet18-cifar100-quant",
    architecture="ResNet18",
    dataset="SyntheticCIFAR100",
    description="Table II(b): AD quantization, ResNet18 on CIFAR-100.",
    tables=("Table II(b)", "Fig. 2"),
    model=ModelConfig(arch="resnet18", num_classes=100, width_multiplier=0.125,
                      seed=1),
    data=DataConfig(dataset="synthetic-cifar100", train_per_class=8,
                    test_per_class=3, image_size=16, noise=0.6, seed=1,
                    train_batch_size=40, test_batch_size=50),
    quant=QuantConfig(max_iterations=3, max_epochs_per_iteration=8,
                      min_epochs_per_iteration=4, saturation_window=3,
                      saturation_tolerance=0.04),
))

register(ExperimentConfig(
    name="resnet18-tinyimagenet-quant",
    architecture="ResNet18",
    dataset="SyntheticTinyImageNet",
    description="Table II(c): 32-bit start, ResNet18 on TinyImageNet.",
    tables=("Table II(c)",),
    model=ModelConfig(arch="resnet18", num_classes=200, width_multiplier=0.125,
                      seed=2),
    data=DataConfig(dataset="synthetic-tinyimagenet", train_per_class=2,
                    test_per_class=1, image_size=16, noise=0.8, seed=2,
                    train_batch_size=40, test_batch_size=50),
    quant=QuantConfig(initial_bits=32, max_iterations=4,
                      max_epochs_per_iteration=6, min_epochs_per_iteration=3,
                      saturation_window=3, saturation_tolerance=0.04),
))

register(ExperimentConfig(
    name="vgg19-cifar10-quant-prune",
    architecture="VGG19 (quant+prune)",
    dataset="SyntheticCIFAR10",
    description="Table III(a): fused AD quantization + eqn.-5 pruning, VGG19.",
    tables=("Table III(a)",),
    model=ModelConfig(arch="vgg19", num_classes=10, width_multiplier=0.125,
                      image_size=16, seed=3),
    data=DataConfig(dataset="synthetic-cifar10", train_per_class=24,
                    test_per_class=8, image_size=16, noise=0.8, seed=0,
                    train_batch_size=25, test_batch_size=50),
    quant=QuantConfig(max_iterations=2, max_epochs_per_iteration=10,
                      min_epochs_per_iteration=5, saturation_window=3,
                      saturation_tolerance=0.04),
    prune=PruneConfig(enabled=True, fused=True),
))

register(ExperimentConfig(
    name="resnet18-cifar100-quant-prune",
    architecture="ResNet18 (quant+prune)",
    dataset="SyntheticCIFAR100",
    description="Table III(b): fused AD quantization + eqn.-5 pruning, ResNet18.",
    tables=("Table III(b)",),
    model=ModelConfig(arch="resnet18", num_classes=100, width_multiplier=0.125,
                      seed=4),
    data=DataConfig(dataset="synthetic-cifar100", train_per_class=8,
                    test_per_class=3, image_size=16, noise=0.6, seed=1,
                    train_batch_size=40, test_batch_size=50),
    quant=QuantConfig(max_iterations=3, max_epochs_per_iteration=6,
                      min_epochs_per_iteration=3, saturation_window=3,
                      saturation_tolerance=0.04),
    prune=PruneConfig(enabled=True, fused=True),
))

register(ExperimentConfig(
    name="vgg11-micro-smoke",
    architecture="VGG11 (micro)",
    dataset="SyntheticCIFAR10",
    description="Seconds-scale smoke preset for CI and CLI checks.",
    model=ModelConfig(arch="vgg11", num_classes=10, width_multiplier=0.0625,
                      image_size=8, seed=0),
    data=DataConfig(dataset="synthetic-cifar10", train_per_class=4,
                    test_per_class=2, image_size=8, seed=0,
                    train_batch_size=20, test_batch_size=20),
    quant=QuantConfig(max_iterations=2, max_epochs_per_iteration=2,
                      min_epochs_per_iteration=1, saturation_window=2,
                      saturation_tolerance=0.5),
    energy=EnergyConfig(analytical=True, pim=True),
))
