"""Shared state threaded through a pipeline run.

An :class:`ExperimentContext` owns the live objects one experiment needs
(model, loaders, trainer, quantizer, optional pruner, energy model) plus
the mutable run products (report, baseline profiles, eqn.-4 complexity,
stage artifacts).  Stages read and write the context; the
:class:`~repro.api.pipeline.Pipeline` prepares it once and emits hooks
through it.

:func:`build_context` is the declarative entry point: it translates an
:class:`~repro.api.config.ExperimentConfig` into a ready-to-run context.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.ad_prune import ADPruner
from repro.core.ad_quant import ADQuantizer
from repro.core.complexity import TrainingComplexity
from repro.core.report import ExperimentReport
from repro.core.trainer import Trainer
from repro.energy.analytical import AnalyticalEnergyModel
from repro.energy.profile import profile_model, trace_geometry


@dataclass
class ExperimentContext:
    """Everything a :class:`~repro.api.stages.Stage` needs to run."""

    model: object
    train_loader: object
    test_loader: object
    trainer: Trainer
    quantizer: ADQuantizer
    input_shape: tuple
    pruner: ADPruner | None = None
    fuse_prune: bool = True
    energy_model: AnalyticalEnergyModel = field(default_factory=AnalyticalEnergyModel)
    architecture: str = "model"
    dataset: str = "dataset"
    baseline_epochs: int | None = None
    config: object | None = None

    # Run products (populated by prepare() and the stages).
    report: ExperimentReport | None = None
    baseline_profiles: list | None = None
    complexity: TrainingComplexity | None = None
    artifacts: dict = field(default_factory=dict)
    stop_requested: bool = False
    prepared: bool = False
    _pipeline: object | None = None

    # ------------------------------------------------------------------
    @property
    def schedule(self):
        return self.quantizer.schedule

    def profiles(self):
        """Energy profiles of the model under the currently-installed plan."""
        return profile_model(self.model, plan=self.quantizer.plan)

    def prepare(self) -> None:
        """Trace geometry, install the initial plan, snapshot the baseline.

        Idempotent: chaining several pipelines over one context prepares
        only once, so later pipelines keep the trained/quantized state.
        """
        if self.prepared:
            return
        trace_geometry(self.model, self.input_shape)
        self.quantizer.apply_plan(self.quantizer.initial_plan())
        self.baseline_profiles = self.profiles()
        if self.baseline_epochs is None:
            self.baseline_epochs = 2 * self.schedule.max_epochs_per_iteration
        self.complexity = TrainingComplexity(self.baseline_epochs)
        self.report = ExperimentReport(
            architecture=self.architecture,
            dataset=self.dataset,
            layer_names=self.model.layer_handles().names(),
        )
        self.prepared = True

    # ------------------------------------------------------------------
    def emit(self, event: str, *args) -> None:
        """Forward a hook event to the running pipeline's callbacks."""
        if self._pipeline is not None:
            self._pipeline.emit(event, *args)

    def request_stop(self) -> None:
        """Ask the iterating stage to stop after the current iteration."""
        self.stop_requested = True


# ---------------------------------------------------------------------------
# Config -> live objects
# ---------------------------------------------------------------------------

def _build_data(config):
    from repro.data.datasets import DataLoader
    from repro.data.synthetic import (
        SyntheticCIFAR10,
        SyntheticCIFAR100,
        SyntheticTinyImageNet,
    )

    factories = {
        "synthetic-cifar10": SyntheticCIFAR10,
        "synthetic-cifar100": SyntheticCIFAR100,
        "synthetic-tinyimagenet": SyntheticTinyImageNet,
    }
    data = config.data
    rng = np.random.default_rng(data.seed)
    train_set, test_set = factories[data.dataset](
        train_per_class=data.train_per_class,
        test_per_class=data.test_per_class,
        image_size=data.image_size,
        noise=data.noise,
        seed=data.seed,
    )
    train_loader = DataLoader(
        train_set, batch_size=data.train_batch_size, shuffle=data.shuffle, rng=rng
    )
    test_loader = DataLoader(test_set, batch_size=data.test_batch_size)
    return train_loader, test_loader


def _build_model(config):
    from repro.models.resnet import resnet18
    from repro.models.vgg import vgg11, vgg16, vgg19

    model = config.model
    rng = np.random.default_rng(model.seed)
    if model.arch == "resnet18":
        return resnet18(
            num_classes=model.num_classes,
            width_multiplier=model.width_multiplier,
            rng=rng,
        )
    factory = {"vgg11": vgg11, "vgg16": vgg16, "vgg19": vgg19}[model.arch]
    return factory(
        num_classes=model.num_classes,
        width_multiplier=model.width_multiplier,
        image_size=model.image_size,
        batch_norm=model.batch_norm,
        rng=rng,
    )


def _build_optimizer(config, model):
    from repro.nn.optim import SGD, Adam

    if config.optimizer == "adam":
        return Adam(model.parameters(), lr=config.lr)
    return SGD(model.parameters(), lr=config.lr, momentum=config.momentum)


def build_context(config) -> ExperimentContext:
    """Translate an :class:`ExperimentConfig` into a ready context."""
    from repro.nn.loss import CrossEntropyLoss

    train_loader, test_loader = _build_data(config)
    model = _build_model(config)
    trainer = Trainer(model, _build_optimizer(config, model), CrossEntropyLoss())
    quantizer = ADQuantizer(
        trainer, config.quant.to_schedule(), config.quant.to_saturation()
    )
    pruner = (
        ADPruner(model.layer_handles(), min_channels=config.prune.min_channels)
        if config.prune.enabled
        else None
    )
    return ExperimentContext(
        model=model,
        train_loader=train_loader,
        test_loader=test_loader,
        trainer=trainer,
        quantizer=quantizer,
        pruner=pruner,
        fuse_prune=config.prune.fused,
        input_shape=config.input_shape,
        architecture=config.architecture,
        dataset=config.dataset,
        baseline_epochs=config.quant.baseline_epochs,
        config=config,
    )
