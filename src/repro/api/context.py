"""Shared state threaded through a pipeline run.

An :class:`ExperimentContext` owns the live objects one experiment needs
(model, loaders, trainer, quantizer, optional pruner, energy model) plus
the mutable run products (report, baseline profiles, eqn.-4 complexity,
stage artifacts).  Stages read and write the context; the
:class:`~repro.api.pipeline.Pipeline` prepares it once and emits hooks
through it.

:func:`build_context` is the declarative entry point: it translates an
:class:`~repro.api.config.ExperimentConfig` into a ready-to-run context.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.ad_prune import ADPruner
from repro.core.ad_quant import ADQuantizer
from repro.core.complexity import TrainingComplexity
from repro.core.report import ExperimentReport
from repro.core.trainer import Trainer
from repro.energy.analytical import AnalyticalEnergyModel
from repro.energy.profile import profile_model, trace_geometry


@dataclass
class ExperimentContext:
    """Everything a :class:`~repro.api.stages.Stage` needs to run."""

    model: object
    train_loader: object
    test_loader: object
    trainer: Trainer
    quantizer: ADQuantizer
    input_shape: tuple
    pruner: ADPruner | None = None
    fuse_prune: bool = True
    energy_model: AnalyticalEnergyModel = field(default_factory=AnalyticalEnergyModel)
    architecture: str = "model"
    dataset: str = "dataset"
    baseline_epochs: int | None = None
    config: object | None = None

    # Run products (populated by prepare() and the stages).
    report: ExperimentReport | None = None
    baseline_profiles: list | None = None
    complexity: TrainingComplexity | None = None
    artifacts: dict = field(default_factory=dict)
    stop_requested: bool = False
    prepared: bool = False
    _pipeline: object | None = None
    _stage_cursor: int | None = None
    _resume_cursor: int | None = None
    _resume_mid_stage: bool = False

    # ------------------------------------------------------------------
    @property
    def schedule(self):
        return self.quantizer.schedule

    def profiles(self):
        """Energy profiles of the model under the currently-installed plan."""
        return profile_model(self.model, plan=self.quantizer.plan)

    def prepare(self, force: bool = False) -> None:
        """Trace geometry, install the initial plan, snapshot the baseline.

        Idempotent: chaining several pipelines over one context prepares
        only once, so later pipelines keep the trained/quantized state
        (``force=True`` re-prepares from scratch).

        Worker-safe: preparation touches only objects owned by this
        context (no module-level or shared mutable state), so contexts
        built from a config inside ``multiprocessing`` workers prepare
        and run independently — the basis of the parallel sweep runner.
        """
        if self.prepared and not force:
            return
        trace_geometry(self.model, self.input_shape)
        self.quantizer.apply_plan(self.quantizer.initial_plan())
        self.baseline_profiles = self.profiles()
        if self.baseline_epochs is None:
            self.baseline_epochs = 2 * self.schedule.max_epochs_per_iteration
        self.complexity = TrainingComplexity(self.baseline_epochs)
        self.report = ExperimentReport(
            architecture=self.architecture,
            dataset=self.dataset,
            layer_names=self.model.layer_handles().names(),
        )
        self.prepared = True

    # ------------------------------------------------------------------
    def emit(self, event: str, *args) -> None:
        """Forward a hook event to the running pipeline's callbacks."""
        if self._pipeline is not None:
            self._pipeline.emit(event, *args)

    def request_stop(self) -> None:
        """Ask the iterating stage to stop after the current iteration."""
        self.stop_requested = True

    # ------------------------------------------------------------------
    # Checkpointing: everything a resumed run needs to continue exactly
    # where this one stands, split into numeric arrays (-> .npz) and
    # JSON-serializable metadata.
    # ------------------------------------------------------------------
    OPTIMIZER_PREFIX = "__optimizer__."

    def snapshot_state(self) -> tuple[dict, dict]:
        """Capture the full run state as ``(arrays, metadata)``.

        ``arrays`` holds the model state dict (weights, BN statistics,
        pruning masks) plus the optimizer's slot buffers; ``metadata``
        holds the quantization plan, report rows, AD history, meter
        accumulators, the training-loader RNG state and the complexity
        ledger — enough to make the resumed run bit-identical to an
        uninterrupted one.
        """
        from repro.core.export import report_to_dict

        if not self.prepared:
            raise RuntimeError("cannot snapshot an unprepared context")
        arrays = dict(self.model.state_dict())
        optimizer = self.trainer.optimizer
        for key, value in optimizer.state_arrays().items():
            arrays[self.OPTIMIZER_PREFIX + key] = value
        metadata = {
            "version": 1,
            "config": self.config.to_dict() if self.config is not None else None,
            "config_key": (
                self.config.cache_key() if self.config is not None else None
            ),
            "plan": [
                {
                    "name": spec.name,
                    "bits": spec.bits,
                    "quantize_weights": spec.quantize_weights,
                    "quantize_activations": spec.quantize_activations,
                    "frozen": spec.frozen,
                }
                for spec in self.quantizer.plan
            ],
            "report": report_to_dict(self.report),
            "monitor": {
                name: list(series)
                for name, series in self.trainer.monitor.history.items()
            },
            "meters": {
                handle.name: handle.meter.state()
                for handle in self.trainer.registry
            },
            "epochs_completed": self.trainer.epochs_completed,
            "optimizer": optimizer.state_meta(),
            "complexity": {
                "baseline_epochs": self.complexity.baseline_epochs,
                "iterations": [
                    [reduction, epochs]
                    for reduction, epochs in self.complexity.iterations
                ],
            },
            "loader_rng": _rng_state(getattr(self.train_loader, "rng", None)),
            "artifacts": _json_safe_artifacts(self.artifacts),
            "stop_requested": self.stop_requested,
        }
        return arrays, metadata

    def restore_state(self, arrays: dict, metadata: dict) -> None:
        """Restore a :meth:`snapshot_state` capture onto this context.

        The context must already be prepared (so baseline profiles and
        geometry exist); restoration then replays the captured plan,
        weights, optimizer slots, AD bookkeeping and report rows.
        """
        from repro.core.export import report_from_dict
        from repro.quant import LayerQuantSpec, QuantizationPlan

        if not self.prepared:
            raise RuntimeError("prepare() the context before restore_state()")
        if self.config is not None and metadata.get("config_key") is not None:
            if metadata["config_key"] != self.config.cache_key():
                raise ValueError(
                    "checkpoint was written by a different config "
                    f"(key {metadata['config_key'][:12]}... vs "
                    f"{self.config.cache_key()[:12]}...)"
                )
        plan = QuantizationPlan(
            [
                LayerQuantSpec(
                    spec["name"],
                    spec["bits"],
                    quantize_weights=spec["quantize_weights"],
                    quantize_activations=spec["quantize_activations"],
                    frozen=spec["frozen"],
                )
                for spec in metadata["plan"]
            ]
        )
        self.quantizer.apply_plan(plan)
        optimizer = self.trainer.optimizer
        model_state = {}
        optimizer_state = {}
        for key, value in arrays.items():
            if key.startswith(self.OPTIMIZER_PREFIX):
                optimizer_state[key[len(self.OPTIMIZER_PREFIX):]] = value
            else:
                model_state[key] = value
        self.model.load_state_dict(model_state)
        optimizer.load_state(optimizer_state, metadata.get("optimizer", {}))
        monitor = self.trainer.monitor
        monitor.reset()
        for name, series in metadata["monitor"].items():
            monitor.history[name] = [float(v) for v in series]
        for handle in self.trainer.registry:
            state = metadata.get("meters", {}).get(handle.name)
            if state is not None:
                handle.meter.load_state(state)
        self.trainer.epochs_completed = int(metadata["epochs_completed"])
        self.complexity = TrainingComplexity(
            metadata["complexity"]["baseline_epochs"]
        )
        for reduction, epochs in metadata["complexity"]["iterations"]:
            self.complexity.add_iteration(reduction, epochs)
        rng_state = metadata.get("loader_rng")
        loader_rng = getattr(self.train_loader, "rng", None)
        if rng_state is not None and loader_rng is not None:
            loader_rng.bit_generator.state = rng_state
        restored = report_from_dict(metadata["report"])
        self.report.rows = restored.rows
        self.artifacts = dict(metadata.get("artifacts", {}))
        # An early-stop requested before the capture must survive resume,
        # or the resumed run would train iterations the original skipped.
        self.stop_requested = bool(metadata.get("stop_requested", False))


def _rng_state(rng) -> dict | None:
    """JSON-serializable state of a numpy Generator (None if absent)."""
    if rng is None:
        return None
    return rng.bit_generator.state


def _json_safe_artifacts(artifacts: dict) -> dict:
    """Subset of ``artifacts`` that survives a JSON round-trip."""
    import json

    safe = {}
    for key, value in artifacts.items():
        try:
            json.dumps(value)
        except (TypeError, ValueError):
            continue
        safe[key] = value
    return safe


# ---------------------------------------------------------------------------
# Config -> live objects
# ---------------------------------------------------------------------------

def _build_data(config):
    from repro.data.datasets import DataLoader
    from repro.data.synthetic import (
        SyntheticCIFAR10,
        SyntheticCIFAR100,
        SyntheticTinyImageNet,
    )

    factories = {
        "synthetic-cifar10": SyntheticCIFAR10,
        "synthetic-cifar100": SyntheticCIFAR100,
        "synthetic-tinyimagenet": SyntheticTinyImageNet,
    }
    data = config.data
    rng = np.random.default_rng(data.seed)
    train_set, test_set = factories[data.dataset](
        train_per_class=data.train_per_class,
        test_per_class=data.test_per_class,
        image_size=data.image_size,
        noise=data.noise,
        seed=data.seed,
    )
    train_loader = DataLoader(
        train_set, batch_size=data.train_batch_size, shuffle=data.shuffle, rng=rng
    )
    test_loader = DataLoader(test_set, batch_size=data.test_batch_size)
    return train_loader, test_loader


def _build_model(config):
    from repro.models.resnet import resnet18
    from repro.models.vgg import vgg11, vgg16, vgg19

    model = config.model
    rng = np.random.default_rng(model.seed)
    if model.arch == "resnet18":
        return resnet18(
            num_classes=model.num_classes,
            width_multiplier=model.width_multiplier,
            rng=rng,
        )
    factory = {"vgg11": vgg11, "vgg16": vgg16, "vgg19": vgg19}[model.arch]
    return factory(
        num_classes=model.num_classes,
        width_multiplier=model.width_multiplier,
        image_size=model.image_size,
        batch_norm=model.batch_norm,
        rng=rng,
    )


def _build_optimizer(config, model):
    from repro.nn.optim import SGD, Adam

    if config.optimizer == "adam":
        return Adam(model.parameters(), lr=config.lr)
    return SGD(model.parameters(), lr=config.lr, momentum=config.momentum)


def build_context(config) -> ExperimentContext:
    """Translate an :class:`ExperimentConfig` into a ready context.

    Activates ``config.backend`` process-wide *before* building anything,
    so parameters, buffers and data tensors all materialize in the
    backend's dtype — including inside sweep/search worker processes,
    which rebuild contexts from config dicts through this function.
    """
    from repro.backend import set_active_backend
    from repro.nn.loss import CrossEntropyLoss

    set_active_backend(getattr(config, "backend", "reference"))
    train_loader, test_loader = _build_data(config)
    model = _build_model(config)
    # Per-layer overrides are validated here, at build time, so a bad
    # layer name fails before any training (and with the model's real
    # layer list in the message).
    config.quant.validate_layers(model.layer_handles().names())
    trainer = Trainer(model, _build_optimizer(config, model), CrossEntropyLoss())
    quantizer = ADQuantizer(
        trainer, config.quant.to_schedule(), config.quant.to_saturation()
    )
    pruner = (
        ADPruner(model.layer_handles(), min_channels=config.prune.min_channels)
        if config.prune.enabled
        else None
    )
    return ExperimentContext(
        model=model,
        train_loader=train_loader,
        test_loader=test_loader,
        trainer=trainer,
        quantizer=quantizer,
        pruner=pruner,
        fuse_prune=config.prune.fused,
        input_shape=config.input_shape,
        architecture=config.architecture,
        dataset=config.dataset,
        baseline_epochs=config.quant.baseline_epochs,
        config=config,
    )
