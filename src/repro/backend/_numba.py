"""Optional numba acceleration, behind a feature probe.

The fast backend asks this module for jitted kernels; when numba is not
importable (the common case — it is not a dependency) every accessor
returns None and the caller falls back to the vectorized numpy path.
Nothing outside this module may import numba directly.
"""

from __future__ import annotations

try:  # pragma: no cover - exercised only where numba is installed
    import numba

    HAVE_NUMBA = True
except ImportError:  # pragma: no cover - the default environment
    numba = None
    HAVE_NUMBA = False

_KERNELS: dict = {}


def _build_kernels():  # pragma: no cover - requires numba
    """Compile the jitted hot loops once, lazily."""
    jit = numba.njit(cache=True, fastmath=True)

    @jit
    def sgd_momentum(param, grad, velocity, lr, momentum, weight_decay):
        p = param.ravel()
        g = grad.ravel()
        vel = velocity.ravel()
        for i in range(p.size):
            gi = g[i] + weight_decay * p[i]
            vel[i] = momentum * vel[i] + gi
            p[i] -= lr * vel[i]

    @jit
    def fused_fake_quant(x, out, lo, scale, inv_scale):
        xf = x.ravel()
        of = out.ravel()
        for i in range(xf.size):
            of[i] = round((xf[i] - lo) * scale) * inv_scale + lo

    return {"sgd_momentum": sgd_momentum, "fused_fake_quant": fused_fake_quant}


def get_kernel(name: str):
    """Return the jitted kernel ``name``, or None when numba is absent."""
    if not HAVE_NUMBA:
        return None
    if not _KERNELS:  # pragma: no cover - requires numba
        _KERNELS.update(_build_kernels())
    return _KERNELS.get(name)  # pragma: no cover - requires numba
