"""Optional numba acceleration, behind a feature probe.

The fast backend asks this module for jitted kernels; when numba is not
importable (the common case — it is not a dependency) every accessor
returns None and the caller falls back to the compiled-C tier
(:mod:`repro.backend._ckernels`) or the vectorized numpy path.  Nothing
outside this module may import numba directly.

Individual kernels can be switched off with ``REPRO_DISABLE_KERNELS``
(comma-separated names, or ``all``) — shared with the C tier so the
benchmark suite can reconstruct historical fast-path configurations.
"""

from __future__ import annotations

from repro.backend._ckernels import kernel_disabled

try:  # pragma: no cover - exercised only where numba is installed
    import numba

    HAVE_NUMBA = True
except ImportError:  # pragma: no cover - the default environment
    numba = None
    HAVE_NUMBA = False

_KERNELS: dict = {}


def _build_kernels():  # pragma: no cover - requires numba
    """Compile the jitted hot loops once, lazily."""
    jit = numba.njit(cache=True, fastmath=True)

    @jit
    def sgd_momentum(param, grad, velocity, lr, momentum, weight_decay):
        p = param.ravel()
        g = grad.ravel()
        vel = velocity.ravel()
        for i in range(p.size):
            gi = g[i] + weight_decay * p[i]
            vel[i] = momentum * vel[i] + gi
            p[i] -= lr * vel[i]

    @jit
    def fused_fake_quant(x, out, lo, scale, inv_scale):
        xf = x.ravel()
        of = out.ravel()
        for i in range(xf.size):
            of[i] = round((xf[i] - lo) * scale) * inv_scale + lo

    @jit
    def adam_update(param, grad, m, v, lr, beta1, beta2, eps, weight_decay,
                    bias1, bias2):
        p = param.ravel()
        g = grad.ravel()
        mf = m.ravel()
        vf = v.ravel()
        inv_b1 = 1.0 / bias1
        inv_b2 = 1.0 / bias2
        for i in range(p.size):
            gi = g[i] + weight_decay * p[i]
            mf[i] = beta1 * mf[i] + (1.0 - beta1) * gi
            vf[i] = beta2 * vf[i] + (1.0 - beta2) * gi * gi
            p[i] -= lr * (mf[i] * inv_b1) / ((vf[i] * inv_b2) ** 0.5 + eps)

    @jit
    def im2col(x, cols, kernel, stride, padding, out_h, out_w):
        # x: (N, C, H, W) contiguous; cols: (C*k*k, N*out_h*out_w).
        # Padding is implicit — out-of-range taps write zero, so no
        # padded copy of x is ever materialized.
        n, c, h, w = x.shape
        for ci in range(c):
            for ki in range(kernel):
                for kj in range(kernel):
                    row = (ci * kernel + ki) * kernel + kj
                    for ni in range(n):
                        for io in range(out_h):
                            ih = io * stride + ki - padding
                            col0 = (ni * out_h + io) * out_w
                            if ih < 0 or ih >= h:
                                for jo in range(out_w):
                                    cols[row, col0 + jo] = 0.0
                                continue
                            for jo in range(out_w):
                                iw = jo * stride + kj - padding
                                if iw < 0 or iw >= w:
                                    cols[row, col0 + jo] = 0.0
                                else:
                                    cols[row, col0 + jo] = x[ni, ci, ih, iw]

    @jit
    def col2im(cols, gx, kernel, stride, padding, out_h, out_w):
        # Adjoint scatter into a pre-zeroed gx: accumulate directly,
        # no padded intermediate and no np.add.at.
        n, c, h, w = gx.shape
        for ci in range(c):
            for ki in range(kernel):
                for kj in range(kernel):
                    row = (ci * kernel + ki) * kernel + kj
                    for ni in range(n):
                        for io in range(out_h):
                            ih = io * stride + ki - padding
                            if ih < 0 or ih >= h:
                                continue
                            col0 = (ni * out_h + io) * out_w
                            for jo in range(out_w):
                                iw = jo * stride + kj - padding
                                if 0 <= iw < w:
                                    gx[ni, ci, ih, iw] += cols[row, col0 + jo]

    @jit
    def batchnorm_train_fwd(x, gamma, beta, eps, relu, out, x_hat, mean,
                            var, inv_std):
        # One double-accumulated stats pass + one normalize/scale/shift
        # (+relu) pass per channel over (N, C, P) with P = H*W.
        n, c, p = x.shape
        m = n * p
        for ci in range(c):
            s = 0.0
            ss = 0.0
            for ni in range(n):
                for pi in range(p):
                    v = x[ni, ci, pi]
                    s += v
                    ss += v * v
            mu = s / m
            va = ss / m - mu * mu
            if va < 0.0:
                va = 0.0
            mean[ci] = mu
            var[ci] = va
            inv = 1.0 / (va + eps) ** 0.5
            inv_std[ci] = inv
            g = gamma[ci]
            b = beta[ci]
            for ni in range(n):
                for pi in range(p):
                    xv = (x[ni, ci, pi] - mu) * inv
                    x_hat[ni, ci, pi] = xv
                    ov = g * xv + b
                    if relu and ov < 0.0:
                        ov = 0.0
                    out[ni, ci, pi] = ov

    @jit
    def batchnorm_eval_fwd(x, gamma, beta, mean, var, eps, relu, out,
                           x_hat, inv_std):
        n, c, p = x.shape
        for ci in range(c):
            inv = 1.0 / (var[ci] + eps) ** 0.5
            inv_std[ci] = inv
            g = gamma[ci]
            b = beta[ci]
            mu = mean[ci]
            for ni in range(n):
                for pi in range(p):
                    xv = (x[ni, ci, pi] - mu) * inv
                    x_hat[ni, ci, pi] = xv
                    ov = g * xv + b
                    if relu and ov < 0.0:
                        ov = 0.0
                    out[ni, ci, pi] = ov

    @jit
    def batchnorm_bwd(grad, x_hat, inv_std, gamma, out, relu, training,
                      gx, ggamma, gbeta):
        # The relu gate reads the saved post-relu output (node data) —
        # out > 0 iff the pre-relu activation was > 0.
        n, c, p = grad.shape
        m = n * p
        for ci in range(c):
            sg = 0.0
            sgx = 0.0
            for ni in range(n):
                for pi in range(p):
                    gv = grad[ni, ci, pi]
                    if relu and out[ni, ci, pi] <= 0.0:
                        gv = 0.0
                    sg += gv
                    sgx += gv * x_hat[ni, ci, pi]
            ggamma[ci] = sgx
            gbeta[ci] = sg
            scale = gamma[ci] * inv_std[ci]
            mean_dy = sg / m
            mean_dy_xhat = sgx / m
            for ni in range(n):
                for pi in range(p):
                    gv = grad[ni, ci, pi]
                    if relu and out[ni, ci, pi] <= 0.0:
                        gv = 0.0
                    if training:
                        gx[ni, ci, pi] = scale * (gv - mean_dy
                                                  - x_hat[ni, ci, pi] * mean_dy_xhat)
                    else:
                        gx[ni, ci, pi] = scale * gv

    @jit
    def maxpool_fwd(x, out, idx, k):
        # Non-overlapping pool over (planes, H, W); idx stores the
        # flattened window offset of the (first) max, argmax-compatible.
        planes, h, w = x.shape
        oh = h // k
        ow = w // k
        for pl in range(planes):
            for io in range(oh):
                for jo in range(ow):
                    best = x[pl, io * k, jo * k]
                    bi = 0
                    for ki in range(k):
                        for kj in range(k):
                            v = x[pl, io * k + ki, jo * k + kj]
                            if v > best:
                                best = v
                                bi = ki * k + kj
                    out[pl, io, jo] = best
                    idx[pl, io, jo] = bi

    @jit
    def maxpool_bwd(grad, idx, gx, k):
        # gx pre-zeroed; windows are disjoint so plain stores suffice.
        planes, h, w = gx.shape
        oh = h // k
        ow = w // k
        for pl in range(planes):
            for io in range(oh):
                for jo in range(ow):
                    b = idx[pl, io, jo]
                    gx[pl, io * k + b // k, jo * k + b % k] = grad[pl, io, jo]

    return {
        "sgd_momentum": sgd_momentum,
        "fused_fake_quant": fused_fake_quant,
        "adam_update": adam_update,
        "im2col": im2col,
        "col2im": col2im,
        "batchnorm_train_fwd": batchnorm_train_fwd,
        "batchnorm_eval_fwd": batchnorm_eval_fwd,
        "batchnorm_bwd": batchnorm_bwd,
        "maxpool_fwd": maxpool_fwd,
        "maxpool_bwd": maxpool_bwd,
    }


def get_kernel(name: str):
    """Return the jitted kernel ``name``, or None when numba is absent."""
    if not HAVE_NUMBA:
        return None
    if kernel_disabled(name):  # pragma: no cover - requires numba
        return None
    if not _KERNELS:  # pragma: no cover - requires numba
        _KERNELS.update(_build_kernels())
    return _KERNELS.get(name)  # pragma: no cover - requires numba