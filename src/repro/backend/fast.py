"""The ``fast`` backend: float32 end-to-end with fused hot loops.

Four levers, in order of measured impact on an AD-search trial:

1. float32 everywhere — halves memory traffic and switches every
   ``@`` onto BLAS sgemm;
2. conv lowering without ``np.add.at`` — ``as_strided`` window views
   for im2col and k*k strided-slice accumulation for col2im, with
   jitted/compiled scatter-gather loops when a kernel tier is up;
3. fused elementwise chains — fake-quant as an in-place
   round-scale-shift (no int64 round-trip, no float64 upcast) and
   in-place SGD/Adam parameter updates;
4. single-pass batchnorm(+relu) forward and backward — the whole
   mean/var/normalize/scale/shift(/relu) chain in one kernel call,
   and a two-pass zero-temporary backward.

Kernels probe two acceleration tiers before falling back to numpy:
numba ``njit`` loops (:mod:`repro.backend._numba`, when numba is
importable) and cffi-compiled C (:mod:`repro.backend._ckernels`, when a
C toolchain is present).  Every tier computes the same values — the
numpy fallbacks below are the semantics, the tiers are speed.

Numerics agree with the reference backend to float32 tolerances; the
differential test suite pins that op by op.
"""

from __future__ import annotations

import numpy as np

from repro.backend import _ckernels, _numba
from repro.backend._im2col import col2im_sliced, conv_output_size, im2col_strided
from repro.backend.base import ArrayBackend

_BN_AXES = (0, 2, 3)


def _fused_kernel(name: str):
    """Probe the tiers for a batchnorm/conv kernel: numba, then C."""
    kernel = _numba.get_kernel(name)
    if kernel is not None:  # pragma: no cover - requires numba
        return kernel
    return _ckernels.get_kernel(name)


class FastBackend(ArrayBackend):
    """float32 engine with BLAS-shaped convs and fused updates."""

    name = "fast"
    dtype = np.dtype(np.float32)

    def im2col(self, x, kernel, stride, padding):
        jitted = _fused_kernel("im2col")
        if (jitted is not None and x.flags.c_contiguous
                and x.dtype == self.dtype):
            n, c, h, w = x.shape
            out_h = conv_output_size(h, kernel, stride, padding)
            out_w = conv_output_size(w, kernel, stride, padding)
            cols = np.empty((c * kernel * kernel, n * out_h * out_w),
                            dtype=x.dtype)
            jitted(x, cols, kernel, stride, padding, out_h, out_w)
            return cols, out_h, out_w
        return im2col_strided(x, kernel, stride, padding)

    def col2im(self, cols, x_shape, kernel, stride, padding):
        scatter = _fused_kernel("col2im")
        if (scatter is not None and cols.flags.c_contiguous
                and cols.dtype == self.dtype):
            n, c, h, w = x_shape
            out_h = conv_output_size(h, kernel, stride, padding)
            out_w = conv_output_size(w, kernel, stride, padding)
            gx = np.zeros(x_shape, dtype=cols.dtype)
            scatter(cols, gx, kernel, stride, padding, out_h, out_w)
            return gx
        return col2im_sliced(cols, x_shape, kernel, stride, padding)

    # ------------------------------------------------------------------
    # Fused elementwise chains
    # ------------------------------------------------------------------
    def batchnorm_train(self, x, gamma, beta, eps, fuse_relu=False):
        x = np.ascontiguousarray(x, dtype=self.dtype)
        n, c, h, w = x.shape
        kernel = _fused_kernel("batchnorm_train_fwd")
        if kernel is not None:
            out = np.empty_like(x)
            x_hat = np.empty_like(x)
            mean = np.empty(c, dtype=self.dtype)
            var = np.empty(c, dtype=self.dtype)
            inv_std = np.empty(c, dtype=self.dtype)
            kernel(x.reshape(n, c, -1), gamma, beta, self.dtype.type(eps),
                   fuse_relu, out.reshape(n, c, -1), x_hat.reshape(n, c, -1),
                   mean, var, inv_std)
            gate = out if fuse_relu else None
            return out, mean, var, (x_hat, inv_std, gate)
        # numpy fallback: centered single-temporary chain.  The variance
        # comes from the centered difference (one einsum) rather than
        # E[x^2]-E[x]^2, which cancels catastrophically in float32.
        m = n * h * w
        mean = x.mean(axis=_BN_AXES)
        x_hat = x - mean.reshape(1, -1, 1, 1)
        var = np.einsum("nchw,nchw->c", x_hat, x_hat) / self.dtype.type(m)
        inv_std = 1.0 / np.sqrt(var + self.dtype.type(eps))
        x_hat *= inv_std.reshape(1, -1, 1, 1)
        out = x_hat * gamma.reshape(1, -1, 1, 1)
        out += beta.reshape(1, -1, 1, 1)
        gate = None
        if fuse_relu:
            np.maximum(out, 0.0, out=out)
            gate = out
        return out, mean, var, (x_hat, inv_std, gate)

    def batchnorm_eval(self, x, gamma, beta, running_mean, running_var, eps,
                       fuse_relu=False):
        x = np.ascontiguousarray(x, dtype=self.dtype)
        n, c, h, w = x.shape
        kernel = _fused_kernel("batchnorm_eval_fwd")
        if kernel is not None:
            out = np.empty_like(x)
            x_hat = np.empty_like(x)
            inv_std = np.empty(c, dtype=self.dtype)
            kernel(x.reshape(n, c, -1), gamma, beta,
                   np.ascontiguousarray(running_mean, dtype=self.dtype),
                   np.ascontiguousarray(running_var, dtype=self.dtype),
                   self.dtype.type(eps), fuse_relu, out.reshape(n, c, -1),
                   x_hat.reshape(n, c, -1), inv_std)
            gate = out if fuse_relu else None
            return out, (x_hat, inv_std, gate)
        inv_std = (1.0 / np.sqrt(running_var + self.dtype.type(eps))).astype(
            self.dtype, copy=False)
        x_hat = x - running_mean.reshape(1, -1, 1, 1)
        x_hat *= inv_std.reshape(1, -1, 1, 1)
        out = x_hat * gamma.reshape(1, -1, 1, 1)
        out += beta.reshape(1, -1, 1, 1)
        gate = None
        if fuse_relu:
            np.maximum(out, 0.0, out=out)
            gate = out
        return out, (x_hat, inv_std, gate)

    def batchnorm_bwd(self, grad, gamma, residual, training):
        x_hat, inv_std, gate = residual
        grad = np.ascontiguousarray(grad, dtype=self.dtype)
        n, c, h, w = grad.shape
        kernel = _fused_kernel("batchnorm_bwd")
        if kernel is not None and x_hat.flags.c_contiguous:
            gx = np.empty_like(grad)
            ggamma = np.empty(c, dtype=self.dtype)
            gbeta = np.empty(c, dtype=self.dtype)
            relu = gate is not None
            out = gate if relu else x_hat  # unread when relu is off
            kernel(grad.reshape(n, c, -1), x_hat.reshape(n, c, -1), inv_std,
                   gamma, out.reshape(n, c, -1), relu, training,
                   gx.reshape(n, c, -1), ggamma, gbeta)
            return gx, ggamma, gbeta
        if gate is not None:
            grad = grad * (gate > 0)
        ggamma = np.einsum("nchw,nchw->c", grad, x_hat)
        gbeta = grad.sum(axis=_BN_AXES)
        scale = (gamma * inv_std).reshape(1, -1, 1, 1)
        if not training:
            return grad * scale, ggamma, gbeta
        m = self.dtype.type(n * h * w)
        gx = grad - (gbeta / m).reshape(1, -1, 1, 1)
        gx -= x_hat * (ggamma / m).reshape(1, -1, 1, 1)
        gx *= scale
        return gx, ggamma, gbeta

    def maxpool_fwd(self, x, kernel):
        ck = _fused_kernel("maxpool_fwd")
        if (ck is not None and kernel * kernel <= 127
                and x.flags.c_contiguous and x.dtype == self.dtype):
            n, c, h, w = x.shape
            out_h, out_w = h // kernel, w // kernel
            out = np.empty((n, c, out_h, out_w), dtype=x.dtype)
            # int8 window offsets: the whole residual is out_h*out_w
            # bytes per plane instead of the k*k-expanded window copy.
            idx = np.empty((n, c, out_h, out_w), dtype=np.int8)
            ck(x.reshape(n * c, h, w), out.reshape(n * c, out_h, out_w),
               idx.reshape(n * c, out_h, out_w), kernel)
            return out, (idx, kernel)
        return super().maxpool_fwd(x, kernel)

    def maxpool_bwd(self, grad, residual):
        if len(residual) != 2:  # forward fell back to the base composition
            return super().maxpool_bwd(grad, residual)
        idx, kernel = residual
        grad = np.ascontiguousarray(grad, dtype=self.dtype)
        n, c, out_h, out_w = idx.shape
        h, w = out_h * kernel, out_w * kernel
        gx = np.zeros((n, c, h, w), dtype=self.dtype)
        ck = _fused_kernel("maxpool_bwd")
        if ck is not None:
            ck(grad.reshape(n * c, out_h, out_w),
               idx.reshape(n * c, out_h, out_w),
               gx.reshape(n * c, h, w), kernel)
            return gx
        # idx uses the same ki*k+kj offsets as argmax over the window
        # axis, so the scatter is a put_along_axis away.
        grad_windows = np.zeros((n, c, out_h, out_w, kernel * kernel),
                                dtype=self.dtype)
        np.put_along_axis(grad_windows, idx.astype(np.intp)[..., None],
                          grad[..., None], axis=-1)
        g = grad_windows.reshape(n, c, out_h, out_w, kernel, kernel)
        return g.transpose(0, 1, 2, 4, 3, 5).reshape(n, c, h, w)

    def fake_quant(self, x, quantizer):
        x = np.asarray(x, dtype=self.dtype)
        lo, hi = quantizer._range_for(x)
        levels = (1 << quantizer.bits) - 1
        if hi == lo:
            return np.full(x.shape, lo, dtype=self.dtype)
        if not quantizer.dynamic:
            # Frozen calibration range: inputs may fall outside it.
            x = np.clip(x, lo, hi)
        scale = levels / (hi - lo)
        inv_scale = (hi - lo) / levels
        kernel = _fused_kernel("fused_fake_quant")
        if kernel is not None and x.flags.c_contiguous:
            out = np.empty_like(x)
            kernel(x, out, lo, scale, inv_scale)
            return out
        # In-place chain: one temporary, no integer codes materialized.
        # With a dynamic range the clip in eqn. 1 is a no-op (lo/hi ARE
        # the data range), so rint-scale-shift is exact.
        out = x - lo
        out *= scale
        np.rint(out, out=out)
        out *= inv_scale
        out += lo
        return out

    def sgd_update(self, param, grad, velocity, lr, momentum, weight_decay):
        if momentum:
            kernel = _numba.get_kernel("sgd_momentum")
            if (kernel is not None and param.flags.c_contiguous
                    and grad.flags.c_contiguous):  # pragma: no cover
                kernel(param, grad, velocity, lr, momentum, weight_decay)
                return param
        if weight_decay:
            grad = grad + weight_decay * param
        if momentum:
            velocity *= momentum
            velocity += grad
            grad = velocity
        param -= lr * grad
        return param

    def adam_update(self, param, grad, m, v, lr, beta1, beta2, eps,
                    weight_decay, bias1, bias2):
        kernel = _fused_kernel("adam_update")
        if (kernel is not None and param.flags.c_contiguous
                and grad.flags.c_contiguous and m.flags.c_contiguous
                and v.flags.c_contiguous):
            kernel(param, grad, m, v, lr, beta1, beta2, eps, weight_decay,
                   bias1, bias2)
            return param
        if weight_decay:
            grad = grad + weight_decay * param
        m *= beta1
        m += (1.0 - beta1) * grad
        v *= beta2
        v += (1.0 - beta2) * grad * grad
        denom = np.sqrt(v * (1.0 / bias2))
        denom += eps
        np.divide(m, denom, out=denom)
        denom *= lr / bias1
        param -= denom
        return param
