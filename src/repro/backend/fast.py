"""The ``fast`` backend: float32 end-to-end with fused hot loops.

Three levers, in order of measured impact on an AD-search trial:

1. float32 everywhere — halves memory traffic and switches every
   ``@`` onto BLAS sgemm;
2. conv lowering without ``np.add.at`` — ``as_strided`` window views
   for im2col and k*k strided-slice accumulation for col2im;
3. fused elementwise chains — fake-quant as an in-place
   round-scale-shift (no int64 round-trip, no float64 upcast) and
   in-place SGD/Adam parameter updates (numba-jitted when numba is
   importable; plain numpy otherwise).

Numerics agree with the reference backend to float32 tolerances; the
differential test suite pins that op by op.
"""

from __future__ import annotations

import numpy as np

from repro.backend import _numba
from repro.backend._im2col import col2im_sliced, im2col_strided
from repro.backend.base import ArrayBackend


class FastBackend(ArrayBackend):
    """float32 engine with BLAS-shaped convs and fused updates."""

    name = "fast"
    dtype = np.dtype(np.float32)

    def im2col(self, x, kernel, stride, padding):
        return im2col_strided(x, kernel, stride, padding)

    def col2im(self, cols, x_shape, kernel, stride, padding):
        return col2im_sliced(cols, x_shape, kernel, stride, padding)

    def fake_quant(self, x, quantizer):
        x = np.asarray(x, dtype=self.dtype)
        lo, hi = quantizer._range_for(x)
        levels = (1 << quantizer.bits) - 1
        if hi == lo:
            return np.full(x.shape, lo, dtype=self.dtype)
        if not quantizer.dynamic:
            # Frozen calibration range: inputs may fall outside it.
            x = np.clip(x, lo, hi)
        scale = levels / (hi - lo)
        inv_scale = (hi - lo) / levels
        kernel = _numba.get_kernel("fused_fake_quant")
        if kernel is not None and x.flags.c_contiguous:  # pragma: no cover
            out = np.empty_like(x)
            kernel(x, out, lo, scale, inv_scale)
            return out
        # In-place chain: one temporary, no integer codes materialized.
        # With a dynamic range the clip in eqn. 1 is a no-op (lo/hi ARE
        # the data range), so rint-scale-shift is exact.
        out = x - lo
        out *= scale
        np.rint(out, out=out)
        out *= inv_scale
        out += lo
        return out

    def sgd_update(self, param, grad, velocity, lr, momentum, weight_decay):
        if momentum:
            kernel = _numba.get_kernel("sgd_momentum")
            if (kernel is not None and param.flags.c_contiguous
                    and grad.flags.c_contiguous):  # pragma: no cover
                kernel(param, grad, velocity, lr, momentum, weight_decay)
                return param
        if weight_decay:
            grad = grad + weight_decay * param
        if momentum:
            velocity *= momentum
            velocity += grad
            grad = velocity
        param -= lr * grad
        return param

    def adam_update(self, param, grad, m, v, lr, beta1, beta2, eps,
                    weight_decay, bias1, bias2):
        if weight_decay:
            grad = grad + weight_decay * param
        m *= beta1
        m += (1.0 - beta1) * grad
        v *= beta2
        v += (1.0 - beta2) * grad * grad
        denom = np.sqrt(v * (1.0 / bias2))
        denom += eps
        np.divide(m, denom, out=denom)
        denom *= lr / bias1
        param -= denom
        return param
