"""Optional compiled C kernels, behind a feature probe (cffi + a C compiler).

Second tier of the fast backend's kernel ladder: when numba is absent
(it is not a dependency) but cffi and a working C toolchain are present,
the single-pass float32 chains — fused batchnorm(+relu) forward and
backward, and the col2im scatter — come from a small C module compiled
once per source revision.  The build is cached on disk keyed by a hash
of the C source, so worker subprocesses and later runs import the
shared object instantly instead of re-invoking the compiler.

Probe rules mirror :mod:`repro.backend._numba`:

* every accessor returns ``None`` when the tier is unavailable (no
  cffi, no compiler, build failure) or disabled, and callers fall back
  to the vectorized numpy path;
* ``REPRO_NO_CKERNELS`` disables the whole tier;
* ``REPRO_DISABLE_KERNELS`` (comma-separated kernel names, or ``all``)
  disables individual kernels across *both* the numba and C tiers —
  the benchmark suite uses it to reconstruct the pre-fusion fast path.

Nothing outside this module may import cffi directly.
"""

from __future__ import annotations

import hashlib
import os

_CDEF = """
void bn_train_fwd(const float* x, const float* gamma, const float* beta,
                  float eps, int relu, long n, long c, long p,
                  float* out, float* x_hat, float* mean, float* var,
                  float* inv_std);
void bn_eval_fwd(const float* x, const float* gamma, const float* beta,
                 const float* mean, const float* var, float eps, int relu,
                 long n, long c, long p,
                 float* out, float* x_hat, float* inv_std);
void bn_bwd(const float* grad, const float* x_hat, const float* inv_std,
            const float* gamma, const float* out, int relu, int training,
            long n, long c, long p, float* gx, float* ggamma, float* gbeta);
void im2col(const float* x, float* cols, long n, long c, long h, long w,
            long kernel, long stride, long padding, long oh, long ow);
void col2im(const float* cols, float* gx, long n, long c, long h, long w,
            long kernel, long stride, long padding, long oh, long ow);
void adam_update(float* p, const float* g, float* m, float* v, long size,
                 float lr, float beta1, float beta2, float eps,
                 float weight_decay, float bias1, float bias2);
void fused_fake_quant(const float* x, float* out, long size, float lo,
                      float scale, float inv_scale);
void maxpool_fwd(const float* x, float* out, signed char* idx, long planes,
                 long h, long w, long k);
void maxpool_bwd(const float* grad, const signed char* idx, float* gx,
                 long planes, long h, long w, long k);
"""

_SOURCE = r"""
#include <math.h>
#include <string.h>

/* Fused training-mode batchnorm (+ optional relu) over NCHW input:
   one double-accumulated stats pass and one normalize/scale/shift pass
   per channel, emitting out, x_hat and the per-channel statistics. */
void bn_train_fwd(const float* x, const float* gamma, const float* beta,
                  float eps, int relu, long n, long c, long p,
                  float* out, float* x_hat, float* mean, float* var,
                  float* inv_std) {
    long m = n * p;
    for (long ci = 0; ci < c; ci++) {
        double s = 0.0, ss = 0.0;
        for (long ni = 0; ni < n; ni++) {
            const float* row = x + (ni * c + ci) * p;
            for (long pi = 0; pi < p; pi++) {
                double v = row[pi];
                s += v; ss += v * v;
            }
        }
        double mu = s / m;
        double va = ss / m - mu * mu;
        if (va < 0.0) va = 0.0;
        mean[ci] = (float) mu;
        var[ci] = (float) va;
        float inv = (float)(1.0 / sqrt(va + (double) eps));
        inv_std[ci] = inv;
        float g = gamma[ci], b = beta[ci], mu_f = (float) mu;
        for (long ni = 0; ni < n; ni++) {
            long base = (ni * c + ci) * p;
            const float* row = x + base;
            float* xh = x_hat + base;
            float* o = out + base;
            for (long pi = 0; pi < p; pi++) {
                float xv = (row[pi] - mu_f) * inv;
                xh[pi] = xv;
                float ov = g * xv + b;
                if (relu && ov < 0.0f) ov = 0.0f;
                o[pi] = ov;
            }
        }
    }
}

/* Eval-mode batchnorm from running statistics: single pass. */
void bn_eval_fwd(const float* x, const float* gamma, const float* beta,
                 const float* mean, const float* var, float eps, int relu,
                 long n, long c, long p,
                 float* out, float* x_hat, float* inv_std) {
    for (long ci = 0; ci < c; ci++) {
        float inv = (float)(1.0 / sqrt((double) var[ci] + (double) eps));
        inv_std[ci] = inv;
        float g = gamma[ci], b = beta[ci], mu = mean[ci];
        for (long ni = 0; ni < n; ni++) {
            long base = (ni * c + ci) * p;
            const float* row = x + base;
            float* xh = x_hat + base;
            float* o = out + base;
            for (long pi = 0; pi < p; pi++) {
                float xv = (row[pi] - mu) * inv;
                xh[pi] = xv;
                float ov = g * xv + b;
                if (relu && ov < 0.0f) ov = 0.0f;
                o[pi] = ov;
            }
        }
    }
}

/* Fused batchnorm backward (+ optional relu gate read from the saved
   post-relu output): one reduction pass, one gradient pass, zero
   full-size temporaries. */
void bn_bwd(const float* grad, const float* x_hat, const float* inv_std,
            const float* gamma, const float* out, int relu, int training,
            long n, long c, long p, float* gx, float* ggamma, float* gbeta) {
    long m = n * p;
    for (long ci = 0; ci < c; ci++) {
        double sg = 0.0, sgx = 0.0;
        for (long ni = 0; ni < n; ni++) {
            long base = (ni * c + ci) * p;
            const float* g = grad + base;
            const float* xh = x_hat + base;
            const float* o = out + base;
            for (long pi = 0; pi < p; pi++) {
                float gv = g[pi];
                if (relu && o[pi] <= 0.0f) gv = 0.0f;
                sg += gv; sgx += gv * (double) xh[pi];
            }
        }
        ggamma[ci] = (float) sgx;
        gbeta[ci] = (float) sg;
        float scale = gamma[ci] * inv_std[ci];
        float mean_dy = (float)(sg / m), mean_dy_xhat = (float)(sgx / m);
        for (long ni = 0; ni < n; ni++) {
            long base = (ni * c + ci) * p;
            const float* g = grad + base;
            const float* xh = x_hat + base;
            const float* o = out + base;
            float* r = gx + base;
            for (long pi = 0; pi < p; pi++) {
                float gv = g[pi];
                if (relu && o[pi] <= 0.0f) gv = 0.0f;
                if (training)
                    r[pi] = scale * (gv - mean_dy - xh[pi] * mean_dy_xhat);
                else
                    r[pi] = scale * gv;
            }
        }
    }
}

/* im2col gather with implicit zero padding: writes each (channel,
   ki, kj) row of the column matrix contiguously, no padded copy and
   no strided-view reshape on the way out.  At stride 1 each output
   row is a shifted copy of the input row, so the interior is a
   memcpy and only the padding fringe is written scalar. */
void im2col(const float* x, float* cols, long n, long c, long h, long w,
            long kernel, long stride, long padding, long oh, long ow) {
    long ncols = n * oh * ow;
    for (long ci = 0; ci < c; ci++) {
        for (long ki = 0; ki < kernel; ki++) {
            for (long kj = 0; kj < kernel; kj++) {
                float* dst = cols + ((ci * kernel + ki) * kernel + kj) * ncols;
                long j0 = padding - kj > 0 ? padding - kj : 0;
                long j1 = w + padding - kj < ow ? w + padding - kj : ow;
                for (long ni = 0; ni < n; ni++) {
                    const float* src = x + (ni * c + ci) * h * w;
                    for (long io = 0; io < oh; io++) {
                        long ih = io * stride + ki - padding;
                        float* d = dst + (ni * oh + io) * ow;
                        if (ih < 0 || ih >= h) {
                            for (long jo = 0; jo < ow; jo++) d[jo] = 0.0f;
                            continue;
                        }
                        const float* s = src + ih * w;
                        if (stride == 1) {
                            for (long jo = 0; jo < j0; jo++) d[jo] = 0.0f;
                            memcpy(d + j0, s + j0 + kj - padding,
                                   (size_t)(j1 - j0) * sizeof(float));
                            for (long jo = j1; jo < ow; jo++) d[jo] = 0.0f;
                            continue;
                        }
                        for (long jo = 0; jo < ow; jo++) {
                            long iw = jo * stride + kj - padding;
                            d[jo] = (iw >= 0 && iw < w) ? s[iw] : 0.0f;
                        }
                    }
                }
            }
        }
    }
}

/* col2im scatter with implicit zero padding: accumulates directly into
   the (already zeroed) gradient buffer, no padded intermediate.  The
   stride-1 interior is a branch-free shifted accumulate the compiler
   can vectorize; only out-of-image columns are skipped. */
void col2im(const float* cols, float* gx, long n, long c, long h, long w,
            long kernel, long stride, long padding, long oh, long ow) {
    long ncols = n * oh * ow;
    for (long ci = 0; ci < c; ci++) {
        for (long ki = 0; ki < kernel; ki++) {
            for (long kj = 0; kj < kernel; kj++) {
                const float* src = cols + ((ci * kernel + ki) * kernel + kj) * ncols;
                long j0 = padding - kj > 0 ? padding - kj : 0;
                long j1 = w + padding - kj < ow ? w + padding - kj : ow;
                for (long ni = 0; ni < n; ni++) {
                    float* dst = gx + (ni * c + ci) * h * w;
                    for (long io = 0; io < oh; io++) {
                        long ih = io * stride + ki - padding;
                        if (ih < 0 || ih >= h) continue;
                        const float* s = src + (ni * oh + io) * ow;
                        float* d = dst + ih * w;
                        if (stride == 1) {
                            float* base = d + kj - padding;
                            for (long jo = j0; jo < j1; jo++) base[jo] += s[jo];
                            continue;
                        }
                        for (long jo = 0; jo < ow; jo++) {
                            long iw = jo * stride + kj - padding;
                            if (iw >= 0 && iw < w) d[iw] += s[jo];
                        }
                    }
                }
            }
        }
    }
}

/* One-pass bias-corrected Adam: param and both moment buffers are
   updated in a single sweep instead of numpy's seven. */
void adam_update(float* p, const float* g, float* m, float* v, long size,
                 float lr, float beta1, float beta2, float eps,
                 float weight_decay, float bias1, float bias2) {
    float inv_b1 = 1.0f / bias1, inv_b2 = 1.0f / bias2;
    for (long i = 0; i < size; i++) {
        float gi = g[i] + weight_decay * p[i];
        m[i] = beta1 * m[i] + (1.0f - beta1) * gi;
        v[i] = beta2 * v[i] + (1.0f - beta2) * gi * gi;
        float mh = m[i] * inv_b1;
        float vh = v[i] * inv_b2;
        p[i] -= lr * mh / (sqrtf(vh) + eps);
    }
}

/* One-pass eqn.-1 round-scale-shift (the caller owns the range). */
void fused_fake_quant(const float* x, float* out, long size, float lo,
                      float scale, float inv_scale) {
    for (long i = 0; i < size; i++) {
        out[i] = rintf((x[i] - lo) * scale) * inv_scale + lo;
    }
}

/* Non-overlapping max pool over (planes, H, W): one pass emitting the
   max and its window offset (first-max ties, matching argmax). */
void maxpool_fwd(const float* x, float* out, signed char* idx, long planes,
                 long h, long w, long k) {
    long oh = h / k, ow = w / k;
    for (long pl = 0; pl < planes; pl++) {
        const float* xp = x + pl * h * w;
        float* op = out + pl * oh * ow;
        signed char* ip = idx + pl * oh * ow;
        for (long io = 0; io < oh; io++) {
            for (long jo = 0; jo < ow; jo++) {
                const float* base = xp + (io * k) * w + jo * k;
                float best = base[0];
                long bi = 0;
                for (long ki = 0; ki < k; ki++) {
                    const float* row = base + ki * w;
                    for (long kj = 0; kj < k; kj++) {
                        if (row[kj] > best) { best = row[kj]; bi = ki * k + kj; }
                    }
                }
                op[io * ow + jo] = best;
                ip[io * ow + jo] = (signed char) bi;
            }
        }
    }
}

/* Adjoint: route each output gradient to its argmax tap (gx pre-zeroed;
   windows are disjoint so plain stores suffice). */
void maxpool_bwd(const float* grad, const signed char* idx, float* gx,
                 long planes, long h, long w, long k) {
    long oh = h / k, ow = w / k;
    for (long pl = 0; pl < planes; pl++) {
        const float* gp = grad + pl * oh * ow;
        const signed char* ip = idx + pl * oh * ow;
        float* xp = gx + pl * h * w;
        for (long io = 0; io < oh; io++) {
            for (long jo = 0; jo < ow; jo++) {
                long b = ip[io * ow + jo];
                xp[(io * k + b / k) * w + jo * k + b % k] = gp[io * ow + jo];
            }
        }
    }
}
"""

_LIB = None
_FAILED = False


def kernel_disabled(name: str) -> bool:
    """Whether ``name`` is switched off via ``REPRO_DISABLE_KERNELS``.

    Consulted by both the numba and C probes; the env var is read per
    call so benchmark legs can flip it inside one process.
    """
    raw = os.environ.get("REPRO_DISABLE_KERNELS", "")
    if not raw:
        return False
    names = {part.strip() for part in raw.split(",") if part.strip()}
    return "all" in names or name in names


def _cache_dir() -> str:
    root = os.environ.get("REPRO_CKERNEL_CACHE")
    if not root:
        root = os.path.join(os.path.expanduser("~"), ".cache", "repro-ckernels")
    return root


def _load():
    """Compile (or load from the disk cache) the C module; None on failure."""
    global _LIB, _FAILED
    if _LIB is not None or _FAILED:
        return _LIB
    try:
        import importlib.util

        import cffi

        digest = hashlib.sha256((_CDEF + _SOURCE).encode()).hexdigest()[:16]
        modname = f"_repro_ck_{digest}"
        moddir = os.path.join(_cache_dir(), digest)
        sofile = None
        if os.path.isdir(moddir):
            for entry in os.listdir(moddir):
                if entry.startswith(modname) and entry.endswith(".so"):
                    sofile = os.path.join(moddir, entry)
                    break
        if sofile is None:
            os.makedirs(moddir, exist_ok=True)
            ffi = cffi.FFI()
            ffi.cdef(_CDEF)
            ffi.set_source(
                modname,
                _SOURCE,
                extra_compile_args=["-O3", "-march=native", "-funroll-loops"],
                libraries=["m"],
            )
            sofile = ffi.compile(tmpdir=moddir, verbose=False)
        spec = importlib.util.spec_from_file_location(modname, sofile)
        module = importlib.util.module_from_spec(spec)
        spec.loader.exec_module(module)
        _LIB = module
    except Exception:  # no cffi / no compiler / broken toolchain
        _FAILED = True
        return None
    return _LIB


def get_kernel(name: str):
    """Return a callable for C kernel ``name``, or None when unavailable.

    ``REPRO_NO_CKERNELS`` is consulted per call (not only at build time)
    so one process can run legs with and without the compiled tier.
    """
    if os.environ.get("REPRO_NO_CKERNELS") or kernel_disabled(name):
        return None
    module = _load()
    if module is None:
        return None
    key = (id(module), name)
    try:
        return _WRAPPER_CACHE[key]
    except KeyError:
        wrapper = _WRAPPERS.get(name, _missing)(module)
        _WRAPPER_CACHE[key] = wrapper
        return wrapper


_WRAPPER_CACHE: dict = {}


def _missing(module):
    return None


def _ptr(ffi, array):
    # from_buffer is a C-level view; array.ctypes would build a python
    # ctypes object per call, which shows up at this call frequency.
    return ffi.from_buffer("float[]", array)


def _wrap_bn_train_fwd(module):
    lib, ffi = module.lib, module.ffi

    def bn_train_fwd(x, gamma, beta, eps, relu, out, x_hat, mean, var, inv_std):
        n, c, p = x.shape
        lib.bn_train_fwd(
            _ptr(ffi, x), _ptr(ffi, gamma), _ptr(ffi, beta), eps, int(relu),
            n, c, p, _ptr(ffi, out), _ptr(ffi, x_hat), _ptr(ffi, mean),
            _ptr(ffi, var), _ptr(ffi, inv_std),
        )

    return bn_train_fwd


def _wrap_bn_eval_fwd(module):
    lib, ffi = module.lib, module.ffi

    def bn_eval_fwd(x, gamma, beta, mean, var, eps, relu, out, x_hat, inv_std):
        n, c, p = x.shape
        lib.bn_eval_fwd(
            _ptr(ffi, x), _ptr(ffi, gamma), _ptr(ffi, beta), _ptr(ffi, mean),
            _ptr(ffi, var), eps, int(relu), n, c, p,
            _ptr(ffi, out), _ptr(ffi, x_hat), _ptr(ffi, inv_std),
        )

    return bn_eval_fwd


def _wrap_bn_bwd(module):
    lib, ffi = module.lib, module.ffi

    def bn_bwd(grad, x_hat, inv_std, gamma, out, relu, training, gx, ggamma, gbeta):
        n, c, p = grad.shape
        lib.bn_bwd(
            _ptr(ffi, grad), _ptr(ffi, x_hat), _ptr(ffi, inv_std),
            _ptr(ffi, gamma), _ptr(ffi, out), int(relu), int(training),
            n, c, p, _ptr(ffi, gx), _ptr(ffi, ggamma), _ptr(ffi, gbeta),
        )

    return bn_bwd


def _wrap_im2col(module):
    lib, ffi = module.lib, module.ffi

    def im2col(x, cols, kernel, stride, padding, out_h, out_w):
        n, c, h, w = x.shape
        lib.im2col(
            _ptr(ffi, x), _ptr(ffi, cols), n, c, h, w,
            kernel, stride, padding, out_h, out_w,
        )

    return im2col


def _wrap_col2im(module):
    lib, ffi = module.lib, module.ffi

    def col2im(cols, gx, kernel, stride, padding, out_h, out_w):
        n, c, h, w = gx.shape
        lib.col2im(
            _ptr(ffi, cols), _ptr(ffi, gx), n, c, h, w,
            kernel, stride, padding, out_h, out_w,
        )

    return col2im


def _wrap_adam(module):
    lib, ffi = module.lib, module.ffi

    def adam_update(param, grad, m, v, lr, beta1, beta2, eps, weight_decay,
                    bias1, bias2):
        lib.adam_update(
            _ptr(ffi, param), _ptr(ffi, grad), _ptr(ffi, m), _ptr(ffi, v),
            param.size, lr, beta1, beta2, eps, weight_decay, bias1, bias2,
        )

    return adam_update


def _wrap_fake_quant(module):
    lib, ffi = module.lib, module.ffi

    def fused_fake_quant(x, out, lo, scale, inv_scale):
        lib.fused_fake_quant(_ptr(ffi, x), _ptr(ffi, out), x.size,
                             lo, scale, inv_scale)

    return fused_fake_quant


def _wrap_maxpool_fwd(module):
    lib, ffi = module.lib, module.ffi

    def maxpool_fwd(x, out, idx, k):
        planes, h, w = x.shape
        lib.maxpool_fwd(_ptr(ffi, x), _ptr(ffi, out),
                        ffi.from_buffer("signed char[]", idx),
                        planes, h, w, k)

    return maxpool_fwd


def _wrap_maxpool_bwd(module):
    lib, ffi = module.lib, module.ffi

    def maxpool_bwd(grad, idx, gx, k):
        planes, h, w = gx.shape
        lib.maxpool_bwd(_ptr(ffi, grad),
                        ffi.from_buffer("signed char[]", idx),
                        _ptr(ffi, gx), planes, h, w, k)

    return maxpool_bwd


_WRAPPERS = {
    "batchnorm_train_fwd": _wrap_bn_train_fwd,
    "batchnorm_eval_fwd": _wrap_bn_eval_fwd,
    "batchnorm_bwd": _wrap_bn_bwd,
    "im2col": _wrap_im2col,
    "col2im": _wrap_col2im,
    "adam_update": _wrap_adam,
    "fused_fake_quant": _wrap_fake_quant,
    "maxpool_fwd": _wrap_maxpool_fwd,
    "maxpool_bwd": _wrap_maxpool_bwd,
}
