"""Backend registry and active-backend selection.

tinygrad-style device selection for the numpy engine: backends register
by name, one is *active* per process, and everything in autograd/nn/
quant consults :func:`active_backend` instead of calling ``np.*`` with
hard-coded dtypes.  Selection is threaded from
``ExperimentConfig.backend`` through :func:`repro.api.context.build_context`
(and the CLI ``--backend`` flags), so worker processes activate the
right backend when they rebuild a config.

    from repro.backend import use_backend

    with use_backend("fast"):
        ...  # float32, fused kernels

The default is ``reference`` — the seed's float64 semantics.

Alongside backend selection this module owns the *fusion* switch:
whether the autograd/nn layers collapse elementwise chains
(relu/batchnorm/softmax/cross-entropy/linear/mse) into single graph
nodes via the backend's fused kernels (the default), or build the
historical one-node-per-primitive graphs.  On the reference backend the
fused kernels compose the same float64 ops in the same order, so the
toggle never changes numerics there — it exists so tests can pin that
exact equality and benchmarks can measure the unfused baseline.
"""

from __future__ import annotations

import contextlib

from repro.backend.base import ArrayBackend
from repro.backend.fast import FastBackend
from repro.backend.reference import ReferenceBackend

DEFAULT_BACKEND = "reference"

_REGISTRY: dict[str, ArrayBackend] = {}
_ACTIVE: list[ArrayBackend] = []


def register_backend(backend: ArrayBackend) -> ArrayBackend:
    """Register ``backend`` under its :attr:`~ArrayBackend.name`."""
    if not backend.name or backend.name == "base":
        raise ValueError("backend must define a distinct name")
    _REGISTRY[backend.name] = backend
    return backend


def available_backends() -> tuple[str, ...]:
    """Registered backend names, sorted."""
    return tuple(sorted(_REGISTRY))


def get_backend(name: str) -> ArrayBackend:
    """Look up a registered backend by name."""
    try:
        return _REGISTRY[name]
    except KeyError:
        raise ValueError(
            f"unknown backend {name!r}; available: {', '.join(available_backends())}"
        ) from None


def active_backend() -> ArrayBackend:
    """The backend all ops currently dispatch to."""
    return _ACTIVE[-1]


def set_active_backend(name: str) -> ArrayBackend:
    """Make ``name`` the process-wide active backend and return it."""
    backend = get_backend(name)
    _ACTIVE[-1] = backend
    return backend


@contextlib.contextmanager
def use_backend(name: str):
    """Temporarily activate ``name``; restores the previous backend on exit."""
    backend = get_backend(name)
    _ACTIVE.append(backend)
    try:
        yield backend
    finally:
        _ACTIVE.pop()


_FUSION: list[bool] = [True]


def fusion_enabled() -> bool:
    """Whether elementwise chains dispatch to the fused backend kernels."""
    return _FUSION[-1]


def set_fusion(enabled: bool) -> bool:
    """Set the process-wide fusion flag; returns the previous value."""
    previous = _FUSION[-1]
    _FUSION[-1] = bool(enabled)
    return previous


@contextlib.contextmanager
def use_fusion(enabled: bool):
    """Temporarily force fusion on/off; restores the previous state on exit."""
    _FUSION.append(bool(enabled))
    try:
        yield
    finally:
        _FUSION.pop()


register_backend(ReferenceBackend())
register_backend(FastBackend())
_ACTIVE.append(_REGISTRY[DEFAULT_BACKEND])
