"""Backend registry and active-backend selection.

tinygrad-style device selection for the numpy engine: backends register
by name, one is *active* per process, and everything in autograd/nn/
quant consults :func:`active_backend` instead of calling ``np.*`` with
hard-coded dtypes.  Selection is threaded from
``ExperimentConfig.backend`` through :func:`repro.api.context.build_context`
(and the CLI ``--backend`` flags), so worker processes activate the
right backend when they rebuild a config.

    from repro.backend import use_backend

    with use_backend("fast"):
        ...  # float32, fused kernels

The default is ``reference`` — the seed's float64 semantics.
"""

from __future__ import annotations

import contextlib

from repro.backend.base import ArrayBackend
from repro.backend.fast import FastBackend
from repro.backend.reference import ReferenceBackend

DEFAULT_BACKEND = "reference"

_REGISTRY: dict[str, ArrayBackend] = {}
_ACTIVE: list[ArrayBackend] = []


def register_backend(backend: ArrayBackend) -> ArrayBackend:
    """Register ``backend`` under its :attr:`~ArrayBackend.name`."""
    if not backend.name or backend.name == "base":
        raise ValueError("backend must define a distinct name")
    _REGISTRY[backend.name] = backend
    return backend


def available_backends() -> tuple[str, ...]:
    """Registered backend names, sorted."""
    return tuple(sorted(_REGISTRY))


def get_backend(name: str) -> ArrayBackend:
    """Look up a registered backend by name."""
    try:
        return _REGISTRY[name]
    except KeyError:
        raise ValueError(
            f"unknown backend {name!r}; available: {', '.join(available_backends())}"
        ) from None


def active_backend() -> ArrayBackend:
    """The backend all ops currently dispatch to."""
    return _ACTIVE[-1]


def set_active_backend(name: str) -> ArrayBackend:
    """Make ``name`` the process-wide active backend and return it."""
    backend = get_backend(name)
    _ACTIVE[-1] = backend
    return backend


@contextlib.contextmanager
def use_backend(name: str):
    """Temporarily activate ``name``; restores the previous backend on exit."""
    backend = get_backend(name)
    _ACTIVE.append(backend)
    try:
        yield backend
    finally:
        _ACTIVE.pop()


register_backend(ReferenceBackend())
register_backend(FastBackend())
_ACTIVE.append(_REGISTRY[DEFAULT_BACKEND])
