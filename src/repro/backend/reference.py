"""The ``reference`` backend: the seed's float64 semantics, bit-for-bit.

Every kernel here reproduces the exact operation order the engine used
before the backend seam existed.  Floating-point arithmetic is
deterministic given identical operand order, so "same ops, same order"
is a bit-identity guarantee — the façade/regression suites pin it.
Do not "optimize" this file; that is what :mod:`repro.backend.fast`
is for.
"""

from __future__ import annotations

import numpy as np

from repro.backend._im2col import col2im_reference, im2col_reference
from repro.backend.base import ArrayBackend


class ReferenceBackend(ArrayBackend):
    """float64 engine with the seed's un-fused kernels."""

    name = "reference"
    dtype = np.dtype(np.float64)

    def rng_array(self, value) -> np.ndarray:
        # rng output is already float64; this must stay a no-op view.
        return value.astype(self.dtype, copy=False)

    def im2col(self, x, kernel, stride, padding):
        return im2col_reference(x, kernel, stride, padding)

    def col2im(self, cols, x_shape, kernel, stride, padding):
        return col2im_reference(cols, x_shape, kernel, stride, padding)

    def fake_quant(self, x, quantizer):
        # The quantizer's own float64 quantize -> int64 round -> dequantize
        # chain is the seed behavior; delegate untouched.
        return quantizer.fake_quant(x)

    def sgd_update(self, param, grad, velocity, lr, momentum, weight_decay):
        if weight_decay:
            grad = grad + weight_decay * param
        if momentum:
            velocity *= momentum
            velocity += grad
            grad = velocity
        return param - lr * grad

    def adam_update(self, param, grad, m, v, lr, beta1, beta2, eps,
                    weight_decay, bias1, bias2):
        if weight_decay:
            grad = grad + weight_decay * param
        m *= beta1
        m += (1.0 - beta1) * grad
        v *= beta2
        v += (1.0 - beta2) * grad * grad
        m_hat = m / bias1
        v_hat = v / bias2
        return param - lr * m_hat / (np.sqrt(v_hat) + eps)
