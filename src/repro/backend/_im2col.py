"""Shared im2col/col2im kernels used by the array backends.

This module is intentionally free of any :mod:`repro.autograd` import:
the backends own the conv lowering, and the autograd conv ops dispatch
to the active backend.  Two families live here:

* the *reference* kernels — the seed implementation, bit-for-bit:
  fancy-indexing gather for ``im2col`` and a buffered ``np.add.at``
  scatter for ``col2im`` (float64 semantics come from the caller's
  arrays, not from this module);
* the *fast* kernels — a zero-copy ``as_strided`` window view feeding
  one contiguous reshape for ``im2col``, and a k*k strided-slice
  accumulation for ``col2im`` that replaces ``np.add.at`` (whose
  buffered fancy-indexing path dominates conv backward wall-clock).

Both families are dtype-preserving: padding and scatter targets are
allocated with the input's dtype, never numpy's float64 default.
"""

from __future__ import annotations

import numpy as np


def conv_output_size(size: int, kernel: int, stride: int, padding: int) -> int:
    """Spatial output size of a convolution/pooling window sweep."""
    out = (size + 2 * padding - kernel) // stride + 1
    if out <= 0:
        raise ValueError(
            f"convolution produces non-positive output size for input={size}, "
            f"kernel={kernel}, stride={stride}, padding={padding}"
        )
    return out


def im2col_indices(height, width, kernel, stride, padding):
    """Index arrays that gather conv patches into a matrix."""
    out_h = conv_output_size(height, kernel, stride, padding)
    out_w = conv_output_size(width, kernel, stride, padding)
    i0 = np.repeat(np.arange(kernel), kernel)
    j0 = np.tile(np.arange(kernel), kernel)
    i1 = stride * np.repeat(np.arange(out_h), out_w)
    j1 = stride * np.tile(np.arange(out_w), out_h)
    rows = i0.reshape(-1, 1) + i1.reshape(1, -1)
    cols = j0.reshape(-1, 1) + j1.reshape(1, -1)
    return rows, cols, out_h, out_w


# ---------------------------------------------------------------------------
# Reference kernels (seed semantics).
# ---------------------------------------------------------------------------

def im2col_reference(x: np.ndarray, kernel: int, stride: int, padding: int):
    """Rearrange (N, C, H, W) into (C*k*k, N*out_h*out_w) patch columns."""
    n, c, h, w = x.shape
    if padding > 0:
        x = np.pad(x, ((0, 0), (0, 0), (padding, padding), (padding, padding)))
    rows, cols, out_h, out_w = im2col_indices(h, w, kernel, stride, padding)
    # Shape: (N, C, k*k, out_h*out_w)
    patches = x[:, :, rows, cols]
    # -> (C, k*k, N, out_h*out_w) -> (C*k*k, N*out_h*out_w)
    patches = patches.transpose(1, 2, 0, 3).reshape(c * kernel * kernel, -1)
    return patches, out_h, out_w


def col2im_reference(cols: np.ndarray, x_shape, kernel: int, stride: int,
                     padding: int) -> np.ndarray:
    """Adjoint of im2col: scatter patch columns back, accumulating."""
    n, c, h, w = x_shape
    h_pad, w_pad = h + 2 * padding, w + 2 * padding
    x_padded = np.zeros((n, c, h_pad, w_pad), dtype=cols.dtype)
    rows, cols_idx, out_h, out_w = im2col_indices(h, w, kernel, stride, padding)
    reshaped = cols.reshape(c, kernel * kernel, n, out_h * out_w).transpose(2, 0, 1, 3)
    np.add.at(x_padded, (slice(None), slice(None), rows, cols_idx), reshaped)
    if padding > 0:
        return x_padded[:, :, padding:-padding, padding:-padding]
    return x_padded


# ---------------------------------------------------------------------------
# Fast kernels.
# ---------------------------------------------------------------------------

def im2col_strided(x: np.ndarray, kernel: int, stride: int, padding: int):
    """im2col via an ``as_strided`` window view + one contiguous reshape.

    The view costs nothing; the reshape performs the single gather copy
    that hands BLAS a C-contiguous (C*k*k, N*out_h*out_w) matrix.  The
    column ordering matches :func:`im2col_reference` exactly (row-major
    within the k*k patch, output positions row-major).
    """
    n, c, h, w = x.shape
    if padding > 0:
        x = np.pad(x, ((0, 0), (0, 0), (padding, padding), (padding, padding)))
    out_h = conv_output_size(h, kernel, stride, padding)
    out_w = conv_output_size(w, kernel, stride, padding)
    s0, s1, s2, s3 = x.strides
    windows = np.lib.stride_tricks.as_strided(
        x,
        shape=(n, c, kernel, kernel, out_h, out_w),
        strides=(s0, s1, s2, s3, s2 * stride, s3 * stride),
        writeable=False,
    )
    cols = windows.transpose(1, 2, 3, 0, 4, 5).reshape(
        c * kernel * kernel, n * out_h * out_w
    )
    return cols, out_h, out_w


def col2im_sliced(cols: np.ndarray, x_shape, kernel: int, stride: int,
                  padding: int) -> np.ndarray:
    """col2im as k*k strided-slice accumulations (no ``np.add.at``).

    For each of the k*k positions inside the patch, all output windows
    touch *distinct* input pixels, so a vectorized ``+=`` on a strided
    slice is exact; overlap between positions accumulates across the
    k*k loop iterations.  Orders of magnitude faster than the buffered
    fancy-indexing scatter for the 3x3 kernels that dominate the paper's
    workloads.
    """
    n, c, h, w = x_shape
    h_pad, w_pad = h + 2 * padding, w + 2 * padding
    out_h = conv_output_size(h, kernel, stride, padding)
    out_w = conv_output_size(w, kernel, stride, padding)
    x_padded = np.zeros((n, c, h_pad, w_pad), dtype=cols.dtype)
    patches = cols.reshape(c, kernel, kernel, n, out_h, out_w)
    for i in range(kernel):
        i_end = i + stride * out_h
        for j in range(kernel):
            j_end = j + stride * out_w
            x_padded[:, :, i:i_end:stride, j:j_end:stride] += (
                patches[:, i, j].transpose(1, 0, 2, 3)
            )
    if padding > 0:
        return x_padded[:, :, padding:-padding, padding:-padding]
    return x_padded
