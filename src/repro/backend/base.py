"""The ``ArrayBackend`` seam: dtype policy + hot-path array kernels.

A backend owns every decision the autograd/nn/quant stack used to make
by calling ``np.*`` directly:

* the floating dtype (``float64`` for the reference engine, ``float32``
  for the fast path) and all array creation/coercion;
* the conv lowering (im2col gather, col2im scatter, matmul dispatch);
* the fused hot loops — fake-quant round-clip and the SGD/Adam
  parameter updates — which the fast backend collapses into in-place
  chains (optionally jitted via numba when it is importable);
* the fused elementwise chains — relu, batchnorm (train/eval, with an
  optional trailing relu), softmax/log-softmax/cross-entropy, bias add,
  linear, mse — each exposed as a forward kernel returning an opaque
  *residual* plus a matching backward kernel, so the autograd layer can
  record one graph node per chain instead of one per primitive.

The base-class implementations of the fused chains compose the exact
float64-era op sequence of the seed engine, in the same order — the
reference backend inherits them unchanged, which is what keeps fused
reference runs bit-identical to the historical per-primitive graphs.
Residuals are backend-opaque: each backend saves exactly what its own
backward needs (a bool mask for relu, ``(x_hat, inv_std, ...)`` for
batchnorm), and nothing else — forward temporaries die with the
forward call instead of living in backward closures.

Backends are registered by name in :mod:`repro.backend` and selected
via ``ExperimentConfig.backend`` / ``repro ... --backend``.
"""

from __future__ import annotations

import numpy as np


class ArrayBackend:
    """Base class for array backends.

    Subclasses set :attr:`name` and :attr:`dtype` and may override any
    kernel.  The base implementations are dtype-generic and correct, so
    a backend only overrides what it wants to specialize.
    """

    name: str = "base"
    dtype: np.dtype = np.dtype(np.float64)

    # ------------------------------------------------------------------
    # dtype policy / array creation
    # ------------------------------------------------------------------
    def asarray(self, value) -> np.ndarray:
        """Coerce ``value`` to this backend's floating dtype (no copy if possible)."""
        if isinstance(value, np.ndarray):
            return value.astype(self.dtype, copy=False)
        return np.asarray(value, dtype=self.dtype)

    def zeros(self, shape) -> np.ndarray:
        return np.zeros(shape, dtype=self.dtype)

    def ones(self, shape) -> np.ndarray:
        return np.ones(shape, dtype=self.dtype)

    def full(self, shape, fill_value) -> np.ndarray:
        return np.full(shape, fill_value, dtype=self.dtype)

    def zeros_like(self, x: np.ndarray) -> np.ndarray:
        return np.zeros_like(x)

    def rng_array(self, value) -> np.ndarray:
        """Cast an rng-produced float64 array to the backend dtype.

        Kept separate from :meth:`asarray` so it is explicit that random
        streams are always *drawn* in float64 (identical sequences on
        every backend) and only then narrowed.
        """
        return value.astype(self.dtype, copy=False)

    # ------------------------------------------------------------------
    # Linear algebra / conv lowering
    # ------------------------------------------------------------------
    def matmul(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        return a @ b

    def im2col(self, x: np.ndarray, kernel: int, stride: int, padding: int):
        raise NotImplementedError

    def col2im(self, cols: np.ndarray, x_shape, kernel: int, stride: int,
               padding: int) -> np.ndarray:
        raise NotImplementedError

    # ------------------------------------------------------------------
    # Fused hot loops
    # ------------------------------------------------------------------
    def fake_quant(self, x: np.ndarray, quantizer) -> np.ndarray:
        """Quantize-dequantize ``x`` through ``quantizer`` (eqn. 1)."""
        raise NotImplementedError

    def sgd_update(self, param: np.ndarray, grad: np.ndarray,
                   velocity: np.ndarray | None, lr: float, momentum: float,
                   weight_decay: float) -> np.ndarray:
        """One SGD(+momentum, +weight decay) step; returns the new param array.

        ``velocity`` is mutated in place when momentum is active (it is
        the optimizer's slot buffer).  Whether ``param`` itself is
        updated in place is backend-defined — callers must rebind
        ``param.data`` to the return value.
        """
        raise NotImplementedError

    def adam_update(self, param: np.ndarray, grad: np.ndarray,
                    m: np.ndarray, v: np.ndarray, lr: float, beta1: float,
                    beta2: float, eps: float, weight_decay: float,
                    bias1: float, bias2: float) -> np.ndarray:
        """One bias-corrected Adam step; returns the new param array.

        ``m``/``v`` are the optimizer's moment buffers, mutated in place.
        """
        raise NotImplementedError

    # ------------------------------------------------------------------
    # Fused elementwise chains
    #
    # Each `<op>_fwd` returns ``(out, residual)`` (plus batch statistics
    # for batchnorm_train); ``residual`` is opaque to callers and passed
    # verbatim to the matching `<op>_bwd`.  The compositions below are
    # the seed's op sequences — subclasses override with single-pass
    # versions but must keep the (out, residual) contract.
    # ------------------------------------------------------------------
    def relu_fwd(self, x: np.ndarray):
        """max(x, 0) with the backward mask saved as the residual."""
        mask = x > 0
        return x * mask, mask

    def relu_bwd(self, grad: np.ndarray, residual) -> np.ndarray:
        return grad * residual

    def bias_add(self, x: np.ndarray, bias: np.ndarray, axis: int = 1) -> np.ndarray:
        """Broadcast-add a 1-D ``bias`` along ``axis`` of ``x``."""
        shape = [1] * x.ndim
        shape[axis] = -1
        return x + bias.reshape(shape)

    def batchnorm_train(self, x: np.ndarray, gamma: np.ndarray,
                        beta: np.ndarray, eps: float, fuse_relu: bool = False):
        """Training-mode batchnorm over (N, H, W), optionally + relu.

        Returns ``(out, mean, var, residual)`` — ``mean``/``var`` are the
        *biased* batch statistics (the layer owns the running-stat EMA and
        the unbiased correction), ``residual`` feeds :meth:`batchnorm_bwd`.
        """
        axes = (0, 2, 3)
        mean = x.mean(axis=axes)
        var = x.var(axis=axes)
        inv_std = 1.0 / np.sqrt(var + eps)
        x_hat = (x - mean[None, :, None, None]) * inv_std[None, :, None, None]
        out = gamma[None, :, None, None] * x_hat + beta[None, :, None, None]
        relu_mask = None
        if fuse_relu:
            relu_mask = out > 0
            out = out * relu_mask
        return out, mean, var, (x_hat, inv_std, relu_mask)

    def batchnorm_eval(self, x: np.ndarray, gamma: np.ndarray,
                       beta: np.ndarray, running_mean: np.ndarray,
                       running_var: np.ndarray, eps: float,
                       fuse_relu: bool = False):
        """Eval-mode batchnorm using running statistics, optionally + relu.

        Returns ``(out, residual)``.
        """
        inv_std = 1.0 / np.sqrt(running_var + eps)
        x_hat = (x - running_mean[None, :, None, None]) * inv_std[None, :, None, None]
        out = gamma[None, :, None, None] * x_hat + beta[None, :, None, None]
        relu_mask = None
        if fuse_relu:
            relu_mask = out > 0
            out = out * relu_mask
        return out, (x_hat, inv_std, relu_mask)

    def batchnorm_bwd(self, grad: np.ndarray, gamma: np.ndarray, residual,
                      training: bool):
        """Backward for either batchnorm mode; returns (gx, ggamma, gbeta)."""
        x_hat, inv_std, relu_mask = residual
        if relu_mask is not None:
            grad = grad * relu_mask
        axes = (0, 2, 3)
        grad_gamma = (grad * x_hat).sum(axis=axes)
        grad_beta = grad.sum(axis=axes)
        scale = (gamma * inv_std)[None, :, None, None]
        if not training:
            return grad * scale, grad_gamma, grad_beta
        mean_dy = grad.mean(axis=axes)[None, :, None, None]
        mean_dy_xhat = (grad * x_hat).mean(axis=axes)[None, :, None, None]
        grad_x = scale * (grad - mean_dy - x_hat * mean_dy_xhat)
        return grad_x, grad_gamma, grad_beta

    def softmax_fwd(self, x: np.ndarray, axis: int) -> np.ndarray:
        """Numerically stable softmax; the output is its own residual."""
        shifted = x - x.max(axis=axis, keepdims=True)
        exp = np.exp(shifted)
        return exp / exp.sum(axis=axis, keepdims=True)

    def softmax_bwd(self, grad: np.ndarray, out: np.ndarray,
                    axis: int) -> np.ndarray:
        dot = (grad * out).sum(axis=axis, keepdims=True)
        return out * (grad - dot)

    def log_softmax_fwd(self, x: np.ndarray, axis: int) -> np.ndarray:
        """Stable log-softmax; backward recomputes exp(out), saving nothing."""
        shifted = x - x.max(axis=axis, keepdims=True)
        log_sum = np.log(np.exp(shifted).sum(axis=axis, keepdims=True))
        return shifted - log_sum

    def log_softmax_bwd(self, grad: np.ndarray, out: np.ndarray,
                        axis: int) -> np.ndarray:
        # exp(out) here is bit-identical to the forward's softmax — one
        # transcendental recompute instead of an (N, K) array pinned in
        # the closure for the graph's lifetime.
        soft = np.exp(out)
        return grad - soft * grad.sum(axis=axis, keepdims=True)

    def cross_entropy_fwd(self, logits: np.ndarray, targets: np.ndarray):
        """Mean CE over integer targets; residual is the log-probs matrix."""
        n = logits.shape[0]
        shifted = logits - logits.max(axis=1, keepdims=True)
        log_sum = np.log(np.exp(shifted).sum(axis=1, keepdims=True))
        log_probs = shifted - log_sum
        loss = -log_probs[np.arange(n), targets].mean()
        return np.asarray(loss), log_probs

    def cross_entropy_bwd(self, grad: np.ndarray, log_probs: np.ndarray,
                          targets: np.ndarray) -> np.ndarray:
        n = log_probs.shape[0]
        # exp(log_probs) rebuilds the softmax the seed kept alive as
        # ``soft``; the fresh array doubles as the ``soft.copy()``.
        g = np.exp(log_probs)
        g[np.arange(n), targets] -= 1.0
        return g * (grad / n)

    def dropout_mask(self, draw: np.ndarray, p: float) -> np.ndarray:
        """Inverted-dropout mask from a float64 uniform ``draw``."""
        keep = (draw >= p).astype(self.dtype)
        return keep / (1.0 - p)

    def linear_fwd(self, x: np.ndarray, weight: np.ndarray,
                   bias: np.ndarray | None) -> np.ndarray:
        """x (N, I) @ weight (O, I)^T + bias — one node instead of three."""
        out = self.matmul(x, weight.T)
        if bias is not None:
            out = out + bias
        return out

    def linear_bwd(self, grad: np.ndarray, x: np.ndarray, weight: np.ndarray,
                   has_bias: bool):
        """Returns (gx, gw, gb); ``gb`` is None without a bias."""
        # grad @ weight.T.T hits BLAS with the same strides as the seed's
        # transpose-node round trip; gw keeps the seed's transposed-view
        # layout so optimizer arithmetic sees identical operands.
        gx = self.matmul(grad, weight)
        gw = self.matmul(x.T, grad).T
        gb = grad.sum(axis=0) if has_bias else None
        return gx, gw, gb

    def maxpool_fwd(self, x: np.ndarray, kernel: int):
        """Non-overlapping max pool (stride == kernel, dims divisible).

        Returns ``(out, residual)``; the residual saves the argmax
        indices and the window-expansion layout — not the k*k window
        expansion itself, which the per-primitive graph pinned in its
        closure.
        """
        n, c, h, w = x.shape
        out_h, out_w = h // kernel, w // kernel
        reshaped = x.reshape(n, c, out_h, kernel, out_w, kernel)
        windows = reshaped.transpose(0, 1, 2, 4, 3, 5).reshape(
            n, c, out_h, out_w, kernel * kernel
        )
        argmax = windows.argmax(axis=-1)
        out = np.take_along_axis(windows, argmax[..., None], axis=-1)[..., 0]
        return out, (argmax, windows.dtype, windows.strides, kernel)

    def maxpool_bwd(self, grad: np.ndarray, residual) -> np.ndarray:
        argmax, dtype, win_strides, kernel = residual
        n, c, out_h, out_w = argmax.shape
        # ``zeros_like(windows)`` in K order, reconstructed from the
        # saved strides: when the window expansion was a no-copy view
        # (w == kernel) its layout is non-contiguous, the per-primitive
        # graph's scatter buffer inherited it, and the reshape below
        # returned a *view* with twisted strides — downstream reductions
        # block differently over such a view, so reproducing the layout
        # (not just the values) is what keeps reference runs
        # bit-for-bit.  The 1-element prototype buffer is never read.
        proto = np.lib.stride_tricks.as_strided(
            np.empty(1, dtype=dtype),
            shape=argmax.shape + (kernel * kernel,),
            strides=win_strides,
        )
        grad_windows = np.zeros_like(proto)
        np.put_along_axis(grad_windows, argmax[..., None], grad[..., None], axis=-1)
        g = grad_windows.reshape(n, c, out_h, out_w, kernel, kernel)
        return g.transpose(0, 1, 2, 4, 3, 5).reshape(
            n, c, out_h * kernel, out_w * kernel
        )

    def mse_fwd(self, prediction: np.ndarray, target: np.ndarray):
        """Mean squared error; returns (loss, residual)."""
        diff = prediction + (-target)
        sq = diff * diff
        total = sq.sum(axis=None, keepdims=False)
        inv_count = self.asarray(1.0 / diff.size)
        return total * inv_count, (diff, inv_count)

    def mse_bwd(self, grad: np.ndarray, residual):
        """Returns the prediction gradient; the target gradient is its negation."""
        diff, inv_count = residual
        gsq = np.broadcast_to(grad * inv_count, diff.shape).copy()
        # The per-primitive graph multiplied (diff * diff) twice and
        # summed the two identical parent gradients; t + t matches it.
        t = gsq * diff
        return t + t

    def __repr__(self) -> str:
        return f"<{type(self).__name__} name={self.name!r} dtype={self.dtype}>"
