"""The ``ArrayBackend`` seam: dtype policy + hot-path array kernels.

A backend owns every decision the autograd/nn/quant stack used to make
by calling ``np.*`` directly:

* the floating dtype (``float64`` for the reference engine, ``float32``
  for the fast path) and all array creation/coercion;
* the conv lowering (im2col gather, col2im scatter, matmul dispatch);
* the fused hot loops — fake-quant round-clip and the SGD/Adam
  parameter updates — which the fast backend collapses into in-place
  chains (optionally jitted via numba when it is importable).

Backends are registered by name in :mod:`repro.backend` and selected
via ``ExperimentConfig.backend`` / ``repro ... --backend``.
"""

from __future__ import annotations

import numpy as np


class ArrayBackend:
    """Base class for array backends.

    Subclasses set :attr:`name` and :attr:`dtype` and may override any
    kernel.  The base implementations are dtype-generic and correct, so
    a backend only overrides what it wants to specialize.
    """

    name: str = "base"
    dtype: np.dtype = np.dtype(np.float64)

    # ------------------------------------------------------------------
    # dtype policy / array creation
    # ------------------------------------------------------------------
    def asarray(self, value) -> np.ndarray:
        """Coerce ``value`` to this backend's floating dtype (no copy if possible)."""
        if isinstance(value, np.ndarray):
            return value.astype(self.dtype, copy=False)
        return np.asarray(value, dtype=self.dtype)

    def zeros(self, shape) -> np.ndarray:
        return np.zeros(shape, dtype=self.dtype)

    def ones(self, shape) -> np.ndarray:
        return np.ones(shape, dtype=self.dtype)

    def full(self, shape, fill_value) -> np.ndarray:
        return np.full(shape, fill_value, dtype=self.dtype)

    def zeros_like(self, x: np.ndarray) -> np.ndarray:
        return np.zeros_like(x)

    def rng_array(self, value) -> np.ndarray:
        """Cast an rng-produced float64 array to the backend dtype.

        Kept separate from :meth:`asarray` so it is explicit that random
        streams are always *drawn* in float64 (identical sequences on
        every backend) and only then narrowed.
        """
        return value.astype(self.dtype, copy=False)

    # ------------------------------------------------------------------
    # Linear algebra / conv lowering
    # ------------------------------------------------------------------
    def matmul(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        return a @ b

    def im2col(self, x: np.ndarray, kernel: int, stride: int, padding: int):
        raise NotImplementedError

    def col2im(self, cols: np.ndarray, x_shape, kernel: int, stride: int,
               padding: int) -> np.ndarray:
        raise NotImplementedError

    # ------------------------------------------------------------------
    # Fused hot loops
    # ------------------------------------------------------------------
    def fake_quant(self, x: np.ndarray, quantizer) -> np.ndarray:
        """Quantize-dequantize ``x`` through ``quantizer`` (eqn. 1)."""
        raise NotImplementedError

    def sgd_update(self, param: np.ndarray, grad: np.ndarray,
                   velocity: np.ndarray | None, lr: float, momentum: float,
                   weight_decay: float) -> np.ndarray:
        """One SGD(+momentum, +weight decay) step; returns the new param array.

        ``velocity`` is mutated in place when momentum is active (it is
        the optimizer's slot buffer).  Whether ``param`` itself is
        updated in place is backend-defined — callers must rebind
        ``param.data`` to the return value.
        """
        raise NotImplementedError

    def adam_update(self, param: np.ndarray, grad: np.ndarray,
                    m: np.ndarray, v: np.ndarray, lr: float, beta1: float,
                    beta2: float, eps: float, weight_decay: float,
                    bias1: float, bias2: float) -> np.ndarray:
        """One bias-corrected Adam step; returns the new param array.

        ``m``/``v`` are the optimizer's moment buffers, mutated in place.
        """
        raise NotImplementedError

    def __repr__(self) -> str:
        return f"<{type(self).__name__} name={self.name!r} dtype={self.dtype}>"
