"""Tape-based reverse-mode autodiff ``Tensor``.

The engine follows the classic design: every differentiable operation
records a backward closure and its parent tensors; calling
:meth:`Tensor.backward` topologically sorts the recorded graph and
accumulates gradients into ``Tensor.grad``.

Only float64/float32 data participates in differentiation.  Gradients are
stored as plain numpy arrays of the same shape as ``Tensor.data``.

Broadcasting is fully supported: backward closures reduce gradients back
to the parent's shape via :func:`unbroadcast`.
"""

from __future__ import annotations

import contextlib
import threading

import numpy as np

from repro.backend import active_backend, fusion_enabled

_GRAD_STATE = threading.local()


def is_grad_enabled() -> bool:
    """Return True when operations should record the autograd tape."""
    return getattr(_GRAD_STATE, "enabled", True)


@contextlib.contextmanager
def no_grad():
    """Context manager that disables graph recording.

    Used for evaluation passes, activation-density measurement sweeps and
    the weight-quantization step of Algorithm 1, none of which should
    contribute to gradients.
    """
    previous = is_grad_enabled()
    _GRAD_STATE.enabled = False
    try:
        yield
    finally:
        _GRAD_STATE.enabled = previous


def unbroadcast(grad: np.ndarray, shape: tuple) -> np.ndarray:
    """Sum ``grad`` down to ``shape``, undoing numpy broadcasting.

    Broadcasting prepends singleton axes and stretches size-1 axes; the
    adjoint of broadcasting is summation over the broadcast axes.
    """
    if grad.shape == shape:
        return grad
    # Sum over prepended axes.
    extra = grad.ndim - len(shape)
    if extra > 0:
        grad = grad.sum(axis=tuple(range(extra)))
    # Sum over stretched singleton axes.
    axes = tuple(i for i, s in enumerate(shape) if s == 1 and grad.shape[i] != 1)
    if axes:
        grad = grad.sum(axis=axes, keepdims=True)
    return grad.reshape(shape)


def _as_array(value) -> np.ndarray:
    return active_backend().asarray(value)


class Tensor:
    """N-dimensional array with reverse-mode gradient tracking.

    Parameters
    ----------
    data:
        Array-like payload; converted to the active backend's floating
        dtype (float64 on ``reference``, float32 on ``fast``).
    requires_grad:
        When True, operations involving this tensor build a backward graph
        and :meth:`backward` fills :attr:`grad`.
    """

    __slots__ = ("data", "grad", "requires_grad", "_backward", "_parents", "_op")
    __array_priority__ = 100  # numpy defers binary ops to Tensor

    def __init__(self, data, requires_grad: bool = False):
        self.data = _as_array(data)
        self.requires_grad = bool(requires_grad)
        self.grad: np.ndarray | None = None
        self._backward = None
        self._parents: tuple = ()
        self._op = ""

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    @staticmethod
    def zeros(shape, requires_grad: bool = False) -> "Tensor":
        return Tensor(active_backend().zeros(shape), requires_grad=requires_grad)

    @staticmethod
    def ones(shape, requires_grad: bool = False) -> "Tensor":
        return Tensor(active_backend().ones(shape), requires_grad=requires_grad)

    @staticmethod
    def from_op(data: np.ndarray, parents: tuple, backward, op: str = "") -> "Tensor":
        """Create a graph node for ``data`` produced from ``parents``.

        ``backward`` is a closure receiving the upstream gradient and
        returning a tuple of gradients aligned with ``parents`` (entries
        may be None for non-differentiable parents).  Graph recording is
        skipped entirely inside :func:`no_grad` or when no parent requires
        a gradient.
        """
        requires = is_grad_enabled() and any(p.requires_grad for p in parents)
        out = Tensor(data, requires_grad=requires)
        if requires:
            out._backward = backward
            out._parents = parents
            out._op = op
        return out

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def shape(self) -> tuple:
        return self.data.shape

    @property
    def ndim(self) -> int:
        return self.data.ndim

    @property
    def size(self) -> int:
        return self.data.size

    def __len__(self) -> int:
        return len(self.data)

    def __repr__(self) -> str:
        grad_flag = ", requires_grad=True" if self.requires_grad else ""
        return f"Tensor(shape={self.shape}{grad_flag}, op={self._op or 'leaf'})"

    def numpy(self) -> np.ndarray:
        """Return the underlying numpy array (no copy)."""
        return self.data

    def item(self) -> float:
        return float(self.data)

    def detach(self) -> "Tensor":
        """Return a new leaf tensor sharing this tensor's data."""
        return Tensor(self.data)

    def zero_grad(self) -> None:
        self.grad = None

    # ------------------------------------------------------------------
    # Backward pass
    # ------------------------------------------------------------------
    def backward(self, grad: np.ndarray | None = None) -> None:
        """Run reverse-mode differentiation from this tensor.

        Parameters
        ----------
        grad:
            Upstream gradient.  Defaults to 1.0 and requires this tensor
            to be a scalar in that case.
        """
        if not self.requires_grad:
            raise RuntimeError("backward() called on a tensor that does not require grad")
        if grad is None:
            if self.data.size != 1:
                raise RuntimeError("grad must be supplied for non-scalar backward()")
            grad = np.ones_like(self.data)
        else:
            grad = _as_array(grad)
            if grad.shape != self.data.shape:
                raise ValueError(
                    f"grad shape {grad.shape} does not match tensor shape {self.data.shape}"
                )

        topo: list[Tensor] = []
        visited: set[int] = set()
        stack: list[tuple[Tensor, bool]] = [(self, False)]
        # Iterative DFS post-order: deep graphs (VGG19 unrolled over many
        # epochs of ops) overflow Python's recursion limit otherwise.
        while stack:
            node, processed = stack.pop()
            if processed:
                topo.append(node)
                continue
            if id(node) in visited:
                continue
            visited.add(id(node))
            stack.append((node, True))
            for parent in node._parents:
                if parent.requires_grad and id(parent) not in visited:
                    stack.append((parent, False))

        grads: dict[int, np.ndarray] = {id(self): grad}
        for node in reversed(topo):
            node_grad = grads.pop(id(node), None)
            if node_grad is None:
                continue
            if node.grad is None:
                node.grad = node_grad.copy() if node._backward is None else node_grad
            else:
                node.grad = node.grad + node_grad
            if node._backward is None:
                continue
            parent_grads = node._backward(node_grad)
            for parent, pgrad in zip(node._parents, parent_grads):
                if pgrad is None or not parent.requires_grad:
                    continue
                key = id(parent)
                if key in grads:
                    grads[key] = grads[key] + pgrad
                else:
                    grads[key] = pgrad
        # Non-leaf intermediate gradients are kept only transiently; free
        # them so long training loops do not accumulate memory.
        for node in topo:
            if node._backward is not None and node is not self:
                node.grad = None

    # ------------------------------------------------------------------
    # Arithmetic
    # ------------------------------------------------------------------
    def _coerce(self, other) -> "Tensor":
        return other if isinstance(other, Tensor) else Tensor(other)

    def __add__(self, other) -> "Tensor":
        other = self._coerce(other)
        out_data = self.data + other.data

        def backward(grad):
            return (
                unbroadcast(grad, self.data.shape),
                unbroadcast(grad, other.data.shape),
            )

        return Tensor.from_op(out_data, (self, other), backward, "add")

    __radd__ = __add__

    def __neg__(self) -> "Tensor":
        def backward(grad):
            return (-grad,)

        return Tensor.from_op(-self.data, (self,), backward, "neg")

    def __sub__(self, other) -> "Tensor":
        return self + (-self._coerce(other))

    def __rsub__(self, other) -> "Tensor":
        return self._coerce(other) + (-self)

    def __mul__(self, other) -> "Tensor":
        other = self._coerce(other)
        out_data = self.data * other.data

        def backward(grad):
            return (
                unbroadcast(grad * other.data, self.data.shape),
                unbroadcast(grad * self.data, other.data.shape),
            )

        return Tensor.from_op(out_data, (self, other), backward, "mul")

    __rmul__ = __mul__

    def __truediv__(self, other) -> "Tensor":
        other = self._coerce(other)
        out_data = self.data / other.data

        def backward(grad):
            return (
                unbroadcast(grad / other.data, self.data.shape),
                unbroadcast(-grad * self.data / (other.data**2), other.data.shape),
            )

        return Tensor.from_op(out_data, (self, other), backward, "div")

    def __rtruediv__(self, other) -> "Tensor":
        return self._coerce(other) / self

    def __pow__(self, exponent: float) -> "Tensor":
        if not np.isscalar(exponent):
            raise TypeError("only scalar exponents are supported")
        out_data = self.data**exponent

        def backward(grad):
            return (grad * exponent * self.data ** (exponent - 1),)

        return Tensor.from_op(out_data, (self,), backward, "pow")

    def __matmul__(self, other) -> "Tensor":
        other = self._coerce(other)
        backend = active_backend()
        out_data = backend.matmul(self.data, other.data)

        def backward(grad):
            a, b = self.data, other.data
            if a.ndim == 2 and b.ndim == 2:
                return (backend.matmul(grad, b.T), backend.matmul(a.T, grad))
            # General batched case.
            grad_a = backend.matmul(grad, np.swapaxes(b, -1, -2))
            grad_b = backend.matmul(np.swapaxes(a, -1, -2), grad)
            return (
                unbroadcast(grad_a, a.shape),
                unbroadcast(grad_b, b.shape),
            )

        return Tensor.from_op(out_data, (self, other), backward, "matmul")

    # ------------------------------------------------------------------
    # Elementwise nonlinearities
    # ------------------------------------------------------------------
    def relu(self) -> "Tensor":
        if fusion_enabled():
            backend = active_backend()
            out_data, residual = backend.relu_fwd(self.data)

            def backward(grad):
                return (backend.relu_bwd(grad, residual),)

            return Tensor.from_op(out_data, (self,), backward, "relu")
        mask = self.data > 0
        out_data = self.data * mask

        def backward(grad):
            return (grad * mask,)

        return Tensor.from_op(out_data, (self,), backward, "relu")

    def exp(self) -> "Tensor":
        out_data = np.exp(self.data)

        def backward(grad):
            return (grad * out_data,)

        return Tensor.from_op(out_data, (self,), backward, "exp")

    def log(self) -> "Tensor":
        out_data = np.log(self.data)

        def backward(grad):
            return (grad / self.data,)

        return Tensor.from_op(out_data, (self,), backward, "log")

    def sqrt(self) -> "Tensor":
        out_data = np.sqrt(self.data)

        def backward(grad):
            return (grad * 0.5 / out_data,)

        return Tensor.from_op(out_data, (self,), backward, "sqrt")

    def abs(self) -> "Tensor":
        sign = np.sign(self.data)
        out_data = np.abs(self.data)

        def backward(grad):
            return (grad * sign,)

        return Tensor.from_op(out_data, (self,), backward, "abs")

    def tanh(self) -> "Tensor":
        out_data = np.tanh(self.data)

        def backward(grad):
            return (grad * (1.0 - out_data**2),)

        return Tensor.from_op(out_data, (self,), backward, "tanh")

    def sigmoid(self) -> "Tensor":
        out_data = 1.0 / (1.0 + np.exp(-self.data))

        def backward(grad):
            return (grad * out_data * (1.0 - out_data),)

        return Tensor.from_op(out_data, (self,), backward, "sigmoid")

    def clip(self, low: float, high: float) -> "Tensor":
        """Clamp values; gradient is passed through inside the interval."""
        out_data = np.clip(self.data, low, high)
        mask = (self.data >= low) & (self.data <= high)

        def backward(grad):
            return (grad * mask,)

        return Tensor.from_op(out_data, (self,), backward, "clip")

    # ------------------------------------------------------------------
    # Reductions
    # ------------------------------------------------------------------
    def sum(self, axis=None, keepdims: bool = False) -> "Tensor":
        out_data = self.data.sum(axis=axis, keepdims=keepdims)

        def backward(grad):
            g = grad
            if axis is not None and not keepdims:
                g = np.expand_dims(g, axis=axis)
            return (np.broadcast_to(g, self.data.shape).copy(),)

        return Tensor.from_op(out_data, (self,), backward, "sum")

    def mean(self, axis=None, keepdims: bool = False) -> "Tensor":
        if axis is None:
            count = self.data.size
        elif isinstance(axis, tuple):
            count = int(np.prod([self.data.shape[a] for a in axis]))
        else:
            count = self.data.shape[axis]
        return self.sum(axis=axis, keepdims=keepdims) * (1.0 / count)

    def var(self, axis=None, keepdims: bool = False) -> "Tensor":
        centered = self - self.mean(axis=axis, keepdims=True)
        return (centered * centered).mean(axis=axis, keepdims=keepdims)

    def max(self, axis=None, keepdims: bool = False) -> "Tensor":
        out_data = self.data.max(axis=axis, keepdims=keepdims)

        def backward(grad):
            g = grad
            expanded = out_data
            if axis is not None and not keepdims:
                g = np.expand_dims(g, axis=axis)
                expanded = np.expand_dims(out_data, axis=axis)
            mask = self.data == expanded
            # Split gradient equally among ties, matching numpy semantics
            # closely enough for pooling/softmax stability use.  The tie
            # counts are cast to the gradient dtype: int64 operands would
            # otherwise promote a float32 gradient to float64.
            counts = mask.sum(axis=axis, keepdims=True).astype(g.dtype)
            return (mask * g / counts,)

        return Tensor.from_op(out_data, (self,), backward, "max")

    # ------------------------------------------------------------------
    # Shape manipulation
    # ------------------------------------------------------------------
    def reshape(self, *shape) -> "Tensor":
        if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
            shape = tuple(shape[0])
        out_data = self.data.reshape(shape)
        original = self.data.shape

        def backward(grad):
            return (grad.reshape(original),)

        return Tensor.from_op(out_data, (self,), backward, "reshape")

    def transpose(self, *axes) -> "Tensor":
        if not axes:
            axes = tuple(reversed(range(self.data.ndim)))
        elif len(axes) == 1 and isinstance(axes[0], (tuple, list)):
            axes = tuple(axes[0])
        out_data = self.data.transpose(axes)
        inverse = tuple(np.argsort(axes))

        def backward(grad):
            return (grad.transpose(inverse),)

        return Tensor.from_op(out_data, (self,), backward, "transpose")

    def flatten_from(self, start_dim: int = 1) -> "Tensor":
        """Flatten trailing dimensions starting at ``start_dim``."""
        lead = self.data.shape[:start_dim]
        return self.reshape(lead + (-1,))

    def pad2d(self, padding: int) -> "Tensor":
        """Zero-pad the last two (spatial) dimensions symmetrically."""
        if padding == 0:
            return self
        pad_width = [(0, 0)] * (self.data.ndim - 2) + [
            (padding, padding),
            (padding, padding),
        ]
        out_data = np.pad(self.data, pad_width)
        slices = tuple(
            slice(None) if p == (0, 0) else slice(p[0], -p[1]) for p in pad_width
        )

        def backward(grad):
            return (grad[slices],)

        return Tensor.from_op(out_data, (self,), backward, "pad2d")

    def __getitem__(self, index) -> "Tensor":
        out_data = self.data[index]
        shape = self.data.shape

        def backward(grad):
            full = np.zeros(shape, dtype=grad.dtype)
            np.add.at(full, index, grad)
            return (full,)

        return Tensor.from_op(out_data, (self,), backward, "getitem")

    @staticmethod
    def concatenate(tensors: list["Tensor"], axis: int = 0) -> "Tensor":
        out_data = np.concatenate([t.data for t in tensors], axis=axis)
        sizes = [t.data.shape[axis] for t in tensors]
        offsets = np.cumsum([0] + sizes)

        def backward(grad):
            pieces = []
            for i in range(len(sizes)):
                slicer = [slice(None)] * grad.ndim
                slicer[axis] = slice(offsets[i], offsets[i + 1])
                pieces.append(grad[tuple(slicer)])
            return tuple(pieces)

        return Tensor.from_op(out_data, tuple(tensors), backward, "concat")
