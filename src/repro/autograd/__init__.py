"""Reverse-mode automatic differentiation over numpy arrays.

This subpackage is the numerical substrate of the reproduction: a small,
tape-based autograd engine in the spirit of PyTorch's eager mode.  Every
training experiment in the paper (fake-quantized forward passes, straight-
through gradient estimation, standard backpropagation) is executed through
the :class:`~repro.autograd.tensor.Tensor` type defined here.

Public API
----------
``Tensor``
    N-dimensional array with gradient tracking.
``no_grad``
    Context manager disabling graph construction (evaluation mode).
``grad_check``
    Finite-difference gradient verification used extensively by the tests.
"""

from repro.autograd.tensor import Tensor, no_grad, is_grad_enabled
from repro.autograd.gradcheck import grad_check

__all__ = ["Tensor", "no_grad", "is_grad_enabled", "grad_check"]
