"""Composite differentiable functions: softmax, log-softmax, one-hot CE.

Numerically-stable formulations, dispatched to the active backend's
fused kernels (the default).  The fused kernels save only the minimal
backward residual: log-softmax and cross-entropy recompute ``exp`` in
backward instead of pinning the softmax matrix inside the closure for
the graph's lifetime — the legacy in-module closures (kept below for
``use_fusion(False)``) retained those forward temporaries, which is the
behaviour the release-regression test guards against.
"""

from __future__ import annotations

import numpy as np

from repro.autograd.tensor import Tensor
from repro.backend import active_backend, fusion_enabled


def softmax(x: Tensor, axis: int = -1) -> Tensor:
    """Numerically stable softmax along ``axis``."""
    if fusion_enabled():
        backend = active_backend()
        out = backend.softmax_fwd(x.data, axis)

        def backward(grad):
            return (backend.softmax_bwd(grad, out, axis),)

        return Tensor.from_op(out, (x,), backward, "softmax")

    shifted = x.data - x.data.max(axis=axis, keepdims=True)
    exp = np.exp(shifted)
    out = exp / exp.sum(axis=axis, keepdims=True)

    def backward(grad):
        dot = (grad * out).sum(axis=axis, keepdims=True)
        return (out * (grad - dot),)

    return Tensor.from_op(out, (x,), backward, "softmax")


def log_softmax(x: Tensor, axis: int = -1) -> Tensor:
    """Numerically stable log-softmax along ``axis``."""
    if fusion_enabled():
        backend = active_backend()
        out = backend.log_softmax_fwd(x.data, axis)

        def backward(grad):
            return (backend.log_softmax_bwd(grad, out, axis),)

        return Tensor.from_op(out, (x,), backward, "log_softmax")

    shifted = x.data - x.data.max(axis=axis, keepdims=True)
    log_sum = np.log(np.exp(shifted).sum(axis=axis, keepdims=True))
    out = shifted - log_sum
    soft = np.exp(out)

    def backward(grad):
        return (grad - soft * grad.sum(axis=axis, keepdims=True),)

    return Tensor.from_op(out, (x,), backward, "log_softmax")


def cross_entropy(logits: Tensor, targets: np.ndarray) -> Tensor:
    """Mean cross-entropy between ``logits`` (N, K) and integer ``targets`` (N,).

    Fused log-softmax + NLL with the standard ``softmax - onehot`` gradient.
    """
    targets = np.asarray(targets)
    if targets.ndim != 1:
        raise ValueError("targets must be a 1-D array of class indices")
    n = logits.data.shape[0]
    if targets.shape[0] != n:
        raise ValueError("batch size mismatch between logits and targets")

    if fusion_enabled():
        backend = active_backend()
        loss, log_probs = backend.cross_entropy_fwd(logits.data, targets)

        def backward(grad):
            return (backend.cross_entropy_bwd(grad, log_probs, targets),)

        return Tensor.from_op(loss, (logits,), backward, "cross_entropy")

    shifted = logits.data - logits.data.max(axis=1, keepdims=True)
    log_sum = np.log(np.exp(shifted).sum(axis=1, keepdims=True))
    log_probs = shifted - log_sum
    loss = -log_probs[np.arange(n), targets].mean()
    soft = np.exp(log_probs)

    def backward(grad):
        g = soft.copy()
        g[np.arange(n), targets] -= 1.0
        return (g * (grad / n),)

    return Tensor.from_op(np.asarray(loss), (logits,), backward, "cross_entropy")


def dropout(x: Tensor, p: float, rng: np.random.Generator, training: bool = True) -> Tensor:
    """Inverted dropout: scales kept activations by 1/(1-p) during training."""
    if not training or p <= 0.0:
        return x
    if not 0.0 <= p < 1.0:
        raise ValueError("dropout probability must be in [0, 1)")
    # The keep-mask is drawn in float64 (identical random stream on every
    # backend) and cast to the tensor dtype before scaling so a float32
    # run is not silently promoted back to float64.
    if fusion_enabled():
        mask = active_backend().dropout_mask(rng.random(x.data.shape), p)
    else:
        keep = (rng.random(x.data.shape) >= p).astype(x.data.dtype)
        mask = keep / (1.0 - p)
    out = x.data * mask

    def backward(grad):
        return (grad * mask,)

    return Tensor.from_op(out, (x,), backward, "dropout")
