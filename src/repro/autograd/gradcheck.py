"""Finite-difference gradient verification.

``grad_check`` compares analytic gradients produced by the autograd tape
against central finite differences.  It is used by the test suite to lock
down every primitive (conv, pooling, batchnorm, fake-quant STE, ...).
"""

from __future__ import annotations

import numpy as np

from repro.autograd.tensor import Tensor


def numerical_gradient(func, inputs: list[Tensor], wrt: Tensor, eps: float = 1e-5) -> np.ndarray:
    """Central-difference gradient of ``func(*inputs).sum()`` w.r.t. ``wrt``."""
    grad = np.zeros_like(wrt.data)
    flat = wrt.data.reshape(-1)
    grad_flat = grad.reshape(-1)
    for i in range(flat.size):
        original = flat[i]
        flat[i] = original + eps
        plus = float(func(*inputs).data.sum())
        flat[i] = original - eps
        minus = float(func(*inputs).data.sum())
        flat[i] = original
        grad_flat[i] = (plus - minus) / (2 * eps)
    return grad


def grad_check(
    func,
    inputs: list[Tensor],
    eps: float = 1e-5,
    atol: float = 1e-6,
    rtol: float = 1e-4,
) -> bool:
    """Verify analytic vs numerical gradients for every grad-requiring input.

    Parameters
    ----------
    func:
        Callable mapping ``inputs`` to a single output tensor.
    inputs:
        Leaf tensors; those with ``requires_grad=True`` are checked.

    Returns
    -------
    bool
        True when all gradients match within tolerance.

    Raises
    ------
    AssertionError
        With a diagnostic message on the first mismatching input.
    """
    for tensor in inputs:
        tensor.zero_grad()
    out = func(*inputs)
    out.sum().backward()
    for idx, tensor in enumerate(inputs):
        if not tensor.requires_grad:
            continue
        if tensor.grad is None:
            raise AssertionError(f"input {idx} received no gradient")
        numeric = numerical_gradient(func, inputs, tensor, eps=eps)
        if not np.allclose(tensor.grad, numeric, atol=atol, rtol=rtol):
            max_err = np.abs(tensor.grad - numeric).max()
            raise AssertionError(
                f"gradient mismatch on input {idx}: max abs error {max_err:.3e}"
            )
    return True
