"""Convolution and pooling primitives built on im2col.

These are the compute-dominant operations in VGG19/ResNet18 training, so
they are implemented as single fused graph nodes (rather than compositions
of indexing ops) with vectorized forward/backward numpy kernels.
"""

from __future__ import annotations

import numpy as np

from repro.autograd.tensor import Tensor
from repro.backend import active_backend, fusion_enabled
from repro.backend._im2col import conv_output_size, im2col_indices


def _im2col_indices(height, width, kernel, stride, padding):
    """Index arrays that gather conv patches into a matrix."""
    return im2col_indices(height, width, kernel, stride, padding)


def im2col(x: np.ndarray, kernel: int, stride: int, padding: int):
    """Rearrange (N, C, H, W) into (C*k*k, N*out_h*out_w) patch columns.

    Dispatches to the active backend's kernel (dtype-preserving on both;
    the fast backend uses an ``as_strided`` gather).
    """
    return active_backend().im2col(x, kernel, stride, padding)


def col2im(cols: np.ndarray, x_shape, kernel: int, stride: int, padding: int):
    """Adjoint of :func:`im2col`: scatter patch columns back, accumulating.

    Dispatches to the active backend's kernel.
    """
    return active_backend().col2im(cols, x_shape, kernel, stride, padding)


def conv2d(
    x: Tensor,
    weight: Tensor,
    bias: Tensor | None = None,
    stride: int = 1,
    padding: int = 0,
) -> Tensor:
    """2-D convolution: x (N,C,H,W) * weight (O,C,k,k) -> (N,O,H',W')."""
    n, c, h, w = x.data.shape
    out_channels, in_channels, kernel, kernel_w = weight.data.shape
    if kernel != kernel_w:
        raise ValueError("only square kernels are supported")
    if in_channels != c:
        raise ValueError(f"input has {c} channels, weight expects {in_channels}")

    backend = active_backend()
    cols, out_h, out_w = backend.im2col(x.data, kernel, stride, padding)
    w_mat = weight.data.reshape(out_channels, -1)
    out = backend.matmul(w_mat, cols)  # (O, N*out_h*out_w)
    out = out.reshape(out_channels, n, out_h, out_w).transpose(1, 0, 2, 3)
    if bias is not None:
        out = backend.bias_add(out, bias.data, axis=1)

    parents = (x, weight) if bias is None else (x, weight, bias)

    def backward(grad):
        # grad: (N, O, out_h, out_w)
        grad_mat = grad.transpose(1, 0, 2, 3).reshape(out_channels, -1)
        grad_w = backend.matmul(grad_mat, cols.T).reshape(weight.data.shape)
        if x.requires_grad:
            grad_cols = backend.matmul(w_mat.T, grad_mat)
            grad_x = backend.col2im(grad_cols, x.data.shape, kernel, stride,
                                    padding)
        else:
            # The first conv's input is data: skip its matmul + scatter.
            grad_x = None
        if bias is None:
            return (grad_x, grad_w)
        grad_b = grad.sum(axis=(0, 2, 3))
        return (grad_x, grad_w, grad_b)

    return Tensor.from_op(out, parents, backward, "conv2d")


def max_pool2d(x: Tensor, kernel: int, stride: int | None = None) -> Tensor:
    """Max pooling over non-overlapping or strided square windows."""
    stride = stride or kernel
    n, c, h, w = x.data.shape
    out_h = conv_output_size(h, kernel, stride, 0)
    out_w = conv_output_size(w, kernel, stride, 0)

    block = stride == kernel and h % kernel == 0 and w % kernel == 0
    if block and fusion_enabled():
        # Fused single-node pool on the backend: the residual keeps only
        # argmax indices, not the k*k window expansion.
        backend = active_backend()
        out, residual = backend.maxpool_fwd(x.data, kernel)

        def backward(grad):
            return (backend.maxpool_bwd(grad, residual),)

        return Tensor.from_op(out, (x,), backward, "max_pool2d")

    if block:
        # Fast path: reshape into blocks.
        reshaped = x.data.reshape(n, c, out_h, kernel, out_w, kernel)
        windows = reshaped.transpose(0, 1, 2, 4, 3, 5).reshape(
            n, c, out_h, out_w, kernel * kernel
        )
    else:
        cols, out_h, out_w = im2col(
            x.data.reshape(n * c, 1, h, w), kernel, stride, 0
        )
        windows = cols.reshape(kernel * kernel, n * c, out_h * out_w)
        windows = windows.transpose(1, 2, 0).reshape(n, c, out_h, out_w, -1)

    argmax = windows.argmax(axis=-1)
    out = np.take_along_axis(windows, argmax[..., None], axis=-1)[..., 0]

    def backward(grad):
        grad_windows = np.zeros_like(windows)
        np.put_along_axis(grad_windows, argmax[..., None], grad[..., None], axis=-1)
        if stride == kernel and h % kernel == 0 and w % kernel == 0:
            g = grad_windows.reshape(n, c, out_h, out_w, kernel, kernel)
            g = g.transpose(0, 1, 2, 4, 3, 5).reshape(n, c, h, w)
            return (g,)
        cols_grad = grad_windows.reshape(n * c, out_h * out_w, kernel * kernel)
        cols_grad = cols_grad.transpose(2, 0, 1).reshape(kernel * kernel, -1)
        g = col2im(cols_grad, (n * c, 1, h, w), kernel, stride, 0)
        return (g.reshape(n, c, h, w),)

    return Tensor.from_op(out, (x,), backward, "max_pool2d")


def avg_pool2d(x: Tensor, kernel: int, stride: int | None = None) -> Tensor:
    """Average pooling over square windows."""
    stride = stride or kernel
    n, c, h, w = x.data.shape
    if stride == kernel and h % kernel == 0 and w % kernel == 0:
        out_h, out_w = h // kernel, w // kernel
        reshaped = x.data.reshape(n, c, out_h, kernel, out_w, kernel)
        out = reshaped.mean(axis=(3, 5))

        def backward(grad):
            g = grad[:, :, :, None, :, None] / (kernel * kernel)
            g = np.broadcast_to(g, (n, c, out_h, kernel, out_w, kernel))
            return (g.reshape(n, c, h, w),)

        return Tensor.from_op(out, (x,), backward, "avg_pool2d")

    cols, out_h, out_w = im2col(x.data.reshape(n * c, 1, h, w), kernel, stride, 0)
    windows = cols.reshape(kernel * kernel, n * c, out_h * out_w)
    out = windows.mean(axis=0).reshape(n, c, out_h, out_w)

    def backward(grad):
        grad_flat = grad.reshape(1, n * c, out_h * out_w) / (kernel * kernel)
        cols_grad = np.broadcast_to(grad_flat, (kernel * kernel, n * c, out_h * out_w))
        cols_grad = cols_grad.reshape(kernel * kernel, -1)
        g = col2im(cols_grad, (n * c, 1, h, w), kernel, stride, 0)
        return (g.reshape(n, c, h, w),)

    return Tensor.from_op(out, (x,), backward, "avg_pool2d")


def global_avg_pool2d(x: Tensor) -> Tensor:
    """Global average pooling collapsing the spatial dimensions to 1x1."""
    n, c, h, w = x.data.shape
    out = x.data.mean(axis=(2, 3), keepdims=True)

    def backward(grad):
        g = np.broadcast_to(grad / (h * w), (n, c, h, w))
        return (g.copy(),)

    return Tensor.from_op(out, (x,), backward, "global_avg_pool2d")
