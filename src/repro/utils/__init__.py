"""Shared utilities: seeding, checkpoints, table rendering, configs."""

from repro.utils.seeding import seed_everything, spawn_rngs
from repro.utils.serialization import (
    load_checkpoint,
    load_json,
    save_checkpoint,
    save_json,
)
from repro.utils.tables import format_table

__all__ = [
    "seed_everything",
    "spawn_rngs",
    "save_checkpoint",
    "load_checkpoint",
    "save_json",
    "load_json",
    "format_table",
]
