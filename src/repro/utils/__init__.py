"""Shared utilities: seeding, checkpoints, table rendering, configs."""

from repro.utils.seeding import seed_everything, spawn_rngs
from repro.utils.serialization import load_checkpoint, save_checkpoint
from repro.utils.tables import format_table

__all__ = [
    "seed_everything",
    "spawn_rngs",
    "save_checkpoint",
    "load_checkpoint",
    "format_table",
]
