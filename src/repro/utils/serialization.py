"""Serialization utilities: JSON payloads and ``.npz`` checkpoints."""

from __future__ import annotations

import json
import os
import tempfile
from pathlib import Path

import numpy as np


def atomic_write(path, write) -> None:
    """Write ``path`` via temp file + rename, creating parent directories.

    ``write`` receives a binary file handle.  A crash (or raised
    exception) mid-write never leaves a partial file at ``path`` — an
    existing file there survives untouched, and the temp file is
    removed.
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    fd, tmp_name = tempfile.mkstemp(
        dir=path.parent, prefix=f".{path.name}-", suffix=".tmp"
    )
    try:
        with os.fdopen(fd, "wb") as handle:
            write(handle)
        os.replace(tmp_name, path)
    except BaseException:
        try:
            os.unlink(tmp_name)
        except OSError:
            pass
        raise


def save_json(path, payload: dict) -> None:
    """Write a JSON-serializable payload, creating parent directories."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(payload, indent=2, sort_keys=False) + "\n")


def load_json(path) -> dict:
    """Read a JSON payload written by :func:`save_json`."""
    return json.loads(Path(path).read_text())


def save_checkpoint(path, state_dict: dict, metadata: dict | None = None) -> None:
    """Save a model state dict (and JSON-serializable metadata) to .npz.

    The write is atomic (temp file + rename): a crash mid-write — the
    very event checkpoints guard against — can never corrupt an
    existing checkpoint at ``path``.
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    payload = dict(state_dict)
    if metadata is not None:
        payload["__metadata__"] = np.frombuffer(
            json.dumps(metadata).encode("utf-8"), dtype=np.uint8
        )
    atomic_write(path, lambda handle: np.savez(handle, **payload))


def load_checkpoint(path) -> tuple[dict, dict | None]:
    """Load a checkpoint; returns (state_dict, metadata-or-None)."""
    with np.load(Path(path), allow_pickle=False) as archive:
        state = {}
        metadata = None
        for key in archive.files:
            if key == "__metadata__":
                metadata = json.loads(archive[key].tobytes().decode("utf-8"))
            else:
                state[key] = archive[key]
    return state, metadata
