"""Serialization utilities: JSON payloads and ``.npz`` checkpoints."""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np


def save_json(path, payload: dict) -> None:
    """Write a JSON-serializable payload, creating parent directories."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(payload, indent=2, sort_keys=False) + "\n")


def load_json(path) -> dict:
    """Read a JSON payload written by :func:`save_json`."""
    return json.loads(Path(path).read_text())


def save_checkpoint(path, state_dict: dict, metadata: dict | None = None) -> None:
    """Save a model state dict (and JSON-serializable metadata) to .npz."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    payload = dict(state_dict)
    if metadata is not None:
        payload["__metadata__"] = np.frombuffer(
            json.dumps(metadata).encode("utf-8"), dtype=np.uint8
        )
    np.savez(path, **payload)


def load_checkpoint(path) -> tuple[dict, dict | None]:
    """Load a checkpoint; returns (state_dict, metadata-or-None)."""
    with np.load(Path(path), allow_pickle=False) as archive:
        state = {}
        metadata = None
        for key in archive.files:
            if key == "__metadata__":
                metadata = json.loads(archive[key].tobytes().decode("utf-8"))
            else:
                state[key] = archive[key]
    return state, metadata
