"""Plain-text table rendering for benchmark reports.

The benchmark harnesses print rows mirroring the paper's Tables I-VI;
this keeps the formatting in one place.
"""

from __future__ import annotations


def format_table(headers: list[str], rows: list[list], title: str | None = None) -> str:
    """Render a monospace table with per-column width fitting."""
    str_rows = [[_stringify(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        if len(row) != len(headers):
            raise ValueError("row length does not match header length")
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    sep = "-+-".join("-" * w for w in widths)
    lines = []
    if title:
        lines.append(title)
    lines.append(" | ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append(sep)
    for row in str_rows:
        lines.append(" | ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def _stringify(cell) -> str:
    if isinstance(cell, float):
        return f"{cell:.4g}"
    return str(cell)
