"""Reproducible random-state management."""

from __future__ import annotations

import random

import numpy as np


def seed_everything(seed: int) -> np.random.Generator:
    """Seed Python and numpy global state; return a fresh Generator.

    The returned generator should be threaded through model/dataset
    construction; global seeding is a safety net for any stray legacy
    ``np.random`` usage.
    """
    random.seed(seed)
    np.random.seed(seed % (2**32))
    return np.random.default_rng(seed)


def spawn_rngs(seed: int, count: int) -> list[np.random.Generator]:
    """Derive ``count`` independent generators from one seed."""
    sequence = np.random.SeedSequence(seed)
    return [np.random.default_rng(child) for child in sequence.spawn(count)]
