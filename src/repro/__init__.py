"""repro — Activation Density based Mixed-Precision Quantization.

From-scratch reproduction of Vasquez, Venkatesha et al., DATE 2021
(arXiv:2101.04354).  Subpackages:

=============  =========================================================
`api`          declarative configs, pipeline stages, experiment registry
`orchestration`  sweeps, parallel workers, result cache, checkpoint/resume
`autograd`     numpy reverse-mode autodiff (Tensor, conv2d, grad_check)
`nn`           layers, optimizers, losses, module system
`models`       instrumented VGG11/16/19 and ResNet18
`quant`        eqn-1 quantizer, STE fake-quant, plans, hw snapping
`density`      AD metric (eqn 2), monitoring, saturation detection
`core`         Algorithm 1, AD pruning (eqn 5), eqn-4 complexity, runner
`energy`       analytical energy model (Table I)
`pim`          functional PIM accelerator + Table IV energy model
`data`         synthetic CIFAR/TinyImageNet stand-ins, loaders
`utils`        seeding, checkpoints, JSON/table helpers
`cli`          the ``repro`` / ``python -m repro`` console entry point
=============  =========================================================

The most common entry points:

>>> from repro.api import experiments
>>> report = experiments.build("vgg19-cifar10-quant").run()

or the original imperative harness (a façade over the same pipeline):

>>> from repro.core import ExperimentRunner, QuantizationSchedule
"""

__version__ = "1.1.0"

__all__ = [
    "api",
    "autograd",
    "nn",
    "models",
    "quant",
    "density",
    "core",
    "energy",
    "pim",
    "data",
    "utils",
]
