"""``repro`` console entry point: headless experiment runs.

Usage::

    python -m repro run --preset vgg19-cifar10-quant --out report.json
    python -m repro run --config my_experiment.json --out report.json
    python -m repro presets [--verbose]
    python -m repro show --preset vgg19-cifar10-quant

``run`` resolves a registry preset (or a JSON config file), executes the
default pipeline for that config plus an :class:`ExportStage`, and
writes a JSON (or CSV) report.  Common schedule knobs are overridable
from the command line so sweeps don't need one config file per point.
"""

from __future__ import annotations

import argparse
import sys
import time

from repro.api import ExportStage, PipelineCallback, experiments
from repro.api.config import ExperimentConfig


class CLIError(Exception):
    """A user-input problem (bad preset/config/override), not a bug."""


class _ProgressCallback(PipelineCallback):
    """Human-readable progress on stderr (silenced by --quiet)."""

    def __init__(self, stream):
        self.stream = stream
        self._t0 = time.time()

    def _log(self, message: str) -> None:
        elapsed = time.time() - self._t0
        print(f"[repro +{elapsed:7.1f}s] {message}", file=self.stream)

    def on_pipeline_start(self, ctx):
        self._log(
            f"running {ctx.architecture} on {ctx.dataset} "
            f"({len(ctx.model.layer_handles())} layers)"
        )

    def on_iteration_end(self, ctx, row):
        label = row.label or f"iteration {row.iteration}"
        self._log(
            f"{label}: acc {row.test_accuracy * 100:.2f}%, "
            f"AD {row.total_ad:.3f}, eff {row.energy_efficiency:.2f}x, "
            f"{row.epochs} epochs"
        )

    def on_stage_end(self, ctx, stage):
        self._log(f"stage '{stage.name}' done")


def _schedule_overrides(args) -> dict:
    quant = {}
    for field, attr in [
        ("max_iterations", "max_iterations"),
        ("max_epochs_per_iteration", "max_epochs"),
        ("min_epochs_per_iteration", "min_epochs"),
        ("initial_bits", "initial_bits"),
        ("final_epochs", "final_epochs"),
    ]:
        value = getattr(args, attr)
        if value is not None:
            quant[field] = value
    overrides = {}
    if quant:
        overrides["quant"] = quant
    if args.seed is not None:
        overrides["model"] = {"seed": args.seed}
        overrides["data"] = {"seed": args.seed}
    return overrides


def _resolve_config(args) -> ExperimentConfig:
    # Resolution failures are user input problems -> clean CLI errors;
    # anything raised later (during the run) keeps its traceback.
    try:
        if args.config:
            config = ExperimentConfig.from_json(args.config)
        else:
            config = experiments.get_config(args.preset)
        overrides = _schedule_overrides(args)
        if overrides:
            config = config.evolve(**overrides)
        return config
    except (KeyError, TypeError, ValueError, FileNotFoundError) as error:
        message = (
            error.args[0]
            if error.args and isinstance(error.args[0], str)
            else str(error)
        )
        raise CLIError(message) from error


def _cmd_run(args) -> int:
    config = _resolve_config(args)
    experiment = experiments.Experiment(config)
    if args.out:
        experiment.pipeline.stages.append(ExportStage(args.out, format=args.format))
    callbacks = [] if args.quiet else [_ProgressCallback(sys.stderr)]
    report = experiment.run(callbacks=callbacks)
    if not args.quiet:
        print(report.format())
        if args.out:
            print(f"report written to {args.out}")
    return 0


def _cmd_presets(args) -> int:
    for name in experiments.names():
        config = experiments.get_config(name)
        if args.verbose:
            tables = ", ".join(config.tables) if config.tables else "-"
            print(f"{name:32s} {tables:28s} {config.description}")
        else:
            print(name)
    return 0


def _cmd_show(args) -> int:
    config = _resolve_config(args)
    import json

    print(json.dumps(config.to_dict(), indent=2))
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Activation-density mixed-precision quantization experiments",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    run = sub.add_parser("run", help="run one experiment and export a report")
    source = run.add_mutually_exclusive_group(required=True)
    source.add_argument("--preset", help="registry preset name (see `repro presets`)")
    source.add_argument("--config", help="path to an ExperimentConfig JSON file")
    run.add_argument("--out", help="report output path")
    run.add_argument("--format", choices=("json", "csv"), default="json")
    run.add_argument("--seed", type=int, help="override both model and data seeds")
    run.add_argument("--max-iterations", type=int, dest="max_iterations")
    run.add_argument("--max-epochs", type=int, dest="max_epochs",
                     help="override max_epochs_per_iteration")
    run.add_argument("--min-epochs", type=int, dest="min_epochs",
                     help="override min_epochs_per_iteration")
    run.add_argument("--initial-bits", type=int, dest="initial_bits")
    run.add_argument("--final-epochs", type=int, dest="final_epochs")
    run.add_argument("--quiet", action="store_true")
    run.set_defaults(func=_cmd_run)

    presets = sub.add_parser("presets", help="list registered presets")
    presets.add_argument("--verbose", action="store_true",
                         help="include paper-table mapping and descriptions")
    presets.set_defaults(func=_cmd_presets)

    show = sub.add_parser("show", help="print a preset/config as JSON")
    show_source = show.add_mutually_exclusive_group(required=True)
    show_source.add_argument("--preset")
    show_source.add_argument("--config")
    show.add_argument("--seed", type=int)
    show.add_argument("--max-iterations", type=int, dest="max_iterations")
    show.add_argument("--max-epochs", type=int, dest="max_epochs")
    show.add_argument("--min-epochs", type=int, dest="min_epochs")
    show.add_argument("--initial-bits", type=int, dest="initial_bits")
    show.add_argument("--final-epochs", type=int, dest="final_epochs")
    show.set_defaults(func=_cmd_show)

    return parser


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    try:
        return args.func(args)
    except CLIError as error:
        print(f"repro: error: {error}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    sys.exit(main())
