"""``repro`` console entry point: headless experiment runs and sweeps.

Usage::

    python -m repro run --preset vgg19-cifar10-quant --out report.json
    python -m repro run --config my_experiment.json --out report.json
    python -m repro run --preset ... --checkpoint run.ckpt.npz --resume
    python -m repro sweep --preset table2-vgg19-seeds --jobs 4
    python -m repro sweep --preset vgg11-micro-smoke --seeds 0,1,2,3
    python -m repro sweep --preset table2-grid --shard 0/2 --out s0.json
    python -m repro search --preset search-vgg19-bits --out search.json
    python -m repro search --preset search-vgg19-layer-bits --out layers.json
    python -m repro search --preset search-smoke-bits --strategy layer-bits
    python -m repro run --preset vgg11-micro-smoke --backend fast
    python -m repro cache export --out cache.tgz
    python -m repro cache merge /mnt/hostb/.repro-cache
    python -m repro merge-sweeps s0.json s1.json --out merged.json
    python -m repro master --jobs 4            # the experiment service
    python -m repro submit --preset search-smoke-bits --priority 10
    python -m repro status
    python -m repro watch 1
    python -m repro cancel 2
    python -m repro shutdown
    python -m repro presets [--verbose]
    python -m repro sweeps [--verbose]
    python -m repro searches [--verbose]
    python -m repro show --preset vgg19-cifar10-quant

``run`` resolves a registry preset (or a JSON config file), executes the
default pipeline for that config plus an :class:`ExportStage`, and
writes a JSON (or CSV) report.  ``sweep`` fans a base config out over
override axes and executes the points through the orchestration layer —
optionally in parallel workers, optionally one deterministic shard of
the grid per host — streaming every finished point into an
incrementally rewritten ``--out`` aggregate.  ``search`` runs an
*adaptive* schedule instead: finished trials propose the next ones
(AD-guided bit-width descent, per-layer bit-vector refinement, or
successive halving), so it cannot be
sharded — ``--shard`` is rejected with an explanation — but trials
share the result cache like any other run.  ``cache export/import/
merge`` move result-cache entries between hosts and ``merge-sweeps``
joins shard ``--out`` files back into the unsharded aggregate.
All commands share the content-addressed result cache under
``.repro-cache/`` (opt-in for ``run`` via ``--cache``, default for
``sweep`` and ``search``; identical configs hit the same entry from any
command).

``master`` runs the long-lived experiment service: one warm cache, one
worker pool, and a priority job queue behind a unix socket.  ``submit``
/ ``status`` / ``watch`` / ``cancel`` / ``shutdown`` are its client
verbs (see :mod:`repro.service`).  ``sweep`` and ``search`` handle
SIGINT/SIGTERM gracefully — the first signal finalizes the streaming
``--out`` file (pending markers included) and exits 130; a second
aborts hard.
"""

from __future__ import annotations

import argparse
import contextlib
import json
import os
import signal
import sys
import time
from pathlib import Path

from repro.api import ExportStage, PipelineCallback, experiments
from repro.api.config import ExperimentConfig

# A run interrupted by SIGINT/SIGTERM exits with the conventional
# 128 + SIGINT code after finalizing its outputs.
EXIT_INTERRUPTED = 130


class CLIError(Exception):
    """A user-input problem (bad preset/config/override), not a bug."""


class _InterruptFlag:
    """Callable signal flag for the runner's graceful-interrupt hook.

    The first SIGINT/SIGTERM only *sets* the flag — the runner notices
    between tasks, finalizes streaming outputs, and exits 130.  A
    second signal raises ``KeyboardInterrupt`` for an immediate abort.
    """

    def __init__(self):
        self.fired = False

    def __call__(self) -> bool:
        return self.fired

    def handle(self, signum, frame) -> None:
        if self.fired:
            raise KeyboardInterrupt
        self.fired = True
        print(
            f"\nrepro: {signal.Signals(signum).name} received — finishing "
            "in-flight work and finalizing outputs (repeat to abort hard)",
            file=sys.stderr,
        )


@contextlib.contextmanager
def _graceful_interrupt():
    """Install SIGINT/SIGTERM handlers feeding an :class:`_InterruptFlag`."""
    flag = _InterruptFlag()
    previous = {}
    for signum in (signal.SIGINT, signal.SIGTERM):
        try:
            previous[signum] = signal.signal(signum, flag.handle)
        except ValueError:
            # Not the main thread (e.g. runner invoked from tests):
            # run without graceful handling rather than crash.
            pass
    try:
        yield flag
    finally:
        for signum, handler in previous.items():
            signal.signal(signum, handler)


class _ProgressCallback(PipelineCallback):
    """Human-readable progress on stderr (silenced by --quiet)."""

    def __init__(self, stream):
        self.stream = stream
        self._t0 = time.time()

    def _log(self, message: str) -> None:
        elapsed = time.time() - self._t0
        print(f"[repro +{elapsed:7.1f}s] {message}", file=self.stream)

    def on_pipeline_start(self, ctx):
        self._log(
            f"running {ctx.architecture} on {ctx.dataset} "
            f"({len(ctx.model.layer_handles())} layers)"
        )

    def on_iteration_end(self, ctx, row):
        label = row.label or f"iteration {row.iteration}"
        self._log(
            f"{label}: acc {row.test_accuracy * 100:.2f}%, "
            f"AD {row.total_ad:.3f}, eff {row.energy_efficiency:.2f}x, "
            f"{row.epochs} epochs"
        )

    def on_stage_end(self, ctx, stage):
        self._log(f"stage '{stage.name}' done")


def _schedule_overrides(args) -> dict:
    quant = {}
    for field, attr in [
        ("max_iterations", "max_iterations"),
        ("max_epochs_per_iteration", "max_epochs"),
        ("min_epochs_per_iteration", "min_epochs"),
        ("initial_bits", "initial_bits"),
        ("final_epochs", "final_epochs"),
    ]:
        value = getattr(args, attr)
        if value is not None:
            quant[field] = value
    overrides = {}
    if quant:
        overrides["quant"] = quant
    if args.seed is not None:
        overrides["model"] = {"seed": args.seed}
        overrides["data"] = {"seed": args.seed}
    if getattr(args, "backend", None) is not None:
        overrides["backend"] = args.backend
    return overrides


def _clean_message(error) -> str:
    return (
        error.args[0]
        if error.args and isinstance(error.args[0], str)
        else str(error)
    )


def _resolve_config(args) -> ExperimentConfig:
    # Resolution failures are user input problems -> clean CLI errors;
    # anything raised later (during the run) keeps its traceback.
    try:
        if args.config:
            config = ExperimentConfig.from_json(args.config)
        else:
            config = experiments.get_config(args.preset)
        overrides = _schedule_overrides(args)
        if overrides:
            config = config.evolve(**overrides)
        return config
    except (KeyError, TypeError, ValueError, FileNotFoundError) as error:
        raise CLIError(_clean_message(error)) from error


def _prepare_out_path(path, flag: str = "--out") -> None:
    """Create a writable home for an output path, or fail cleanly.

    Creates missing parent directories and verifies writability *before*
    any training starts, so an unwritable destination is an immediate
    exit-2 instead of a traceback after minutes of work.
    """
    if not path:
        return
    target = Path(path)
    parent = target.parent
    try:
        parent.mkdir(parents=True, exist_ok=True)
    except OSError as error:
        raise CLIError(
            f"cannot create directory {str(parent)!r} for {flag}: {error}"
        ) from error
    if target.exists():
        if target.is_dir():
            raise CLIError(f"{flag} path {path!r} is a directory")
        if not os.access(target, os.W_OK):
            raise CLIError(f"{flag} path {path!r} is not writable")
    elif not os.access(parent, os.W_OK):
        raise CLIError(f"{flag} directory {str(parent)!r} is not writable")




def _write_cached_report(args, config, payload) -> None:
    """Materialize a cache hit to --out exactly as a live run would."""
    from repro.api.stages import export_payload
    from repro.core.export import report_from_dict, save_report_csv
    from repro.utils.serialization import save_json

    if not args.out:
        return
    if args.format == "csv":
        save_report_csv(report_from_dict(payload["report"]), args.out)
    else:
        save_json(args.out, export_payload(
            payload["report"], config, payload.get("artifacts", {}),
        ))


def _cmd_run(args) -> int:
    from repro.core.export import report_from_dict

    config = _resolve_config(args)
    _prepare_out_path(args.out)
    if args.resume and not args.checkpoint:
        raise CLIError("--resume requires --checkpoint PATH")
    if args.checkpoint:
        _prepare_out_path(args.checkpoint, flag="--checkpoint")

    cache = None
    if args.cache:
        from repro.orchestration import ResultCache

        cache = ResultCache(args.cache_dir)
        payload = cache.load(config)
        if payload is not None:
            report = report_from_dict(payload["report"])
            _write_cached_report(args, config, payload)
            if not args.quiet:
                print(report.format())
                print(f"cache hit ({config.cache_key()[:12]}) — run skipped")
                if args.out:
                    print(f"report written to {args.out}")
            return 0

    try:
        experiment = experiments.Experiment(config)
    except ValueError as error:
        # Config -> live-object translation failures (e.g. layer_bits
        # naming a layer the model does not have) are user-input
        # problems, same as resolution failures above.
        raise CLIError(_clean_message(error)) from error
    pipeline = experiment.pipeline
    if args.out:
        pipeline.stages.append(ExportStage(args.out, format=args.format))
    callbacks = [] if args.quiet else [_ProgressCallback(sys.stderr)]

    if args.checkpoint:
        from repro.orchestration import CheckpointCallback

        checkpoint = Path(args.checkpoint)
        # Iteration-granular captures first in the callback chain, so a
        # crash in any later observer still leaves a current checkpoint.
        callbacks = [CheckpointCallback(checkpoint)] + callbacks
        if args.resume and checkpoint.exists():
            persistent = list(pipeline.callbacks)
            pipeline.callbacks = persistent + callbacks
            import zipfile

            try:
                report = pipeline.resume(experiment.context, checkpoint)
            except (ValueError, KeyError, OSError, EOFError,
                    zipfile.BadZipFile) as error:
                # A mismatched config, or an unreadable/corrupt
                # checkpoint file, is a user-facing condition, not a bug.
                raise CLIError(
                    f"cannot resume from {args.checkpoint!r}: "
                    f"{_clean_message(error)}"
                ) from error
            finally:
                pipeline.callbacks = persistent
            if args.out and not Path(args.out).exists():
                # The checkpoint cursor sat past the export stage (the
                # interrupted run died after exporting was recorded as
                # complete, or the run had already finished): write the
                # restored report so --out is honoured regardless.
                pipeline.stages[-1].run(experiment.context)
        else:
            report = experiment.run(callbacks=callbacks)
    else:
        report = experiment.run(callbacks=callbacks)

    if cache is not None:
        from repro.orchestration.runner import run_payload

        cache.store(config, run_payload(report, experiment.artifacts))
    if not args.quiet:
        print(report.format())
        if args.out:
            print(f"report written to {args.out}")
    return 0


# ---------------------------------------------------------------------------
# Sweeps
# ---------------------------------------------------------------------------

def _split_axis_values(rest: str) -> list[str]:
    """Split ``v1,v2,...`` on top-level commas only.

    Commas inside JSON strings (``"a,b"``) or inside brackets/braces
    (``["a","b"]``, ``{"k": 1}``) belong to one value, so quoted axis
    values may contain commas.
    """
    chunks, buf = [], []
    depth = 0
    in_string = escaped = False
    for char in rest:
        if in_string:
            buf.append(char)
            if escaped:
                escaped = False
            elif char == "\\":
                escaped = True
            elif char == '"':
                in_string = False
            continue
        if char == '"':
            in_string = True
        elif char in "[{":
            depth += 1
        elif char in "]}":
            depth = max(0, depth - 1)
        elif char == "," and depth == 0:
            chunks.append("".join(buf))
            buf = []
            continue
        buf.append(char)
    chunks.append("".join(buf))
    return chunks


def _parse_axis(spec: str):
    """``path=v1,v2,...`` -> SweepAxis (values parsed as JSON, else str)."""
    from repro.orchestration import SweepAxis

    path, _, rest = spec.partition("=")
    if not path or not rest:
        raise ValueError(f"bad --axis {spec!r} (expected PATH=V1,V2,...)")
    values = []
    for chunk in _split_axis_values(rest):
        try:
            values.append(json.loads(chunk))
        except ValueError:
            values.append(chunk)
    return SweepAxis(path, tuple(values))


def _resolve_sweep(args):
    """Resolve CLI args to ``(sweep, points)``.

    The expanded point list doubles as eager validation (bad axis paths
    or values fail here, before any training) and is passed through to
    the runner, so every sweep expands exactly once per invocation.
    """
    from repro.orchestration import SweepConfig

    try:
        if args.config:
            sweep = SweepConfig.from_json(args.config)
        else:
            try:
                sweep = experiments.get_sweep(args.preset)
            except KeyError:
                # Fall back to an experiment preset as a bare base config.
                try:
                    base = experiments.get_config(args.preset)
                except KeyError:
                    raise CLIError(
                        f"unknown preset {args.preset!r}; sweep presets: "
                        f"{', '.join(experiments.sweep_names())}; experiment "
                        f"presets: {', '.join(experiments.names())}"
                    ) from None
                sweep = SweepConfig(name=f"{args.preset}-sweep", base=base)
        axes = tuple(sweep.axes) + tuple(
            _parse_axis(spec) for spec in (args.axis or ())
        )
        seeds = sweep.seeds
        if args.seeds:
            seeds = tuple(int(s) for s in args.seeds.split(","))
        sweep = SweepConfig(
            name=sweep.name,
            base=sweep.base,
            presets=sweep.presets,
            axes=axes,
            mode=args.mode or sweep.mode,
            seeds=seeds,
            description=sweep.description,
        )
        sweep = experiments.apply_backend("sweep", sweep,
                                          getattr(args, "backend", None))
        from repro.orchestration import expand

        return sweep, expand(sweep)
    except CLIError:
        raise
    except (KeyError, TypeError, ValueError, FileNotFoundError) as error:
        raise CLIError(_clean_message(error)) from error


class _SweepOutStream:
    """Incrementally rewrites the sweep ``--out`` file as points finish.

    Every write is atomic (temp file + rename), so ``--out`` is valid
    JSON at any instant; a sweep killed mid-flight leaves the completed
    points behind plus ``"status": "pending"`` placeholders for the
    rest.
    """

    def __init__(self, path, name: str, points, expansion_total: int | None):
        self.path = path
        self.name = name
        self.points = []
        self.expansion_total = expansion_total
        self.results = []
        # Per-point entries are built once (placeholders now, real
        # entries as results land), not re-serialized on every rewrite.
        self.point_dicts = []
        self._append(points)

    def _append(self, points) -> None:
        from repro.orchestration import pending_point_dict

        for point in points:
            position = len(self.points)
            self.points.append(point)
            self.results.append(None)
            self.point_dicts.append(pending_point_dict(point, position))

    def on_point(self, result, position, total) -> None:
        from repro.orchestration import point_dict

        self.results[position] = result
        self.point_dicts[position] = point_dict(result, position)
        self.write()

    def _payload(self) -> dict:
        from repro.orchestration import sweep_out_payload

        return sweep_out_payload(self.name, self.points, self.results,
                                 expansion_total=self.expansion_total,
                                 point_dicts=self.point_dicts)

    def write(self) -> None:
        from repro.utils.serialization import atomic_write

        data = (json.dumps(self._payload(), indent=2) + "\n").encode("utf-8")
        atomic_write(self.path, lambda handle: handle.write(data))


def _report_interrupted(args, stop, stream, kind: str) -> int:
    """Summarize a signal-interrupted sweep/search and exit 130.

    The streaming ``--out`` file (when enabled) is already valid JSON:
    completed points are recorded, the rest carry ``"pending"``
    markers — exactly the shape a killed shard leaves for
    ``merge-sweeps`` / a resubmission to pick up from the cache.
    """
    if stream is not None:
        stream.write()
    if not args.quiet:
        done = len(stop.result.points)
        print(
            f"{kind} interrupted: {done} point(s) completed, "
            f"{stop.pending} in flight abandoned"
            + (f"; partial results written to {args.out}" if args.out else ""),
            file=sys.stderr,
        )
    return EXIT_INTERRUPTED


def _cmd_sweep(args) -> int:
    from repro.orchestration import (ResultCache, ShardSpec, SweepInterrupted,
                                     SweepRunner, shard_points)

    sweep, points = _resolve_sweep(args)
    _prepare_out_path(args.out)
    if args.jobs < 1:
        raise CLIError("--jobs must be >= 1")
    expansion_total = len(points)  # full grid size, recorded pre-sharding
    shard = None
    if args.shard:
        try:
            shard = ShardSpec.parse(args.shard)
        except ValueError as error:
            raise CLIError(_clean_message(error)) from error
        points = shard_points(points, shard)
    cache = ResultCache(args.cache_dir) if args.cache else None
    progress = None
    if not args.quiet:
        t0 = time.time()

        def progress(message):
            print(f"[repro sweep +{time.time() - t0:7.1f}s] {message}",
                  file=sys.stderr)

        if shard is not None:
            progress(f"shard {shard}: {len(points)} of the sweep's points")
    stream = None
    if args.out:
        stream = _SweepOutStream(args.out, sweep.name, points,
                                 expansion_total=expansion_total)
        stream.write()  # all-pending skeleton exists from the first moment
    with _graceful_interrupt() as interrupt:
        runner = SweepRunner(jobs=args.jobs, cache=cache, progress=progress,
                             on_point=stream.on_point if stream else None,
                             task_timeout=args.task_timeout,
                             interrupt=interrupt)
        try:
            result = runner.run(sweep, points=points)
        except SweepInterrupted as stop:
            return _report_interrupted(args, stop, stream, kind="sweep")
    # No final rewrite needed: the stream already rewrote --out after
    # the last point (the runner raises if any point went unaccounted).
    if not args.quiet:
        print(result.aggregate().format())
        stats = result.stats
        shard_note = f" [shard {shard}]" if shard is not None else ""
        print(
            f"points: {stats['total']}{shard_note} "
            f"(executed {stats['executed']}, "
            f"cached {stats['cached']}, failed {stats['failed']})"
            + _cache_note(stats)
        )
        if args.out:
            print(f"sweep results written to {args.out}")
    return 0 if result.ok else 1


def _cache_note(stats: dict) -> str:
    """The summary-line suffix surfacing result-cache activity."""
    if "cache_hits" not in stats:
        return ""
    return (f"; cache: {stats['cache_hits']} hit(s), "
            f"{stats['cache_misses']} miss(es)")


def _speculation_note(stats: dict) -> str:
    """The summary-line suffix surfacing speculative-execution activity."""
    if "speculated" not in stats:
        return ""
    return (f"; speculation: {stats['confirmed']} of "
            f"{stats['speculated']} bet(s) confirmed, "
            f"{stats['cancelled']} cancelled, "
            f"{stats['wasted_trials']} wasted trial(s)")


# ---------------------------------------------------------------------------
# Adaptive searches
# ---------------------------------------------------------------------------

def _resolve_search(args):
    """Resolve CLI args to a SearchConfig (preset or JSON file)."""
    from repro.orchestration.search import SearchConfig

    try:
        if args.config:
            search = SearchConfig.from_json(args.config)
        else:
            try:
                search = experiments.get_search(args.preset)
            except KeyError:
                raise CLIError(
                    f"unknown search preset {args.preset!r}; available: "
                    f"{', '.join(experiments.search_names())}"
                ) from None
        # Strategy switches apply first so the knob guards below judge
        # the strategy that will actually run.
        if args.strategy is not None and args.strategy != search.strategy:
            changes = {"strategy": args.strategy}
            if args.strategy != "layer-bits" and search.seed_trials:
                # seed_trials is a layer-bits-only knob; leaving a
                # preset's value behind would make the switch invalid.
                changes["seed_trials"] = 0
            search = search.evolve(**changes)
        overrides = {}
        if args.max_trials is not None:
            overrides["max_trials"] = args.max_trials
        if args.drop is not None:
            overrides["accuracy_drop"] = args.drop
        if args.seed_trials is not None:
            if search.strategy != "layer-bits":
                raise CLIError(
                    "--seed-trials only applies to layer-bits searches "
                    "(the scalar seed phase of the per-layer search)"
                )
            overrides["seed_trials"] = args.seed_trials
        if overrides and search.strategy == "halving":
            # Halving's trial count is fixed by axes x budgets x keep and
            # its feasibility is rung survival: these knobs would be
            # silently ignored, so refuse them instead.
            flags = " / ".join(
                flag for flag, present in
                (("--max-trials", args.max_trials is not None),
                 ("--drop", args.drop is not None))
                if present
            )
            raise CLIError(
                f"{flags} only applies to ad-bits/layer-bits searches; a "
                "halving search is sized by its axes, budgets, and keep "
                "fraction"
            )
        if overrides:
            search = search.evolve(**overrides)
        if getattr(args, "speculate", None) is not None:
            if search.strategy == "halving":
                raise CLIError(
                    "--speculate only applies to ad-bits/layer-bits "
                    "searches; halving rungs already fan out under --jobs"
                )
            if args.speculate < 0:
                raise CLIError("--speculate must be >= 0")
            search = search.evolve(speculation=args.speculate)
        search = experiments.apply_backend("search", search,
                                           getattr(args, "backend", None))
        return search
    except CLIError:
        raise
    except (KeyError, TypeError, ValueError, FileNotFoundError) as error:
        raise CLIError(_clean_message(error)) from error


class _SearchOutStream(_SweepOutStream):
    """The sweep stream for a search: a *growing* point list plus a
    ``"search"`` payload section.

    ``on_schedule`` appends ``"pending"`` placeholders the moment the
    scheduler proposes trials, and every write re-asks the scheduler
    for its current best/feasibility — so the file is valid JSON with
    an up-to-date ``"search"`` section at every instant.
    """

    def __init__(self, path, search, scheduler):
        super().__init__(path, search.name, [], expansion_total=None)
        self.search = search
        self.scheduler = scheduler

    def on_schedule(self, new_points, total) -> None:
        self._append(new_points)
        self.write()

    def _payload(self) -> dict:
        from repro.orchestration.search import search_out_payload

        return search_out_payload(
            self.search, self.name, self.points, self.results,
            best=self.scheduler.best(), baseline=self.scheduler.baseline(),
            feasibility=self.scheduler.feasibility(),
            point_dicts=self.point_dicts,
        )


def _cmd_search(args) -> int:
    from repro.orchestration import ResultCache, SweepInterrupted
    from repro.orchestration.search import build_scheduler, run_search

    if args.shard:
        raise CLIError(
            "adaptive searches cannot be sharded: each trial depends on "
            "earlier trials' results, so there is no static grid to "
            "partition — run the search on one host (trained trials still "
            "land in the result cache for other hosts to reuse)"
        )
    search = _resolve_search(args)
    _prepare_out_path(args.out)
    if args.jobs < 1:
        raise CLIError("--jobs must be >= 1")
    try:
        scheduler = build_scheduler(search)
    except (KeyError, TypeError, ValueError) as error:
        raise CLIError(_clean_message(error)) from error
    cache = ResultCache(args.cache_dir) if args.cache else None
    progress = None
    if not args.quiet:
        t0 = time.time()

        def progress(message):
            print(f"[repro search +{time.time() - t0:7.1f}s] {message}",
                  file=sys.stderr)

    stream = None
    if args.out:
        stream = _SearchOutStream(args.out, search, scheduler)
        stream.write()  # a valid skeleton exists from the first moment
    with _graceful_interrupt() as interrupt:
        try:
            result = run_search(
                search, jobs=args.jobs, cache=cache, progress=progress,
                on_point=stream.on_point if stream else None,
                on_schedule=stream.on_schedule if stream else None,
                scheduler=scheduler,
                task_timeout=args.task_timeout, interrupt=interrupt,
            )
        except SweepInterrupted as stop:
            return _report_interrupted(args, stop, stream, kind="search")
    if stream is not None:
        # Mid-run writes trail the scheduler by one absorption (it digests
        # a result on its *next* proposal round, after on_point already
        # streamed); one closing write records the final best/feasibility.
        stream.write()
    if not args.quiet:
        print(result.report().format())
        stats = result.stats
        print(
            f"trials: {stats['total']} (executed {stats['executed']}, "
            f"cached {stats['cached']}, failed {stats['failed']})"
            + _cache_note(stats) + _speculation_note(stats)
        )
        if args.out:
            print(f"search results written to {args.out}")
    if result.best is None:
        print("repro: error: search found no feasible trial",
              file=sys.stderr)
        return 1
    return 0 if result.ok else 1


# ---------------------------------------------------------------------------
# Cache transport and shard-report merging
# ---------------------------------------------------------------------------

def _merge_cache_source(cache, source) -> dict:
    """Merge ``source`` (cache directory or exported tarball) into ``cache``."""
    from repro.orchestration import ResultCache

    source = Path(source)
    if source.is_dir():
        return cache.merge(ResultCache(source))
    if not source.exists():
        raise CLIError(f"no such cache source: {source}")
    import tarfile

    try:
        return cache.import_archive(source)
    except (OSError, tarfile.TarError) as error:
        raise CLIError(
            f"cannot read cache archive {str(source)!r}: "
            f"{_clean_message(error)}"
        ) from error


def _cmd_cache(args) -> int:
    from repro.orchestration import CacheMergeConflict, ResultCache

    cache = ResultCache(args.cache_dir)
    if args.cache_command == "export":
        _prepare_out_path(args.out)
        stats = cache.export_archive(args.out)
        if not args.quiet:
            print(f"exported {stats['exported']} cache entries to {args.out}")
            if stats["skipped_invalid"]:
                print(f"skipped {stats['skipped_invalid']} invalid entries",
                      file=sys.stderr)
        return 0
    # import / merge share semantics: fold entries into --cache-dir.
    try:
        stats = _merge_cache_source(cache, args.source)
    except CacheMergeConflict as error:
        raise CLIError(_clean_message(error)) from error
    if not args.quiet:
        print(
            f"merged {stats['merged']} new entries into {args.cache_dir} "
            f"({stats['identical']} already present, "
            f"{stats['skipped_invalid']} invalid skipped)"
        )
    return 0


def _cmd_merge_sweeps(args) -> int:
    from repro.core.export import sweep_report_from_payload
    from repro.orchestration import merge_sweep_payloads
    from repro.utils.serialization import load_json, save_json

    _prepare_out_path(args.out)
    payloads = []
    for path in args.files:
        try:
            payloads.append(load_json(path))
        except (OSError, ValueError) as error:
            raise CLIError(
                f"cannot read sweep output {path!r}: {_clean_message(error)}"
            ) from error
    try:
        merged = merge_sweep_payloads(payloads, name=args.name)
    except ValueError as error:
        raise CLIError(_clean_message(error)) from error
    if args.out:
        save_json(args.out, merged)
    report = sweep_report_from_payload(merged)
    stats = merged["stats"]
    if not args.quiet:
        print(report.format())
        print(
            f"points: {stats['total']} (executed {stats['executed']}, "
            f"cached {stats['cached']}, failed {stats['failed']}) "
            f"from {len(payloads)} shard file(s)"
        )
        if args.out:
            print(f"merged sweep written to {args.out}")
    return 0 if not stats["failed"] else 1


# ---------------------------------------------------------------------------
# Experiment service: the long-lived master and its client verbs
# ---------------------------------------------------------------------------

def _cmd_master(args) -> int:
    import asyncio

    from repro.service.master import Master

    if args.jobs < 1:
        raise CLIError("--jobs must be >= 1")
    log = None
    if not args.quiet:
        t0 = time.time()

        def log(message):
            print(f"[repro master +{time.time() - t0:7.1f}s] {message}",
                  file=sys.stderr)

    try:
        master = Master(
            socket_path=args.socket, jobs=args.jobs,
            cache_dir=args.cache_dir, state_path=args.state,
            task_timeout=args.task_timeout, log=log,
        )
    except (OSError, ValueError) as error:
        raise CLIError(_clean_message(error)) from error

    async def serve():
        loop = asyncio.get_running_loop()
        for signum in (signal.SIGINT, signal.SIGTERM):
            loop.add_signal_handler(signum, master.request_shutdown)
        await master.serve()

    asyncio.run(serve())
    return 0


def _service_client(args):
    from repro.service.client import MasterClient, MasterError

    try:
        return MasterClient(args.socket)
    except MasterError as error:
        raise CLIError(_clean_message(error)) from error


def _cmd_submit(args) -> int:
    from repro.service.client import MasterError

    config = None
    if args.config:
        try:
            config = json.loads(Path(args.config).read_text())
        except (OSError, ValueError) as error:
            raise CLIError(
                f"cannot read config {args.config!r}: "
                f"{_clean_message(error)}"
            ) from error
    with _service_client(args) as client:
        try:
            result = client.submit(preset=args.preset, config=config,
                                   kind=args.kind, priority=args.priority,
                                   backend=args.backend,
                                   speculate=args.speculate)
        except MasterError as error:
            raise CLIError(_clean_message(error)) from error
    if not args.quiet:
        print(f"job {result['job']} submitted "
              f"({result['kind']} {result['name']}, "
              f"priority {result['priority']})")
    else:
        print(result["job"])
    return 0


def _cmd_status(args) -> int:
    from repro.core.report import format_job_table
    from repro.service.client import MasterError

    with _service_client(args) as client:
        try:
            status = client.status()
        except MasterError as error:
            raise CLIError(_clean_message(error)) from error
    if args.json:
        print(json.dumps(status, indent=2))
        return 0
    master = status.get("master", {})
    print(f"master: repro {master.get('version', '?')}, "
          f"{master.get('jobs', '?')} executor slot(s), "
          f"{master.get('cache_entries', '?')} cache entries "
          f"in {master.get('cache_dir', '?')}")
    jobs = status.get("jobs", [])
    if jobs:
        print(format_job_table(jobs))
    else:
        print("no jobs submitted")
    return 0


def _cmd_watch(args) -> int:
    from repro.service.client import MasterError

    t0 = time.time()

    def narrate(message):
        if args.quiet:
            return
        name = message.get("event")
        data = message.get("data") or {}
        prefix = f"[repro watch +{time.time() - t0:7.1f}s]"
        if name == "schedule":
            print(f"{prefix} scheduled {len(data.get('points', []))} "
                  f"point(s) ({data.get('total')} total)", file=sys.stderr)
        elif name == "point":
            print(f"{prefix} {data.get('status', '?'):8s} "
                  f"{data.get('label', '?')} "
                  f"({data.get('duration') or 0:.1f}s)", file=sys.stderr)
        elif name == "state":
            note = " (resumed)" if data.get("resumed") else ""
            print(f"{prefix} job {message.get('job')} -> "
                  f"{data.get('state', '?')}{note}", file=sys.stderr)

    with _service_client(args) as client:
        try:
            final = client.watch(args.job, on_event=narrate)
        except MasterError as error:
            raise CLIError(_clean_message(error)) from error
    state = final.get("state", "?")
    stats = (final.get("summary") or {}).get("stats") or {}
    line = f"job {args.job}: {state}"
    if stats:
        line += (f" — {stats.get('total', 0)} point(s), "
                 f"{stats.get('executed', 0)} run, "
                 f"{stats.get('cached', 0)} cached, "
                 f"{stats.get('failed', 0)} failed"
                 + _cache_note(stats) + _speculation_note(stats))
    if final.get("error"):
        line += f" — {final['error']}"
    print(line)
    return 0 if state == "done" and not stats.get("failed") else 1


def _cmd_cancel(args) -> int:
    from repro.service.client import MasterError

    with _service_client(args) as client:
        try:
            result = client.cancel(args.job)
        except MasterError as error:
            raise CLIError(_clean_message(error)) from error
    if not args.quiet:
        if result["cancel"] == "requested":
            print(f"job {args.job}: cancel requested — the master stops "
                  "it at the next scheduler round")
        else:
            print(f"job {args.job}: cancelled")
    return 0


def _cmd_shutdown(args) -> int:
    from repro.service.client import MasterError

    with _service_client(args) as client:
        try:
            client.shutdown()
        except MasterError as error:
            raise CLIError(_clean_message(error)) from error
    if not args.quiet:
        print("master stopping")
    return 0


def _cmd_presets(args) -> int:
    for name in experiments.names():
        config = experiments.get_config(name)
        if args.verbose:
            tables = ", ".join(config.tables) if config.tables else "-"
            print(f"{name:32s} {tables:28s} {config.description}")
        else:
            print(name)
    return 0


def _cmd_sweeps(args) -> int:
    from repro.orchestration import expand

    # Point counts print unconditionally so a sweep can be sized before
    # it is launched; --verbose adds the description.
    for name in experiments.sweep_names():
        sweep = experiments.get_sweep(name)
        line = f"{name:28s} {len(expand(sweep)):3d} points"
        if args.verbose:
            line += f"  {sweep.description}"
        print(line)
    return 0


def _cmd_searches(args) -> int:
    from repro.orchestration import planned_trials

    for name in experiments.search_names():
        search = experiments.get_search(name)
        count, exact = planned_trials(search)
        bound = f"{count:3d}" if exact else f"<={count:2d}"
        line = f"{name:28s} {bound} trials  [{search.strategy}]"
        if args.verbose:
            line += f"  {search.description}"
        print(line)
    return 0


def _cmd_show(args) -> int:
    config = _resolve_config(args)
    print(json.dumps(config.to_dict(), indent=2))
    return 0


def build_parser() -> argparse.ArgumentParser:
    from repro.service.protocol import PROTOCOL_VERSION, repro_version

    parser = argparse.ArgumentParser(
        prog="repro",
        description="Activation-density mixed-precision quantization experiments",
    )
    parser.add_argument(
        "--version", action="version",
        version=f"repro {repro_version()} (protocol {PROTOCOL_VERSION})",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    run = sub.add_parser("run", help="run one experiment and export a report")
    source = run.add_mutually_exclusive_group(required=True)
    source.add_argument("--preset", help="registry preset name (see `repro presets`)")
    source.add_argument("--config", help="path to an ExperimentConfig JSON file")
    run.add_argument("--out", help="report output path")
    run.add_argument("--format", choices=("json", "csv"), default="json")
    run.add_argument("--seed", type=int, help="override both model and data seeds")
    run.add_argument("--max-iterations", type=int, dest="max_iterations")
    run.add_argument("--max-epochs", type=int, dest="max_epochs",
                     help="override max_epochs_per_iteration")
    run.add_argument("--min-epochs", type=int, dest="min_epochs",
                     help="override min_epochs_per_iteration")
    run.add_argument("--initial-bits", type=int, dest="initial_bits")
    run.add_argument("--final-epochs", type=int, dest="final_epochs")
    run.add_argument("--backend", choices=("reference", "fast"),
                     help="tensor backend: float64 reference (default) or "
                          "the float32 fast path")
    run.add_argument("--cache", action=argparse.BooleanOptionalAction,
                     default=False,
                     help="reuse/store results in the content-addressed cache")
    run.add_argument("--cache-dir", default=".repro-cache",
                     help="cache location (default: .repro-cache)")
    run.add_argument("--checkpoint", help="write resumable checkpoints here")
    run.add_argument("--resume", action="store_true",
                     help="resume from --checkpoint if it exists")
    run.add_argument("--quiet", action="store_true")
    run.set_defaults(func=_cmd_run)

    sweep = sub.add_parser(
        "sweep", help="fan one config out over a grid and aggregate reports"
    )
    sweep_source = sweep.add_mutually_exclusive_group(required=True)
    sweep_source.add_argument(
        "--preset",
        help="sweep preset (see `repro sweeps`) or experiment preset "
             "to use as the base config",
    )
    sweep_source.add_argument("--config", help="path to a SweepConfig JSON file")
    sweep.add_argument("--axis", action="append",
                       help="extra override axis PATH=V1,V2,... (repeatable; "
                            "the special path `seed` sets both seeds)")
    sweep.add_argument("--seeds", help="comma-separated seed list shorthand")
    sweep.add_argument("--mode", choices=("grid", "zip"),
                       help="axis combination (default: the sweep's own)")
    sweep.add_argument("--backend", choices=("reference", "fast"),
                       help="pin every point to one tensor backend "
                            "(adds a single-value backend axis)")
    sweep.add_argument("--jobs", type=int, default=1,
                       help="parallel worker processes (default 1 = serial)")
    sweep.add_argument("--shard",
                       help="run one deterministic slice I/N of the grid "
                            "(e.g. 0/4); N hosts with shards 0..N-1 cover "
                            "the sweep exactly once")
    sweep.add_argument("--cache", action=argparse.BooleanOptionalAction,
                       default=True,
                       help="skip points already in the result cache")
    sweep.add_argument("--cache-dir", default=".repro-cache",
                       help="cache location (default: .repro-cache)")
    sweep.add_argument("--out", help="aggregated sweep JSON output path")
    sweep.add_argument("--task-timeout", type=float, dest="task_timeout",
                       help="seconds before a hung point is failed and its "
                            "worker pool recycled (default: no timeout)")
    sweep.add_argument("--quiet", action="store_true")
    sweep.set_defaults(func=_cmd_sweep)

    search = sub.add_parser(
        "search",
        help="adaptive bit-width search: finished trials propose the next",
    )
    search_source = search.add_mutually_exclusive_group(required=True)
    search_source.add_argument(
        "--preset", help="search preset name (see `repro searches`)"
    )
    search_source.add_argument(
        "--config", help="path to a SearchConfig JSON file"
    )
    search.add_argument("--strategy",
                        choices=("ad-bits", "layer-bits", "halving"),
                        help="override the search strategy (e.g. run an "
                             "ad-bits preset as a per-layer bit-vector "
                             "search with layer-bits)")
    search.add_argument("--max-trials", type=int, dest="max_trials",
                        help="override the search's trial budget")
    search.add_argument("--drop", type=float,
                        help="override the accuracy-drop budget "
                             "(absolute, e.g. 0.02)")
    search.add_argument("--seed-trials", type=int, dest="seed_trials",
                        help="layer-bits only: trials spent on the scalar "
                             "AD seed phase (default: half the budget)")
    search.add_argument("--backend", choices=("reference", "fast"),
                        help="tensor backend for every trial (default: "
                             "the base config's own)")
    search.add_argument("--jobs", type=int, default=1,
                        help="parallel workers (halving rungs fan out; the "
                             "sequential ad-bits/layer-bits searches use "
                             "extra workers only with --speculate)")
    search.add_argument("--speculate", type=int, dest="speculate",
                        help="race up to K likely next trials on idle "
                             "workers, cancelling the losers — results "
                             "are bit-identical to the sequential search "
                             "(ad-bits/layer-bits only; default 0 = off)")
    search.add_argument("--shard",
                        help=argparse.SUPPRESS)  # rejected with a clear error
    search.add_argument("--cache", action=argparse.BooleanOptionalAction,
                        default=True,
                        help="skip trials already in the result cache")
    search.add_argument("--cache-dir", default=".repro-cache",
                        help="cache location (default: .repro-cache)")
    search.add_argument("--out", help="streaming search JSON output path")
    search.add_argument("--task-timeout", type=float, dest="task_timeout",
                        help="seconds before a hung trial is failed and its "
                             "worker pool recycled (default: no timeout)")
    search.add_argument("--quiet", action="store_true")
    search.set_defaults(func=_cmd_search)

    cache = sub.add_parser(
        "cache", help="transport the result cache between hosts"
    )
    cache_sub = cache.add_subparsers(dest="cache_command", required=True)
    cache_export = cache_sub.add_parser(
        "export", help="publish every cache entry as a tarball"
    )
    cache_export.add_argument("--out", required=True,
                              help="tarball output path (e.g. cache.tgz)")
    cache_import = cache_sub.add_parser(
        "import", help="merge entries from an exported tarball"
    )
    cache_import.add_argument("source", help="tarball written by cache export")
    cache_merge = cache_sub.add_parser(
        "merge", help="merge another cache directory (or tarball)"
    )
    cache_merge.add_argument("source",
                             help="cache directory root or exported tarball")
    for cache_cmd in (cache_export, cache_import, cache_merge):
        cache_cmd.add_argument("--cache-dir", default=".repro-cache",
                               help="this host's cache (default: .repro-cache)")
        cache_cmd.add_argument("--quiet", action="store_true")
        cache_cmd.set_defaults(func=_cmd_cache)

    merge_sweeps = sub.add_parser(
        "merge-sweeps",
        help="join shard sweep --out files into the unsharded aggregate",
    )
    merge_sweeps.add_argument("files", nargs="+",
                              help="sweep --out JSON files (one per shard)")
    merge_sweeps.add_argument("--out", help="merged sweep JSON output path")
    merge_sweeps.add_argument("--name",
                              help="merged sweep name (default: the shards' "
                                   "shared name; required if they differ)")
    merge_sweeps.add_argument("--quiet", action="store_true")
    merge_sweeps.set_defaults(func=_cmd_merge_sweeps)

    from repro.service.master import DEFAULT_SOCKET, DEFAULT_STATE

    master = sub.add_parser(
        "master",
        help="run the long-lived experiment service (shared cache + pool)",
    )
    master.add_argument("--socket", default=DEFAULT_SOCKET,
                        help=f"unix socket path (default: {DEFAULT_SOCKET})")
    master.add_argument("--jobs", type=int, default=1,
                        help="executor worker slots shared by every job "
                             "(default 1 = serial)")
    master.add_argument("--cache-dir", default=".repro-cache",
                        help="the shared result cache (default: .repro-cache)")
    master.add_argument("--state", default=DEFAULT_STATE,
                        help="queue persistence file; a restarted master "
                             f"re-offers its unfinished jobs (default: "
                             f"{DEFAULT_STATE})")
    master.add_argument("--task-timeout", type=float, dest="task_timeout",
                        help="seconds before a hung point is failed and the "
                             "pool recycled (default: no timeout)")
    master.add_argument("--quiet", action="store_true")
    master.set_defaults(func=_cmd_master)

    submit = sub.add_parser(
        "submit", help="queue a run/sweep/search on the master"
    )
    submit_source = submit.add_mutually_exclusive_group(required=True)
    submit_source.add_argument(
        "--preset",
        help="any preset name — search, sweep, or experiment registries "
             "are tried in that order, server-side",
    )
    submit_source.add_argument(
        "--config", help="path to a run/sweep/search config JSON file"
    )
    submit.add_argument("--kind", choices=("run", "sweep", "search"),
                        help="what a --config file describes "
                             "(default: detected from its keys)")
    submit.add_argument("--priority", type=int, default=0,
                        help="higher preempts lower between scheduler "
                             "rounds (default 0)")
    submit.add_argument("--backend", choices=("reference", "fast"),
                        help="tensor backend applied server-side to the "
                             "resolved job")
    submit.add_argument("--speculate", type=int, dest="speculate",
                        help="search jobs only: race up to K likely next "
                             "trials on idle executor slots (bit-identical "
                             "results; default 0 = off)")
    submit.set_defaults(func=_cmd_submit)

    status = sub.add_parser("status", help="show the master's job queue")
    status.add_argument("--json", action="store_true",
                        help="machine-readable full status payload")
    status.set_defaults(func=_cmd_status)

    watch = sub.add_parser(
        "watch", help="follow a job's streamed events to completion"
    )
    watch.add_argument("job", type=int, help="job id from `repro submit`")
    watch.set_defaults(func=_cmd_watch)

    cancel = sub.add_parser("cancel", help="cancel a queued or running job")
    cancel.add_argument("job", type=int, help="job id from `repro submit`")
    cancel.set_defaults(func=_cmd_cancel)

    shutdown = sub.add_parser("shutdown", help="stop the master cleanly")
    shutdown.set_defaults(func=_cmd_shutdown)

    for client_cmd in (submit, status, watch, cancel, shutdown):
        client_cmd.add_argument(
            "--socket", default=DEFAULT_SOCKET,
            help=f"the master's unix socket (default: {DEFAULT_SOCKET})",
        )
        client_cmd.add_argument("--quiet", action="store_true")

    presets = sub.add_parser("presets", help="list registered presets")
    presets.add_argument("--verbose", action="store_true",
                         help="include paper-table mapping and descriptions")
    presets.set_defaults(func=_cmd_presets)

    sweeps = sub.add_parser("sweeps",
                            help="list sweep presets with point counts")
    sweeps.add_argument("--verbose", action="store_true",
                        help="include descriptions")
    sweeps.set_defaults(func=_cmd_sweeps)

    searches = sub.add_parser("searches",
                              help="list search presets with trial counts")
    searches.add_argument("--verbose", action="store_true",
                          help="include descriptions")
    searches.set_defaults(func=_cmd_searches)

    show = sub.add_parser("show", help="print a preset/config as JSON")
    show_source = show.add_mutually_exclusive_group(required=True)
    show_source.add_argument("--preset")
    show_source.add_argument("--config")
    show.add_argument("--seed", type=int)
    show.add_argument("--max-iterations", type=int, dest="max_iterations")
    show.add_argument("--max-epochs", type=int, dest="max_epochs")
    show.add_argument("--min-epochs", type=int, dest="min_epochs")
    show.add_argument("--initial-bits", type=int, dest="initial_bits")
    show.add_argument("--final-epochs", type=int, dest="final_epochs")
    show.add_argument("--backend", choices=("reference", "fast"))
    show.set_defaults(func=_cmd_show)

    return parser


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    try:
        return args.func(args)
    except CLIError as error:
        print(f"repro: error: {error}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    sys.exit(main())
