"""Line-delimited JSON-RPC framing for the ``repro master`` service.

One message per line, UTF-8 JSON, ``\\n``-terminated.  Three message
kinds, distinguished by their keys:

* **request** — ``{"v": 1, "id": <int>, "method": <str>,
  "params": {...}}``.  Ids are chosen by the client and echoed on the
  response, so responses can be correlated even when server events
  interleave between them.
* **response** — ``{"v": 1, "id": <int>, "result": ...}`` on success or
  ``{"v": 1, "id": <int-or-null>, "error": {"code": <str>,
  "message": <str>}}`` on failure.  An error with a null id reports a
  line the server could not even attribute to a request (garbage,
  oversized input).
* **event** — ``{"v": 1, "event": <str>, "job": <int-or-null>,
  "data": ...}``.  Server-initiated; never carries an id.

Every message carries the protocol version under ``"v"``; the master
greets each connection with a ``hello`` event holding its
``{"protocol", "version"}`` pair so clients can refuse to talk across
an incompatible upgrade (see :func:`hello_event` /
:func:`check_hello`).

This module depends on nothing else in the service (or the rest of
:mod:`repro`) so the framing is unit-testable in isolation; errors are
*typed* — every failure mode maps to a stable code in
:data:`ERROR_CODES` via :class:`ProtocolError`.
"""

from __future__ import annotations

import json

PROTOCOL_VERSION = 1

# One line must comfortably hold a full point event (a report plus
# artifacts serializes to tens of KB); anything near this bound is not
# a legitimate message but a framing bug or garbage on the socket.
MAX_LINE_BYTES = 8 * 1024 * 1024

# The closed set of error codes a response may carry.
E_PARSE = "parse_error"           # line is not valid JSON
E_OVERSIZED = "oversized_line"    # line exceeds MAX_LINE_BYTES
E_INVALID = "invalid_message"     # JSON, but not a valid message shape
E_PROTOCOL = "protocol_mismatch"  # incompatible protocol version
E_UNKNOWN_METHOD = "unknown_method"
E_BAD_PARAMS = "bad_params"
E_UNKNOWN_JOB = "unknown_job"
E_INVALID_STATE = "invalid_state"  # e.g. cancelling a finished job
E_SERVER = "server_error"

ERROR_CODES = (
    E_PARSE, E_OVERSIZED, E_INVALID, E_PROTOCOL, E_UNKNOWN_METHOD,
    E_BAD_PARAMS, E_UNKNOWN_JOB, E_INVALID_STATE, E_SERVER,
)


def repro_version() -> str:
    """The installed package version (handshake + ``repro --version``).

    Prefers the installed distribution's metadata (what ``pip`` sees);
    falls back to the in-tree ``repro.__version__`` when running from a
    source checkout that was never installed.
    """
    try:
        from importlib.metadata import PackageNotFoundError, version

        return version("repro-ad-quant")
    except PackageNotFoundError:
        from repro import __version__

        return __version__


class ProtocolError(Exception):
    """A typed framing/validation failure.

    ``code`` is always one of :data:`ERROR_CODES`, so handlers can
    branch on it (and serialize it) without parsing message text.
    """

    def __init__(self, code: str, message: str):
        if code not in ERROR_CODES:
            raise ValueError(f"unknown protocol error code {code!r}")
        self.code = code
        super().__init__(message)

    def to_error(self, request_id=None) -> dict:
        """This failure as an error-response message."""
        return error_response(request_id, self.code, str(self))


# ---------------------------------------------------------------------------
# Encoding / decoding one line.
# ---------------------------------------------------------------------------

def encode(message: dict) -> bytes:
    """One message as a complete ``\\n``-terminated line.

    ``ensure_ascii`` stays on (the default) so the payload itself can
    never contain a raw newline and break the framing.
    """
    if not isinstance(message, dict):
        raise ProtocolError(
            E_INVALID, f"message must be a dict, got {type(message).__name__}"
        )
    line = json.dumps(message, separators=(",", ":")).encode("utf-8")
    if len(line) > MAX_LINE_BYTES:
        raise ProtocolError(
            E_OVERSIZED,
            f"encoded message is {len(line)} bytes "
            f"(limit {MAX_LINE_BYTES})",
        )
    return line + b"\n"


def decode_line(line: bytes | str) -> dict:
    """One received line back into a validated message dict.

    Raises :class:`ProtocolError` with a stable code for every failure
    mode: oversized input (:data:`E_OVERSIZED`), non-JSON garbage
    (:data:`E_PARSE`), JSON that is not a message (:data:`E_INVALID`),
    and a message from an incompatible protocol (:data:`E_PROTOCOL`).
    """
    if isinstance(line, str):
        line = line.encode("utf-8")
    if len(line) > MAX_LINE_BYTES:
        raise ProtocolError(
            E_OVERSIZED,
            f"line is {len(line)} bytes (limit {MAX_LINE_BYTES})",
        )
    try:
        message = json.loads(line.decode("utf-8"))
    except (ValueError, UnicodeDecodeError) as error:
        raise ProtocolError(E_PARSE, f"not valid JSON: {error}") from None
    if not isinstance(message, dict):
        raise ProtocolError(
            E_INVALID,
            f"message must be a JSON object, got "
            f"{type(message).__name__}",
        )
    version = message.get("v")
    if version != PROTOCOL_VERSION:
        raise ProtocolError(
            E_PROTOCOL,
            f"protocol version {version!r} is not the supported "
            f"version {PROTOCOL_VERSION}",
        )
    kind_of(message)  # shape validation; raises E_INVALID
    return message


def kind_of(message: dict) -> str:
    """``"request"`` / ``"response"`` / ``"event"``, validating shape."""
    if "method" in message:
        if not isinstance(message.get("method"), str) or not message["method"]:
            raise ProtocolError(E_INVALID, "request method must be a string")
        if not isinstance(message.get("id"), int):
            raise ProtocolError(
                E_INVALID, "request id must be an integer"
            )
        if not isinstance(message.get("params", {}), dict):
            raise ProtocolError(E_INVALID, "request params must be an object")
        return "request"
    if "event" in message:
        if not isinstance(message["event"], str) or not message["event"]:
            raise ProtocolError(E_INVALID, "event name must be a string")
        return "event"
    if "result" in message or "error" in message:
        request_id = message.get("id")
        if request_id is not None and not isinstance(request_id, int):
            raise ProtocolError(E_INVALID, "response id must be an integer")
        if "error" in message:
            error = message["error"]
            if (not isinstance(error, dict)
                    or error.get("code") not in ERROR_CODES
                    or not isinstance(error.get("message"), str)):
                raise ProtocolError(
                    E_INVALID,
                    "error responses need a {code, message} object with "
                    "a known code",
                )
        return "response"
    raise ProtocolError(
        E_INVALID,
        "message is neither a request (method), a response "
        "(result/error), nor an event",
    )


# ---------------------------------------------------------------------------
# Message constructors.
# ---------------------------------------------------------------------------

def request(request_id: int, method: str, params: dict | None = None) -> dict:
    message: dict = {"v": PROTOCOL_VERSION, "id": request_id,
                     "method": method}
    if params:
        message["params"] = params
    return message


def response(request_id: int, result) -> dict:
    return {"v": PROTOCOL_VERSION, "id": request_id, "result": result}


def error_response(request_id, code: str, message: str) -> dict:
    if code not in ERROR_CODES:
        raise ValueError(f"unknown protocol error code {code!r}")
    return {
        "v": PROTOCOL_VERSION,
        "id": request_id,
        "error": {"code": code, "message": message},
    }


def event(name: str, data=None, job: int | None = None) -> dict:
    message: dict = {"v": PROTOCOL_VERSION, "event": name, "job": job}
    if data is not None:
        message["data"] = data
    return message


# ---------------------------------------------------------------------------
# Handshake: the master greets, the client verifies.
# ---------------------------------------------------------------------------

def hello_event() -> dict:
    """The greeting a master sends on every new connection."""
    return event("hello", data={
        "protocol": PROTOCOL_VERSION,
        "version": repro_version(),
    })


def check_hello(message: dict) -> dict:
    """Validate a received greeting; returns its data payload.

    Raises :data:`E_PROTOCOL` when the peer speaks a different protocol
    version — the client-side half of the version handshake.
    """
    if message.get("event") != "hello":
        raise ProtocolError(
            E_INVALID,
            f"expected a hello event, got {message!r}",
        )
    data = message.get("data")
    if not isinstance(data, dict) or "protocol" not in data:
        raise ProtocolError(E_INVALID, "hello event carries no protocol")
    if data["protocol"] != PROTOCOL_VERSION:
        raise ProtocolError(
            E_PROTOCOL,
            f"master speaks protocol {data['protocol']!r} "
            f"(version {data.get('version', '?')}), this client speaks "
            f"{PROTOCOL_VERSION}",
        )
    return data
