"""Experiment service: the long-lived ``repro master`` daemon.

Every sweep or search used to be one foreground CLI process — the cache
warmed up, the worker pool spun up, the process exited, and everything
was torn down with the client's terminal.  This package turns the
scheduler/executor split into an always-on service:

* :mod:`repro.service.protocol` — versioned newline-delimited JSON
  request/response/event framing with request ids and typed errors.
  Depends on nothing else in the service, so it is unit-testable in
  isolation.
* :mod:`repro.service.queue` — the priority job queue: monotonic job
  ids, ``queued/running/paused/done/failed/cancelled`` states,
  artiq-style pause/resume between scheduler rounds, cancel/delete,
  and atomic JSON persistence so a restarted master re-offers
  unfinished jobs.
* :mod:`repro.service.master` — the asyncio server.  It owns one
  executor pool, one ``.repro-cache/`` :class:`ResultCache`, and the
  queue; jobs are
  :class:`~repro.orchestration.runner.SchedulerDrive` loops fed from
  the shared executor, per-point events stream to subscribed clients,
  and a higher-priority submission preempts a bulk sweep between
  ``next_points`` rounds.
* :mod:`repro.service.client` — the synchronous
  :class:`MasterClient` behind ``repro submit`` / ``repro status`` /
  ``repro watch`` / ``repro cancel`` / ``repro shutdown``.

Because every job shares the master's warm cache, a resubmitted search
replays entirely as cache hits, and killing a watching client never
kills the job it was watching.
"""

from repro.service.client import MasterClient, MasterError
from repro.service.master import Master
from repro.service.protocol import (
    MAX_LINE_BYTES,
    PROTOCOL_VERSION,
    ProtocolError,
    repro_version,
)
from repro.service.queue import Job, JobQueue

__all__ = [
    "Job",
    "JobQueue",
    "MAX_LINE_BYTES",
    "Master",
    "MasterClient",
    "MasterError",
    "PROTOCOL_VERSION",
    "ProtocolError",
    "repro_version",
]
