"""The master's priority run queue: job records, states, persistence.

A :class:`Job` is one submitted run/sweep/search: a JSON *spec* (what to
run — resolved to configs server-side at start time), an integer
priority, and a lifecycle state::

    queued -> running -> done | failed
      |          |
      |          +-> paused -> running   (preempted between rounds)
      +-> cancelled          (or cancel requested while running)

Priorities follow artiq's scheduler convention: **higher wins**, ties
resolve by submission order (monotonic job ids).  Preemption is
cooperative — :meth:`JobQueue.should_preempt` only *reports* that a
strictly-higher-priority job is waiting; the master pauses the running
job's drive between scheduler rounds, runs the newcomer, then resumes.

The queue persists itself atomically (temp file + rename) on every
mutation, so a restarted master re-offers unfinished work: jobs found
``running``/``paused`` in the state file were interrupted mid-flight
and reload as ``queued`` — their trained points are already in the
shared result cache, so the re-offered job replays them as hits.
Per-point results are deliberately *not* persisted; the cache is the
single source of completed-work truth.
"""

from __future__ import annotations

import time
from dataclasses import asdict, dataclass, field
from pathlib import Path

# Lifecycle states.
QUEUED = "queued"
RUNNING = "running"
PAUSED = "paused"
DONE = "done"
FAILED = "failed"
CANCELLED = "cancelled"

STATES = (QUEUED, RUNNING, PAUSED, DONE, FAILED, CANCELLED)
ACTIVE_STATES = (QUEUED, RUNNING, PAUSED)
FINAL_STATES = (DONE, FAILED, CANCELLED)

JOB_KINDS = ("run", "sweep", "search")

STATE_VERSION = 1


@dataclass
class Job:
    """One submitted unit of work and its lifecycle bookkeeping."""

    id: int
    kind: str            # one of JOB_KINDS
    name: str            # preset/config name, for humans
    spec: dict           # the JSON submission ({"preset": ...} / {"config": ...})
    priority: int = 0
    state: str = QUEUED
    submitted_at: float = field(default_factory=time.time)
    started_at: float | None = None
    finished_at: float | None = None
    error: str | None = None
    summary: dict = field(default_factory=dict)  # stats on completion
    cancel_requested: bool = False

    def __post_init__(self):
        if self.kind not in JOB_KINDS:
            raise ValueError(
                f"unknown job kind {self.kind!r} (choose from {JOB_KINDS})"
            )
        if self.state not in STATES:
            raise ValueError(f"unknown job state {self.state!r}")

    @property
    def finished(self) -> bool:
        return self.state in FINAL_STATES

    def to_dict(self) -> dict:
        return asdict(self)

    @classmethod
    def from_dict(cls, payload: dict) -> "Job":
        known = {spec.name for spec in cls.__dataclass_fields__.values()}
        return cls(**{k: v for k, v in payload.items() if k in known})

    def describe(self) -> dict:
        """The ``repro status`` view of this job (summary, no spec)."""
        return {
            "id": self.id,
            "kind": self.kind,
            "name": self.name,
            "priority": self.priority,
            "state": self.state,
            "submitted_at": self.submitted_at,
            "started_at": self.started_at,
            "finished_at": self.finished_at,
            "error": self.error,
            "summary": self.summary,
            "cancel_requested": self.cancel_requested,
        }


class JobQueue:
    """Priority-ordered job store with atomic JSON persistence.

    ``state_path`` of None keeps the queue purely in memory (tests);
    otherwise every mutation rewrites the state file atomically.
    """

    def __init__(self, state_path=None):
        self.state_path = Path(state_path) if state_path else None
        self._jobs: dict[int, Job] = {}
        self._next_id = 1

    # ------------------------------------------------------------------
    # Submission and lookup.
    # ------------------------------------------------------------------
    def submit(self, kind: str, name: str, spec: dict,
               priority: int = 0) -> Job:
        job = Job(id=self._next_id, kind=kind, name=name, spec=spec,
                  priority=priority)
        self._next_id += 1
        self._jobs[job.id] = job
        self.persist()
        return job

    def get(self, job_id: int) -> Job:
        try:
            return self._jobs[job_id]
        except KeyError:
            raise KeyError(f"no such job: {job_id}") from None

    def jobs(self) -> list[Job]:
        """Every job, in submission order."""
        return [self._jobs[job_id] for job_id in sorted(self._jobs)]

    def __len__(self) -> int:
        return len(self._jobs)

    # ------------------------------------------------------------------
    # Scheduling queries.
    # ------------------------------------------------------------------
    def _rank(self, job: Job) -> tuple:
        # Higher priority first; FIFO (and resume-before-start, since a
        # paused job always has the older id) within a priority.
        return (-job.priority, job.id)

    def next_runnable(self) -> Job | None:
        """The job the master should (re)start next, or None.

        Considers ``queued`` and ``paused`` jobs alike: a paused job
        resumes exactly like a queued one starts, just from its
        retained drive state.
        """
        candidates = [
            job for job in self._jobs.values()
            if job.state in (QUEUED, PAUSED) and not job.cancel_requested
        ]
        if not candidates:
            return None
        return min(candidates, key=self._rank)

    def should_preempt(self, running: Job) -> bool:
        """True when a strictly-higher-priority job is waiting to run."""
        return any(
            job.priority > running.priority
            for job in self._jobs.values()
            if job.state == QUEUED and not job.cancel_requested
        )

    # ------------------------------------------------------------------
    # State transitions.
    # ------------------------------------------------------------------
    def mark(self, job: Job, state: str, error: str | None = None,
             summary: dict | None = None) -> None:
        """Transition ``job`` and persist; stamps start/finish times."""
        if state not in STATES:
            raise ValueError(f"unknown job state {state!r}")
        job.state = state
        if state == RUNNING and job.started_at is None:
            job.started_at = time.time()
        if state in FINAL_STATES:
            job.finished_at = time.time()
        if error is not None:
            job.error = error
        if summary is not None:
            job.summary = summary
        self.persist()

    def cancel(self, job: Job) -> str:
        """Cancel ``job``; returns what actually happened.

        A job that is not running yet (queued/paused) cancels
        immediately; a running one gets ``cancel_requested`` and the
        master stops it at the next scheduler-round boundary.  Returns
        ``"cancelled"`` or ``"requested"``; raises ``ValueError`` for
        jobs already finished.
        """
        if job.finished:
            raise ValueError(
                f"job {job.id} is already {job.state}; nothing to cancel"
            )
        if job.state in (QUEUED, PAUSED):
            self.mark(job, CANCELLED)
            return CANCELLED
        job.cancel_requested = True
        self.persist()
        return "requested"

    def delete(self, job: Job) -> None:
        """Drop a *finished* job's record entirely."""
        if not job.finished:
            raise ValueError(
                f"job {job.id} is {job.state}; cancel it before deleting"
            )
        del self._jobs[job.id]
        self.persist()

    # ------------------------------------------------------------------
    # Persistence.
    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        return {
            "version": STATE_VERSION,
            "next_id": self._next_id,
            "jobs": [job.to_dict() for job in self.jobs()],
        }

    def persist(self) -> None:
        if self.state_path is None:
            return
        import json

        from repro.utils.serialization import atomic_write

        data = (json.dumps(self.to_dict(), indent=2) + "\n").encode("utf-8")
        atomic_write(self.state_path, lambda handle: handle.write(data))

    @classmethod
    def load(cls, state_path) -> "JobQueue":
        """Restore a queue from its state file (missing file = empty).

        Jobs persisted as ``running``/``paused`` were interrupted by
        the previous master's death; they reload as ``queued`` so the
        restarted master re-offers them (their completed points replay
        from the shared result cache).
        """
        import json

        queue = cls(state_path)
        path = queue.state_path
        if path is None or not path.exists():
            return queue
        payload = json.loads(path.read_text())
        if payload.get("version") != STATE_VERSION:
            raise ValueError(
                f"state file {str(path)!r} has version "
                f"{payload.get('version')!r}, expected {STATE_VERSION}"
            )
        for job_payload in payload.get("jobs", ()):
            job = Job.from_dict(job_payload)
            if job.state in (RUNNING, PAUSED):
                job.state = QUEUED
            if job.cancel_requested and not job.finished:
                # The cancel was requested but never honoured before the
                # old master died; honour it now.
                job.state = CANCELLED
                job.cancel_requested = False
                if job.finished_at is None:
                    job.finished_at = time.time()
            queue._jobs[job.id] = job
        queue._next_id = max(
            payload.get("next_id", 1),
            max(queue._jobs, default=0) + 1,
        )
        queue.persist()
        return queue
