"""The asyncio ``repro master``: one warm cache, one pool, many jobs.

The master owns the three expensive singletons every CLI invocation
used to rebuild and tear down — the worker pool, the
``.repro-cache/`` :class:`~repro.orchestration.cache.ResultCache`, and
the scheduler driver — and serves them to thin clients over a
line-delimited JSON-RPC protocol on a unix-domain socket
(:mod:`repro.service.protocol`).

Execution model (the PR-4 seam, made long-lived):

* Each job wraps one
  :class:`~repro.orchestration.runner.SchedulerDrive` — the exact
  state machine ``SweepRunner.run_scheduler`` uses, shared so service
  and CLI semantics can never diverge.  Schedulers are pull-based, so
  the master owns the capacity loop: it feeds a job's proposed tasks
  into the shared executor a slot at a time and routes outcomes back
  by a master-global task id.
* Exactly one job drives at a time (artiq-style): when a
  strictly-higher-priority job arrives, the running job stops
  submitting, lets its in-flight slots drain, and is ``paused`` — its
  drive (scheduler state included) stays in memory — while the
  newcomer runs; it resumes where it left off afterwards.
* Every point completion streams to subscribed ``repro watch`` clients
  as an event; a client death mid-watch only drops the subscription,
  never the job.
* The queue persists atomically on every mutation, so a restarted
  master re-offers unfinished jobs; their completed points replay from
  the shared cache as pure hits.
"""

from __future__ import annotations

import asyncio
import contextlib
import traceback
from pathlib import Path

from repro.orchestration.cache import DEFAULT_CACHE_DIR, ResultCache
from repro.orchestration.executor import (
    ProcessExecutor,
    SerialExecutor,
    TaskInterrupted,
)
from repro.orchestration.runner import (
    SchedulerDrive,
    execute_point,
    pending_point_dict,
    point_dict,
)
from repro.orchestration.scheduler import StaticScheduler
from repro.service import protocol, queue as jobqueue
from repro.service.queue import JobQueue

DEFAULT_SOCKET = ".repro-master.sock"
DEFAULT_STATE = ".repro-master.json"


def detect_config_kind(payload: dict) -> str:
    """Which job kind a raw config-file dict describes.

    A :class:`SearchConfig` always carries ``strategy``; a
    :class:`SweepConfig` carries sweep-only keys (``axes`` / ``seeds``
    / ``presets`` / ``base``) without a model section; everything else
    is a single-run :class:`ExperimentConfig`.
    """
    if not isinstance(payload, dict):
        raise ValueError("config payload must be a JSON object")
    if "strategy" in payload:
        return "search"
    if "model" in payload or "quant" in payload:
        return "run"
    if any(key in payload for key in ("axes", "seeds", "presets", "base")):
        return "sweep"
    raise ValueError(
        "cannot tell whether this config is a run, sweep, or search; "
        "pass an explicit kind"
    )


def build_scheduler_for(kind: str, payload) -> tuple:
    """``(scheduler, name)`` for a validated job spec.

    ``payload`` is the preset's resolved config object or a raw config
    dict; errors raise ``ValueError``/``KeyError`` (submission-time
    validation happens through this same path, so a job that enqueues
    can always at least *start*).
    """
    from repro.api.config import ExperimentConfig
    from repro.orchestration.search import SearchConfig, build_scheduler
    from repro.orchestration.sweep import SweepConfig, SweepPoint, expand

    if kind == "search":
        search = (payload if isinstance(payload, SearchConfig)
                  else SearchConfig.from_dict(payload))
        return build_scheduler(search), search.name
    if kind == "sweep":
        sweep = (payload if isinstance(payload, SweepConfig)
                 else SweepConfig.from_dict(payload))
        return StaticScheduler(expand(sweep), name=sweep.name), sweep.name
    if kind == "run":
        config = (payload if isinstance(payload, ExperimentConfig)
                  else ExperimentConfig.from_dict(payload))
        point = SweepPoint(label=config.name, config=config, index=0)
        return StaticScheduler([point], name=config.name), config.name
    raise ValueError(f"unknown job kind {kind!r}")


def resolve_spec(spec: dict) -> tuple:
    """Validate a submission spec; returns ``(kind, name, payload)``.

    ``{"preset": name}`` resolves server-side through every registry
    (search, then sweep, then experiment — see
    :func:`repro.api.experiments.resolve_any`); ``{"config": {...}}``
    carries the config dict inline with an optional explicit
    ``"kind"``.  An optional ``"backend"`` key pins the job to one
    tensor backend (applied server-side to the resolved payload via
    :func:`repro.api.experiments.apply_backend`, so a restarted master
    re-applies it when it re-offers the persisted spec); an optional
    integer ``"speculate"`` key turns on speculative trial execution
    for search jobs (:func:`repro.api.experiments.apply_speculation` —
    other kinds refuse it at submission time).
    """
    if not isinstance(spec, dict):
        raise ValueError("submission spec must be an object")
    preset = spec.get("preset")
    config = spec.get("config")
    backend = spec.get("backend")
    speculate = spec.get("speculate")
    if speculate is not None and not isinstance(speculate, int):
        raise ValueError("speculate must be an integer")
    if (preset is None) == (config is None):
        raise ValueError("spec needs exactly one of 'preset' / 'config'")
    if preset is not None:
        from repro.api import experiments

        kind, payload = experiments.resolve_any(preset)
        payload = experiments.apply_backend(kind, payload, backend)
        payload = experiments.apply_speculation(kind, payload, speculate)
        return kind, preset, payload
    kind = spec.get("kind") or detect_config_kind(config)
    if kind not in jobqueue.JOB_KINDS:
        raise ValueError(
            f"unknown job kind {kind!r} (choose from {jobqueue.JOB_KINDS})"
        )
    name = config.get("name") if isinstance(config, dict) else None
    if backend is not None or speculate is not None:
        from repro.api import experiments
        from repro.api.config import ExperimentConfig
        from repro.orchestration.search import SearchConfig
        from repro.orchestration.sweep import SweepConfig

        typed = {"run": ExperimentConfig, "sweep": SweepConfig,
                 "search": SearchConfig}[kind]
        config = experiments.apply_backend(
            kind, typed.from_dict(config), backend
        )
        config = experiments.apply_speculation(kind, config, speculate)
    return kind, name or f"inline-{kind}", config


class _JobRun:
    """A live job: its drive, backlog, and outcome mailbox."""

    def __init__(self, job, drive: SchedulerDrive, scheduler):
        self.job = job
        self.drive = drive
        self.scheduler = scheduler
        self.backlog: list[dict] = []   # proposed tasks awaiting a slot
        self.results: asyncio.Queue = asyncio.Queue()
        self.outstanding = 0            # tasks submitted, outcome pending
        self.active = True
        self.error: str | None = None
        # Reverse task-id maps for cancellation: the drive cancels by
        # *local* index, the executor by master-global id.
        self.gids: set = set()          # this job's in-flight gids
        self.gid_by_local: dict = {}    # local index -> gid


class Master:
    """The experiment-service daemon; ``serve()`` runs until shutdown."""

    def __init__(self, socket_path=DEFAULT_SOCKET, jobs: int = 1,
                 cache_dir=DEFAULT_CACHE_DIR, state_path=DEFAULT_STATE,
                 task_timeout: float | None = None, execute=execute_point,
                 log=None):
        if jobs < 1:
            raise ValueError("jobs must be >= 1")
        self.socket_path = Path(socket_path)
        self.jobs = jobs
        self.cache = ResultCache(cache_dir)
        self.queue = JobQueue.load(state_path)
        self.task_timeout = task_timeout
        self.execute = execute
        self.log = log or (lambda message: None)
        self._stopping = False
        self._executor = None
        self._gid = 0                     # master-global task ids
        self._inflight: dict = {}         # gid -> (_JobRun, local index)
        self._runs: dict[int, _JobRun] = {}
        self._history: dict[int, list[dict]] = {}   # job id -> events
        self._subscribers: dict[int, set] = {}      # job id -> writers
        self._wake = asyncio.Event()
        self._have_work = asyncio.Event()
        self._stopped = asyncio.Event()

    # ------------------------------------------------------------------
    # Lifecycle.
    # ------------------------------------------------------------------
    def _make_executor(self):
        # The interrupt flag unblocks the pump thread at shutdown even
        # while a result wait is in progress.
        if self.jobs == 1:
            return SerialExecutor(self.execute,
                                  interrupt=lambda: self._stopping)
        return ProcessExecutor(self.jobs, self.execute,
                               task_timeout=self.task_timeout,
                               interrupt=lambda: self._stopping)

    def request_shutdown(self) -> None:
        """Stop serving (signal handlers and the ``shutdown`` method)."""
        self._stopping = True
        self._stopped.set()
        self._wake.set()
        self._have_work.set()

    async def serve(self) -> None:
        """Bind the socket and serve until :meth:`request_shutdown`.

        A pre-existing socket file is assumed stale (a crashed master)
        and replaced; run one master per socket path.
        """
        if self.socket_path.exists():
            self.socket_path.unlink()
        with self._make_executor() as executor:
            self._executor = executor
            server = await asyncio.start_unix_server(
                self._on_client, path=str(self.socket_path),
                limit=protocol.MAX_LINE_BYTES + 2,
            )
            pump = asyncio.create_task(self._pump())
            loop = asyncio.create_task(self._scheduler_loop())
            self.log(f"master listening on {self.socket_path} "
                     f"({self.jobs} executor slot(s), "
                     f"{len(self.queue)} job(s) restored)")
            try:
                async with server:
                    await self._stopped.wait()
            finally:
                self._stopping = True
                for task in (pump, loop):
                    task.cancel()
                    with contextlib.suppress(asyncio.CancelledError):
                        await task
                with contextlib.suppress(OSError):
                    self.socket_path.unlink()
                self.queue.persist()
                self.log("master stopped")

    # ------------------------------------------------------------------
    # Task plumbing: global ids over the shared executor.
    # ------------------------------------------------------------------
    def _submit_task(self, run: _JobRun, task: dict) -> None:
        gid = self._gid
        self._gid += 1
        self._inflight[gid] = (run, task["index"])
        run.gids.add(gid)
        run.gid_by_local[task["index"]] = gid
        run.outstanding += 1
        self._executor.submit({"index": gid, "config": task["config"]})
        self._have_work.set()

    async def _pump(self) -> None:
        """Route executor outcomes back to their jobs' mailboxes."""
        while True:
            await self._have_work.wait()
            if not self._inflight:
                self._have_work.clear()
                continue
            try:
                outcome = await asyncio.to_thread(self._executor.next_result)
            except TaskInterrupted:
                return  # shutdown
            except RuntimeError:
                # A cancel() on the event loop emptied the executor
                # between the inflight check and the blocking wait;
                # nothing to collect until something is submitted.
                if not self._inflight:
                    self._have_work.clear()
                await asyncio.sleep(0.05)
                continue
            gid = outcome.get("index")
            entry = self._inflight.pop(gid, None)
            if not self._inflight:
                self._have_work.clear()
            if entry is None:
                continue  # outcome of a cancelled job's straggler
            run, local = entry
            run.gids.discard(gid)
            run.gid_by_local.pop(local, None)
            run.outstanding -= 1
            outcome["index"] = local
            if run.active:
                run.results.put_nowait(outcome)

    # ------------------------------------------------------------------
    # The capacity loop: one driving job at a time, pause between rounds.
    # ------------------------------------------------------------------
    async def _scheduler_loop(self) -> None:
        while not self._stopping:
            job = self.queue.next_runnable()
            if job is None:
                self._wake.clear()
                await self._wake.wait()
                continue
            run = self._runs.get(job.id)
            if run is None:
                try:
                    run = self._make_run(job)
                except Exception as error:
                    self._finalize(job, None, jobqueue.FAILED,
                                   error=f"{type(error).__name__}: {error}")
                    continue
                self._runs[job.id] = run
            resumed = job.state == jobqueue.PAUSED
            self.queue.mark(job, jobqueue.RUNNING)
            self._emit_state(job, resumed=resumed)
            verdict = await self._drive(run)
            if verdict == "paused":
                self.queue.mark(job, jobqueue.PAUSED)
                self._emit_state(job)
                continue
            self._runs.pop(job.id, None)
            run.active = False
            if verdict == "done":
                self._finalize(job, run, jobqueue.DONE)
            elif verdict == "cancelled":
                self._discard_run_tasks(run)
                self._finalize(job, run, jobqueue.CANCELLED)
            else:
                self._discard_run_tasks(run)
                self._finalize(job, run, jobqueue.FAILED, error=run.error)

    def _make_run(self, job) -> _JobRun:
        kind, _, payload = resolve_spec(job.spec)
        scheduler, name = build_scheduler_for(kind, payload)

        def on_point(result, position, total):
            self._emit(job.id, protocol.event(
                "point", job=job.id,
                data=point_dict(result, position)))

        def on_schedule(new_points, total):
            start = total - len(new_points)
            self._emit(job.id, protocol.event(
                "schedule", job=job.id,
                data={
                    "total": total,
                    "points": [
                        pending_point_dict(point, start + offset)
                        for offset, point in enumerate(new_points)
                    ],
                }))

        holder: list = []

        def on_cancel(local_index):
            # Revoke one of this job's submitted speculative tasks.
            # Backlogged tasks (proposed, no slot yet) are free; for
            # submitted ones the executor's disposition decides, and a
            # "queued" drop must also unwind the master's bookkeeping
            # (no outcome will ever arrive for the gid).
            run = holder[0]
            for position, task in enumerate(run.backlog):
                if task["index"] == local_index:
                    del run.backlog[position]
                    return "queued"
            gid = run.gid_by_local.get(local_index)
            if gid is None:
                return "unknown"
            disposition = self._executor.cancel(gid)
            if disposition == "queued":
                self._inflight.pop(gid, None)
                run.gids.discard(gid)
                run.gid_by_local.pop(local_index, None)
                run.outstanding -= 1
            return disposition

        drive = SchedulerDrive(
            scheduler, name=name, cache=self.cache,
            log=lambda message: self.log(f"job {job.id}: {message}"),
            on_point=on_point, on_schedule=on_schedule,
            on_cancel=on_cancel,
        )
        run = _JobRun(job, drive, scheduler)
        holder.append(run)
        return run

    async def _drive(self, run: _JobRun) -> str:
        """Drive one job until done/failed/cancelled — or ``paused``.

        The pause points sit *between scheduler rounds*: a preempting
        submission stops further task submission, lets the in-flight
        slots drain, and hands the loop back with the drive (and any
        backlog) intact for resumption.
        """
        drive, job = run.drive, run.job
        while True:
            if job.cancel_requested:
                return "cancelled"
            preempt = self._stopping or self.queue.should_preempt(job)
            if preempt:
                # Speculative in-flights are bets, not committed work: a
                # pausing job must not hold executor slots (or backlog
                # entries) with them while a higher-priority job waits.
                drive.cancel_speculations()
            else:
                if not drive.done:
                    try:
                        run.backlog.extend(drive.round())
                    except RuntimeError as error:
                        run.error = str(error)
                        return "failed"
                while run.backlog and run.outstanding < self.jobs:
                    self._submit_task(run, run.backlog.pop(0))
            if drive.done and drive.in_flight == 0:
                return "done"
            if preempt and run.outstanding == 0:
                return "paused"
            if run.outstanding == 0:
                run.error = (
                    f"scheduler {type(run.scheduler).__name__} has "
                    "unsubmittable work while no tasks are in flight"
                )
                return "failed"
            outcome = await run.results.get()
            try:
                drive.deliver(outcome)
            except RuntimeError as error:
                run.error = str(error)
                return "failed"

    def _discard_run_tasks(self, run: _JobRun) -> None:
        """Purge a discarded job's tasks from the shared executor.

        A cancelled (or crashed) job can leave proposed tasks in its
        backlog and submitted ones in the executor's; without this purge
        the executor would keep feeding them to workers — burning shared
        slots on a job whose scheduler no longer exists.  Queued tasks
        are dropped for free (their gids unwound so the pump never waits
        on them); running ones finish as stragglers the pump already
        discards for inactive runs.
        """
        run.backlog.clear()
        for gid in list(run.gids):
            if self._executor.cancel(gid) == "queued":
                if self._inflight.pop(gid, None) is not None:
                    run.outstanding -= 1
                run.gids.discard(gid)

    def _summarize(self, run: _JobRun | None) -> dict:
        if run is None:
            return {}
        result = run.drive.partial_result()
        summary = {
            "stats": result.stats,
            "scheduled": len(run.drive.points),
        }
        scheduler = run.scheduler
        if hasattr(scheduler, "best"):
            from repro.orchestration.search import bit_vector_of, trial_metrics

            best = scheduler.best()
            summary["search"] = {
                "best": None if best is None else {
                    "label": best.label,
                    "key": best.key,
                    "config": (best.config.to_dict()
                               if best.config is not None else None),
                    "metrics": trial_metrics(best),
                },
                "bit_vector": bit_vector_of(best),
                "feasibility": scheduler.feasibility(),
            }
        return summary

    def _finalize(self, job, run: _JobRun | None, state: str,
                  error: str | None = None) -> None:
        self.queue.mark(job, state, error=error,
                        summary=self._summarize(run))
        self.log(f"job {job.id} ({job.name}): {state}"
                 + (f" — {error}" if error else ""))
        self._emit(job.id, protocol.event(
            "done", job=job.id, data=job.describe()))

    def _emit_state(self, job, resumed: bool = False) -> None:
        data = job.describe()
        if resumed:
            data["resumed"] = True
        self._emit(job.id, protocol.event("state", job=job.id, data=data))

    # ------------------------------------------------------------------
    # Events: history for replay + live fan-out to subscribers.
    # ------------------------------------------------------------------
    def _emit(self, job_id: int, message: dict) -> None:
        self._history.setdefault(job_id, []).append(message)
        line = protocol.encode(message)
        for writer in list(self._subscribers.get(job_id, ())):
            try:
                writer.write(line)
            except Exception:
                self._subscribers[job_id].discard(writer)

    # ------------------------------------------------------------------
    # Client connections.
    # ------------------------------------------------------------------
    async def _on_client(self, reader, writer) -> None:
        writer.write(protocol.encode(protocol.hello_event()))
        try:
            await writer.drain()
            while not self._stopping:
                try:
                    line = await reader.readline()
                except ValueError:
                    # Oversized line: the stream is now misframed, so
                    # answer with the typed error and hang up.
                    writer.write(protocol.encode(protocol.error_response(
                        None, protocol.E_OVERSIZED,
                        f"line exceeds {protocol.MAX_LINE_BYTES} bytes",
                    )))
                    await writer.drain()
                    break
                if not line:
                    break
                reply = self._handle_line(line, writer)
                if reply is not None:
                    writer.write(protocol.encode(reply))
                    await writer.drain()
        except (ConnectionResetError, BrokenPipeError):
            pass  # a dying client never takes a job down with it
        except asyncio.CancelledError:
            pass  # loop teardown at shutdown; connection dies with us
        finally:
            for subscribers in self._subscribers.values():
                subscribers.discard(writer)
            writer.close()
            with contextlib.suppress(Exception):
                await writer.wait_closed()

    def _handle_line(self, line: bytes, writer) -> dict | None:
        """One request line -> one response message (or None after
        ``watch``, which writes its own replay before responding)."""
        try:
            message = protocol.decode_line(line)
            if protocol.kind_of(message) != "request":
                raise protocol.ProtocolError(
                    protocol.E_INVALID, "only requests flow client->master"
                )
        except protocol.ProtocolError as error:
            return error.to_error()
        request_id = message["id"]
        method = message["method"]
        params = message.get("params", {})
        try:
            handler = getattr(self, f"_rpc_{method}", None)
            if handler is None:
                raise protocol.ProtocolError(
                    protocol.E_UNKNOWN_METHOD,
                    f"unknown method {method!r}",
                )
            return protocol.response(
                request_id, handler(params, writer, request_id)
            )
        except protocol.ProtocolError as error:
            return error.to_error(request_id)
        except (KeyError, TypeError, ValueError) as error:
            code = (protocol.E_UNKNOWN_JOB
                    if isinstance(error, KeyError) else protocol.E_BAD_PARAMS)
            text = (error.args[0]
                    if error.args and isinstance(error.args[0], str)
                    else str(error))
            return protocol.error_response(request_id, code, text)
        except Exception as error:  # a server bug must not kill the master
            self.log("server error: " + traceback.format_exc())
            return protocol.error_response(
                request_id, protocol.E_SERVER,
                f"{type(error).__name__}: {error}",
            )

    # --- request handlers -------------------------------------------
    def _rpc_hello(self, params, writer, request_id):
        return {"protocol": protocol.PROTOCOL_VERSION,
                "version": protocol.repro_version()}

    def _rpc_submit(self, params, writer, request_id):
        spec = {key: params[key]
                for key in ("preset", "config", "kind", "backend",
                            "speculate")
                if key in params}
        priority = params.get("priority", 0)
        if not isinstance(priority, int):
            raise ValueError("priority must be an integer")
        try:
            kind, name, _ = resolve_spec(spec)  # validates before enqueue
        except KeyError as error:
            # An unknown *preset* is a bad submission, not a bad job id.
            text = (error.args[0]
                    if error.args and isinstance(error.args[0], str)
                    else str(error))
            raise protocol.ProtocolError(
                protocol.E_BAD_PARAMS, text
            ) from None
        spec.setdefault("kind", kind)
        job = self.queue.submit(kind, name, spec, priority=priority)
        self.log(f"job {job.id} ({name}): submitted "
                 f"[{kind}, priority {priority}]")
        self._emit_state(job)
        self._wake.set()
        return {"job": job.id, "kind": kind, "name": name,
                "priority": priority}

    def _rpc_status(self, params, writer, request_id):
        job_id = params.get("job")
        if job_id is not None:
            return {"jobs": [self.queue.get(job_id).describe()]}
        return {
            "master": {
                "version": protocol.repro_version(),
                "protocol": protocol.PROTOCOL_VERSION,
                "jobs": self.jobs,
                "cache_dir": str(self.cache.root),
                "cache_entries": self.cache.entry_count(),
            },
            "jobs": [job.describe() for job in self.queue.jobs()],
        }

    def _rpc_watch(self, params, writer, request_id):
        job = self.queue.get(params["job"])
        history = list(self._history.get(job.id, ()))
        self._subscribers.setdefault(job.id, set()).add(writer)
        # Replay history *before* the response is sent by the caller —
        # no await separates these writes, so live events cannot
        # interleave into the replay.
        for message in history:
            writer.write(protocol.encode(message))
        if job.finished:
            # A job finished before this master's lifetime (restored
            # from the state file) has no history; synthesize the
            # terminal event so the watch always ends.
            writer.write(protocol.encode(protocol.event(
                "done", job=job.id, data=job.describe())))
        return {"job": job.id, "state": job.state,
                "replayed": len(history)}

    def _rpc_cancel(self, params, writer, request_id):
        job = self.queue.get(params["job"])
        try:
            outcome = self.queue.cancel(job)
        except ValueError as error:
            raise protocol.ProtocolError(
                protocol.E_INVALID_STATE, str(error)
            ) from None
        if outcome == jobqueue.CANCELLED:
            self._emit(job.id, protocol.event(
                "done", job=job.id, data=job.describe()))
        self.log(f"job {job.id} ({job.name}): cancel {outcome}")
        self._wake.set()
        return {"job": job.id, "cancel": outcome, "state": job.state}

    def _rpc_delete(self, params, writer, request_id):
        job = self.queue.get(params["job"])
        try:
            self.queue.delete(job)
        except ValueError as error:
            raise protocol.ProtocolError(
                protocol.E_INVALID_STATE, str(error)
            ) from None
        self._history.pop(job.id, None)
        self._subscribers.pop(job.id, None)
        return {"job": job.id, "deleted": True}

    def _rpc_shutdown(self, params, writer, request_id):
        self.log("shutdown requested")
        # The response is returned first; stopping flips on the next
        # loop tick so the client hears the acknowledgement.
        asyncio.get_running_loop().call_soon(self.request_shutdown)
        return {"stopping": True}
