"""Synchronous client for the ``repro master`` service.

:class:`MasterClient` speaks the :mod:`repro.service.protocol` framing
over a unix-domain socket: it verifies the master's ``hello`` greeting
(the protocol/version handshake), correlates responses to requests by
id even when server events interleave between them, and surfaces typed
server errors as :class:`MasterError` with the error code attached.

The client is deliberately synchronous — ``repro submit`` / ``status``
/ ``watch`` / ``cancel`` are short-lived terminal commands, and a
blocking socket plus a readline loop is all they need.
"""

from __future__ import annotations

import socket
from pathlib import Path

from repro.service import protocol


class MasterError(Exception):
    """A typed error returned by (or about) the master.

    ``code`` is one of :data:`repro.service.protocol.ERROR_CODES`, or
    ``"connection"`` for transport-level failures.
    """

    def __init__(self, code: str, message: str):
        self.code = code
        super().__init__(message)


class MasterClient:
    """One connection to a running master.

    Usable as a context manager::

        with MasterClient(".repro-master.sock") as client:
            job = client.submit(preset="search-smoke-bits")["job"]
            client.watch(job, on_event=print)

    ``timeout`` bounds each blocking read; ``None`` (the default) waits
    indefinitely, which is what ``watch`` wants while a long trial
    trains.
    """

    def __init__(self, socket_path, timeout: float | None = None):
        self.socket_path = Path(socket_path)
        self._next_id = 1
        self._sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        self._sock.settimeout(timeout)
        try:
            self._sock.connect(str(self.socket_path))
        except OSError as error:
            self._sock.close()
            raise MasterError(
                "connection",
                f"cannot reach a master at {self.socket_path}: {error} "
                "(start one with `repro master`)",
            ) from None
        self._file = self._sock.makefile("rb")
        # The master speaks first: verify its protocol before anything
        # else flows, so a version mismatch fails fast and typed.
        self.server = protocol.check_hello(self._read_message())

    # ------------------------------------------------------------------
    def close(self) -> None:
        try:
            self._file.close()
        finally:
            self._sock.close()

    def __enter__(self) -> "MasterClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------
    # Wire plumbing.
    # ------------------------------------------------------------------
    def _read_message(self) -> dict:
        try:
            line = self._file.readline(protocol.MAX_LINE_BYTES + 2)
        except OSError as error:
            raise MasterError(
                "connection", f"lost the master mid-read: {error}"
            ) from None
        if not line:
            raise MasterError(
                "connection",
                "the master closed the connection "
                f"({self.socket_path})",
            )
        if not line.endswith(b"\n"):
            raise protocol.ProtocolError(
                protocol.E_OVERSIZED,
                f"server line exceeds {protocol.MAX_LINE_BYTES} bytes",
            )
        return protocol.decode_line(line)

    def call(self, method: str, params: dict | None = None,
             on_event=None):
        """One request/response round-trip.

        Events arriving before the response are passed to ``on_event``
        (dropped when None); responses are matched by request id, so an
        interleaved response to *another* request on this connection
        would be ignored rather than mistaken for ours.
        """
        request_id = self._next_id
        self._next_id += 1
        try:
            self._sock.sendall(
                protocol.encode(protocol.request(request_id, method, params))
            )
        except OSError as error:
            raise MasterError(
                "connection", f"lost the master mid-send: {error}"
            ) from None
        while True:
            message = self._read_message()
            kind = protocol.kind_of(message)
            if kind == "event":
                if on_event is not None:
                    on_event(message)
                continue
            if kind != "response" or message.get("id") not in (
                    request_id, None):
                continue
            if "error" in message:
                error = message["error"]
                raise MasterError(error["code"], error["message"])
            return message["result"]

    # ------------------------------------------------------------------
    # The verbs.
    # ------------------------------------------------------------------
    def hello(self) -> dict:
        """The master's ``{protocol, version}`` pair, re-queried."""
        return self.call("hello")

    def submit(self, preset: str | None = None, config: dict | None = None,
               kind: str | None = None, priority: int = 0,
               backend: str | None = None,
               speculate: int | None = None) -> dict:
        params: dict = {"priority": priority}
        if preset is not None:
            params["preset"] = preset
        if config is not None:
            params["config"] = config
        if kind is not None:
            params["kind"] = kind
        if backend is not None:
            params["backend"] = backend
        if speculate is not None:
            params["speculate"] = speculate
        return self.call("submit", params)

    def status(self, job: int | None = None) -> dict:
        params = {} if job is None else {"job": job}
        return self.call("status", params)

    def cancel(self, job: int) -> dict:
        return self.call("cancel", {"job": job})

    def delete(self, job: int) -> dict:
        return self.call("delete", {"job": job})

    def shutdown(self) -> dict:
        return self.call("shutdown")

    def watch(self, job: int, on_event=None) -> dict:
        """Follow ``job`` to completion; returns its final description.

        Subscribes, replays the job's event history, then streams live
        events into ``on_event(message)`` until the terminal ``done``
        event arrives.  The return value is the job's final
        ``describe()`` payload (state, error, summary).
        """
        final: list[dict] = []

        def sink(message):
            if on_event is not None:
                on_event(message)
            if (message.get("event") == "done"
                    and message.get("job") == job):
                final.append(message.get("data", {}))

        # The replay (terminal event included, for already-finished
        # jobs) arrives *before* the response, so the subscription call
        # itself may already deliver the ending.
        self.call("watch", {"job": job}, on_event=sink)
        while not final:
            message = self._read_message()
            if protocol.kind_of(message) != "event":
                continue
            sink(message)
        return final[0]
