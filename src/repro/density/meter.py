"""Per-layer activation-density accumulation (paper eqn. 2)."""

from __future__ import annotations

import numpy as np


def activation_density(activations: np.ndarray, threshold: float = 0.0) -> float:
    """AD of a single activation array: fraction of entries > threshold.

    ReLU outputs are non-negative, so "non-zero" is ``> 0``; ``threshold``
    allows treating tiny magnitudes as zero (used in ablations).
    """
    activations = np.asarray(activations)
    if activations.size == 0:
        raise ValueError("cannot compute density of an empty activation array")
    return float(np.count_nonzero(activations > threshold) / activations.size)


class ActivationDensityMeter:
    """Streaming AD accumulator for one layer.

    Batches are folded in with :meth:`update`; :meth:`density` returns
    the AD over everything seen since the last :meth:`reset`.  This
    matches the paper's definition of AD "calculated by passing the
    training set through the network".

    The meter also accumulates *per-channel* non-zero counts (channel =
    axis 1 for conv maps, feature axis for 2-D activations), which the
    AD-based pruner uses to rank channels when shrinking a layer to
    ``round(C_l * AD_l)`` channels (eqn. 5).
    """

    def __init__(self, name: str = "", threshold: float = 0.0):
        self.name = name
        self.threshold = threshold
        self._nonzero = 0
        self._total = 0
        self._channel_nonzero: np.ndarray | None = None
        self._channel_total: np.ndarray | None = None

    def update(self, activations: np.ndarray) -> None:
        activations = np.asarray(activations)
        mask = activations > self.threshold
        self._nonzero += int(np.count_nonzero(mask))
        self._total += int(activations.size)
        if activations.ndim >= 2:
            channels = activations.shape[1]
            reduce_axes = tuple(i for i in range(activations.ndim) if i != 1)
            per_channel = mask.sum(axis=reduce_axes)
            per_channel_total = activations.size // channels
            if self._channel_nonzero is None:
                self._channel_nonzero = per_channel.astype(np.int64)
                self._channel_total = np.full(channels, per_channel_total, dtype=np.int64)
            elif self._channel_nonzero.shape[0] != channels:
                raise ValueError(
                    f"meter {self.name!r} saw inconsistent channel counts"
                )
            else:
                self._channel_nonzero += per_channel
                self._channel_total += per_channel_total

    def density(self) -> float:
        if self._total == 0:
            raise RuntimeError(f"density meter {self.name!r} has seen no data")
        return self._nonzero / self._total

    def channel_density(self) -> np.ndarray:
        """Per-channel AD over everything seen since the last reset."""
        if self._channel_nonzero is None:
            raise RuntimeError(f"meter {self.name!r} has no per-channel data")
        return self._channel_nonzero / np.maximum(self._channel_total, 1)

    @property
    def count(self) -> int:
        """Total number of activation values accumulated."""
        return self._total

    def reset(self) -> None:
        self._nonzero = 0
        self._total = 0
        self._channel_nonzero = None
        self._channel_total = None

    # ------------------------------------------------------------------
    # Checkpointing (JSON-serializable; channel vectors are short)
    # ------------------------------------------------------------------
    def state(self) -> dict:
        """Accumulated counts as a JSON-serializable dict."""
        return {
            "nonzero": self._nonzero,
            "total": self._total,
            "channel_nonzero": (
                None
                if self._channel_nonzero is None
                else [int(v) for v in self._channel_nonzero]
            ),
            "channel_total": (
                None
                if self._channel_total is None
                else [int(v) for v in self._channel_total]
            ),
        }

    def load_state(self, state: dict) -> None:
        """Restore counts captured by :meth:`state`."""
        self._nonzero = int(state["nonzero"])
        self._total = int(state["total"])
        channel_nonzero = state.get("channel_nonzero")
        channel_total = state.get("channel_total")
        self._channel_nonzero = (
            None
            if channel_nonzero is None
            else np.asarray(channel_nonzero, dtype=np.int64)
        )
        self._channel_total = (
            None
            if channel_total is None
            else np.asarray(channel_total, dtype=np.int64)
        )

    def __repr__(self) -> str:
        if self._total == 0:
            return f"ActivationDensityMeter({self.name!r}, empty)"
        return f"ActivationDensityMeter({self.name!r}, AD={self.density():.3f})"
