"""Activation Density (AD) measurement — the paper's central metric.

AD = (# non-zero activations) / (# total activations)   (eqn. 2)

measured on post-ReLU layer outputs over the training set.  The package
provides per-layer meters, an epoch-level monitor with history, and the
saturation detector that triggers each quantization iteration of
Algorithm 1.
"""

from repro.density.meter import ActivationDensityMeter, activation_density
from repro.density.monitor import DensityMonitor
from repro.density.saturation import SaturationDetector

__all__ = [
    "activation_density",
    "ActivationDensityMeter",
    "DensityMonitor",
    "SaturationDetector",
]
