"""Epoch-level AD history across all instrumented layers."""

from __future__ import annotations

import numpy as np


class DensityMonitor:
    """Records per-layer AD once per epoch and answers trend queries.

    The monitor is the bookkeeping behind Figs. 1, 3 and 4: a dict of
    ``layer name -> [AD at epoch 0, AD at epoch 1, ...]``.
    """

    def __init__(self, layer_names: list[str]):
        if not layer_names:
            raise ValueError("monitor needs at least one layer")
        if len(set(layer_names)) != len(layer_names):
            raise ValueError("layer names must be unique")
        self.layer_names = list(layer_names)
        self.history: dict[str, list[float]] = {name: [] for name in layer_names}

    def record(self, densities: dict[str, float]) -> None:
        """Append one epoch's AD snapshot (must cover every layer)."""
        missing = set(self.layer_names) - set(densities)
        if missing:
            raise KeyError(f"snapshot missing layers: {sorted(missing)}")
        for name in self.layer_names:
            value = float(densities[name])
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"AD out of [0,1] for {name}: {value}")
            self.history[name].append(value)

    @property
    def num_epochs(self) -> int:
        return len(self.history[self.layer_names[0]])

    def latest(self) -> dict[str, float]:
        """Most recent AD per layer."""
        if self.num_epochs == 0:
            raise RuntimeError("no epochs recorded yet")
        return {name: self.history[name][-1] for name in self.layer_names}

    def total_density(self, weights: dict[str, int] | None = None) -> float:
        """Network-level AD: activation-count-weighted mean of latest ADs.

        ``weights`` maps layer name to its activation count; when omitted
        the plain mean is used (the paper reports "overall AD averaged
        across all layers").
        """
        latest = self.latest()
        if weights is None:
            return float(np.mean(list(latest.values())))
        total = sum(weights[name] for name in self.layer_names)
        if total <= 0:
            raise ValueError("weights must have positive total")
        return float(
            sum(latest[name] * weights[name] for name in self.layer_names) / total
        )

    def series(self, name: str) -> list[float]:
        """Full AD-vs-epoch series for one layer (a Fig. 1/3/4 curve)."""
        return list(self.history[name])

    def as_matrix(self) -> np.ndarray:
        """(num_layers, num_epochs) AD matrix."""
        return np.array([self.history[name] for name in self.layer_names])

    def reset(self) -> None:
        for name in self.layer_names:
            self.history[name].clear()
