"""Saturation detection for Algorithm 1's quantization trigger.

The paper breaks training "once AD_l stabilizes across all layers" (it
observes stabilization at ~100 epochs for the VGG19 baseline, Fig. 1).
We formalize "stabilized" as: over a trailing window of ``window``
epochs, the AD of every layer moved by less than ``tolerance``.
"""

from __future__ import annotations


class SaturationDetector:
    """Sliding-window AD-stability criterion.

    Parameters
    ----------
    window:
        Number of trailing epochs considered (>= 2).
    tolerance:
        Maximum allowed (max - min) spread of AD within the window for a
        layer to count as saturated.
    min_epochs:
        Do not report saturation before this many epochs, guarding
        against trivially-flat early training.
    """

    def __init__(self, window: int = 5, tolerance: float = 0.02, min_epochs: int = 0):
        if window < 2:
            raise ValueError("window must be >= 2")
        if tolerance <= 0:
            raise ValueError("tolerance must be positive")
        if min_epochs < 0:
            raise ValueError("min_epochs must be non-negative")
        self.window = window
        self.tolerance = tolerance
        self.min_epochs = min_epochs

    def layer_saturated(self, series: list[float]) -> bool:
        """Is a single layer's AD series saturated?"""
        if len(series) < max(self.window, self.min_epochs):
            return False
        tail = series[-self.window :]
        return (max(tail) - min(tail)) < self.tolerance

    def all_saturated(self, history: dict[str, list[float]]) -> bool:
        """Algorithm 1's break condition: every layer saturated."""
        if not history:
            raise ValueError("empty history")
        return all(self.layer_saturated(series) for series in history.values())

    def saturated_layers(self, history: dict[str, list[float]]) -> list[str]:
        """Names of currently-saturated layers (for logging/diagnosis)."""
        return [name for name, series in history.items() if self.layer_saturated(series)]

    def __repr__(self) -> str:
        return (
            f"SaturationDetector(window={self.window}, "
            f"tolerance={self.tolerance}, min_epochs={self.min_epochs})"
        )
