"""Quantization machinery.

Implements the paper's eqn. (1) uniform min-max quantizer, fake
quantization with a straight-through estimator for in-training use, and
per-layer quantization configuration including the PIM platform's
hardware precision snapping to {2, 4, 8, 16} bits.
"""

from repro.quant.fakequant import FakeQuantize, STEQuantFunction
from repro.quant.quantizer import UniformQuantizer, dequantize, quantize
from repro.quant.qconfig import (
    HARDWARE_PRECISIONS,
    LayerQuantSpec,
    QuantizationPlan,
    snap_to_hardware_precision,
)

__all__ = [
    "quantize",
    "dequantize",
    "UniformQuantizer",
    "FakeQuantize",
    "STEQuantFunction",
    "LayerQuantSpec",
    "QuantizationPlan",
    "HARDWARE_PRECISIONS",
    "snap_to_hardware_precision",
]
