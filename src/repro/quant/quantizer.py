"""Uniform min-max quantization (paper eqn. 1).

    x_q = round((x - x_min) * (2^k - 1) / (x_max - x_min))

maps ``x`` onto the integer grid {0, ..., 2^k - 1}; dequantization maps
the grid back onto the original range.  Fake quantization composes the
two, producing float values restricted to 2^k levels.
"""

from __future__ import annotations

import numpy as np


def quantize(x: np.ndarray, bits: int, x_min: float | None = None, x_max: float | None = None) -> np.ndarray:
    """Quantize ``x`` to integer codes on {0, ..., 2^bits - 1} (eqn. 1).

    ``x_min``/``x_max`` default to the data's own range (dynamic
    quantization, as used by the paper's in-training method).  A
    degenerate range (x_max == x_min) maps everything to code 0.
    """
    if bits < 1:
        raise ValueError("bit-width must be >= 1")
    x = np.asarray(x, dtype=np.float64)
    lo = float(x.min()) if x_min is None else float(x_min)
    hi = float(x.max()) if x_max is None else float(x_max)
    if hi < lo:
        raise ValueError("x_max must be >= x_min")
    levels = (1 << bits) - 1
    if hi == lo:
        return np.zeros(x.shape, dtype=np.int64)
    scaled = (np.clip(x, lo, hi) - lo) * (levels / (hi - lo))
    return np.round(scaled).astype(np.int64)


def dequantize(codes: np.ndarray, bits: int, x_min: float, x_max: float) -> np.ndarray:
    """Map integer codes back to float values on [x_min, x_max]."""
    if bits < 1:
        raise ValueError("bit-width must be >= 1")
    levels = (1 << bits) - 1
    if x_max == x_min:
        return np.full(np.asarray(codes).shape, x_min, dtype=np.float64)
    return np.asarray(codes, dtype=np.float64) * ((x_max - x_min) / levels) + x_min


class UniformQuantizer:
    """Stateful uniform quantizer with optional frozen calibration range.

    Parameters
    ----------
    bits:
        Bit-width ``k``; the grid has ``2^k`` levels.
    dynamic:
        When True (default) the range is recomputed from each input
        (matching the paper's training-time quantization); when False,
        :meth:`calibrate` must be called first and the stored range is
        reused — this mode feeds the PIM simulator, which needs fixed
        integer codes.
    """

    def __init__(self, bits: int, dynamic: bool = True):
        if bits < 1:
            raise ValueError("bit-width must be >= 1")
        self.bits = int(bits)
        self.dynamic = dynamic
        self.x_min: float | None = None
        self.x_max: float | None = None

    @property
    def num_levels(self) -> int:
        return 1 << self.bits

    def calibrate(self, x: np.ndarray) -> "UniformQuantizer":
        """Record the min/max range of ``x`` for static quantization."""
        x = np.asarray(x)
        self.x_min = float(x.min())
        self.x_max = float(x.max())
        return self

    def _range_for(self, x: np.ndarray) -> tuple[float, float]:
        if self.dynamic:
            return float(x.min()), float(x.max())
        if self.x_min is None or self.x_max is None:
            raise RuntimeError("static quantizer used before calibrate()")
        return self.x_min, self.x_max

    def encode(self, x: np.ndarray) -> np.ndarray:
        """Return integer codes for ``x``."""
        lo, hi = self._range_for(np.asarray(x))
        return quantize(x, self.bits, lo, hi)

    def decode(self, codes: np.ndarray, reference: np.ndarray | None = None) -> np.ndarray:
        """Map codes back to floats using the stored/derived range."""
        if self.dynamic:
            if reference is None:
                raise ValueError("dynamic decode requires the reference input")
            lo, hi = float(np.min(reference)), float(np.max(reference))
        else:
            lo, hi = self._range_for(np.empty(0))
        return dequantize(codes, self.bits, lo, hi)

    def fake_quant(self, x: np.ndarray) -> np.ndarray:
        """Quantize-dequantize: float output restricted to 2^bits levels."""
        x = np.asarray(x, dtype=np.float64)
        lo, hi = self._range_for(x)
        return dequantize(quantize(x, self.bits, lo, hi), self.bits, lo, hi)

    def quantization_error(self, x: np.ndarray) -> float:
        """RMS error introduced by fake quantization of ``x``."""
        diff = self.fake_quant(x) - np.asarray(x, dtype=np.float64)
        return float(np.sqrt(np.mean(diff**2)))

    def __repr__(self) -> str:
        mode = "dynamic" if self.dynamic else "static"
        return f"UniformQuantizer(bits={self.bits}, {mode})"
