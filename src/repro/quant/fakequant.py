"""Fake quantization as a differentiable graph node (STE).

The paper trains with quantized weights and activations in the forward
pass while updating float "master" weights in the backward pass.  That is
exactly a straight-through estimator: the quantize-dequantize step is
treated as identity for gradient purposes (within the clipping range,
which for dynamic min-max quantization is the whole input).
"""

from __future__ import annotations

import numpy as np

from repro.autograd import Tensor
from repro.backend import active_backend
from repro.quant.quantizer import UniformQuantizer


def STEQuantFunction(x: Tensor, quantizer: UniformQuantizer) -> Tensor:
    """Apply ``quantizer.fake_quant`` with a straight-through gradient.

    The quantize-dequantize kernel is backend-dispatched: the reference
    backend runs the quantizer's float64 int-code round-trip, the fast
    backend a fused float32 round-scale-shift.
    """
    out_data = active_backend().fake_quant(x.data, quantizer)

    def backward(grad):
        return (grad,)

    return Tensor.from_op(out_data, (x,), backward, f"fakequant[{quantizer.bits}b]")


class FakeQuantize:
    """Callable module-style wrapper installing eqn.-(1) fake quantization.

    Instances are attached to ``Conv2d.weight_fake_quant`` /
    ``Linear.weight_fake_quant`` and to the activation-quant slots of the
    model blocks.  ``bits`` is mutable: Algorithm 1 lowers it between
    quantization iterations without rebuilding the model.

    Parameters
    ----------
    bits:
        Initial bit-width.
    enabled:
        When False the wrapper is identity (used for the excluded first
        and last layers, which the paper keeps at full precision).
    """

    def __init__(self, bits: int, enabled: bool = True):
        self._quantizer = UniformQuantizer(bits, dynamic=True)
        self.enabled = enabled

    @property
    def bits(self) -> int:
        return self._quantizer.bits

    @bits.setter
    def bits(self, value: int) -> None:
        if value < 1:
            raise ValueError("bit-width must be >= 1")
        self._quantizer = UniformQuantizer(int(value), dynamic=True)

    def __call__(self, x: Tensor) -> Tensor:
        if not self.enabled:
            return x
        return STEQuantFunction(x, self._quantizer)

    def fake_quant_array(self, x: np.ndarray) -> np.ndarray:
        """Numpy-level fake quantization (no autograd), for analysis."""
        backend = active_backend()
        if not self.enabled:
            return backend.asarray(x)
        return backend.fake_quant(x, self._quantizer)

    def __repr__(self) -> str:
        state = f"{self.bits}b" if self.enabled else "disabled"
        return f"FakeQuantize({state})"
