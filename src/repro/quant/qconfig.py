"""Per-layer quantization configuration and hardware precision snapping.

The algorithm (eqn. 3) produces arbitrary integer bit-widths; the PIM
platform supports only 2-/4-/8-/16-bit operation, so "data precision of
3-bits would be translated to 4-bits, 5-bits to 8-bits, and so on"
(paper §I).  :func:`snap_to_hardware_precision` implements that rule.
"""

from __future__ import annotations

from dataclasses import dataclass, field

HARDWARE_PRECISIONS: tuple[int, ...] = (2, 4, 8, 16)


def snap_to_hardware_precision(
    bits: int, supported: tuple[int, ...] = HARDWARE_PRECISIONS
) -> int:
    """Round ``bits`` up to the next precision the PIM hardware supports.

    Bit-widths above the largest supported precision saturate at it
    (e.g. the 22-/24-bit intermediate widths of Table II(c) execute as
    16-bit on the accelerator).
    """
    if bits < 1:
        raise ValueError("bit-width must be >= 1")
    if not supported:
        raise ValueError(
            "supported precisions must be a non-empty tuple "
            "(e.g. HARDWARE_PRECISIONS)"
        )
    precisions = sorted(supported)
    if precisions[0] < 1:
        raise ValueError(
            f"supported precisions must all be >= 1, got {precisions}"
        )
    for precision in precisions:
        if bits <= precision:
            return precision
    return precisions[-1]


@dataclass
class LayerQuantSpec:
    """Quantization state of one network layer.

    Attributes
    ----------
    name:
        Layer identifier (matches the model's layer registry).
    bits:
        Current algorithmic bit-width ``k_l`` (may exceed 16 when the
        run starts from a 32-bit model, per Table II(c)).
    quantize_weights / quantize_activations:
        The paper quantizes both for every layer it touches.
    frozen:
        True for the first and last layers, which are excluded from
        quantization "to avoid a drastic drop in accuracy" (§IV).
    """

    name: str
    bits: int
    quantize_weights: bool = True
    quantize_activations: bool = True
    frozen: bool = False

    def __post_init__(self):
        if self.bits < 1:
            raise ValueError("bit-width must be >= 1")

    @property
    def hardware_bits(self) -> int:
        """Bit-width as executed on the PIM platform."""
        return snap_to_hardware_precision(self.bits)


@dataclass
class QuantizationPlan:
    """Ordered collection of per-layer specs = one row of Tables II/III."""

    specs: list[LayerQuantSpec] = field(default_factory=list)

    def __iter__(self):
        return iter(self.specs)

    def __len__(self) -> int:
        return len(self.specs)

    def __getitem__(self, index: int) -> LayerQuantSpec:
        return self.specs[index]

    def by_name(self, name: str) -> LayerQuantSpec:
        for spec in self.specs:
            if spec.name == name:
                return spec
        raise KeyError(f"no spec for layer {name!r}")

    @classmethod
    def from_bit_vector(cls, vector, frozen=()) -> "QuantizationPlan":
        """Build a plan from a ``{name: bits}`` map (or (name, bits) pairs).

        The inverse of :meth:`to_bit_vector`: a searched per-layer
        assignment becomes a first-class plan that the energy stages can
        cost directly.  Names listed in ``frozen`` get pinned specs.
        """
        items = vector.items() if isinstance(vector, dict) else vector
        pinned = set(frozen)
        return cls(
            [
                LayerQuantSpec(name, bits, frozen=name in pinned)
                for name, bits in items
            ]
        )

    def to_bit_vector(self) -> dict[str, int]:
        """The plan as an ordered ``{name: bits}`` map (a table bit vector)."""
        return {spec.name: spec.bits for spec in self.specs}

    def bit_widths(self) -> list[int]:
        """Layer-wise bit-width vector, as printed in the paper tables."""
        return [spec.bits for spec in self.specs]

    def hardware_bit_widths(self) -> list[int]:
        return [spec.hardware_bits for spec in self.specs]

    def copy(self) -> "QuantizationPlan":
        return QuantizationPlan(
            [
                LayerQuantSpec(
                    name=s.name,
                    bits=s.bits,
                    quantize_weights=s.quantize_weights,
                    quantize_activations=s.quantize_activations,
                    frozen=s.frozen,
                )
                for s in self.specs
            ]
        )

    def __repr__(self) -> str:
        return f"QuantizationPlan({self.bit_widths()})"
