"""VGG architectures (the paper evaluates VGG19 on CIFAR-10).

CIFAR-style VGG: 3x3 convs with batch norm, max-pool at the 'M' markers,
global average pooling, and a single fully connected classifier — giving
the 16-conv + 1-FC = 17-layer bit-width vectors of Table II(a).

``width_multiplier`` scales channel counts so that the full topology can
be trained on CPU in the reproduction benchmarks; the layer structure
(and hence the shape of the per-layer AD/bit-width profile) is
unchanged.
"""

from __future__ import annotations

import numpy as np

from repro.autograd import Tensor
from repro.autograd.conv import global_avg_pool2d
from repro.models.blocks import ConvUnit, LinearUnit, MeasurementContext
from repro.models.registry import LayerHandle, LayerRegistry
from repro.nn import MaxPool2d, Module, ModuleList

VGG_CONFIGS: dict[str, list] = {
    "vgg11": [64, "M", 128, "M", 256, 256, "M", 512, 512, "M", 512, 512, "M"],
    "vgg16": [64, 64, "M", 128, 128, "M", 256, 256, 256, "M",
              512, 512, 512, "M", 512, 512, 512, "M"],
    "vgg19": [64, 64, "M", 128, 128, "M", 256, 256, 256, 256, "M",
              512, 512, 512, 512, "M", 512, 512, 512, 512, "M"],
}


def _scaled(channels: int, width_multiplier: float) -> int:
    return max(1, int(round(channels * width_multiplier)))


class VGG(Module):
    """Configurable VGG with instrumentation for AD quantization.

    Parameters
    ----------
    config:
        Channel/pool sequence (see :data:`VGG_CONFIGS`).
    num_classes:
        Classifier width.
    width_multiplier:
        Scales every conv width (1.0 = paper-size model).
    image_size:
        Input spatial size; pool markers that would shrink the feature
        map below 1 pixel are skipped, making small-resolution synthetic
        runs possible without changing layer counts.
    batch_norm:
        Insert BatchNorm after each conv.  BN pins post-ReLU activation
        density near 0.5; the paper's AD trajectories (densities drifting
        far from 0.5 and rising toward 1.0 under quantization) correspond
        to the BN-free classic VGG, so the figure benches disable it.
    """

    def __init__(
        self,
        config: list,
        num_classes: int = 10,
        width_multiplier: float = 1.0,
        in_channels: int = 3,
        image_size: int = 32,
        batch_norm: bool = True,
        rng: np.random.Generator | None = None,
    ):
        super().__init__()
        rng = rng or np.random.default_rng()
        self.ctx = MeasurementContext()
        self.num_classes = num_classes

        units: list[Module] = []
        handles: list[LayerHandle] = []
        channels = in_channels
        spatial = image_size
        conv_index = 0
        num_convs = sum(1 for item in config if item != "M")
        for item in config:
            if item == "M":
                if spatial >= 2:
                    units.append(MaxPool2d(2))
                    spatial //= 2
                continue
            conv_index += 1
            width = _scaled(item, width_multiplier)
            name = f"conv{conv_index}"
            unit = ConvUnit(
                name, channels, width, kernel_size=3, ctx=self.ctx,
                padding=1, batch_norm=batch_norm, rng=rng,
            )
            units.append(unit)
            role = "first" if conv_index == 1 else "hidden"
            handles.append(
                LayerHandle(name, unit, role=role, prunable=(role == "hidden"))
            )
            channels = width
        if conv_index != num_convs:
            raise AssertionError("config parsing lost a conv layer")

        self.features = ModuleList(units)
        self.classifier = LinearUnit("fc", channels, num_classes, ctx=self.ctx, rng=rng)
        handles.append(LayerHandle("fc", self.classifier, role="last", prunable=False))
        self._registry = LayerRegistry(handles)

    def layer_handles(self) -> LayerRegistry:
        return self._registry

    def forward(self, x: Tensor) -> Tensor:
        for module in self.features:
            x = module(x)
        x = global_avg_pool2d(x)
        x = x.flatten_from(1)
        return self.classifier(x)

    def conv_layer_names(self) -> list[str]:
        return [h.name for h in self._registry if h.is_conv]


def vgg11(num_classes: int = 10, width_multiplier: float = 1.0,
          image_size: int = 32, batch_norm: bool = True,
          rng: np.random.Generator | None = None) -> VGG:
    """VGG11 (8 convs + FC)."""
    return VGG(VGG_CONFIGS["vgg11"], num_classes, width_multiplier,
               image_size=image_size, batch_norm=batch_norm, rng=rng)


def vgg16(num_classes: int = 10, width_multiplier: float = 1.0,
          image_size: int = 32, batch_norm: bool = True,
          rng: np.random.Generator | None = None) -> VGG:
    """VGG16 (13 convs + FC)."""
    return VGG(VGG_CONFIGS["vgg16"], num_classes, width_multiplier,
               image_size=image_size, batch_norm=batch_norm, rng=rng)


def vgg19(num_classes: int = 10, width_multiplier: float = 1.0,
          image_size: int = 32, batch_norm: bool = True,
          rng: np.random.Generator | None = None) -> VGG:
    """VGG19 (16 convs + FC) — the Table II(a)/III(a) architecture."""
    return VGG(VGG_CONFIGS["vgg19"], num_classes, width_multiplier,
               image_size=image_size, batch_norm=batch_norm, rng=rng)
