"""Network architectures evaluated in the paper (VGG19, ResNet18).

Models are built from :class:`~repro.models.blocks.ConvUnit` /
:class:`~repro.models.blocks.LinearUnit` blocks that carry the
instrumentation the AD-quantization algorithm needs: an activation
fake-quant slot, an activation-density meter, and a channel-pruning
mask.  Every model exposes an ordered ``layer_handles()`` registry
mapping onto the paper's "layers l = 1..L" (first and last layers are
marked frozen; ResNet downsample convs follow their destination layer's
bit-width per Fig. 2).
"""

from repro.models.blocks import ConvUnit, LinearUnit, MeasurementContext
from repro.models.registry import LayerHandle, LayerRegistry
from repro.models.vgg import VGG, vgg11, vgg16, vgg19
from repro.models.resnet import BasicBlock, ResNet, resnet18

__all__ = [
    "MeasurementContext",
    "ConvUnit",
    "LinearUnit",
    "LayerHandle",
    "LayerRegistry",
    "VGG",
    "vgg11",
    "vgg16",
    "vgg19",
    "ResNet",
    "BasicBlock",
    "resnet18",
]
