"""ResNet18 (CIFAR variant) with skip-connection quantization (Fig. 2).

Topology: 3x3/64 stem conv, four stages of two BasicBlocks
([64, 128, 256, 512] channels, stride 2 entering stages 2-4), global
average pooling, one FC classifier.  That yields the 18 weighted layers
(stem + 16 block convs + FC) the Table II(b)/(c) bit-width vectors
describe; downsample (1x1 projection) convs in skip branches are not
independent layers — per the paper, their precision equals that of the
destination layer, which :class:`~repro.models.registry.LayerHandle`
enforces through the follower mechanism.
"""

from __future__ import annotations

import numpy as np

from repro.autograd import Tensor
from repro.backend import active_backend
from repro.autograd.conv import global_avg_pool2d
from repro.density import ActivationDensityMeter
from repro.models.blocks import ConvUnit, LinearUnit, MeasurementContext
from repro.models.registry import LayerHandle, LayerRegistry
from repro.nn import Module, ModuleList
from repro.quant import FakeQuantize


class BasicBlock(Module):
    """Two 3x3 convs with a residual connection.

    The second conv's "layer output" is the post-add ReLU, so this block
    hosts that layer's activation quantizer (``act_quant``), density
    meter (``meter``) and pruning mask (``channel_mask``).  The skip
    branch's activations pass through ``skip_quant``, which Algorithm 1
    keeps synchronized with the destination layer's bit-width (Fig. 2),
    as does the downsample conv's weight quantizer.
    """

    def __init__(
        self,
        name: str,
        in_channels: int,
        out_channels: int,
        ctx: MeasurementContext,
        stride: int = 1,
        rng: np.random.Generator | None = None,
    ):
        super().__init__()
        self.name = name
        self.ctx = ctx
        self.unit1 = ConvUnit(
            f"{name}.conv1", in_channels, out_channels, 3, ctx,
            stride=stride, padding=1, relu=True, rng=rng,
        )
        # The unit's internal meter observes the pre-add activation and is
        # not part of the layer registry; the block-level meter below is
        # the authoritative one for this layer (post-add ReLU).
        self.unit2 = ConvUnit(
            f"{name}.conv2_preadd", out_channels, out_channels, 3, ctx,
            stride=1, padding=1, relu=False, rng=rng,
        )
        if stride != 1 or in_channels != out_channels:
            self.downsample = ConvUnit(
                f"{name}.downsample", in_channels, out_channels, 1, ctx,
                stride=stride, padding=0, relu=False, rng=rng,
            )
        else:
            self.downsample = None
        # Skip-branch activation quantizer (destination layer's bits).
        self.skip_quant = FakeQuantize(16, enabled=False)
        # Destination-layer instrumentation (post-add ReLU output).
        self.act_quant: FakeQuantize | None = None
        self.meter = ActivationDensityMeter(f"{name}.conv2")
        self.register_buffer("channel_mask", active_backend().ones(out_channels))

    # ------------------------------------------------------------------
    # Pruning-mask host protocol (see LayerHandle)
    # ------------------------------------------------------------------
    @property
    def out_channels(self) -> int:
        return self.unit2.out_channels

    def active_channels(self) -> int:
        return int(self.channel_mask.sum())

    def set_channel_mask(self, mask: np.ndarray) -> None:
        mask = active_backend().asarray(np.asarray(mask))
        if mask.shape != (self.out_channels,):
            raise ValueError("mask shape must equal (out_channels,)")
        if not np.all((mask == 0) | (mask == 1)):
            raise ValueError("mask entries must be 0 or 1")
        if mask.sum() < 1:
            raise ValueError("at least one channel must remain active")
        self._set_buffer("channel_mask", mask)

    # ------------------------------------------------------------------
    def forward(self, x: Tensor) -> Tensor:
        out = self.unit1(x)
        out = self.unit2(out)
        skip = self.downsample(x) if self.downsample is not None else x
        if self.skip_quant.enabled:
            skip = self.skip_quant(skip)
        out = (out + skip).relu()
        pruned = not np.all(self.channel_mask == 1.0)
        if pruned:
            out = out * Tensor(self.channel_mask.reshape(1, -1, 1, 1))
        if self.act_quant is not None:
            out = self.act_quant(out)
        if self.ctx.enabled:
            if pruned:
                active = np.flatnonzero(self.channel_mask)
                self.meter.update(out.data[:, active])
            else:
                self.meter.update(out.data)
        return out

    def __repr__(self) -> str:
        return (
            f"BasicBlock({self.name}: {self.unit1.conv.in_channels}->"
            f"{self.out_channels}, stride={self.unit1.conv.stride})"
        )


class ResNet(Module):
    """CIFAR-style ResNet built from BasicBlocks.

    Parameters
    ----------
    blocks_per_stage:
        Block counts for the four stages ([2, 2, 2, 2] = ResNet18).
    width_multiplier:
        Scales all channel widths (1.0 = paper-size model).
    """

    def __init__(
        self,
        blocks_per_stage: list[int],
        num_classes: int = 10,
        width_multiplier: float = 1.0,
        in_channels: int = 3,
        rng: np.random.Generator | None = None,
    ):
        super().__init__()
        if len(blocks_per_stage) != 4:
            raise ValueError("expected 4 stages")
        rng = rng or np.random.default_rng()
        self.ctx = MeasurementContext()
        self.num_classes = num_classes

        def scaled(c: int) -> int:
            return max(1, int(round(c * width_multiplier)))

        widths = [scaled(c) for c in (64, 128, 256, 512)]
        handles: list[LayerHandle] = []

        self.stem = ConvUnit(
            "conv1", in_channels, widths[0], 3, self.ctx, padding=1, rng=rng
        )
        handles.append(LayerHandle("conv1", self.stem, role="first", prunable=False))

        blocks: list[BasicBlock] = []
        current = widths[0]
        block_index = 0
        for stage, (width, count) in enumerate(zip(widths, blocks_per_stage)):
            for b in range(count):
                stride = 2 if (stage > 0 and b == 0) else 1
                block_index += 1
                block = BasicBlock(
                    f"block{block_index}", current, width, self.ctx,
                    stride=stride, rng=rng,
                )
                blocks.append(block)
                handles.append(
                    LayerHandle(f"block{block_index}.conv1", block.unit1, role="hidden")
                )
                followers = [block.downsample] if block.downsample is not None else []
                handles.append(
                    LayerHandle(
                        f"block{block_index}.conv2",
                        block.unit2,
                        role="hidden",
                        host=block,
                        mask_host=block,
                        follower_units=followers,
                        follower_quants=[block.skip_quant],
                    )
                )
                current = width
        self.blocks = ModuleList(blocks)
        self.classifier = LinearUnit("fc", current, num_classes, ctx=self.ctx, rng=rng)
        handles.append(LayerHandle("fc", self.classifier, role="last", prunable=False))
        self._registry = LayerRegistry(handles)

    def layer_handles(self) -> LayerRegistry:
        return self._registry

    def forward(self, x: Tensor) -> Tensor:
        x = self.stem(x)
        for block in self.blocks:
            x = block(x)
        x = global_avg_pool2d(x)
        x = x.flatten_from(1)
        return self.classifier(x)


def resnet18(
    num_classes: int = 10,
    width_multiplier: float = 1.0,
    rng: np.random.Generator | None = None,
) -> ResNet:
    """ResNet18: [2, 2, 2, 2] BasicBlocks — Table II(b)/(c) architecture."""
    return ResNet([2, 2, 2, 2], num_classes, width_multiplier, rng=rng)
