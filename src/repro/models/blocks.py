"""Instrumented building blocks shared by VGG and ResNet.

Each *unit* bundles a weighted operation (conv or linear) with its
normalization/activation and the three hooks the reproduction needs:

* ``act_quant`` — a :class:`~repro.quant.fakequant.FakeQuantize` applied
  to the unit's output activations (paper: both weights and activations
  of layer *l* are quantized to ``k_l`` bits);
* ``meter`` — an :class:`~repro.density.meter.ActivationDensityMeter`
  fed with the post-ReLU output whenever the shared
  :class:`MeasurementContext` is enabled;
* ``channel_mask`` — a 0/1 per-output-channel mask implementing AD-based
  channel pruning (eqn. 5) as structured masking; masked channels emit
  exactly zero and receive no gradient signal.
"""

from __future__ import annotations

import numpy as np

from repro.autograd import Tensor
from repro.backend import active_backend
from repro.density import ActivationDensityMeter
from repro.nn import BatchNorm2d, Conv2d, Linear, Module
from repro.quant import FakeQuantize


class MeasurementContext:
    """Shared switch that turns density measurement on during AD sweeps."""

    def __init__(self):
        self.enabled = False

    def __repr__(self) -> str:
        return f"MeasurementContext(enabled={self.enabled})"


class ConvUnit(Module):
    """conv -> [batchnorm] -> [ReLU] -> [activation fake-quant].

    Parameters
    ----------
    name:
        Registry name; also names the density meter.
    ctx:
        Shared measurement context.
    batch_norm / relu:
        Structural switches (ResNet applies the block's second ReLU
        after the residual add, outside this unit).
    """

    def __init__(
        self,
        name: str,
        in_channels: int,
        out_channels: int,
        kernel_size: int,
        ctx: MeasurementContext,
        stride: int = 1,
        padding: int = 0,
        batch_norm: bool = True,
        relu: bool = True,
        bias: bool | None = None,
        rng: np.random.Generator | None = None,
    ):
        super().__init__()
        self.name = name
        self.ctx = ctx
        self.use_relu = relu
        if bias is None:
            bias = not batch_norm
        self.conv = Conv2d(
            in_channels,
            out_channels,
            kernel_size,
            stride=stride,
            padding=padding,
            bias=bias,
            rng=rng,
        )
        self.bn = BatchNorm2d(out_channels) if batch_norm else None
        self.act_quant: FakeQuantize | None = None
        self.meter = ActivationDensityMeter(name)
        self.register_buffer("channel_mask", active_backend().ones(out_channels))
        self.enabled = True  # iteration 2a of Table II removes a layer
        # Geometry captured on forward, consumed by the energy models.
        self.last_input_hw: tuple[int, int] | None = None
        self.last_output_hw: tuple[int, int] | None = None

    # ------------------------------------------------------------------
    @property
    def out_channels(self) -> int:
        return self.conv.out_channels

    def active_channels(self) -> int:
        """Number of unpruned output channels."""
        return int(self.channel_mask.sum())

    def set_channel_mask(self, mask: np.ndarray) -> None:
        mask = active_backend().asarray(np.asarray(mask))
        if mask.shape != (self.conv.out_channels,):
            raise ValueError("mask shape must equal (out_channels,)")
        if not np.all((mask == 0) | (mask == 1)):
            raise ValueError("mask entries must be 0 or 1")
        if mask.sum() < 1:
            raise ValueError("at least one channel must remain active")
        self._set_buffer("channel_mask", mask)

    def set_weight_quant(self, fake_quant: FakeQuantize | None) -> None:
        self.conv.weight_fake_quant = fake_quant

    # ------------------------------------------------------------------
    def forward(self, x: Tensor) -> Tensor:
        if not self.enabled:
            return x
        self.last_input_hw = (x.data.shape[2], x.data.shape[3])
        out = self.conv(x)
        if self.bn is not None:
            # bn -> relu collapses into one fused graph node (one fused
            # backward, no post-bn temporary) when fusion is enabled;
            # forward_fused degrades to the two-node chain otherwise.
            out = self.bn.forward_fused(out, fuse_relu=self.use_relu)
        elif self.use_relu:
            out = out.relu()
        pruned = not np.all(self.channel_mask == 1.0)
        if pruned:
            out = out * Tensor(self.channel_mask.reshape(1, -1, 1, 1))
        if self.act_quant is not None:
            out = self.act_quant(out)
        self.last_output_hw = (out.data.shape[2], out.data.shape[3])
        if self.ctx.enabled:
            if pruned:
                # AD quantifies utilization of the *surviving* channels;
                # masked channels are structurally zero, not "inactive".
                active = np.flatnonzero(self.channel_mask)
                self.meter.update(out.data[:, active])
            else:
                self.meter.update(out.data)
        return out

    def __repr__(self) -> str:
        bits = self.act_quant.bits if self.act_quant and self.act_quant.enabled else "fp"
        return (
            f"ConvUnit({self.name}: {self.conv.in_channels}->"
            f"{self.conv.out_channels}, bits={bits}, "
            f"active={self.active_channels()}/{self.out_channels})"
        )


class LinearUnit(Module):
    """linear -> [ReLU] -> [activation fake-quant], with density meter."""

    def __init__(
        self,
        name: str,
        in_features: int,
        out_features: int,
        ctx: MeasurementContext,
        relu: bool = False,
        rng: np.random.Generator | None = None,
    ):
        super().__init__()
        self.name = name
        self.ctx = ctx
        self.use_relu = relu
        self.fc = Linear(in_features, out_features, rng=rng)
        self.act_quant: FakeQuantize | None = None
        self.meter = ActivationDensityMeter(name)

    def set_weight_quant(self, fake_quant: FakeQuantize | None) -> None:
        self.fc.weight_fake_quant = fake_quant

    def forward(self, x: Tensor) -> Tensor:
        out = self.fc(x)
        if self.use_relu:
            out = out.relu()
        if self.act_quant is not None:
            out = self.act_quant(out)
        if self.ctx.enabled:
            self.meter.update(out.data)
        return out

    def __repr__(self) -> str:
        bits = self.act_quant.bits if self.act_quant and self.act_quant.enabled else "fp"
        return f"LinearUnit({self.name}: {self.fc.in_features}->{self.fc.out_features}, bits={bits})"
