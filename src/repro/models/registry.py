"""Layer registry: the paper's "layers l = 1, 2, ..., L" made concrete.

A :class:`LayerHandle` binds one table row (bit-width ``k_l``, channel
count ``C_l``) to the module objects the algorithm must manipulate:

* ``unit`` — the conv/linear whose *weights* are quantized;
* ``host`` — the object owning the layer's activation-quant slot and
  density meter.  For VGG units this is the unit itself; for the second
  conv of a ResNet BasicBlock it is the block, because that layer's
  output activation is the post-residual-add ReLU (paper Fig. 2);
* ``follower_units`` / ``follower_quants`` — ResNet skip-branch
  machinery that must mirror this layer's bit-width;
* ``mask_host`` — where eqn.-(5) channel-pruning masks are installed.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.models.blocks import ConvUnit, LinearUnit
from repro.quant import FakeQuantize


@dataclass
class LayerHandle:
    """One quantizable layer of a model (see module docstring)."""

    name: str
    unit: ConvUnit | LinearUnit
    role: str = "hidden"
    host: object | None = None
    mask_host: object | None = None
    follower_units: list[ConvUnit] = field(default_factory=list)
    follower_quants: list[FakeQuantize] = field(default_factory=list)
    prunable: bool = True

    def __post_init__(self):
        if self.role not in ("first", "hidden", "last"):
            raise ValueError(f"invalid role {self.role!r}")
        if self.host is None:
            self.host = self.unit
        if self.mask_host is None:
            self.mask_host = self.unit

    @property
    def is_conv(self) -> bool:
        return isinstance(self.unit, ConvUnit)

    @property
    def kind(self) -> str:
        return "conv" if self.is_conv else "linear"

    @property
    def meter(self):
        return self.host.meter

    def current_bits(self) -> int | None:
        """Bit-width currently installed on the activation slot (None = float)."""
        quant = self.host.act_quant
        if quant is None or not quant.enabled:
            return None
        return quant.bits

    def apply_bits(self, bits: int, enabled: bool = True) -> None:
        """Install ``bits`` on weights + activations + all followers."""
        self.unit.set_weight_quant(FakeQuantize(bits, enabled=enabled))
        self.host.act_quant = FakeQuantize(bits, enabled=enabled)
        for follower in self.follower_units:
            follower.set_weight_quant(FakeQuantize(bits, enabled=enabled))
        for quant in self.follower_quants:
            quant.bits = bits
            quant.enabled = enabled

    # ------------------------------------------------------------------
    # Pruning access (eqn. 5)
    # ------------------------------------------------------------------
    @property
    def out_channels(self) -> int:
        return self.mask_host.out_channels

    def active_channels(self) -> int:
        return self.mask_host.active_channels()

    def set_channel_mask(self, mask) -> None:
        self.mask_host.set_channel_mask(mask)


class LayerRegistry:
    """Ordered collection of a model's layer handles."""

    def __init__(self, handles: list[LayerHandle]):
        names = [h.name for h in handles]
        if len(set(names)) != len(names):
            raise ValueError("duplicate layer names in registry")
        self.handles = list(handles)

    def __iter__(self):
        return iter(self.handles)

    def __len__(self) -> int:
        return len(self.handles)

    def __getitem__(self, index: int) -> LayerHandle:
        return self.handles[index]

    def by_name(self, name: str) -> LayerHandle:
        for handle in self.handles:
            if handle.name == name:
                return handle
        raise KeyError(f"no layer named {name!r}")

    def names(self) -> list[str]:
        return [h.name for h in self.handles]

    def quantizable(self) -> list[LayerHandle]:
        """Layers Algorithm 1 may re-quantize (role == hidden)."""
        return [h for h in self.handles if h.role == "hidden"]

    def meters(self) -> dict[str, object]:
        return {h.name: h.meter for h in self.handles}
