"""Precision-scalable Processing-In-Memory accelerator (paper §V).

The platform of Fig. 5: an input decoder streams activation bits into a
2-D array of 1-bit SRAM memory-and-multiply cells; a hierarchical
shift-accumulator block (4-bit ACC4 -> 8-bit ACC8 -> 16-bit ACC16)
combines column partial sums.  Only 2-/4-/8-/16-bit layer precisions are
supported; arbitrary algorithmic bit-widths are snapped up
(:func:`repro.quant.qconfig.snap_to_hardware_precision`).

Two layers of modelling:

* **Functional** — :class:`~repro.pim.accelerator.PIMAccelerator`
  executes bit-sliced, bit-serial integer matrix-vector products that
  are verified against exact integer matmul, and counts component
  activity (cell multiplies, per-level accumulator operations).
* **Energy** — :class:`~repro.pim.energy_model.PIMEnergyModel` charges
  the per-MAC energies of Table IV (fJ, 45 nm CMOS):
  2-bit 2.942, 4-bit 16.968, 8-bit 66.714, 16-bit 276.676.
  In a PIM architecture memory-access energy is largely absorbed into
  the array and peripheral energy is neglected (paper §V-B), so network
  energy is MAC energy.
"""

from repro.pim.cells import PIMArray
from repro.pim.accumulator import AccumulatorStats, ShiftAccumulatorTree
from repro.pim.decoder import InputDecoder
from repro.pim.accelerator import ActivityReport, PIMAccelerator
from repro.pim.mapper import LayerMapping, map_layer
from repro.pim.energy_model import (
    TABLE_IV_MAC_ENERGY_FJ,
    PIMEnergyModel,
    PIMNetworkEnergy,
    analytical_overestimate_ratio,
)
from repro.pim.layer_exec import (
    LayerExecutionResult,
    execute_conv_layer,
    execute_linear_layer,
)
from repro.pim.xnor import XNORAccelerator, binarize, xnor_gemm

__all__ = [
    "PIMArray",
    "ShiftAccumulatorTree",
    "AccumulatorStats",
    "InputDecoder",
    "PIMAccelerator",
    "ActivityReport",
    "LayerMapping",
    "map_layer",
    "PIMEnergyModel",
    "PIMNetworkEnergy",
    "TABLE_IV_MAC_ENERGY_FJ",
    "analytical_overestimate_ratio",
    "execute_conv_layer",
    "execute_linear_layer",
    "LayerExecutionResult",
    "XNORAccelerator",
    "binarize",
    "xnor_gemm",
]
