"""Input decoder: structured activation fetch and bit-serial scheduling.

The decoder of Fig. 5 "fetches the activation values from layer l-1 and
feeds them to the PIM block of layer l ... in a structured pattern".
Functionally that is: take the layer's unsigned activation codes,
decompose them into bit-planes, and emit one row-drive vector per
activation bit cycle (LSB to MSB).
"""

from __future__ import annotations

import numpy as np


class InputDecoder:
    """Turns activation codes into per-cycle binary row drives.

    Parameters
    ----------
    activation_bits:
        Precision of the incoming activation codes; one of {2, 4, 8, 16}
        on this platform (callers snap beforehand).
    """

    def __init__(self, activation_bits: int):
        if activation_bits < 1:
            raise ValueError("activation_bits must be >= 1")
        self.activation_bits = activation_bits
        self.fetches = 0  # activation words fetched since reset_stats()

    def bit_plane(self, codes: np.ndarray, bit_position: int) -> np.ndarray:
        """Binary vector of ``codes``' bit at ``bit_position`` (0 = LSB)."""
        codes = self._validate(codes)
        if not 0 <= bit_position < self.activation_bits:
            raise ValueError(
                f"bit position {bit_position} outside 0..{self.activation_bits - 1}"
            )
        return ((codes >> bit_position) & 1).astype(np.uint8)

    def schedule(self, codes: np.ndarray):
        """Yield (bit_position, row_drive) pairs, LSB first.

        One full schedule is one structured fetch of the activation
        vector; the fetch counter increments once per word.
        """
        codes = self._validate(codes)
        self.fetches += codes.size
        for bit_position in range(self.activation_bits):
            yield bit_position, ((codes >> bit_position) & 1).astype(np.uint8)

    def _validate(self, codes: np.ndarray) -> np.ndarray:
        codes = np.asarray(codes, dtype=np.int64)
        if (codes < 0).any() or (codes >= (1 << self.activation_bits)).any():
            raise ValueError(
                f"activation codes out of range for {self.activation_bits} bits"
            )
        return codes

    def reset_stats(self) -> None:
        self.fetches = 0

    def __repr__(self) -> str:
        return f"InputDecoder({self.activation_bits}b, fetches={self.fetches})"
