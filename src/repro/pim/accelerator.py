"""Functional PIM accelerator: bit-sliced, bit-serial integer GEMV.

Ties the pieces of Fig. 5 together:

1. weights (unsigned integer codes) are bit-sliced into PIM arrays,
   tiled when the matrix exceeds the array;
2. the input decoder streams activation codes bit-serially (LSB first);
3. every cycle, driven rows produce column popcounts, which the
   shift-accumulator tree combines into per-weight partial sums with
   the appropriate weight-bit and activation-bit shifts;
4. partial sums accumulate over cycles and row tiles into exact integer
   dot products.

The result equals ``activations @ weights`` in exact integer arithmetic
— asserted in the test suite for every supported precision — while the
component counters (cell multiplies, ACC4/8/16 operations, decoder
fetches) provide the activity statistics behind the energy analysis.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.pim.accumulator import AccumulatorStats, ShiftAccumulatorTree
from repro.pim.cells import PIMArray
from repro.pim.decoder import InputDecoder
from repro.quant import snap_to_hardware_precision


@dataclass
class ActivityReport:
    """Component activity accumulated by the accelerator."""

    cell_ops: int
    accumulator: AccumulatorStats
    decoder_fetches: int
    matvecs: int

    def total_accumulator_ops(self) -> int:
        return (
            self.accumulator.acc4_ops
            + self.accumulator.acc8_ops
            + self.accumulator.acc16_ops
        )


class PIMAccelerator:
    """A pool of identical PIM arrays executing one layer at a time.

    Parameters
    ----------
    rows / cols:
        Dimensions of each physical array (cells).
    """

    def __init__(self, rows: int = 128, cols: int = 128):
        if rows < 1 or cols < 1:
            raise ValueError("array dimensions must be positive")
        self.rows = rows
        self.cols = cols
        self._tiles: list[list[PIMArray]] = []
        self._tile_weight_counts: list[int] = []
        self._tile_row_counts: list[int] = []
        self.weight_bits: int | None = None
        self.activation_bits: int | None = None
        self._matrix_shape: tuple[int, int] | None = None
        self._tree: ShiftAccumulatorTree | None = None
        self._decoder: InputDecoder | None = None
        self._matvecs = 0

    # ------------------------------------------------------------------
    # Configuration
    # ------------------------------------------------------------------
    def load_matrix(self, weight_codes: np.ndarray, weight_bits: int,
                    activation_bits: int | None = None) -> None:
        """Program a (K, O) unsigned weight-code matrix into tiled arrays.

        ``weight_bits``/``activation_bits`` are snapped to the hardware
        precisions {2, 4, 8, 16}; codes must fit the *snapped* width
        (they do by construction, since snapping only widens).
        """
        weight_codes = np.asarray(weight_codes, dtype=np.int64)
        if weight_codes.ndim != 2:
            raise ValueError("weight codes must be a (K, O) matrix")
        self.weight_bits = snap_to_hardware_precision(weight_bits)
        self.activation_bits = snap_to_hardware_precision(
            activation_bits if activation_bits is not None else weight_bits
        )
        if (weight_codes < 0).any() or (weight_codes >= (1 << self.weight_bits)).any():
            raise ValueError("weight codes exceed the snapped bit-width")
        k_dim, o_dim = weight_codes.shape
        self._matrix_shape = (k_dim, o_dim)
        weights_per_tile = self.cols // self.weight_bits
        if weights_per_tile < 1:
            raise ValueError("array too narrow for this precision")
        self._tiles = []
        self._tile_weight_counts = []
        self._tile_row_counts = []
        for row_start in range(0, k_dim, self.rows):
            row_block = weight_codes[row_start : row_start + self.rows]
            tile_row: list[PIMArray] = []
            for col_start in range(0, o_dim, weights_per_tile):
                block = row_block[:, col_start : col_start + weights_per_tile]
                array = PIMArray(self.rows, self.cols)
                padded = np.zeros((self.rows, block.shape[1]), dtype=np.int64)
                padded[: block.shape[0]] = block
                array.program_weights(padded, self.weight_bits)
                tile_row.append(array)
                if row_start == 0:
                    self._tile_weight_counts.append(block.shape[1])
            self._tiles.append(tile_row)
            self._tile_row_counts.append(row_block.shape[0])
        self._tree = ShiftAccumulatorTree(self.weight_bits)
        self._decoder = InputDecoder(self.activation_bits)
        self._matvecs = 0

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def matvec(self, activation_codes: np.ndarray) -> np.ndarray:
        """One matrix-vector product: returns integer dot products (O,)."""
        if self._matrix_shape is None:
            raise RuntimeError("load_matrix() must be called first")
        k_dim, o_dim = self._matrix_shape
        activation_codes = np.asarray(activation_codes, dtype=np.int64)
        if activation_codes.shape != (k_dim,):
            raise ValueError(f"activation vector must have shape ({k_dim},)")
        result = np.zeros(o_dim, dtype=np.int64)
        row_offsets = np.cumsum([0] + self._tile_row_counts)
        for tile_row_idx, tile_row in enumerate(self._tiles):
            segment = activation_codes[
                row_offsets[tile_row_idx] : row_offsets[tile_row_idx + 1]
            ]
            padded = np.zeros(self.rows, dtype=np.int64)
            padded[: segment.size] = segment
            for bit_position, drive in self._decoder.schedule(padded):
                col_offset = 0
                for tile_idx, array in enumerate(tile_row):
                    width = self._tile_weight_counts[tile_idx]
                    popcounts = array.column_popcounts(drive)
                    partial = self._tree.combine(
                        popcounts[: width * self.weight_bits], bit_position
                    )
                    result[col_offset : col_offset + width] += partial
                    col_offset += width
        self._matvecs += 1
        return result

    def matmul(self, activation_codes: np.ndarray) -> np.ndarray:
        """Batched products: (N, K) codes -> (N, O) integer results."""
        activation_codes = np.asarray(activation_codes, dtype=np.int64)
        if activation_codes.ndim != 2:
            raise ValueError("expected a (N, K) code matrix")
        return np.stack([self.matvec(vec) for vec in activation_codes])

    # ------------------------------------------------------------------
    # Statistics
    # ------------------------------------------------------------------
    def activity(self) -> ActivityReport:
        if self._tree is None or self._decoder is None:
            raise RuntimeError("no layer loaded")
        cell_ops = sum(a.cell_ops for row in self._tiles for a in row)
        return ActivityReport(
            cell_ops=cell_ops,
            accumulator=self._tree.stats,
            decoder_fetches=self._decoder.fetches,
            matvecs=self._matvecs,
        )

    def reset_stats(self) -> None:
        for row in self._tiles:
            for array in row:
                array.reset_stats()
        if self._tree is not None:
            self._tree.reset_stats()
        if self._decoder is not None:
            self._decoder.reset_stats()
        self._matvecs = 0

    def __repr__(self) -> str:
        shape = self._matrix_shape or "unloaded"
        return f"PIMAccelerator({self.rows}x{self.cols}, matrix={shape})"
