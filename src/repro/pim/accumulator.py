"""Hierarchical shift-accumulator block (paper Fig. 5).

Column partial sums are combined in three levels:

* **ACC4** — the lowest level; every group of 4 adjacent PIM columns is
  read together and its bit-weighted sum forms a 4-bit-operand result.
  For 2-bit layers this is the final result (the paper's blue path).
* **ACC8** — shift-adds pairs of ACC4 results for 4-bit operands (red
  path).
* **ACC16** — shift-adds ACC8 results for 8-/16-bit operands.

The tree also applies the *activation* bit-position shift of the
bit-serial schedule, so the accelerator's outer loop just sums tree
outputs over activation bit cycles.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

# Accumulator level activated as the final stage per operand precision.
_FINAL_LEVEL = {2: "acc4", 4: "acc8", 8: "acc16", 16: "acc16"}


@dataclass
class AccumulatorStats:
    """Operation counters per accumulator level."""

    acc4_ops: int = 0
    acc8_ops: int = 0
    acc16_ops: int = 0

    def merged(self, other: "AccumulatorStats") -> "AccumulatorStats":
        return AccumulatorStats(
            self.acc4_ops + other.acc4_ops,
            self.acc8_ops + other.acc8_ops,
            self.acc16_ops + other.acc16_ops,
        )


@dataclass
class ShiftAccumulatorTree:
    """Combines bit-sliced column popcounts into integer dot products.

    Parameters
    ----------
    weight_bits:
        Operand precision of the currently-mapped layer; must be one of
        the hardware precisions {2, 4, 8, 16}.
    """

    weight_bits: int
    stats: AccumulatorStats = field(default_factory=AccumulatorStats)

    def __post_init__(self):
        if self.weight_bits not in _FINAL_LEVEL:
            raise ValueError(
                f"PIM supports 2/4/8/16-bit operands, got {self.weight_bits}"
            )

    @property
    def final_level(self) -> str:
        """Which accumulator level produces the forwarded result."""
        return _FINAL_LEVEL[self.weight_bits]

    def combine(
        self, column_sums: np.ndarray, activation_bit_position: int = 0
    ) -> np.ndarray:
        """Reduce per-column popcounts to per-weight partial results.

        ``column_sums`` has one entry per PIM column; each group of
        ``weight_bits`` columns belongs to one weight, MSB first.  The
        result is shifted by ``activation_bit_position`` (the bit-serial
        input schedule's current cycle).
        """
        column_sums = np.asarray(column_sums, dtype=np.int64)
        if column_sums.ndim != 1:
            raise ValueError("column sums must be a vector")
        if column_sums.size % self.weight_bits != 0:
            raise ValueError(
                f"{column_sums.size} columns do not tile into "
                f"{self.weight_bits}-bit weights"
            )
        num_weights = column_sums.size // self.weight_bits
        grouped = column_sums.reshape(num_weights, self.weight_bits)
        # Bit significance of each column within its weight, MSB first.
        shifts = np.arange(self.weight_bits - 1, -1, -1)
        result = (grouped << shifts[None, :]).sum(axis=1)
        # Activity accounting: each group of <=4 columns costs one ACC4
        # op; combining pairs of ACC4 results costs ACC8 ops; ACC16 ops
        # combine ACC8 outputs and absorb the >=8-bit final adds.
        groups_of_4 = num_weights * int(np.ceil(self.weight_bits / 4))
        self.stats.acc4_ops += groups_of_4
        if self.weight_bits >= 4:
            self.stats.acc8_ops += num_weights * max(1, self.weight_bits // 8)
        if self.weight_bits >= 8:
            self.stats.acc16_ops += num_weights * max(1, self.weight_bits // 16)
        return result << activation_bit_position

    def reset_stats(self) -> None:
        self.stats = AccumulatorStats()
