"""Full-layer execution on the PIM platform.

Bridges the training-side world (float tensors, fake quantization) and
the hardware world (integer codes on the accelerator):

* :func:`execute_conv_layer` lowers a convolution to matrix form
  (im2col), quantizes weights and input activations with the layer's
  eqn.-(1) quantizers, runs the integer GEMM on the bit-serial
  :class:`~repro.pim.accelerator.PIMAccelerator`, and dequantizes the
  accumulated results back to floats via the affine expansion

      (c_x s_x + m_x) · (c_w s_w + m_w)
        = s_x s_w (c_x · c_w) + m_w s_x Σc_x + m_x s_w Σc_w + K m_x m_w

  so the output matches a float conv over the fake-quantized operands to
  numerical precision.
* :func:`execute_linear_layer` is the FC analogue.

This is how the reproduction demonstrates that the *trained*
mixed-precision models are actually executable on the simulated
hardware, not just costable.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.autograd.conv import conv_output_size, im2col
from repro.pim.accelerator import ActivityReport, PIMAccelerator
from repro.quant import UniformQuantizer, snap_to_hardware_precision


@dataclass
class LayerExecutionResult:
    """Output of a hardware layer execution."""

    output: np.ndarray
    activity: ActivityReport
    weight_bits: int
    activation_bits: int


def _affine_dequantize(int_result, x_codes, w_codes, xq, wq):
    """Expand the integer GEMM back to the float fake-quant product."""
    x_bits_levels = xq.num_levels - 1
    w_bits_levels = wq.num_levels - 1
    x_scale = (xq.x_max - xq.x_min) / x_bits_levels if x_bits_levels else 0.0
    w_scale = (wq.x_max - wq.x_min) / w_bits_levels if w_bits_levels else 0.0
    k = x_codes.shape[1]
    return (
        int_result * (x_scale * w_scale)
        + (x_codes.sum(axis=1, keepdims=True) * x_scale) * wq.x_min
        + xq.x_min * (w_codes.sum(axis=0, keepdims=True) * w_scale)
        + k * xq.x_min * wq.x_min
    )


def execute_linear_layer(
    activations: np.ndarray,
    weights: np.ndarray,
    bits: int,
    accelerator: PIMAccelerator | None = None,
) -> LayerExecutionResult:
    """Run ``activations @ weights`` on the PIM platform at ``bits``.

    Parameters
    ----------
    activations:
        (N, K) float inputs.
    weights:
        (K, O) float weights.
    bits:
        Algorithmic layer precision; snapped to {2,4,8,16} on hardware.
    """
    activations = np.asarray(activations, dtype=np.float64)
    weights = np.asarray(weights, dtype=np.float64)
    if activations.ndim != 2 or weights.ndim != 2:
        raise ValueError("expected (N, K) activations and (K, O) weights")
    if activations.shape[1] != weights.shape[0]:
        raise ValueError("inner dimensions do not match")
    hw_bits = snap_to_hardware_precision(bits)
    xq = UniformQuantizer(hw_bits, dynamic=False).calibrate(activations)
    wq = UniformQuantizer(hw_bits, dynamic=False).calibrate(weights)
    x_codes = xq.encode(activations)
    w_codes = wq.encode(weights)
    if accelerator is None:
        accelerator = PIMAccelerator(
            rows=min(128, max(8, weights.shape[0])),
            cols=max(hw_bits, min(128, weights.shape[1] * hw_bits)),
        )
    accelerator.load_matrix(w_codes, hw_bits)
    int_result = accelerator.matmul(x_codes)
    output = _affine_dequantize(int_result, x_codes, w_codes, xq, wq)
    return LayerExecutionResult(
        output=output,
        activity=accelerator.activity(),
        weight_bits=hw_bits,
        activation_bits=hw_bits,
    )


def execute_conv_layer(
    inputs: np.ndarray,
    weights: np.ndarray,
    bits: int,
    stride: int = 1,
    padding: int = 0,
    accelerator: PIMAccelerator | None = None,
) -> LayerExecutionResult:
    """Run a 2-D convolution on the PIM platform at ``bits``.

    Parameters
    ----------
    inputs:
        (N, C, H, W) float feature maps (e.g. post-ReLU activations).
    weights:
        (O, C, k, k) float conv weights.

    Returns
    -------
    LayerExecutionResult
        ``output`` has shape (N, O, H', W') and equals the float
        convolution of the fake-quantized operands.
    """
    inputs = np.asarray(inputs, dtype=np.float64)
    weights = np.asarray(weights, dtype=np.float64)
    if inputs.ndim != 4 or weights.ndim != 4:
        raise ValueError("expected (N,C,H,W) inputs and (O,C,k,k) weights")
    n, c, h, w = inputs.shape
    o, c_w, kernel, kernel2 = weights.shape
    if c != c_w or kernel != kernel2:
        raise ValueError("weight shape incompatible with input")
    out_h = conv_output_size(h, kernel, stride, padding)
    out_w = conv_output_size(w, kernel, stride, padding)

    # Lower to matrix form: columns (C*k*k, N*out_h*out_w) -> GEMM rows.
    cols, _, _ = im2col(inputs, kernel, stride, padding)
    gemm_inputs = cols.T  # (N*out_h*out_w, C*k*k)
    gemm_weights = weights.reshape(o, -1).T  # (C*k*k, O)

    result = execute_linear_layer(gemm_inputs, gemm_weights, bits, accelerator)
    # (N*positions, O) -> (N, O, out_h, out_w); im2col emits the batch as
    # the slow axis within each position block (C,kk,N,positions order),
    # so the row index factorises as position-major per image.
    output = (
        result.output.reshape(n, out_h, out_w, o).transpose(0, 3, 1, 2)
    )
    return LayerExecutionResult(
        output=output,
        activity=result.activity,
        weight_bits=result.weight_bits,
        activation_bits=result.activation_bits,
    )
