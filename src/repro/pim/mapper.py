"""Mapping network layers onto fixed-size PIM arrays.

A conv layer is lowered to matrix form (im2col): the weight matrix has
K = I * p^2 rows (patch dimension) and O columns (output channels); a
fully connected layer is already K x O.  The weight matrix is bit-sliced
(k columns per weight) and tiled over arrays of ``rows x cols`` cells;
every output position of the feature map is one matrix-vector product.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.energy.profile import LayerProfile
from repro.quant import snap_to_hardware_precision


@dataclass
class LayerMapping:
    """Placement of one layer on the PIM platform."""

    name: str
    hardware_bits: int
    patch_dim: int           # K: rows of the lowered weight matrix
    output_channels: int     # O: columns of the lowered weight matrix
    positions: int           # matrix-vector products per inference
    row_tiles: int
    col_tiles: int
    weights_per_col_tile: int

    @property
    def total_tiles(self) -> int:
        return self.row_tiles * self.col_tiles

    @property
    def array_reads(self) -> int:
        """Row-parallel array reads per inference.

        Each matrix-vector product reads every tile once per activation
        bit cycle (bit-serial input scheduling).
        """
        return self.positions * self.total_tiles * self.hardware_bits

    @property
    def macs(self) -> int:
        """k-bit MAC operations per inference (= N_MAC of §IV-A)."""
        return self.positions * self.patch_dim * self.output_channels


def map_layer(profile: LayerProfile, rows: int, cols: int) -> LayerMapping:
    """Tile ``profile`` onto ``rows x cols`` PIM arrays."""
    if rows < 1 or cols < 1:
        raise ValueError("array dimensions must be positive")
    bits = snap_to_hardware_precision(profile.bits)
    if cols < bits:
        raise ValueError(
            f"array has {cols} columns; cannot hold a {bits}-bit weight"
        )
    if profile.kind == "conv":
        patch_dim = profile.in_channels * profile.kernel**2
        positions = profile.output_size**2
    else:
        patch_dim = profile.in_channels
        positions = 1
    weights_per_col_tile = cols // bits
    col_tiles = -(-profile.out_channels // weights_per_col_tile)  # ceil
    row_tiles = -(-patch_dim // rows)
    return LayerMapping(
        name=profile.name,
        hardware_bits=bits,
        patch_dim=patch_dim,
        output_channels=profile.out_channels,
        positions=positions,
        row_tiles=row_tiles,
        col_tiles=col_tiles,
        weights_per_col_tile=weights_per_col_tile,
    )
