"""PIM array of 1-bit SRAM memory-and-multiply cells.

Each cell stores one weight bit and, when its row is driven with an
activation bit, contributes ``weight_bit AND activation_bit`` to its
column's partial sum (the in-memory analog accumulation, modelled
digitally as a column popcount).  Weights are *bit-sliced*: a k-bit
weight occupies k adjacent columns, most significant bit first.
"""

from __future__ import annotations

import numpy as np


class PIMArray:
    """A rows x cols crossbar of 1-bit multiply cells.

    Parameters
    ----------
    rows:
        Number of word lines (one per input-vector element).
    cols:
        Number of bit lines (weight bit-planes).
    """

    def __init__(self, rows: int, cols: int):
        if rows < 1 or cols < 1:
            raise ValueError("array dimensions must be positive")
        self.rows = rows
        self.cols = cols
        self._bits = np.zeros((rows, cols), dtype=np.uint8)
        self.cell_ops = 0  # 1-bit multiply events since reset_stats()

    # ------------------------------------------------------------------
    # Programming
    # ------------------------------------------------------------------
    def program_bits(self, bits: np.ndarray) -> None:
        """Write a full bit matrix (values 0/1) into the array."""
        bits = np.asarray(bits)
        if bits.shape != (self.rows, self.cols):
            raise ValueError(
                f"bit matrix shape {bits.shape} != array ({self.rows}, {self.cols})"
            )
        if not np.isin(bits, (0, 1)).all():
            raise ValueError("cells store single bits (0/1)")
        self._bits = bits.astype(np.uint8)

    def program_weights(self, codes: np.ndarray, bits: int) -> None:
        """Bit-slice unsigned integer weight codes into columns.

        ``codes`` has shape (rows, num_weights); weight *j* occupies
        columns ``j*bits .. (j+1)*bits - 1``, MSB first.  Requires
        ``num_weights * bits <= cols``.
        """
        codes = np.asarray(codes, dtype=np.int64)
        if codes.ndim != 2 or codes.shape[0] != self.rows:
            raise ValueError("codes must be (rows, num_weights)")
        if (codes < 0).any() or (codes >= (1 << bits)).any():
            raise ValueError(f"codes out of range for {bits}-bit storage")
        num_weights = codes.shape[1]
        if num_weights * bits > self.cols:
            raise ValueError(
                f"{num_weights} weights x {bits} bits exceed {self.cols} columns"
            )
        # Column j*bits + b holds bit (bits-1-b) of weight j (MSB first).
        planes = np.zeros((self.rows, self.cols), dtype=np.uint8)
        shifts = np.arange(bits - 1, -1, -1)  # per-column bit position
        sliced = (codes[:, :, None] >> shifts[None, None, :]) & 1
        planes[:, : num_weights * bits] = sliced.reshape(self.rows, -1)
        self._bits = planes

    # ------------------------------------------------------------------
    # Compute
    # ------------------------------------------------------------------
    def read_bits(self) -> np.ndarray:
        """Current cell contents (copy)."""
        return self._bits.copy()

    def column_popcounts(self, row_drive: np.ndarray) -> np.ndarray:
        """Drive rows with an activation bit vector; return column sums.

        ``row_drive`` is a 0/1 vector of length ``rows``; the result is
        per-column ``sum_r drive[r] * cell[r, c]`` — one array read of
        all columns together.
        """
        row_drive = np.asarray(row_drive)
        if row_drive.shape != (self.rows,):
            raise ValueError(f"row drive must have shape ({self.rows},)")
        if not np.isin(row_drive, (0, 1)).all():
            raise ValueError("row drive must be binary")
        active = int(row_drive.sum())
        self.cell_ops += active * self.cols
        return row_drive.astype(np.int64) @ self._bits.astype(np.int64)

    def reset_stats(self) -> None:
        self.cell_ops = 0

    def __repr__(self) -> str:
        return f"PIMArray({self.rows}x{self.cols}, cell_ops={self.cell_ops})"
