"""XNOR datapath for 1-bit extreme quantization (paper §II-A).

"In the cases of extreme quantization where there is 1-bit
representation, the integer arithmetic can be further reduced to
bit-wise XNOR operations" — with ±1 (sign) encodings, a dot product of
length K is ``2 * popcount(XNOR(a, w)) - K``.

This module provides that datapath for the layers Algorithm 1 drives all
the way down to 1 bit (the paper's Table II vectors contain several
1-bit layers).  It reuses the PIM array as an XNOR-and-popcount fabric
and is validated against exact ±1 integer matmul in the tests.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.pim.cells import PIMArray


def binarize(x: np.ndarray) -> np.ndarray:
    """Sign binarization to ±1 (zeros map to +1, the usual convention)."""
    x = np.asarray(x)
    return np.where(x >= 0, 1, -1).astype(np.int64)


def _to_bits(signs: np.ndarray) -> np.ndarray:
    """±1 -> {1, 0} bit encoding (+1 -> 1)."""
    signs = np.asarray(signs)
    if not np.isin(signs, (-1, 1)).all():
        raise ValueError("XNOR datapath expects ±1 inputs")
    return ((signs + 1) // 2).astype(np.uint8)


@dataclass
class XNORStats:
    """Activity counters for the XNOR engine."""

    xnor_ops: int = 0
    popcounts: int = 0


class XNORAccelerator:
    """1-bit matrix-vector engine: XNOR + popcount on a PIM array.

    Weights are stored as sign bits, one column per output; driving the
    rows with the activation sign bits yields, per column, the count of
    *matching* bits, from which the ±1 dot product is
    ``2 * matches - K``.
    """

    def __init__(self, rows: int = 128):
        if rows < 1:
            raise ValueError("rows must be positive")
        self.rows = rows
        self._weight_bits: np.ndarray | None = None
        self._k: int | None = None
        self.stats = XNORStats()

    def load_weights(self, weight_signs: np.ndarray) -> None:
        """Program a (K, O) ±1 weight matrix."""
        weight_signs = np.asarray(weight_signs)
        if weight_signs.ndim != 2:
            raise ValueError("weights must be (K, O)")
        self._weight_bits = _to_bits(weight_signs)
        self._k = weight_signs.shape[0]

    def matvec(self, activation_signs: np.ndarray) -> np.ndarray:
        """±1 dot products via XNOR/popcount; exact by construction."""
        if self._weight_bits is None:
            raise RuntimeError("load_weights() must be called first")
        activation_signs = np.asarray(activation_signs)
        if activation_signs.shape != (self._k,):
            raise ValueError(f"activation vector must have shape ({self._k},)")
        act_bits = _to_bits(activation_signs)
        # XNOR = NOT(a ^ w): 1 where the sign bits agree.
        matches = (~(act_bits[:, None] ^ self._weight_bits) & 1).sum(axis=0)
        self.stats.xnor_ops += self._weight_bits.size
        self.stats.popcounts += self._weight_bits.shape[1]
        return 2 * matches.astype(np.int64) - self._k

    def matmul(self, activation_signs: np.ndarray) -> np.ndarray:
        """(N, K) sign matrix -> (N, O) ±1 dot products."""
        activation_signs = np.asarray(activation_signs)
        if activation_signs.ndim != 2:
            raise ValueError("expected a (N, K) sign matrix")
        return np.stack([self.matvec(row) for row in activation_signs])

    def as_pim_array(self) -> PIMArray:
        """Expose the programmed weight bits as a PIM array (for
        inspection and for reuse of the array-level statistics)."""
        if self._weight_bits is None:
            raise RuntimeError("load_weights() must be called first")
        array = PIMArray(self._weight_bits.shape[0], self._weight_bits.shape[1])
        array.program_bits(self._weight_bits)
        return array


def xnor_gemm(activation_signs: np.ndarray, weight_signs: np.ndarray) -> np.ndarray:
    """Convenience wrapper: full ±1 GEMM through the XNOR engine."""
    engine = XNORAccelerator()
    engine.load_weights(weight_signs)
    return engine.matmul(activation_signs)
