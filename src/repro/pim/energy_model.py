"""PIM energy model (paper Tables IV, V, VI).

Table IV gives the circuit-simulated (45 nm CMOS) energy of one complete
multiply-and-accumulate on the platform, per operand precision:

    ============  ===========
    Precision     E_MAC (fJ)
    ============  ===========
    2-bit         2.942
    4-bit         16.968
    8-bit         66.714
    16-bit        276.676
    ============  ===========

"In a PIM architecture, energy is primarily expended during MAC
operation as memory access energy is greatly reduced [and] energy due to
peripheral components is fairly minimal" (§V-B) — so the network energy
is the sum over layers of ``N_MAC(l) * E_MAC|snap(k_l)``.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.energy.analytical import AnalyticalEnergyModel
from repro.energy.profile import LayerProfile
from repro.quant import snap_to_hardware_precision

TABLE_IV_MAC_ENERGY_FJ: dict[int, float] = {
    2: 2.942,
    4: 16.968,
    8: 66.714,
    16: 276.676,
}

_FJ_TO_UJ = 1e-9


@dataclass
class PIMNetworkEnergy:
    """Network energy on the PIM platform."""

    total_uj: float
    per_layer_uj: dict[str, float]
    total_macs: int

    def __post_init__(self):
        if self.total_uj < 0:
            raise ValueError("energy must be non-negative")


class PIMEnergyModel:
    """Costs layer profiles with Table-IV per-MAC energies.

    Parameters
    ----------
    mac_energy_fj:
        Per-precision MAC energies; defaults to Table IV.
    precision_rule:
        Which operand width selects the MAC energy row:

        * ``"operand-max"`` (default) — ``max(weight bits, incoming
          activation bits)``.  On the bit-serial platform the input
          decoder must stream the producer layer's activation codes at
          their full precision, so a 4-bit-weight layer fed by a
          16-bit-activation layer runs 16 input cycles.  This rule
          reproduces the paper's Table V mixed-precision energies.
        * ``"weight-only"`` — the layer's own ``k_l`` alone (idealized;
          provided for the precision-accounting ablation bench).
    """

    def __init__(
        self,
        mac_energy_fj: dict[int, float] | None = None,
        precision_rule: str = "operand-max",
    ):
        self.mac_energy_fj = dict(mac_energy_fj or TABLE_IV_MAC_ENERGY_FJ)
        for bits, energy in self.mac_energy_fj.items():
            if bits < 1 or energy <= 0:
                raise ValueError("invalid MAC energy table")
        if precision_rule not in ("operand-max", "weight-only"):
            raise ValueError(f"unknown precision rule {precision_rule!r}")
        self.precision_rule = precision_rule
        self._counts = AnalyticalEnergyModel()
        self._supported = tuple(sorted(self.mac_energy_fj))

    def mac_energy(self, bits: int) -> float:
        """fJ per MAC at the hardware precision covering ``bits``."""
        return self.mac_energy_fj[snap_to_hardware_precision(bits, self._supported)]

    def _profile_bits(self, profile: LayerProfile) -> int:
        if self.precision_rule == "weight-only":
            return profile.bits
        return max(profile.bits, profile.effective_input_bits)

    def layer_energy_uj(self, profile: LayerProfile) -> float:
        """N_MAC * E_MAC|snap(k), in microjoules."""
        _, macs = self._counts.layer_counts(profile)
        return macs * self.mac_energy(self._profile_bits(profile)) * _FJ_TO_UJ

    def network_energy(self, profiles: list[LayerProfile]) -> PIMNetworkEnergy:
        if not profiles:
            raise ValueError("no layer profiles supplied")
        per_layer: dict[str, float] = {}
        total_macs = 0
        for profile in profiles:
            per_layer[profile.name] = self.layer_energy_uj(profile)
            _, macs = self._counts.layer_counts(profile)
            total_macs += macs
        return PIMNetworkEnergy(
            total_uj=sum(per_layer.values()),
            per_layer_uj=per_layer,
            total_macs=total_macs,
        )

    def energy_reduction(
        self,
        baseline_profiles: list[LayerProfile],
        model_profiles: list[LayerProfile],
    ) -> float:
        """Tables V/VI "Energy reduction" column: baseline / model."""
        baseline = self.network_energy(baseline_profiles).total_uj
        model = self.network_energy(model_profiles).total_uj
        if model <= 0:
            raise ValueError("model energy must be positive")
        return baseline / model


def analytical_overestimate_ratio(
    baseline_profiles: list[LayerProfile],
    model_profiles: list[LayerProfile],
) -> float:
    """§V-B's final observation, quantified.

    Ratio of the *analytical* efficiency estimate (§IV-A model, which
    scales both MAC and memory energy with the ideal bit-width) to the
    *PIM* efficiency (Table IV energies at snapped precisions).  The
    paper reports analytical estimates "~5-7x greater than practical
    hardware implementations" for the pruned+quantized models.
    """
    analytical = AnalyticalEnergyModel()
    analytical_eff = analytical.network_energy_pj(
        baseline_profiles
    ) / analytical.network_energy_pj(model_profiles)
    pim = PIMEnergyModel()
    pim_eff = pim.energy_reduction(baseline_profiles, model_profiles)
    return analytical_eff / pim_eff
