"""Executors: the *run it somewhere* half of sweep execution.

An executor accepts point tasks (the ``{"index", "config"}`` payloads of
:func:`~repro.orchestration.runner.execute_point`) one at a time via
:meth:`submit` and hands back one outcome dict per task via
:meth:`next_result`, in whatever order tasks finish.  The driver loop in
:class:`~repro.orchestration.runner.SweepRunner` feeds scheduler
proposals in as capacity frees up and routes outcomes back by task
index, so executors stay oblivious to sweeps, caches, and schedulers.

Two backends:

* :class:`SerialExecutor` — queues submissions and executes them
  in-process, FIFO, when :meth:`next_result` is called.  ``jobs == 1``.
* :class:`ProcessExecutor` — a ``concurrent.futures`` process pool.
  Chosen over ``multiprocessing.Pool`` because it *detects dead
  workers*: a worker that exits abruptly (OOM kill, ``os._exit``,
  segfault) breaks the pool and fails the affected futures instead of
  hanging the parent forever.

Both backends deliver exactly one outcome per submitted task.  A task
whose execution *raises* (the injectable ``execute`` violating
:func:`execute_point`'s capture-everything contract) or whose worker
*dies* is returned as a structured ``{"status": "failed"}`` outcome
naming the task index — the driver sees a failed point, never a missing
one.  After a pool breakage the broken pool is discarded, so subsequent
submissions (an adaptive scheduler proposing more points) transparently
get a fresh pool.
"""

from __future__ import annotations

import traceback


def crash_outcome(task: dict, error: BaseException) -> dict:
    """A structured ``failed`` outcome for a task whose executor crashed.

    Used when the failure happened *outside* :func:`execute_point`'s own
    structured capture: the worker process died, or an injected
    ``execute`` raised instead of returning an outcome dict.
    """
    return {
        "index": task.get("index"),
        "status": "failed",
        "error": f"executor crashed: {type(error).__name__}: {error}",
        "traceback": traceback.format_exc(),
        "duration": 0.0,
    }


class SerialExecutor:
    """In-process FIFO execution (``jobs == 1``).

    Submissions queue; each :meth:`next_result` call runs the oldest
    queued task to completion.  Deferring execution to
    :meth:`next_result` keeps the dispatch order identical to the
    pre-split runner: the driver finishes every cache hit before the
    first miss trains.
    """

    def __init__(self, execute):
        self.execute = execute
        self._queue: list[dict] = []

    @property
    def pending(self) -> int:
        return len(self._queue)

    def submit(self, task: dict) -> None:
        self._queue.append(task)

    def next_result(self) -> dict:
        if not self._queue:
            raise RuntimeError("no tasks pending in the serial executor")
        task = self._queue.pop(0)
        try:
            return self.execute(task)
        except Exception as error:
            return crash_outcome(task, error)

    def __enter__(self):
        return self

    def __exit__(self, *exc_info):
        self._queue.clear()
        return False


class ProcessExecutor:
    """Process-pool execution (``jobs > 1``) with dead-worker detection.

    The pool is created lazily on the first :meth:`submit` and discarded
    whenever it breaks, so one dying worker fails only the tasks that
    were in flight with it — later submissions run in a fresh pool.
    ``execute`` must be picklable (a module-level function).
    """

    def __init__(self, jobs: int, execute):
        if jobs < 2:
            raise ValueError("ProcessExecutor needs jobs >= 2; use SerialExecutor")
        self.jobs = jobs
        self.execute = execute
        self._pool = None
        self._futures: dict = {}  # future -> task

    @property
    def pending(self) -> int:
        return len(self._futures)

    def _ensure_pool(self):
        if self._pool is None:
            from concurrent.futures import ProcessPoolExecutor

            self._pool = ProcessPoolExecutor(max_workers=self.jobs)
        return self._pool

    def _discard_pool(self) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=False, cancel_futures=True)
            self._pool = None

    def submit(self, task: dict) -> None:
        try:
            future = self._ensure_pool().submit(self.execute, task)
        except Exception:
            # The pool broke between our liveness check and the submit
            # (a worker died while idle); retry once on a fresh pool.
            self._discard_pool()
            future = self._ensure_pool().submit(self.execute, task)
        self._futures[future] = task

    def next_result(self) -> dict:
        from concurrent.futures import (FIRST_COMPLETED, BrokenExecutor,
                                        CancelledError, wait)

        if not self._futures:
            raise RuntimeError("no tasks pending in the process executor")
        done, _ = wait(tuple(self._futures), return_when=FIRST_COMPLETED)
        future = next(iter(done))
        task = self._futures.pop(future)
        try:
            return future.result()
        except (BrokenExecutor, CancelledError) as error:
            # A worker died mid-task.  Every future in flight with the
            # broken pool will resolve the same way on later calls, each
            # yielding its own structured failure; new submissions get a
            # fresh pool.
            self._discard_pool()
            return crash_outcome(task, error)
        except Exception as error:
            return crash_outcome(task, error)

    def __enter__(self):
        return self

    def __exit__(self, *exc_info):
        if self._pool is not None:
            self._pool.shutdown(wait=False, cancel_futures=True)
            self._pool = None
        self._futures.clear()
        return False
