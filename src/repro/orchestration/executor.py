"""Executors: the *run it somewhere* half of sweep execution.

An executor accepts point tasks (the ``{"index", "config"}`` payloads of
:func:`~repro.orchestration.runner.execute_point`) one at a time via
:meth:`submit` and hands back one outcome dict per task via
:meth:`next_result`, in whatever order tasks finish.  The driver loop in
:class:`~repro.orchestration.runner.SweepRunner` feeds scheduler
proposals in as capacity frees up and routes outcomes back by task
index, so executors stay oblivious to sweeps, caches, and schedulers.

Two backends:

* :class:`SerialExecutor` — queues submissions and executes them
  in-process, FIFO, when :meth:`next_result` is called.  ``jobs == 1``.
* :class:`ProcessExecutor` — a ``concurrent.futures`` process pool.
  Chosen over ``multiprocessing.Pool`` because it *detects dead
  workers*: a worker that exits abruptly (OOM kill, ``os._exit``,
  segfault) breaks the pool and fails the affected futures instead of
  hanging the parent forever.

Both backends deliver exactly one outcome per submitted task.  A task
whose execution *raises* (the injectable ``execute`` violating
:func:`execute_point`'s capture-everything contract) or whose worker
*dies* is returned as a structured ``{"status": "failed"}`` outcome
naming the task index — the driver sees a failed point, never a missing
one.  After a pool breakage the broken pool is discarded, so subsequent
submissions (an adaptive scheduler proposing more points) transparently
get a fresh pool.

Two optional liveness knobs (both default off) keep long-lived drivers —
the ``repro master`` service above all — responsive:

* ``task_timeout`` (:class:`ProcessExecutor` only): dead-worker
  detection catches a worker that *crashes*, but a worker that *hangs*
  (a deadlocked BLAS call, an NFS stall) would block
  :meth:`next_result` forever.  With a timeout set, a task observed
  running longer than ``task_timeout`` seconds is converted into a
  structured ``{"status": "timeout"}`` outcome (the driver records it
  as a failed point) and the pool is recycled — tasks in flight with
  the hung worker resolve as structured failures, later submissions get
  a fresh pool.
* ``interrupt``: a zero-argument callable polled while waiting; when it
  returns true, :meth:`next_result` raises :class:`TaskInterrupted`
  instead of blocking on, so a signal handler's flag (graceful Ctrl-C)
  unblocks the driver within a poll interval instead of after the
  current task.

Both backends support :meth:`cancel` (speculative-search losers, jobs
discarded by the service): a still-queued task is dropped for free and
will never consume a worker slot; a task already running is *abandoned*
— it keeps its worker until it finishes, but its eventual outcome is
replaced by a structured ``{"status": "cancelled"}`` marker (payload
discarded), so drivers still see exactly one outcome per submitted,
un-dropped task and their accounting stays exact.
"""

from __future__ import annotations

import threading
import time
import traceback

# How often next_result wakes to poll an ``interrupt`` flag (seconds).
INTERRUPT_POLL_SECONDS = 0.2


class TaskInterrupted(Exception):
    """Raised by ``next_result`` when the executor's ``interrupt`` fires."""


def timeout_outcome(task: dict, seconds: float, elapsed: float) -> dict:
    """A structured ``timeout`` outcome for a task that overran its budget.

    Shaped like :func:`crash_outcome` but with status ``"timeout"`` so
    drivers can tell a hung worker from a crashed one; the sweep driver
    records it as a failed point with this error text.
    """
    return {
        "index": task.get("index"),
        "status": "timeout",
        "error": (
            f"task exceeded task_timeout={seconds:g}s "
            f"(ran {elapsed:.1f}s); worker pool recycled"
        ),
        "traceback": None,
        "duration": elapsed,
    }


def cancelled_outcome(task: dict, duration: float = 0.0) -> dict:
    """The structured marker returned for an abandoned (cancelled) task.

    Whatever the worker computed (or crashed with) is discarded — a
    cancelled speculation's payload must never become observable — but
    the outcome itself still flows back so the driver's one-outcome-
    per-task accounting holds.
    """
    return {
        "index": task.get("index"),
        "status": "cancelled",
        "error": None,
        "traceback": None,
        "duration": duration,
    }


def crash_outcome(task: dict, error: BaseException) -> dict:
    """A structured ``failed`` outcome for a task whose executor crashed.

    Used when the failure happened *outside* :func:`execute_point`'s own
    structured capture: the worker process died, or an injected
    ``execute`` raised instead of returning an outcome dict.
    """
    return {
        "index": task.get("index"),
        "status": "failed",
        "error": f"executor crashed: {type(error).__name__}: {error}",
        "traceback": traceback.format_exc(),
        "duration": 0.0,
    }


class SerialExecutor:
    """In-process FIFO execution (``jobs == 1``).

    Submissions queue; each :meth:`next_result` call runs the oldest
    queued task to completion.  Deferring execution to
    :meth:`next_result` keeps the dispatch order identical to the
    pre-split runner: the driver finishes every cache hit before the
    first miss trains.
    """

    def __init__(self, execute, interrupt=None):
        self.execute = execute
        self.interrupt = interrupt
        self._queue: list[dict] = []
        # cancel() may race next_result() across threads (the asyncio
        # master drives a serial executor from a worker thread).
        self._lock = threading.Lock()

    @property
    def pending(self) -> int:
        return len(self._queue)

    def submit(self, task: dict) -> None:
        with self._lock:
            self._queue.append(task)

    def cancel(self, index) -> str:
        """Drop the queued task with ``index``; see module docstring.

        Serial execution has no running-in-the-background state: a task
        is either still queued (``"queued"`` — dropped for free, no
        outcome will ever arrive) or already executed and returned
        (``"unknown"``).  Nothing is ever wasted at ``jobs == 1``, which
        is why a speculative search under the serial executor degrades
        to exactly the sequential search.
        """
        with self._lock:
            for position, task in enumerate(self._queue):
                if task.get("index") == index:
                    del self._queue[position]
                    return "queued"
        return "unknown"

    def next_result(self) -> dict:
        if self.interrupt is not None and self.interrupt():
            # In-process execution cannot be interrupted mid-task, but
            # the queue boundary honours the flag before starting more.
            raise TaskInterrupted
        with self._lock:
            if not self._queue:
                raise RuntimeError(
                    "no tasks pending in the serial executor"
                )
            task = self._queue.pop(0)
        try:
            return self.execute(task)
        except Exception as error:
            return crash_outcome(task, error)

    def __enter__(self):
        return self

    def __exit__(self, *exc_info):
        self._queue.clear()
        return False


class ProcessExecutor:
    """Process-pool execution (``jobs > 1``) with dead-worker detection.

    The pool is created lazily on the first :meth:`submit` and discarded
    whenever it breaks, so one dying worker fails only the tasks that
    were in flight with it — later submissions run in a fresh pool.
    ``execute`` must be picklable (a module-level function).
    """

    def __init__(self, jobs: int, execute, task_timeout: float | None = None,
                 interrupt=None):
        if jobs < 2:
            raise ValueError("ProcessExecutor needs jobs >= 2; use SerialExecutor")
        if task_timeout is not None and task_timeout <= 0:
            raise ValueError("task_timeout must be positive (or None)")
        self.jobs = jobs
        self.execute = execute
        self.task_timeout = task_timeout
        self.interrupt = interrupt
        self._pool = None
        self._backlog: list[dict] = []  # submitted, not yet in the pool
        self._futures: dict = {}  # future -> task
        self._running_since: dict = {}  # future -> first observed running
        self._abandoned: set = set()  # cancelled task indices still in flight
        # submit()/cancel() may be called from another thread (the
        # asyncio master) while next_result() blocks in a worker thread;
        # the lock keeps backlog/future bookkeeping consistent.
        self._lock = threading.Lock()

    @property
    def pending(self) -> int:
        return len(self._futures) + len(self._backlog)

    def _ensure_pool(self):
        if self._pool is None:
            from concurrent.futures import ProcessPoolExecutor

            self._pool = ProcessPoolExecutor(max_workers=self.jobs)
        return self._pool

    def _discard_pool(self, kill: bool = False) -> None:
        if self._pool is None:
            return
        pool, self._pool = self._pool, None
        if kill:
            # A hung worker never exits on its own; without an explicit
            # kill it would linger (and block interpreter shutdown,
            # which joins pool workers) for the driver's lifetime.
            for process in list((getattr(pool, "_processes", None)
                                 or {}).values()):
                process.kill()
        pool.shutdown(wait=False, cancel_futures=True)

    def submit(self, task: dict) -> None:
        self._backlog.append(task)
        self._fill()

    def cancel(self, index) -> str:
        """Cancel the task with ``index``; see the module docstring.

        Dispositions: ``"queued"`` — the task was purged from the
        backlog (or snatched from the pool before a worker picked it
        up) and no outcome will ever arrive; ``"running"`` — the task
        is abandoned, its worker finishes but the outcome arrives as a
        ``cancelled`` marker with the payload discarded; ``"unknown"``
        — the task already returned (or was never submitted here).

        Purging the backlog here is load-bearing, not an optimization:
        without it, tasks of a discarded scheduler (a cancelled service
        job, a losing speculation) would still be fed to workers by
        ``_fill`` and burn slots computing results nobody can receive.
        """
        with self._lock:
            for position, task in enumerate(self._backlog):
                if task.get("index") == index:
                    del self._backlog[position]
                    return "queued"
            for future, task in list(self._futures.items()):
                if task.get("index") != index:
                    continue
                if future.cancel():
                    # Still in the pool's call queue: dropped before any
                    # worker started it, as free as a backlog purge.
                    self._futures.pop(future, None)
                    self._running_since.pop(future, None)
                    return "queued"
                self._abandoned.add(index)
                return "running"
        return "unknown"

    def _fill(self) -> None:
        """Feed backlog into the pool, at most ``jobs`` futures deep.

        ``ProcessPoolExecutor`` marks a future *running* once it enters
        the worker call queue — which prefetches beyond the workers — so
        an unthrottled submit would start a queued task's timeout clock
        while it still waits for a slot.  Capping in-pool futures at the
        worker count makes "observed running" mean "actually running";
        it also keeps backlog tasks off a pool that later breaks.
        """
        with self._lock:
            while self._backlog and len(self._futures) < self.jobs:
                task = self._backlog[0]
                if task.get("index") in self._abandoned:
                    # Belt-and-braces: a cancelled entry never consumes
                    # a worker slot (cancel() purges the backlog, so
                    # this only catches an index abandoned out of band).
                    self._backlog.pop(0)
                    self._abandoned.discard(task.get("index"))
                    continue
                try:
                    future = self._ensure_pool().submit(self.execute, task)
                except Exception:
                    # The pool broke between our liveness check and the
                    # submit (a worker died while idle); retry on a fresh
                    # pool.
                    self._discard_pool()
                    future = self._ensure_pool().submit(self.execute, task)
                self._backlog.pop(0)
                self._futures[future] = task

    def _overdue(self, now: float):
        """``(future, elapsed)`` of the longest-overdue running task, or None.

        The clock starts when a task is first *observed* running (not
        when it was submitted), so tasks queued behind a full pool never
        accrue waiting time against their budget.
        """
        if self.task_timeout is None:
            return None
        for future in list(self._futures):
            if future not in self._running_since and future.running():
                self._running_since[future] = now
        worst = None
        for future, started in list(self._running_since.items()):
            if future not in self._futures:
                continue
            elapsed = now - started
            if elapsed >= self.task_timeout and (
                    worst is None or elapsed > worst[1]):
                worst = (future, elapsed)
        return worst

    def _wait_timeout(self, now: float) -> float | None:
        """How long the next ``wait`` may block before a poll is due."""
        slices = []
        if self.interrupt is not None:
            slices.append(INTERRUPT_POLL_SECONDS)
        if self.task_timeout is not None:
            deadlines = [
                max(0.0, started + self.task_timeout - now)
                for future, started in list(self._running_since.items())
                if future in self._futures
            ]
            if deadlines:
                slices.append(min(deadlines))
            # Tasks not yet observed running need their clocks started;
            # poll at the interrupt cadence until every clock is live.
            slices.append(INTERRUPT_POLL_SECONDS)
        return min(slices) if slices else None

    def _resolve(self, task: dict, outcome: dict) -> dict:
        """Replace an abandoned task's outcome with a cancelled marker."""
        index = task.get("index")
        if index in self._abandoned:
            self._abandoned.discard(index)
            return cancelled_outcome(task, outcome.get("duration", 0.0))
        return outcome

    def next_result(self) -> dict:
        from concurrent.futures import (FIRST_COMPLETED, BrokenExecutor,
                                        CancelledError, wait)

        if not self._futures and not self._backlog:
            raise RuntimeError("no tasks pending in the process executor")
        while True:
            if self.interrupt is not None and self.interrupt():
                raise TaskInterrupted
            self._fill()
            if not self._futures and not self._backlog:
                # A concurrent cancel() snatched the last pending task
                # while we waited.  Poll until new work is submitted (a
                # long-lived driver will feed more) or interrupt fires.
                time.sleep(INTERRUPT_POLL_SECONDS)
                continue
            now = time.monotonic()
            overdue = self._overdue(now)
            if overdue is not None:
                future, elapsed = overdue
                task = self._futures.pop(future, None)
                self._running_since.pop(future, None)
                if task is None:
                    continue  # cancelled out from under us
                # The hung worker cannot be joined; kill the whole pool
                # so later submissions start fresh.  Other tasks in
                # flight resolve as structured failures on later calls.
                self._discard_pool(kill=True)
                return self._resolve(
                    task, timeout_outcome(task, self.task_timeout, elapsed)
                )
            done, _ = wait(tuple(self._futures),
                           timeout=self._wait_timeout(now),
                           return_when=FIRST_COMPLETED)
            for future in done:
                task = self._futures.pop(future, None)
                self._running_since.pop(future, None)
                if task is None:
                    continue  # cancel() already collected this future
                try:
                    outcome = future.result()
                except (BrokenExecutor, CancelledError) as error:
                    # A worker died mid-task.  Every future in flight
                    # with the broken pool will resolve the same way on
                    # later calls, each yielding its own structured
                    # failure; new submissions get a fresh pool.
                    self._discard_pool()
                    return self._resolve(task, crash_outcome(task, error))
                except Exception as error:
                    return self._resolve(task, crash_outcome(task, error))
                return self._resolve(task, outcome)

    def __enter__(self):
        return self

    def __exit__(self, *exc_info):
        # Leaving with tasks still in flight (an interrupted sweep, a
        # timed-out straggler) means nobody will ever collect them:
        # kill their workers rather than leave orphans behind.
        self._discard_pool(kill=bool(self._futures))
        self._backlog.clear()
        self._futures.clear()
        self._running_since.clear()
        self._abandoned.clear()
        return False
