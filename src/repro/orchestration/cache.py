"""Content-addressed result cache for completed experiment runs.

A completed run is keyed by ``sha256(canonical_json(config.to_dict()))``
(:meth:`~repro.api.config._ConfigBase.cache_key`) and stored as one JSON
entry under ``.repro-cache/<key[:2]>/<key>.json``.  Because the key is
derived from the config *content*, the cache is shared by every caller
that resolves to the same config — ``repro run``, ``repro sweep``, and
programmatic :class:`~repro.orchestration.runner.SweepRunner` use — and
is safe to publish between CI steps or machines.

Transport between hosts is first-class: :meth:`ResultCache.export_archive`
publishes every entry as a tarball, :meth:`ResultCache.import_archive` /
:meth:`ResultCache.merge` fold a tarball or another cache directory into
this one.  Merging is two-phase — conflicts (same key, different
contents) are detected *before* anything is written and raised as a
:class:`CacheMergeConflict`, never silently overwritten: identical
configs must produce identical results, so a conflict means
non-determinism or corruption and deserves a loud stop.

Corrupted or incompatible entries are treated as misses and recomputed;
writes are atomic (temp file + rename) so parallel workers never expose
half-written entries.
"""

from __future__ import annotations

import io
import json
import re
import tarfile
from pathlib import Path, PurePosixPath

from repro.utils.serialization import atomic_write

CACHE_VERSION = 1
DEFAULT_CACHE_DIR = ".repro-cache"

_KEY_RE = re.compile(r"^[0-9a-f]{64}$")


class CacheMergeConflict(RuntimeError):
    """Same cache key with different contents on the two sides of a merge."""

    def __init__(self, keys):
        self.keys = sorted(keys)
        shown = ", ".join(key[:12] for key in self.keys[:4])
        if len(self.keys) > 4:
            shown += ", ..."
        super().__init__(
            f"cache merge conflict on {len(self.keys)} key(s) ({shown}): "
            "the same config hash maps to different results on the two "
            "sides; identical configs must produce identical results, so "
            "refusing to overwrite either side"
        )


def _validate_entry(entry, key: str) -> dict | None:
    """``entry`` if it is a well-formed cache entry for ``key``, else None."""
    if not isinstance(entry, dict):
        return None
    if entry.get("version") != CACHE_VERSION or entry.get("key") != key:
        return None
    payload = entry.get("payload")
    if not isinstance(payload, dict) or "report" not in payload:
        return None
    return entry


class ResultCache:
    """Filesystem cache mapping config content hashes to run payloads."""

    def __init__(self, root=DEFAULT_CACHE_DIR):
        self.root = Path(root)

    def path_for(self, key: str) -> Path:
        return self.root / key[:2] / f"{key}.json"

    # ------------------------------------------------------------------
    def load(self, config) -> dict | None:
        """Payload of a completed run of ``config``, or None on miss.

        Any unreadable, unparsable, or structurally-invalid entry is a
        miss — a corrupted cache never breaks a sweep, it only costs a
        recomputation (which then overwrites the bad entry).
        """
        entry = self.read_entry(config.cache_key())
        return None if entry is None else entry["payload"]

    def store(self, config, payload: dict) -> Path:
        """Atomically persist ``payload`` as the result of ``config``.

        The entry records which tensor backend produced it (informational
        — the key already encodes a non-default ``backend`` through
        ``config.to_dict()``, so entries from different backends never
        collide).
        """
        return self.write_entry({
            "version": CACHE_VERSION,
            "key": config.cache_key(),
            "config": config.to_dict(),
            "backend": getattr(config, "backend", "reference"),
            "payload": payload,
        })

    def read_entry(self, key: str) -> dict | None:
        """The full validated entry dict for ``key``, or None on miss."""
        try:
            entry = json.loads(self.path_for(key).read_text())
        except (OSError, ValueError):
            return None
        return _validate_entry(entry, key)

    def write_entry(self, entry: dict) -> Path:
        """Atomically write one full entry dict (keyed by its own key)."""
        path = self.path_for(entry["key"])
        data = json.dumps(entry, indent=2).encode("utf-8")
        atomic_write(path, lambda handle: handle.write(data))
        return path

    def keys(self) -> list[str]:
        """Sorted keys of every entry file on disk (validity not checked)."""
        if not self.root.exists():
            return []
        return sorted(
            path.stem
            for path in self.root.glob("*/*.json")
            if _KEY_RE.match(path.stem)
        )

    # ------------------------------------------------------------------
    # Transport: merge another cache / publish and ingest tarballs.
    # ------------------------------------------------------------------
    def merge(self, other) -> dict:
        """Fold every valid entry of ``other`` (cache or root path) in.

        Two-phase: all incoming entries are checked against existing
        ones first, so a :class:`CacheMergeConflict` is raised before a
        single entry is written.  Invalid source entries are counted and
        skipped (same policy as :meth:`load`).  Returns merge stats:
        ``{"merged", "identical", "skipped_invalid"}``.
        """
        if not isinstance(other, ResultCache):
            other = ResultCache(other)
        stats = {"merged": 0, "identical": 0, "skipped_invalid": 0}
        incoming = []
        for key in other.keys():
            entry = other.read_entry(key)
            if entry is None:
                stats["skipped_invalid"] += 1
            else:
                incoming.append((key, entry))
        self._merge_entries(incoming, stats)
        return stats

    def _merge_entries(self, incoming, stats: dict) -> None:
        # Conflicts are checked both against entries already on disk and
        # between incoming entries themselves (a re-packed archive can
        # carry the same key twice) — duplicate keys must agree exactly,
        # never resolve last-wins.
        additions: dict[str, dict] = {}
        conflicts = set()
        for key, entry in incoming:
            pending = additions.get(key)
            if pending is not None:
                if pending != entry:
                    conflicts.add(key)
                else:
                    stats["identical"] += 1
                continue
            mine = self.read_entry(key)
            if mine is None:
                additions[key] = entry
            elif mine == entry:
                stats["identical"] += 1
            else:
                conflicts.add(key)
        if conflicts:
            raise CacheMergeConflict(conflicts)
        for entry in additions.values():
            self.write_entry(entry)
            stats["merged"] += 1

    def export_archive(self, path) -> dict:
        """Publish every valid entry as a gzip tarball at ``path``.

        Members reuse the cache's own ``<key[:2]>/<key>.json`` layout and
        are written in sorted key order.  Returns
        ``{"exported", "skipped_invalid"}``.
        """
        stats = {"exported": 0, "skipped_invalid": 0}
        entries = []
        for key in self.keys():
            entry = self.read_entry(key)
            if entry is None:
                stats["skipped_invalid"] += 1
            else:
                entries.append((key, entry))

        def write(handle):
            with tarfile.open(fileobj=handle, mode="w:gz") as tar:
                for key, entry in entries:
                    data = json.dumps(entry, indent=2).encode("utf-8")
                    info = tarfile.TarInfo(name=f"{key[:2]}/{key}.json")
                    info.size = len(data)
                    tar.addfile(info, io.BytesIO(data))

        atomic_write(path, write)
        stats["exported"] = len(entries)
        return stats

    def import_archive(self, path) -> dict:
        """Merge entries from an :meth:`export_archive` tarball.

        Members are parsed in memory and re-written through
        :meth:`write_entry` — never extracted to disk — so hostile member
        paths cannot escape the cache root.  Members that are not
        ``<key>.json`` files holding a valid entry for that key are
        counted as ``skipped_invalid``.  Conflict semantics match
        :meth:`merge`.
        """
        stats = {"merged": 0, "identical": 0, "skipped_invalid": 0}
        incoming = []
        with tarfile.open(path, mode="r:*") as tar:
            for member in tar:
                if not member.isfile():
                    continue
                stem = PurePosixPath(member.name).name
                key = stem[: -len(".json")] if stem.endswith(".json") else ""
                handle = tar.extractfile(member)
                if not _KEY_RE.match(key) or handle is None:
                    stats["skipped_invalid"] += 1
                    continue
                try:
                    entry = json.loads(handle.read().decode("utf-8"))
                except (ValueError, UnicodeDecodeError):
                    entry = None
                entry = _validate_entry(entry, key)
                if entry is None:
                    stats["skipped_invalid"] += 1
                else:
                    incoming.append((key, entry))
        self._merge_entries(incoming, stats)
        return stats

    # ------------------------------------------------------------------
    def __contains__(self, config) -> bool:
        return self.load(config) is not None

    def entry_count(self) -> int:
        """Number of entries currently on disk (for tests/diagnostics)."""
        if not self.root.exists():
            return 0
        return sum(1 for _ in self.root.glob("*/*.json"))
