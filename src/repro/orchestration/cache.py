"""Content-addressed result cache for completed experiment runs.

A completed run is keyed by ``sha256(canonical_json(config.to_dict()))``
(:meth:`~repro.api.config._ConfigBase.cache_key`) and stored as one JSON
entry under ``.repro-cache/<key[:2]>/<key>.json``.  Because the key is
derived from the config *content*, the cache is shared by every caller
that resolves to the same config — ``repro run``, ``repro sweep``, and
programmatic :class:`~repro.orchestration.runner.SweepRunner` use — and
is safe to publish between CI steps or machines.

Corrupted or incompatible entries are treated as misses and recomputed;
writes are atomic (temp file + rename) so parallel workers never expose
half-written entries.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.utils.serialization import atomic_write

CACHE_VERSION = 1
DEFAULT_CACHE_DIR = ".repro-cache"


class ResultCache:
    """Filesystem cache mapping config content hashes to run payloads."""

    def __init__(self, root=DEFAULT_CACHE_DIR):
        self.root = Path(root)

    def path_for(self, key: str) -> Path:
        return self.root / key[:2] / f"{key}.json"

    # ------------------------------------------------------------------
    def load(self, config) -> dict | None:
        """Payload of a completed run of ``config``, or None on miss.

        Any unreadable, unparsable, or structurally-invalid entry is a
        miss — a corrupted cache never breaks a sweep, it only costs a
        recomputation (which then overwrites the bad entry).
        """
        key = config.cache_key()
        path = self.path_for(key)
        try:
            entry = json.loads(path.read_text())
        except (OSError, ValueError):
            return None
        if not isinstance(entry, dict):
            return None
        if entry.get("version") != CACHE_VERSION or entry.get("key") != key:
            return None
        payload = entry.get("payload")
        if not isinstance(payload, dict) or "report" not in payload:
            return None
        return payload

    def store(self, config, payload: dict) -> Path:
        """Atomically persist ``payload`` as the result of ``config``."""
        key = config.cache_key()
        path = self.path_for(key)
        entry = {
            "version": CACHE_VERSION,
            "key": key,
            "config": config.to_dict(),
            "payload": payload,
        }
        data = json.dumps(entry, indent=2).encode("utf-8")
        atomic_write(path, lambda handle: handle.write(data))
        return path

    # ------------------------------------------------------------------
    def __contains__(self, config) -> bool:
        return self.load(config) is not None

    def entry_count(self) -> int:
        """Number of entries currently on disk (for tests/diagnostics)."""
        if not self.root.exists():
            return 0
        return sum(1 for _ in self.root.glob("*/*.json"))
