"""Adaptive bit-width search: schedulers where results propose points.

The paper's loop is *reactive* — watch activation density, then lower
precision — and this module lifts that reactivity from the epoch level
to the experiment level: completed runs propose the next run's
:class:`~repro.api.config.QuantConfig`.  Three strategies ship:

* :class:`ADSearchScheduler` (``strategy="ad-bits"``) — an AD-guided
  descent over the schedule's starting precision.  The first trial runs
  the base config unchanged (the accuracy reference); each feasible
  trial proposes the next ``initial_bits`` by the paper's eqn.-3 rule
  (:func:`repro.core.ad_quant.scale_bits` applied to the run's final
  total AD), falling back to a single-bit step when AD has saturated and
  to upward bisection when a trial overshoots the accuracy-drop budget.
  The best trial maximizes the energy objective (the analytical
  :mod:`repro.energy.analytical` efficiency reported by every run)
  among trials within the budget.
* :class:`LayerBitSearchScheduler` (``strategy="layer-bits"``) — a
  per-layer bit-vector refinement: a scalar AD seed phase
  (``seed_trials``) finds a survivor assignment, then one trial per
  move steps the layer with the largest analytical-energy share down a
  bit, pinned via ``quant.layer_bits`` + ``quant.layer_frozen``, inside
  the accuracy-drop budget.
* :class:`SuccessiveHalvingScheduler` (``strategy="halving"``) — a
  grid over ``axes`` evaluated in rungs of increasing ``budgets``
  (values written to ``budget_path``); after each rung only the top
  ``keep`` fraction by accuracy advances, so low-accuracy grid regions
  are pruned before they consume full-budget training.

A :class:`SearchConfig` declares either strategy and is JSON
round-trippable with ``cache_key()`` parity, matching
:mod:`repro.api.config`; trials are ordinary evolved
:class:`~repro.api.config.ExperimentConfig` points, so they share the
content-addressed result cache with ``repro run`` and ``repro sweep`` —
re-running a search is free, and the best-found config replays as a
cache hit anywhere.

Searches are inherently sequential in their dependencies (trial N+1
needs trial N's results), so they cannot be sharded; the CLI rejects
``--shard`` for ``repro search`` and cross-host reuse flows through the
cache instead.

They can, however, be *speculated*: most next-trial decisions are
predictable from the current one (the eqn.-3 step, its 1-bit/bisection
fallbacks, the next energy-ranked layer moves), so with
``SearchConfig.speculation = K`` (``repro search --speculate K``) a
:class:`SpeculativeScheduler` wraps the sequential scheduler and races
its top-K predicted next trials on idle workers, confirming the one the
sequential decision actually picks and cancelling the rest.  The
sequential scheduler only ever sees confirmed results, so the chosen
trial sequence — reports, bit vectors, cache contents — is bit-identical
to the unspeculated search; speculation only changes which configs are
bet on early, never which results are kept.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field, fields

from repro.api.config import ExperimentConfig, _ConfigBase, _from_dict
from repro.orchestration.runner import (
    PointResult,
    SweepResult,
    SweepRunner,
    execute_point,
    sweep_out_payload,
)
from repro.orchestration.scheduler import (
    DONE,
    Cancel,
    Confirm,
    Done,
    Scheduler,
    SpeculativePoint,
)
from repro.orchestration.sweep import SweepAxis, SweepConfig, SweepPoint, expand

STRATEGIES = ("ad-bits", "layer-bits", "halving")
OBJECTIVES = ("energy_efficiency", "test_accuracy")


@dataclass(frozen=True)
class SearchConfig(_ConfigBase):
    """A declarative adaptive search, JSON round-trippable and hashable.

    Exactly one of ``base`` / ``preset`` supplies the base experiment.
    ``accuracy_drop`` is the absolute test-accuracy budget relative to
    the search's reference trial; ``objective`` picks what "best" means
    among trials within that budget.  The halving strategy additionally
    takes a grid (``axes``), a budget knob (``budget_path``, written
    with each of ``budgets`` in turn), and the survivor fraction
    ``keep``.

    ``speculation`` (default 0 = off) races up to that many predicted
    next trials on idle workers alongside each real one (see
    :class:`SpeculativeScheduler`).  It is an *execution* knob like
    ``--jobs`` — results are bit-identical at any value — so it is
    excluded from :meth:`to_dict` (and therefore from ``cache_key()``
    and every transport payload).
    """

    name: str = "search"
    base: ExperimentConfig | None = None
    preset: str = ""
    strategy: str = "ad-bits"
    objective: str = "energy_efficiency"
    accuracy_drop: float = 0.02
    max_trials: int = 8
    min_bits: int = 2
    seed_trials: int = 0
    speculation: int = 0
    axes: tuple = ()
    budget_path: str = "quant.max_iterations"
    budgets: tuple = ()
    keep: float = 0.5
    description: str = ""

    _nested = {"base": ExperimentConfig}

    def __post_init__(self):
        if not self.name:
            raise ValueError("search name must be non-empty")
        if (self.base is None) == (not self.preset):
            raise ValueError("provide exactly one of base / preset")
        if self.strategy not in STRATEGIES:
            raise ValueError(
                f"unknown search strategy {self.strategy!r} "
                f"(choose from {STRATEGIES})"
            )
        if self.objective not in OBJECTIVES:
            raise ValueError(
                f"unknown search objective {self.objective!r} "
                f"(choose from {OBJECTIVES})"
            )
        if self.accuracy_drop < 0:
            raise ValueError("accuracy_drop must be >= 0")
        if self.max_trials < 1:
            raise ValueError("max_trials must be >= 1")
        if self.min_bits < 1:
            raise ValueError("min_bits must be >= 1")
        if self.speculation < 0:
            raise ValueError("speculation must be >= 0")
        if self.speculation and self.strategy == "halving":
            raise ValueError(
                "speculation only applies to the sequential ad-bits / "
                "layer-bits strategies (halving rungs already fan out "
                "under --jobs)"
            )
        for axis in self.axes:
            if not isinstance(axis, SweepAxis):
                raise TypeError(f"not a SweepAxis: {axis!r}")
        if self.strategy == "layer-bits":
            if self.seed_trials < 0:
                raise ValueError("seed_trials must be >= 0")
            if self.seed_trials >= self.max_trials:
                raise ValueError(
                    f"seed_trials ({self.seed_trials}) must leave room "
                    f"for layer moves within max_trials ({self.max_trials})"
                )
        elif self.seed_trials:
            raise ValueError(
                "seed_trials only applies to the layer-bits strategy"
            )
        if self.strategy == "halving":
            if not self.budgets:
                raise ValueError("the halving strategy needs budgets")
            if list(self.budgets) != sorted(set(self.budgets)):
                raise ValueError(
                    f"halving budgets must be strictly increasing, "
                    f"got {list(self.budgets)}"
                )
            if not self.budget_path:
                raise ValueError("budget_path must be non-empty")
            if not 0 < self.keep < 1:
                raise ValueError("keep must be in (0, 1)")
        elif self.axes or self.budgets:
            raise ValueError(
                "axes/budgets only apply to the halving strategy"
            )

    # ------------------------------------------------------------------
    # Dict round-trip needs custom handling: ``base`` may be None and
    # ``axes`` is a tuple of SweepAxis dataclasses.
    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        out = {}
        for spec in fields(self):
            value = getattr(self, spec.name)
            if spec.name == "speculation":
                # Execution knob, not an experiment parameter: results
                # are bit-identical at any value, so serialized forms
                # (cache keys, --out payloads) must not vary with it.
                continue
            if spec.name == "base":
                out["base"] = None if value is None else value.to_dict()
            elif spec.name == "axes":
                out["axes"] = [
                    {"path": axis.path, "values": list(axis.values)}
                    for axis in value
                ]
            elif isinstance(value, tuple):
                out[spec.name] = list(value)
            else:
                out[spec.name] = value
        return out

    @classmethod
    def from_dict(cls, payload: dict) -> "SearchConfig":
        if not isinstance(payload, dict):
            raise TypeError(
                f"SearchConfig payload must be a dict, "
                f"got {type(payload).__name__}"
            )
        payload = dict(payload)
        axes = tuple(
            axis
            if isinstance(axis, SweepAxis)
            else SweepAxis(axis["path"], tuple(axis["values"]))
            for axis in payload.pop("axes", ())
        )
        if payload.get("base") is None:
            # A null base (preset-backed search) must fall through to the
            # field default; _from_dict insists nested fields be dicts.
            payload.pop("base", None)
        config = _from_dict(cls, {**payload, "axes": ()})
        return config.evolve(axes=axes) if axes else config


def resolve_base(search: SearchConfig) -> ExperimentConfig:
    """The search's base experiment config (inline or registry preset).

    Raises when the energy objective is asked of a pipeline that never
    computes comparable energies: the per-run ``energy_efficiency``
    ratio is measured against each trial's *own* starting precision, so
    ranking trials needs the analytical stage's absolute
    ``model_total_pj`` (see :func:`trial_metrics`).
    """
    if search.base is not None:
        base = search.base
    else:
        from repro.api import experiments

        base = experiments.get_config(search.preset)
    if search.objective == "energy_efficiency" and not base.energy.analytical:
        raise ValueError(
            f"search {search.name!r} ranks by the energy objective but its "
            "base config disables the analytical energy stage "
            "(energy.analytical=false), so trials carry no comparable "
            "absolute energy; enable it or use objective='test_accuracy'"
        )
    return base


def final_row_of(result: PointResult) -> dict | None:
    """The last report row of a completed point, as a plain dict."""
    if result is None or not result.payload:
        return None
    rows = (result.payload.get("report") or {}).get("rows") or []
    return rows[-1] if rows else None


def trial_metrics(result: PointResult) -> dict | None:
    """A trial's final row plus its *absolute* analytical energy.

    A run's reported ``energy_efficiency`` is measured against that
    run's own starting precision (the baseline profiles captured at
    context preparation), so it is **not** comparable across trials that
    start at different bit-widths.  The analytical-energy artifact's
    ``model_total_pj`` is absolute — same architecture, same
    :mod:`repro.energy.analytical` constants — and is what search
    objectives rank by; ``baseline_total_pj`` (the trial's uniform-start
    network) rides along for beats-the-baseline comparisons.
    """
    row = final_row_of(result)
    if row is None:
        return None
    metrics = dict(row)
    artifacts = result.payload.get("artifacts") or {}
    energy = artifacts.get("analytical_energy")
    if isinstance(energy, dict):
        for field_name in ("model_total_pj", "baseline_total_pj"):
            if field_name in energy:
                metrics[field_name] = energy[field_name]
    return metrics


def bit_vector_of(result: PointResult) -> dict | None:
    """A completed trial's final per-layer assignment as ``{name: bits}``.

    Pairs the report's ``layer_names`` with the final row's
    ``bit_widths`` — the form :meth:`QuantizationPlan.from_bit_vector`
    accepts, and the payload the ``repro search --out`` ``"search"``
    section publishes for the winning trial.
    """
    if result is None or not result.payload:
        return None
    report = result.payload.get("report") or {}
    names = report.get("layer_names") or []
    row = final_row_of(result)
    if row is None or not names:
        return None
    bits = row.get("bit_widths") or []
    if len(bits) != len(names):
        return None
    return dict(zip(names, bits))


def objective_value(objective: str, metrics: dict) -> float:
    """The (maximized) score of a trial under ``objective``.

    ``energy_efficiency`` scores by the reciprocal of the absolute
    analytical model energy when the trial carries it (see
    :func:`trial_metrics`), falling back to the trial's own reported
    ratio when the pipeline ran without the analytical energy stage —
    the fallback applies to all trials of a search alike, since they
    share one base config.
    """
    if objective == "energy_efficiency":
        model_pj = metrics.get("model_total_pj")
        if model_pj:
            return 1.0 / model_pj
    return metrics[objective]


class ADSearchScheduler(Scheduler):
    """AD-guided descent over ``quant.initial_bits`` (eqn. 3, lifted).

    Sequential by design: each trial's final total activation density
    decides the next starting precision, so exactly one point is in
    flight at any time.  Feasibility is judged against the *first*
    trial's accuracy (the base config at its own precision); the best
    trial maximizes ``search.objective`` among feasible ones,
    tie-breaking toward fewer bits.
    """

    def __init__(self, search: SearchConfig):
        if search.strategy != "ad-bits":
            raise ValueError(
                f"ADSearchScheduler needs strategy 'ad-bits', "
                f"got {search.strategy!r}"
            )
        self.search = search
        self.base = resolve_base(search)
        self.name = search.name
        self._trials: list[dict] = []
        self._tried: set[int] = set()
        self._in_flight = False
        self._seen = 0
        self._next_bits: int | None = self.base.quant.initial_bits
        self._ref_accuracy: float | None = None

    # ------------------------------------------------------------------
    def next_points(self, completed) -> list[SweepPoint] | Done:
        for result in completed[self._seen:]:
            self._seen += 1
            self._absorb(result)
        if self._in_flight:
            return []
        if self._next_bits is None:
            return DONE
        return [self._propose(self._next_bits)]

    def _propose(self, bits: int) -> SweepPoint:
        config = self.base.evolve(quant={"initial_bits": bits})
        label = f"{self.base.name}[initial_bits={bits}]"
        self._trials.append({
            "bits": bits,
            "key": config.cache_key(),
            "label": label,
            "result": None,
            "metrics": None,
            "feasible": None,
        })
        self._tried.add(bits)
        self._in_flight = True
        self._next_bits = None
        return SweepPoint(
            label=label,
            config=config,
            overrides=(("initial_bits", bits),),
            index=len(self._trials) - 1,
        )

    def _absorb(self, result: PointResult) -> None:
        self._in_flight = False
        trial = next(
            t for t in self._trials
            if t["key"] == result.key and t["result"] is None
        )
        trial["result"] = result
        metrics = trial_metrics(result)
        trial["metrics"] = metrics
        first = trial is self._trials[0]
        if metrics is None:
            trial["feasible"] = False
            # A crashed reference leaves nothing to search against.
            self._next_bits = None if first else self._bisect_up(trial["bits"])
        else:
            accuracy = metrics["test_accuracy"]
            if first:
                self._ref_accuracy = accuracy
            trial["feasible"] = (
                accuracy >= self._ref_accuracy - self.search.accuracy_drop
            )
            if trial["feasible"]:
                self._next_bits = self._descend(trial["bits"], metrics)
            else:
                self._next_bits = self._bisect_up(trial["bits"])
        if self._next_bits is not None \
                and len(self._trials) >= self.search.max_trials:
            self._next_bits = None

    def _descend(self, bits: int, metrics: dict) -> int | None:
        """Eqn.-3 step down from a feasible trial (1-bit step at AD~1).

        Feasibility is assumed monotone in bits (the upward bisection
        already relies on it), so a proposal at or below a width already
        judged infeasible would waste a trial on a known outcome —
        those redirect into refining the feasibility gap instead.
        """
        return self._descend_for(bits, float(metrics["total_ad"]))

    def _descend_for(self, bits: int, density: float) -> int | None:
        """:meth:`_descend` with the density supplied directly.

        Pure (reads scheduler state, mutates nothing), so speculation
        can evaluate the step under a *hypothetical* density — the last
        finished trial's AD standing in for the in-flight one's.
        """
        from repro.core.ad_quant import scale_bits

        density = min(1.0, max(0.0, density))
        proposal = scale_bits(bits, density, self.search.min_bits)
        if proposal >= bits:
            proposal = bits - 1
        proposal = max(proposal, self.search.min_bits)
        known_infeasible = max(
            (t["bits"] for t in self._trials
             if t["feasible"] is False and t["bits"] < bits),
            default=None,
        )
        if known_infeasible is not None and proposal <= known_infeasible:
            return self._bisect_up(known_infeasible)
        if proposal in self._tried or proposal < 1:
            return None
        return proposal

    def _bisect_up(self, failed_bits: int) -> int | None:
        """Bisect between an infeasible trial and the floor above it.

        Prefers the midpoint of the open interval; when the midpoint was
        already tried, falls back to the nearest untried value in the
        gap, so the feasibility boundary is pinned down exactly before
        the search gives up.
        """
        above = [
            t["bits"] for t in self._trials
            if t["feasible"] and t["bits"] > failed_bits
        ]
        if not above:
            return None
        ceiling = min(above)
        midpoint = (failed_bits + ceiling) // 2
        candidates = sorted(
            (b for b in range(failed_bits + 1, ceiling)
             if b not in self._tried),
            key=lambda b: (abs(b - midpoint), b),
        )
        return candidates[0] if candidates else None

    # ------------------------------------------------------------------
    def speculative_candidates(self) -> list[ExperimentConfig]:
        """Configs the next proposal may be, predictable mid-flight.

        Called by :class:`SpeculativeScheduler` while the latest trial
        is still running, best guess first.  Both branches of the
        pending feasibility verdict are covered:

        * *feasible* — the eqn.-3 step needs the in-flight trial's
          final AD, so the last **finished** trial's density stands in
          (AD changes slowly as the descent converges, so the rounded
          step usually lands on the same width); plus the saturated
          1-bit step (``density = 1``), the fallback when eqn. 3 stops
          making progress.
        * *infeasible* — the upward bisection, which needs no metrics
          at all and is therefore an exact prediction.

        Pure: reads scheduler state, mutates nothing.  Empty before the
        first density estimate exists minus the 1-bit/bisection
        fallbacks, and always empty when nothing is in flight or the
        trial budget is exhausted.
        """
        if not self._in_flight or len(self._trials) >= self.search.max_trials:
            return []
        bits = self._trials[-1]["bits"]  # the in-flight proposal
        candidates: list[int | None] = []
        density = next(
            (t["metrics"]["total_ad"] for t in reversed(self._trials)
             if t["metrics"] is not None and "total_ad" in t["metrics"]),
            None,
        )
        if density is not None:
            candidates.append(self._descend_for(bits, float(density)))
        candidates.append(self._descend_for(bits, 1.0))
        candidates.append(self._bisect_up(bits))
        seen: set[int] = set()
        configs: list[ExperimentConfig] = []
        for value in candidates:
            if value is None or value in seen:
                continue
            seen.add(value)
            configs.append(self.base.evolve(quant={"initial_bits": value}))
        return configs

    # ------------------------------------------------------------------
    @property
    def trials(self) -> list[dict]:
        """Trial records in proposal order (read-only view for wrappers)."""
        return list(self._trials)

    def best(self) -> PointResult | None:
        """The feasible trial maximizing the objective (fewest bits on ties)."""
        objective = self.search.objective
        candidates = [
            t for t in self._trials if t["feasible"] and t["metrics"]
        ]
        if not candidates:
            return None
        top = max(
            candidates,
            key=lambda t: (objective_value(objective, t["metrics"]),
                           -t["bits"]),
        )
        return top["result"]

    def baseline(self) -> PointResult | None:
        """The reference trial (the base config at its own precision)."""
        return self._trials[0]["result"] if self._trials else None

    def feasibility(self) -> dict:
        """Cache key -> feasibility verdict for every trial so far."""
        return {t["key"]: t["feasible"] for t in self._trials}


class LayerBitSearchScheduler(Scheduler):
    """Per-layer bit-vector search seeded by an AD-search survivor.

    Two sequential phases share one trial budget (``max_trials``):

    1. **Seed** — an inner :class:`ADSearchScheduler` (``seed_trials``
       proposals; half the budget when unset) runs the scalar eqn.-3
       descent over ``quant.initial_bits``.  Its best feasible trial is
       the *survivor*; the survivor run's final report row already *is*
       a per-layer bit vector (Algorithm 1 converged it), which becomes
       the incumbent assignment.
    2. **Layer moves** — one trial per move: the layer with the largest
       share of the incumbent's analytical energy
       (``analytical_energy.per_layer_pj``) steps down one bit; the
       whole vector is pinned via ``quant.layer_bits`` +
       ``quant.layer_frozen`` so the trial trains *at* the proposed
       assignment.  A move inside the accuracy-drop budget is accepted
       (it strictly lowers analytical energy — energy is monotone in
       bits); an infeasible move reverts and blocks that layer, and the
       next-ranked layer is tried.  Role-frozen first/last layers and
       config-pinned layers never move.

    Feasibility is judged against the *first* trial's accuracy (the base
    config at its own schedule), exactly like the scalar search, so the
    winning vector's analytical energy is never worse than the scalar
    AD-search winner's at the same accuracy budget.
    """

    def __init__(self, search: SearchConfig):
        if search.strategy != "layer-bits":
            raise ValueError(
                f"LayerBitSearchScheduler needs strategy 'layer-bits', "
                f"got {search.strategy!r}"
            )
        self.search = search
        self.base = resolve_base(search)
        if not self.base.energy.analytical:
            raise ValueError(
                f"search {search.name!r} ranks layer moves by each "
                "layer's analytical-energy share, but its base config "
                "disables the analytical energy stage "
                "(energy.analytical=false)"
            )
        self.name = search.name
        seed_budget = search.seed_trials or max(1, search.max_trials // 2)
        self._inner = ADSearchScheduler(search.evolve(
            strategy="ad-bits", max_trials=seed_budget, seed_trials=0,
        ))
        self._phase = "seed"
        self._seen = 0
        self._total = 0
        self._in_flight = False
        self._done = False
        self._trials: list[dict] = []  # layer-phase trials only
        self._tried: set[tuple] = set()
        self._vector: dict | None = None
        self._immovable: set[str] = set()
        self._blocked: set[str] = set()
        self._incumbent: dict | None = None
        self._ref_accuracy: float | None = None

    # ------------------------------------------------------------------
    def next_points(self, completed) -> list[SweepPoint] | Done:
        if self._phase == "seed":
            self._seen = len(completed)
            batch = self._inner.next_points(completed)
            if not isinstance(batch, Done):
                self._total += len(batch)
                return batch
            self._begin_layer_phase()
        else:
            for result in completed[self._seen:]:
                self._absorb(result)
            self._seen = len(completed)
        if self._done:
            return DONE
        if self._in_flight:
            return []
        if self._total >= self.search.max_trials:
            return DONE
        move = self._next_move()
        if move is None:
            return DONE
        return [self._propose(*move)]

    def _begin_layer_phase(self) -> None:
        """Adopt the seed phase's survivor vector as the incumbent."""
        self._phase = "layers"
        survivor = self._inner.best()
        base_metrics = trial_metrics(self._inner.baseline())
        vector = bit_vector_of(survivor)
        if survivor is None or base_metrics is None or vector is None:
            # No feasible seed (or a crashed reference): nothing to
            # refine per-layer.
            self._done = True
            return
        self._ref_accuracy = base_metrics["test_accuracy"]
        self._vector = vector
        names = list(vector)
        # The role-frozen boundary layers (registry order = report
        # order) and any config-pinned layers never move.
        self._immovable = {names[0], names[-1]}
        self._immovable.update(
            name for name in self.base.quant.layer_frozen if name in vector
        )
        self._incumbent = {
            "result": survivor,
            "metrics": trial_metrics(survivor),
            "vector": vector,
        }
        self._tried.add(tuple(sorted(vector.items())))

    # ------------------------------------------------------------------
    def _next_move(self) -> tuple[str, dict] | None:
        """The highest-energy movable layer, stepped down one bit."""
        return self._next_move_from(
            self._vector, self._incumbent, self._blocked, self._tried,
        )

    def _next_move_from(self, vector: dict, incumbent: dict,
                        blocked: set, tried: set) -> tuple[str, dict] | None:
        """:meth:`_next_move` over explicit state instead of ``self``.

        Pure (reads the scheduler's immovable set and min-bits floor,
        mutates nothing), so speculation can rank moves under
        *hypothetical* state — e.g. the in-flight trial's vector with
        the current incumbent's (stale) per-layer energies standing in
        for its own.
        """
        artifacts = (incumbent["result"].payload or {}).get(
            "artifacts"
        ) or {}
        energies = (artifacts.get("analytical_energy") or {}).get(
            "per_layer_pj"
        ) or {}
        # Rank by energy share, highest first; layers the artifact does
        # not cover (it should cover all) sort last by vector order.
        ranked = sorted(
            vector,
            key=lambda name: (-energies.get(name, 0.0), name),
        )
        for name in ranked:
            if name in self._immovable or name in blocked:
                continue
            bits = vector[name]
            if bits - 1 < self.search.min_bits:
                continue
            candidate = dict(vector)
            candidate[name] = bits - 1
            if tuple(sorted(candidate.items())) in tried:
                continue
            return name, candidate
        return None

    def _config_for(self, vector: dict) -> ExperimentConfig:
        """The trial config pinning every layer at ``vector``."""
        return self.base.evolve(quant={
            "layer_bits": vector,
            # Pin every layer: the trial trains *at* this assignment
            # (eqn. 3 finds an immediate fixpoint, one iteration).
            "layer_frozen": sorted(vector),
        })

    def _propose(self, layer: str, vector: dict) -> SweepPoint:
        config = self._config_for(vector)
        label = f"{self.base.name}[{layer}={vector[layer]}]"
        self._trials.append({
            "layer": layer,
            "vector": vector,
            "key": config.cache_key(),
            "label": label,
            "result": None,
            "metrics": None,
            "feasible": None,
        })
        self._tried.add(tuple(sorted(vector.items())))
        self._in_flight = True
        self._total += 1
        return SweepPoint(
            label=label,
            config=config,
            overrides=((layer, vector[layer]),),
            index=self._total - 1,
        )

    def _absorb(self, result: PointResult) -> None:
        trial = next(
            (t for t in self._trials
             if t["key"] == result.key and t["result"] is None),
            None,
        )
        if trial is None:
            return  # a seed-phase result the inner scheduler already saw
        self._in_flight = False
        trial["result"] = result
        metrics = trial_metrics(result)
        trial["metrics"] = metrics
        name = trial["layer"]
        if metrics is None:
            trial["feasible"] = False
            self._blocked.add(name)
            return
        feasible = (
            metrics["test_accuracy"]
            >= self._ref_accuracy - self.search.accuracy_drop
        )
        trial["feasible"] = feasible
        if feasible:
            # Accepted: the move becomes the incumbent assignment and
            # the next move re-ranks from its per-layer energies.
            self._vector = trial["vector"]
            self._incumbent = trial
        else:
            # Reverted (the +1 direction of the ±1 move) and blocked.
            self._blocked.add(name)

    # ------------------------------------------------------------------
    def speculative_candidates(self) -> list[ExperimentConfig]:
        """Configs the next proposal may be, predictable mid-flight.

        Seed phase delegates to the inner scalar scheduler.  In the
        layer phase the in-flight trial's pending verdict forks the
        schedule two ways, both covered here, best guess first:

        * *accepted* — the next move ranks the trial's vector by its
          own per-layer energies; those are not known yet, so the
          incumbent's (stale) energies stand in.  Energy shares shift
          slowly under one-bit moves, so the ranking usually agrees.
        * *rejected* — the trial's layer is blocked and the next move
          re-ranks the *unchanged* incumbent vector: an exact
          prediction.  Walking that chain further (each move's layer
          blocked in turn) yields the moves proposed if several
          rejections follow, giving top-K bets beyond the first fork.

        Pure: reads scheduler state, mutates nothing.
        """
        if self._phase == "seed":
            return self._inner.speculative_candidates()
        if (not self._in_flight or self._done
                or self._total >= self.search.max_trials):
            return []
        trial = self._trials[-1]
        tried = set(self._tried)
        configs: list[ExperimentConfig] = []
        move = self._next_move_from(
            trial["vector"], self._incumbent, self._blocked, tried,
        )
        if move is not None:
            _, candidate = move
            tried.add(tuple(sorted(candidate.items())))
            configs.append(self._config_for(candidate))
        blocked = set(self._blocked) | {trial["layer"]}
        for _ in range(len(self._vector)):
            move = self._next_move_from(
                self._vector, self._incumbent, blocked, tried,
            )
            if move is None:
                break
            name, candidate = move
            blocked.add(name)
            tried.add(tuple(sorted(candidate.items())))
            configs.append(self._config_for(candidate))
        return configs

    # ------------------------------------------------------------------
    def _all_trials(self) -> list[dict]:
        return self._inner.trials + self._trials

    def best(self) -> PointResult | None:
        """The feasible trial (either phase) maximizing the objective."""
        objective = self.search.objective
        candidates = [
            (position, t)
            for position, t in enumerate(self._all_trials())
            if t["feasible"] and t["metrics"]
        ]
        if not candidates:
            return None
        top = max(
            candidates,
            key=lambda pair: (
                objective_value(objective, pair[1]["metrics"]),
                pair[0],  # ties break toward the later (refined) trial
            ),
        )
        return top[1]["result"]

    def baseline(self) -> PointResult | None:
        """The reference trial (the base config at its own schedule)."""
        return self._inner.baseline()

    def feasibility(self) -> dict:
        """Cache key -> feasibility verdict across both phases."""
        return {t["key"]: t["feasible"] for t in self._all_trials()}

    def best_bit_vector(self) -> dict | None:
        """The current best trial's per-layer assignment (None early)."""
        return bit_vector_of(self.best())


class SuccessiveHalvingScheduler(Scheduler):
    """Rung-by-rung grid pruning: drop low-accuracy regions early.

    Expands ``search.axes`` over the base config once, then evaluates
    the surviving grid at each of ``search.budgets`` in turn (written to
    ``search.budget_path``), keeping only the top ``search.keep``
    fraction by final test accuracy between rungs.  Rungs fan out in
    parallel under ``--jobs``; only rung *boundaries* are sequential.
    """

    def __init__(self, search: SearchConfig):
        if search.strategy != "halving":
            raise ValueError(
                f"SuccessiveHalvingScheduler needs strategy 'halving', "
                f"got {search.strategy!r}"
            )
        self.search = search
        self.name = search.name
        base = resolve_base(search)
        if search.axes:
            grid = expand(SweepConfig(name=search.name, base=base,
                                      axes=search.axes))
        else:
            grid = [SweepPoint(label=base.name, config=base, index=0)]
        # Duplicate grid configs (same cache key) collapse to one entry:
        # they are the same experiment and must prune together.
        self._grid: list[tuple[str, ExperimentConfig]] = []
        seen: set[str] = set()
        for point in grid:
            key = point.config.cache_key()
            if key not in seen:
                seen.add(key)
                self._grid.append((point.label, point.config))
        self._budget_axis = SweepAxis(search.budget_path,
                                      tuple(search.budgets))
        self._survivors = list(range(len(self._grid)))
        self._rung = -1
        self._rung_size = 0
        self._rung_results: list[PointResult] = []
        self._key_to_grid: dict[str, int] = {}
        self._issued = 0
        self._seen = 0
        self._feasible: dict[str, bool] = {}
        self._best: PointResult | None = None
        self._done = False

    # ------------------------------------------------------------------
    def next_points(self, completed) -> list[SweepPoint] | Done:
        new = completed[self._seen:]
        self._seen += len(new)
        self._rung_results.extend(new)
        if self._done:
            return DONE
        if self._rung < 0:
            return self._issue_rung(0)
        if len(self._rung_results) < self._rung_size:
            return []
        self._close_rung()
        if self._done:
            return DONE
        return self._issue_rung(self._rung + 1)

    def _issue_rung(self, rung: int) -> list[SweepPoint]:
        self._rung = rung
        self._rung_results = []
        self._key_to_grid = {}
        budget = self.search.budgets[rung]
        override = self._budget_axis.override_for(budget)
        budget_label = self._budget_axis.label
        points = []
        for grid_index in self._survivors:
            label, config = self._grid[grid_index]
            evolved = config.evolve(**override)
            self._key_to_grid[evolved.cache_key()] = grid_index
            points.append(SweepPoint(
                label=f"{label}[{budget_label}={budget}]",
                config=evolved,
                overrides=((budget_label, budget),),
                index=self._issued,
            ))
            self._issued += 1
        self._rung_size = len(points)
        return points

    def _close_rung(self) -> None:
        def accuracy_of(result: PointResult) -> float:
            row = final_row_of(result)
            return row["test_accuracy"] if row else float("-inf")

        ranked = sorted(self._rung_results, key=accuracy_of, reverse=True)
        last_rung = self._rung + 1 >= len(self.search.budgets)
        count = max(1, math.ceil(len(ranked) * self.search.keep))
        kept = ranked if last_rung else ranked[:count]
        kept_keys = {r.key for r in kept}
        for result in self._rung_results:
            survived = (
                result.key in kept_keys and final_row_of(result) is not None
            )
            self._feasible[result.key] = survived
        if last_rung:
            self._best = self._pick_best(ranked)
            self._done = True
            return
        self._survivors = [
            self._key_to_grid[r.key] for r in kept
            if final_row_of(r) is not None
        ]
        if not self._survivors:
            # Every survivor crashed at this budget: nothing to advance.
            self._done = True

    def _pick_best(self, ranked: list[PointResult]) -> PointResult | None:
        objective = self.search.objective
        scored = [
            ((objective_value(objective, metrics),
              metrics["test_accuracy"], -position), result)
            for position, result in enumerate(ranked)
            for metrics in [trial_metrics(result)]
            if metrics is not None
        ]
        if not scored:
            return None
        return max(scored, key=lambda pair: pair[0])[1]

    # ------------------------------------------------------------------
    def best(self) -> PointResult | None:
        """The final rung's top trial by the objective (None until done)."""
        return self._best

    def baseline(self) -> PointResult | None:
        """Halving has no single reference trial."""
        return None

    def feasibility(self) -> dict:
        """Cache key -> survived-its-rung verdict for judged trials."""
        return dict(self._feasible)


class SpeculativeScheduler(Scheduler):
    """Race a sequential search's likely next trials; keep only its path.

    Wraps a sequential scheduler exposing ``speculative_candidates()``
    (:class:`ADSearchScheduler`, :class:`LayerBitSearchScheduler`).  The
    inner scheduler stays the ground truth: it only ever sees confirmed
    results, so its decision sequence is *exactly* the sequential one —
    which makes the sped-up run bit-identical by construction.  Around
    each inner call this wrapper:

    1. matches the inner's real proposals against live bets by config
       cache key, turning hits into :class:`Confirm` (carrying the
       authoritative point) so the driver adopts the bet's execution;
    2. refreshes the bet set to the inner's current top-``k``
       candidates — stale bets get :class:`Cancel`, new ones
       :class:`SpeculativePoint`;
    3. on ``DONE``, cancels every surviving bet before yielding the
       sentinel.

    Every trial is a pure function of its config, so a confirmed bet's
    quarantined outcome is byte-for-byte the outcome the sequential run
    would have computed; speculation only changes *when* configs start
    running, never *which* results become visible.
    """

    def __init__(self, inner: Scheduler, k: int):
        if k < 1:
            raise ValueError(f"speculation must be >= 1, got {k}")
        if not hasattr(inner, "speculative_candidates"):
            raise TypeError(
                f"{type(inner).__name__} does not expose "
                "speculative_candidates(); speculation only applies to "
                "the sequential ad-bits / layer-bits schedulers"
            )
        self.inner = inner
        self.k = k
        self.name = inner.name
        self._live: dict[int, str] = {}  # token -> config cache key
        self._next_token = 0
        self._finished = False

    def next_points(self, completed) -> list | Done:
        if self._finished:
            return DONE
        inner_batch = self.inner.next_points(completed)
        if isinstance(inner_batch, Done):
            self._finished = True
            leftovers = [Cancel(token) for token in self._live]
            self._live.clear()
            # The driver processes the cancels, then the next call
            # returns the bare sentinel.
            return leftovers if leftovers else DONE
        batch: list = []
        proposed_keys: set[str] = set()
        for point in inner_batch:
            key = point.config.cache_key()
            proposed_keys.add(key)
            token = next(
                (t for t, k_ in self._live.items() if k_ == key), None,
            )
            if token is not None:
                del self._live[token]
                batch.append(Confirm(token, point))
            else:
                batch.append(point)
        # Refresh the bet set to the top-k candidates of the *new*
        # inner state, skipping anything just proposed for real.
        wanted: list[tuple[str, ExperimentConfig]] = []
        seen = set(proposed_keys)
        for config in self.inner.speculative_candidates():
            key = config.cache_key()
            if key in seen:
                continue
            seen.add(key)
            wanted.append((key, config))
            if len(wanted) >= self.k:
                break
        wanted_keys = {key for key, _ in wanted}
        for token, key in list(self._live.items()):
            if key not in wanted_keys:
                del self._live[token]
                batch.append(Cancel(token))
        live_keys = set(self._live.values())
        for key, config in wanted:
            if key in live_keys:
                continue
            token = self._next_token
            self._next_token += 1
            self._live[token] = key
            batch.append(SpeculativePoint(
                SweepPoint(label=f"speculative:{config.name}",
                           config=config),
                token,
            ))
        return batch

    def speculations_cancelled(self) -> None:
        """Driver notification: every live bet was force-cancelled.

        The service master calls :meth:`SchedulerDrive.cancel_speculations`
        when preempting a job; the wrapper must forget its live tokens
        so resumption re-bets from scratch instead of confirming tokens
        the driver no longer tracks.
        """
        self._live.clear()

    def __getattr__(self, attr):
        # best() / baseline() / feasibility() / trials /
        # best_bit_vector() ... — everything the result assembly reads
        # comes straight from the ground-truth inner scheduler.
        return getattr(self.inner, attr)


def build_scheduler(search: SearchConfig) -> Scheduler:
    """The scheduler instance a :class:`SearchConfig` describes."""
    if search.strategy == "ad-bits":
        scheduler: Scheduler = ADSearchScheduler(search)
    elif search.strategy == "layer-bits":
        scheduler = LayerBitSearchScheduler(search)
    else:
        return SuccessiveHalvingScheduler(search)
    if search.speculation:
        return SpeculativeScheduler(scheduler, search.speculation)
    return scheduler


def seed_halving_grid(halving: SearchConfig, ad_result: "SearchResult",
                      path: str = "quant.initial_bits") -> SearchConfig:
    """Seed a halving search's grid from an AD search's survivors.

    The ROADMAP's "halving scheduler could seed its grid from AD-search
    survivors": every feasible trial of ``ad_result`` contributes its
    ``quant.initial_bits`` value, and the returned config replaces
    ``halving``'s ``path`` axis with that survivor set — so the rung
    pruning starts from precisions the adaptive descent already judged
    viable instead of a hand-written grid.
    """
    if halving.strategy != "halving":
        raise ValueError(
            f"seed_halving_grid needs a halving search, "
            f"got strategy {halving.strategy!r}"
        )
    survivors = sorted({
        point.config.quant.initial_bits
        for point in ad_result.points
        if point.config is not None
        and ad_result.feasibility.get(point.key)
    })
    if not survivors:
        raise ValueError(
            f"search {ad_result.name!r} has no feasible survivors "
            "to seed a halving grid from"
        )
    axes = tuple(a for a in halving.axes if a.path != path)
    return halving.evolve(
        axes=axes + (SweepAxis(path, tuple(survivors)),)
    )


def planned_trials(search: SearchConfig) -> tuple[int, bool]:
    """``(trial count, exact)`` for sizing a search before launching it.

    Adaptive strategies only bound their trial count (``exact=False``:
    the AD search may converge early); the halving schedule is fully
    determined by its grid, budgets, and keep fraction (``exact=True``,
    assuming no duplicate grid configs).
    """
    if search.strategy in ("ad-bits", "layer-bits"):
        return search.max_trials, False
    count = 1
    for axis in search.axes:
        count *= len(axis.values)
    total = 0
    for _ in search.budgets:
        total += count
        count = max(1, math.ceil(count * search.keep))
    return total, True


# ---------------------------------------------------------------------------
# Running a search and serializing its outcome.
# ---------------------------------------------------------------------------

def _point_summary(result: PointResult | None) -> dict | None:
    if result is None:
        return None
    return {
        "label": result.label,
        "key": result.key,
        "config": result.config.to_dict() if result.config else None,
        "metrics": trial_metrics(result),
    }


def search_out_payload(search: SearchConfig, name: str, points, results,
                       best=None, baseline=None, feasibility=None,
                       point_dicts=None) -> dict:
    """The ``repro search --out`` JSON of a possibly still-running search.

    The trial list reuses :func:`sweep_out_payload` (``"pending"``
    placeholders included), so sweep tooling reads a search file as-is;
    a ``"search"`` section adds the config, the current best/baseline,
    and per-trial feasibility verdicts.  Valid JSON at every instant of
    a streaming search.
    """
    payload = sweep_out_payload(name, points, results,
                                point_dicts=point_dicts)
    payload["search"] = {
        "strategy": search.strategy,
        "objective": search.objective,
        "accuracy_drop": search.accuracy_drop,
        "config": search.to_dict(),
        "baseline": _point_summary(baseline),
        "best": _point_summary(best),
        # The winning per-layer assignment ({layer: bits}, None until a
        # best exists) — the artifact a layer-bits search is run for,
        # published for every strategy since any best trial carries one.
        "bit_vector": bit_vector_of(best),
        "feasibility": dict(feasibility) if feasibility is not None else {},
    }
    return payload


@dataclass
class SearchResult:
    """A finished search: every trial plus the scheduler's verdicts."""

    search: SearchConfig
    sweep: SweepResult
    best: PointResult | None = None
    baseline: PointResult | None = None
    feasibility: dict = field(default_factory=dict)

    @property
    def name(self) -> str:
        return self.sweep.name

    @property
    def points(self) -> list[PointResult]:
        return self.sweep.points

    @property
    def stats(self) -> dict:
        return self.sweep.stats

    @property
    def ok(self) -> bool:
        return self.sweep.ok

    def report(self):
        """Per-trial :class:`~repro.core.report.SearchReport`."""
        from repro.core.export import report_from_dict
        from repro.core.report import SearchEntry, SearchReport

        best_key = self.best.key if self.best is not None else None
        report = SearchReport(
            name=self.name,
            objective=self.search.objective,
            accuracy_drop=self.search.accuracy_drop,
        )
        best_marked = False
        for point in self.points:
            is_best = (not best_marked) and point.key == best_key
            best_marked = best_marked or is_best
            report.add(SearchEntry(
                label=point.label,
                report=(
                    report_from_dict(point.payload["report"])
                    if point.payload is not None else None
                ),
                status=point.status,
                key=point.key,
                error=point.error,
                feasible=self.feasibility.get(point.key),
                best=is_best,
            ))
        return report

    def to_dict(self) -> dict:
        """JSON form (the completed ``repro search --out`` payload)."""
        return search_out_payload(
            self.search, self.name, self.points, self.points,
            best=self.best, baseline=self.baseline,
            feasibility=self.feasibility,
        )


def run_search(search: SearchConfig, jobs: int = 1, cache=None,
               progress=None, execute=execute_point, on_point=None,
               on_schedule=None, scheduler: Scheduler | None = None,
               task_timeout: float | None = None, interrupt=None
               ) -> SearchResult:
    """Drive a :class:`SearchConfig` to completion through the runner.

    ``scheduler`` optionally supplies a pre-built scheduler (so callers
    that need a live handle on it — e.g. the CLI's streaming writer
    asking for the current best — observe the same instance the driver
    feeds).  ``task_timeout`` and ``interrupt`` pass through to the
    runner (hung-trial recovery and graceful Ctrl-C; see
    :class:`SweepRunner`).
    """
    if scheduler is None:
        scheduler = build_scheduler(search)
    runner = SweepRunner(jobs=jobs, cache=cache, progress=progress,
                         execute=execute, on_point=on_point,
                         on_schedule=on_schedule,
                         task_timeout=task_timeout, interrupt=interrupt)
    sweep = runner.run_scheduler(scheduler, name=search.name)
    return SearchResult(
        search=search,
        sweep=sweep,
        best=scheduler.best(),
        baseline=scheduler.baseline(),
        feasibility=scheduler.feasibility(),
    )
