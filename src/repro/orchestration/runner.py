"""Sweep execution: a driver loop joining schedulers to executors.

The runner is the *driver* between two abstractions split out of the
original monolithic sweep loop: a
:class:`~repro.orchestration.scheduler.Scheduler` proposes points (a
static pre-expanded grid, or an adaptive search where finished points
propose new ones) and an executor backend
(:class:`~repro.orchestration.executor.SerialExecutor` /
:class:`~repro.orchestration.executor.ProcessExecutor`) runs them.  The
driver feeds proposals to the executor as they arrive, skips points
whose configs already have cache entries, and aggregates every point's
rows into one :class:`~repro.core.report.SweepReport`.

Points with identical configs (same cache key) execute **once**: the
single result fans out to every matching point, so a no-op override or
overlapping seed axes never trains twice or races on the cache — and an
adaptive scheduler that re-proposes an already-finished config gets the
recorded result back instantly.

Results *stream*: an ``on_point`` callback receives each
:class:`PointResult` the moment its worker finishes (cached hits
included), which is how the CLI keeps ``--out`` incrementally rewritten
and how live dashboards can fold points into a
:class:`~repro.core.report.SweepReport` while the sweep is still
running.  An ``on_schedule`` callback fires whenever the scheduler
grows the point list, so streaming writers can emit ``"pending"``
placeholders for adaptively-proposed points too.

Each worker rebuilds its experiment from the point's config dict alone
(:func:`execute_point` is a pure function of its payload), so parallel
results are bit-identical to serial ones: all stochasticity flows from
the config's seeds.  A failing point is captured as a structured
:class:`PointResult` with the traceback — one bad point never kills the
sweep.  A result that goes *missing* (an executor that loses or
mislabels a task) is a :class:`RuntimeError` naming the unaccounted-for
points, never a silently shorter result list.
"""

from __future__ import annotations

import time
import traceback
from dataclasses import dataclass, field

from repro.api.config import ExperimentConfig
from repro.core.report import SweepEntry, SweepReport
from repro.orchestration.executor import (
    ProcessExecutor,
    SerialExecutor,
    TaskInterrupted,
)
from repro.orchestration.scheduler import (
    Cancel,
    Confirm,
    Done,
    Scheduler,
    SpeculativePoint,
    StaticScheduler,
)
from repro.orchestration.sweep import SweepConfig, SweepPoint, expand


# Artifact keys recording where *this* invocation wrote files; they are
# run-local bookkeeping, not results, so cached payloads exclude them
# (otherwise identical runs would produce unequal cache entries).
LOCAL_ARTIFACT_KEYS = ("exports", "checkpoint")


def cacheable_artifacts(artifacts: dict) -> dict:
    """JSON-safe artifacts minus run-local path bookkeeping."""
    from repro.api.context import _json_safe_artifacts

    return {
        key: value
        for key, value in _json_safe_artifacts(artifacts).items()
        if key not in LOCAL_ARTIFACT_KEYS
    }


def run_payload(report, artifacts: dict) -> dict:
    """The canonical cache-entry payload of one completed run.

    Single source of truth for the payload shape: both sweep workers
    and ``repro run --cache`` must write identical entries for the
    shared cache to work.
    """
    from repro.core.export import report_to_dict

    return {
        "report": report_to_dict(report),
        "artifacts": cacheable_artifacts(artifacts),
    }


def execute_point(task: dict) -> dict:
    """Run one sweep point from its config dict (worker entry point).

    Worker-safe: everything is built fresh from ``task["config"]``; no
    state is shared with the parent process beyond the payload.
    """
    index = task["index"]
    started = time.time()
    try:
        from repro.api.experiments import Experiment

        config = ExperimentConfig.from_dict(task["config"])
        experiment = Experiment(config)
        report = experiment.run()
        return {
            "index": index,
            "status": "ok",
            "payload": run_payload(report, experiment.artifacts),
            "duration": time.time() - started,
        }
    except Exception as error:  # structured capture; the sweep survives
        return {
            "index": index,
            "status": "failed",
            "error": f"{type(error).__name__}: {error}",
            "traceback": traceback.format_exc(),
            "duration": time.time() - started,
        }


@dataclass
class PointResult:
    """Outcome of one sweep point."""

    label: str
    key: str
    status: str  # "ok" | "cached" | "failed"
    payload: dict | None = None
    error: str | None = None
    traceback: str | None = None
    duration: float = 0.0
    config: ExperimentConfig | None = None
    index: int | None = None  # position in the full (unsharded) expansion

    def to_entry(self) -> SweepEntry:
        """This outcome as one :class:`SweepReport` entry."""
        from repro.core.export import report_from_dict

        report = None
        if self.payload is not None:
            report = report_from_dict(self.payload["report"])
        return SweepEntry(
            label=self.label,
            report=report,
            status=self.status,
            key=self.key,
            error=self.error,
        )


def _new_counts(total: int) -> dict:
    """A zeroed status-count dict (the single source of its shape)."""
    return {"total": total, "executed": 0, "cached": 0, "failed": 0}


def _count_statuses(pairs, counts: dict) -> dict:
    """Fold ``(status, label)`` pairs into ``counts``; unknowns raise."""
    for status, label in pairs:
        if status == "ok":
            counts["executed"] += 1
        elif status in ("cached", "failed"):
            counts[status] += 1
        else:
            raise ValueError(
                f"unknown point status {status!r} for {label!r}"
            )
    return counts


def _status_counts(points) -> dict:
    """Status counts of a finished point list."""
    return _count_statuses(
        ((p.status, p.label) for p in points), _new_counts(len(points))
    )


def point_dict(result: PointResult, position: int) -> dict:
    """One completed point's entry in the sweep ``--out`` payload."""
    return {
        "index": result.index if result.index is not None else position,
        "label": result.label,
        "key": result.key,
        "status": result.status,
        "config": (
            result.config.to_dict() if result.config is not None else None
        ),
        "report": (
            result.payload.get("report")
            if result.payload is not None
            else None
        ),
        "artifacts": (
            result.payload.get("artifacts", {})
            if result.payload is not None
            else {}
        ),
        "error": result.error,
        "duration": result.duration,
    }


def pending_point_dict(point, position: int) -> dict:
    """A not-yet-finished point's ``"pending"`` placeholder entry."""
    return {
        "index": point.index if point.index is not None else position,
        "label": point.label,
        "key": point.config.cache_key(),
        "status": "pending",
        "config": point.config.to_dict(),
        "report": None,
        "artifacts": {},
        "error": None,
        "duration": 0.0,
    }


def sweep_out_payload(name: str, points, results,
                      expansion_total: int | None = None,
                      point_dicts=None) -> dict:
    """The ``--out`` JSON of a possibly still-running sweep.

    ``results`` parallels ``points``; a ``None`` slot (not finished yet)
    becomes a ``"status": "pending"`` placeholder, so the file is valid,
    complete-in-shape JSON at every moment of a streaming sweep.  With
    no pending slots (and no ``expansion_total``) the payload equals
    :meth:`SweepResult.to_dict`.

    ``expansion_total`` records the size of the *full* (unsharded)
    expansion; shard ``--out`` files carry it so
    :func:`merge_sweep_payloads` can detect an absent shard file even
    when the missing points are a suffix of the expansion order.

    ``point_dicts`` optionally supplies precomputed per-point entries
    (:func:`point_dict` / :func:`pending_point_dict`) so a streaming
    writer rewriting the file once per finished point does not
    re-serialize and re-hash every other point's config each time.
    """
    dicts = []
    counts = _new_counts(len(points))
    pending = 0
    for position, (point, result) in enumerate(zip(points, results)):
        if result is None:
            pending += 1
            dicts.append(
                point_dicts[position] if point_dicts is not None
                else pending_point_dict(point, position)
            )
        else:
            _count_statuses([(result.status, result.label)], counts)
            dicts.append(
                point_dicts[position] if point_dicts is not None
                else point_dict(result, position)
            )
    if pending:
        counts["pending"] = pending
    payload = {"sweep": name, "stats": counts, "points": dicts}
    if expansion_total is not None:
        payload["expansion_total"] = expansion_total
    return payload


def merge_sweep_payloads(payloads, name: str | None = None) -> dict:
    """Join shard ``--out`` payloads back into the unsharded payload.

    Points are reordered by their original expansion ``index``; the
    merged set must cover the full expansion (every index in
    ``0..expansion_total-1`` when the shard files record the expansion
    size, ``0..max`` contiguously otherwise — missing indices mean a
    shard output is absent) and duplicated indices must agree on key,
    status, and report (disagreement means the shards ran different
    sweeps or produced non-deterministic results).  Stats are recomputed
    from the merged statuses.
    """
    payloads = list(payloads)
    if not payloads:
        raise ValueError("no sweep payloads to merge")
    for position, payload in enumerate(payloads):
        if (not isinstance(payload, dict)
                or not isinstance(payload.get("sweep"), str)
                or not isinstance(payload.get("points"), list)):
            raise ValueError(
                f"input #{position + 1} is not a sweep --out payload "
                "(expected 'sweep' and 'points' keys; is it a "
                "`repro run` report?)"
            )
    names = {payload["sweep"] for payload in payloads}
    if name is None:
        if len(names) > 1:
            raise ValueError(
                f"sweep names differ across shard files: {sorted(names)}; "
                "pass an explicit merged name"
            )
        name = next(iter(names))
    totals = {
        payload["expansion_total"]
        for payload in payloads
        if isinstance(payload.get("expansion_total"), int)
    }
    if len(totals) > 1:
        raise ValueError(
            f"shard files disagree on the sweep's expansion size: "
            f"{sorted(totals)} (were they sharded from the same sweep?)"
        )
    expansion_total = next(iter(totals)) if totals else None
    by_index: dict[int, dict] = {}
    for payload in payloads:
        for point in payload["points"]:
            label = point.get("label")
            index = point.get("index")
            if not isinstance(index, int):
                raise ValueError(
                    f"point {label!r} carries no expansion index; "
                    "merge-sweeps needs shard outputs written by "
                    "`repro sweep --shard`"
                )
            if point.get("status") == "pending":
                raise ValueError(
                    f"point {label!r} is still pending; merge only "
                    "completed shard outputs"
                )
            seen = by_index.get(index)
            if seen is None:
                by_index[index] = point
            elif any(
                seen.get(field_name) != point.get(field_name)
                for field_name in ("label", "key", "status", "report")
            ):
                raise ValueError(
                    f"conflicting results for point index {index} "
                    f"({label!r}): shard outputs disagree"
                )
    points = [by_index[index] for index in sorted(by_index)]
    if expansion_total is not None:
        extra = sorted(set(by_index) - set(range(expansion_total)))
        if extra:
            raise ValueError(
                f"point indices {extra} lie beyond the sweep's recorded "
                f"expansion size {expansion_total}"
            )
        missing = sorted(set(range(expansion_total)) - set(by_index))
        if missing:
            raise ValueError(
                f"merged shards are missing point indices {missing} of "
                f"{expansion_total} (is a shard output file absent?)"
            )
    elif by_index:
        missing = sorted(set(range(max(by_index) + 1)) - set(by_index))
        if missing:
            raise ValueError(
                f"merged shards are missing point indices {missing} "
                "(is a shard output file absent?)"
            )
    counts = _count_statuses(
        ((point.get("status"), point.get("label")) for point in points),
        _new_counts(len(points)),
    )
    merged = {"sweep": name, "stats": counts, "points": points}
    if expansion_total is not None:
        merged["expansion_total"] = expansion_total
    return merged


@dataclass
class SweepResult:
    """All point results plus execution statistics.

    ``cache_stats`` records the result cache's activity for this run —
    ``{"hits", "misses"}`` counted per *unique config* looked up (a hit
    fanning out to N duplicate points is one hit) — and is ``None`` when
    the run had no cache at all.  ``speculation_stats`` likewise records
    speculative-execution accounting (``{"speculated", "confirmed",
    "cancelled", "wasted_trials"}``) and is ``None`` when the scheduler
    never speculated.
    """

    name: str
    points: list[PointResult] = field(default_factory=list)
    cache_stats: dict | None = None
    speculation_stats: dict | None = None

    @property
    def stats(self) -> dict:
        """Status counts; an unrecognised status raises (never hidden).

        When the run used a result cache, the counts also carry
        ``cache_hits`` / ``cache_misses`` (per unique config, see
        ``cache_stats``) so cache activity is visible without
        ``--progress`` logging.  A speculative run additionally carries
        ``speculated`` / ``confirmed`` / ``cancelled`` /
        ``wasted_trials``.  Both are run-local diagnostics, excluded
        from :meth:`to_dict` so transport payloads stay replay-stable.
        """
        counts = _status_counts(self.points)
        if self.cache_stats is not None:
            counts["cache_hits"] = self.cache_stats["hits"]
            counts["cache_misses"] = self.cache_stats["misses"]
        if self.speculation_stats is not None:
            counts.update(self.speculation_stats)
        return counts

    @property
    def ok(self) -> bool:
        return all(p.status != "failed" for p in self.points)

    def aggregate(self) -> SweepReport:
        """Fold every point into one cross-run :class:`SweepReport`."""
        report = SweepReport(name=self.name)
        for point in self.points:
            report.add(point.to_entry())
        return report

    def to_dict(self) -> dict:
        """JSON-serializable form (the ``repro sweep --out`` payload).

        Stats here are pure status counts — cache hit/miss counters are
        run-local diagnostics (see :attr:`stats`), excluded so a warm
        re-run serializes identically to the cold run it replays.
        """
        return {
            "sweep": self.name,
            "stats": _status_counts(self.points),
            "points": [
                point_dict(point, position)
                for position, point in enumerate(self.points)
            ],
        }


class SweepInterrupted(RuntimeError):
    """A sweep stopped early on request (SIGINT/SIGTERM, service pause).

    Carries the partial :class:`SweepResult` of every point that
    finished before the stop plus the number of points still pending,
    so callers (the CLI's streaming ``--out`` writer, the service
    master) can finalize their output instead of losing the run.
    """

    def __init__(self, result: "SweepResult", pending: int):
        self.result = result
        self.pending = pending
        super().__init__(
            f"sweep {result.name!r} interrupted: "
            f"{len(result.points)} point(s) completed, {pending} pending"
        )


class SchedulerDrive:
    """The scheduler-round state machine of a sweep, minus the waiting.

    One drive owns everything :meth:`SweepRunner.run_scheduler` used to
    track inline — the growing point list, cache-key groups, in-flight
    task routing, cache lookups/stores, and streaming callbacks — but
    never blocks: :meth:`round` consults the scheduler and returns the
    executor task payloads to submit, and :meth:`deliver` routes one
    executor outcome back in.  This split lets the synchronous runner
    loop and the asyncio ``repro master`` (which multiplexes many
    drives over one shared executor) share identical semantics.
    """

    def __init__(self, scheduler: Scheduler, name: str | None = None,
                 cache=None, log=None, on_point=None, on_schedule=None,
                 on_cancel=None):
        self.scheduler = scheduler
        self.name = (
            name or getattr(scheduler, "name", None) or "sweep"
        )
        self.cache = cache
        self._log = log or (lambda message: None)
        self.on_point = on_point
        self.on_schedule = on_schedule
        # ``on_cancel(task_id) -> disposition`` revokes a speculative
        # task the caller already submitted; the returned disposition
        # ("queued" / "running" / "unknown", the executor cancel()
        # contract) tells the drive whether an outcome will still
        # arrive.  None (no way to revoke) is treated as "unknown".
        self.on_cancel = on_cancel
        self.done = False
        self.points: list[SweepPoint] = []
        self.results: list[PointResult | None] = []
        self._completed: list[PointResult] = []
        self._groups: dict[str, list[int]] = {}  # cache key -> positions
        self._outcomes: dict[str, dict] = {}     # cache key -> outcome
        self._by_task: dict[int, str] = {}       # leader position -> key
        self.cache_stats = (
            {"hits": 0, "misses": 0} if cache is not None else None
        )
        # Speculation bookkeeping.  Speculative tasks use a private
        # negative id space so they can never collide with the leader
        # positions real tasks are keyed by.
        self.speculation_stats: dict | None = None
        self._speculations: dict[int, dict] = {}  # token -> record
        self._spec_by_task: dict[int, int] = {}   # task id -> token
        self._dropped_tasks: set = set()          # cancelled, outcome due
        self._next_spec_task = -1

    @property
    def in_flight(self) -> int:
        """Tasks submitted (or returned by :meth:`round`) and unresolved.

        Confirmed work only: speculative tasks are bets, not commitments,
        so they never hold the driver loop open.
        """
        return len(self._by_task)

    # ------------------------------------------------------------------
    def round(self) -> list[dict]:
        """Consult the scheduler until it waits or finishes.

        Returns the executor task payloads for every newly-proposed
        point that missed the cache; the caller must submit each one and
        eventually :meth:`deliver` its outcome.  Cache hits and
        re-proposals complete inside the call (their results stream via
        ``on_point`` and feed the scheduler's next consultation, so a
        batch completed wholly from cache immediately yields the next).
        Raises when the scheduler waits while nothing is in flight — a
        deadlock no event could ever unblock.

        Batches may interleave plain points with speculation directives
        (:class:`~repro.orchestration.scheduler.SpeculativePoint` /
        ``Confirm`` / ``Cancel``); items are processed in list order, so
        contiguous plain-point runs schedule exactly as they always
        have and a ``Confirm`` completing from a held speculative
        outcome feeds the scheduler's next consultation immediately.
        """
        tasks: list[dict] = []
        while not self.done:
            batch = self.scheduler.next_points(tuple(self._completed))
            if isinstance(batch, Done):
                self.done = True
                break
            if not batch:
                if not self._by_task and not tasks:
                    raise RuntimeError(
                        f"scheduler {type(self.scheduler).__name__} "
                        "proposed no new points while none are in flight "
                        "— the sweep would wait forever"
                    )
                break
            self._consume(list(batch), tasks)
        return tasks

    def _consume(self, batch: list, tasks: list[dict]) -> None:
        """Process one batch: plain points plus speculation directives."""
        plain: list[SweepPoint] = []

        def flush() -> None:
            if plain:
                tasks.extend(self._schedule(list(plain)))
                plain.clear()

        for item in batch:
            if isinstance(item, SweepPoint):
                plain.append(item)
                continue
            flush()
            if isinstance(item, SpeculativePoint):
                task = self._speculate(item)
                if task is not None:
                    tasks.append(task)
            elif isinstance(item, Confirm):
                self._confirm(item)
            elif isinstance(item, Cancel):
                self._cancel(item.token)
            else:
                raise TypeError(
                    f"not a SweepPoint or speculation directive: {item!r}"
                )
        flush()

    def _schedule(self, batch: list[SweepPoint]) -> list[dict]:
        start = len(self.points)
        for point in batch:
            if not isinstance(point, SweepPoint):
                raise TypeError(f"not a SweepPoint: {point!r}")
            self.points.append(point)
            self.results.append(None)
        if self.on_schedule is not None:
            self.on_schedule(list(batch), len(self.points))
        new_keys: list[str] = []
        for position in range(start, len(self.points)):
            key = self.points[position].config.cache_key()
            positions = self._groups.setdefault(key, [])
            positions.append(position)
            if len(positions) == 1:
                new_keys.append(key)
            elif key in self._outcomes:
                # Re-proposal of an already-finished config: hand the
                # recorded result back without running anything.
                self._finish(position, self._outcomes[key])
            # else: the config is in flight (or awaits its cache check
            # below); the group fan-out will cover this point.
        tasks: list[dict] = []
        for key in new_keys:
            leader = self._groups[key][0]
            payload = (
                self.cache.load(self.points[leader].config)
                if self.cache is not None else None
            )
            if payload is not None:
                self.cache_stats["hits"] += 1
                self._finish_group(
                    key, {"status": "cached", "payload": payload}
                )
                continue
            if self.cache_stats is not None:
                self.cache_stats["misses"] += 1
            self._by_task[leader] = key
            tasks.append({
                "index": leader,
                "config": self.points[leader].config.to_dict(),
            })
        return tasks

    # ------------------------------------------------------------------
    # Speculation: quarantined execution of bets the scheduler placed.
    # ------------------------------------------------------------------
    def _speculate(self, spec: SpeculativePoint) -> dict | None:
        """Launch one speculative point; returns its task payload or None.

        The point is *not* added to the run's point list and its cache
        lookup touches no counters: until confirmed, nothing about the
        bet is observable.  No task is launched when the config is
        already finished or in flight as a real point (the recorded /
        pending outcome covers a later confirm), or when the cache
        holds it (the payload is held quarantined in the record).
        """
        if not isinstance(spec.point, SweepPoint):
            raise TypeError(f"not a SweepPoint: {spec.point!r}")
        if spec.token in self._speculations:
            raise RuntimeError(
                f"scheduler reused live speculation token {spec.token!r}"
            )
        if self.speculation_stats is None:
            self.speculation_stats = {
                "speculated": 0, "confirmed": 0,
                "cancelled": 0, "wasted_trials": 0,
            }
        self.speculation_stats["speculated"] += 1
        key = spec.point.config.cache_key()
        record = {
            "point": spec.point,
            "key": key,
            "task": None,       # executor task id while unresolved
            "outcome": None,    # held outcome once resolved
            "cached": False,    # outcome came from the cache, not a run
        }
        self._speculations[spec.token] = record
        if key in self._groups:
            # The same config already ran (or is running) as a real
            # point; its recorded or in-flight outcome covers a confirm.
            return None
        if self.cache is not None:
            payload = self.cache.load(spec.point.config)
            if payload is not None:
                record["outcome"] = {"status": "cached", "payload": payload}
                record["cached"] = True
                return None
        task_id = self._next_spec_task
        self._next_spec_task -= 1
        record["task"] = task_id
        self._spec_by_task[task_id] = spec.token
        self._log(f"speculate {spec.point.label}")
        return {"index": task_id, "config": spec.point.config.to_dict()}

    def _confirm(self, directive: Confirm) -> None:
        """Adopt a speculation's execution for the real proposal.

        The authoritative point (label/overrides/index exactly as the
        sequential run would emit them) is scheduled normally —
        ``on_schedule`` fires, the point joins its cache-key group —
        and the bet's execution is wired to it: a held outcome finishes
        the point immediately, a still-running task is re-keyed so
        :meth:`deliver` routes it like any real task.  Cache counters
        move *now* (hit for a quarantined cache load, miss for an
        executed bet), matching what the sequential run would have
        counted at proposal time.
        """
        record = self._speculations.pop(directive.token, None)
        if record is None:
            raise RuntimeError(
                f"scheduler confirmed unknown speculation token "
                f"{directive.token!r}"
            )
        point = directive.point
        if not isinstance(point, SweepPoint):
            raise TypeError(f"not a SweepPoint: {point!r}")
        key = point.config.cache_key()
        if key != record["key"]:
            raise RuntimeError(
                f"scheduler confirmed speculation {directive.token!r} "
                f"with a different config than it speculated "
                f"({key[:12]} != {record['key'][:12]})"
            )
        self.speculation_stats["confirmed"] += 1
        position = len(self.points)
        self.points.append(point)
        self.results.append(None)
        if self.on_schedule is not None:
            self.on_schedule([point], len(self.points))
        positions = self._groups.setdefault(key, [])
        positions.append(position)
        if key in self._outcomes:
            # The config finished earlier as a real point: the confirm
            # replays the recorded result, exactly like a re-proposal.
            self._finish(position, self._outcomes[key])
            self._drop_spec_task(record)
            return
        if len(positions) > 1:
            # In flight as a real point; the group fan-out covers this.
            self._drop_spec_task(record)
            return
        outcome = record["outcome"]
        if record["cached"]:
            self.cache_stats["hits"] += 1
            self._finish_group(key, outcome)
            return
        if self.cache_stats is not None:
            self.cache_stats["misses"] += 1
        if outcome is not None:
            # The bet already ran to completion while quarantined; only
            # now may its payload touch the cache and stream out.
            if outcome["status"] == "ok" and self.cache is not None:
                self.cache.store(point.config, outcome["payload"])
            self._finish_group(key, outcome)
            return
        # Still executing: hand the task over to the real bookkeeping.
        task_id = record["task"]
        self._spec_by_task.pop(task_id, None)
        self._by_task[task_id] = key

    def _cancel(self, token: int) -> None:
        """Abandon a speculation; nothing it computed becomes visible."""
        record = self._speculations.pop(token, None)
        if record is None:
            raise RuntimeError(
                f"scheduler cancelled unknown speculation token {token!r}"
            )
        self.speculation_stats["cancelled"] += 1
        if record["task"] is None:
            # Never launched (covered by a real point or a quarantined
            # cache hit — free) or already finished: an executed run
            # occupied a worker for nothing.
            if record["outcome"] is not None and not record["cached"]:
                self.speculation_stats["wasted_trials"] += 1
            return
        self._drop_spec_task(record)

    def _drop_spec_task(self, record: dict) -> None:
        """Revoke a bet's launched executor task (no outcome wanted)."""
        task_id = record["task"]
        if task_id is None:
            return
        self._spec_by_task.pop(task_id, None)
        disposition = (
            self.on_cancel(task_id) if self.on_cancel is not None
            else "unknown"
        )
        if disposition == "queued":
            return  # dropped before it cost anything; no outcome due
        # Running (or already in transit): one outcome will still
        # arrive for this task id — drop it silently on delivery.
        self._dropped_tasks.add(task_id)
        self.speculation_stats["wasted_trials"] += 1

    def cancel_speculations(self) -> int:
        """Cancel every outstanding speculation (service preemption).

        A paused job must not hold worker slots with bets: queued
        speculative tasks free their slots immediately and running ones
        are abandoned, so the pause drains real work only.  The
        scheduler is notified via its optional
        ``speculations_cancelled()`` hook so it re-proposes the bets
        after resumption instead of confirming into a void.
        """
        if not self._speculations:
            return 0
        count = 0
        for token in list(self._speculations):
            self._cancel(token)
            count += 1
        notify = getattr(self.scheduler, "speculations_cancelled", None)
        if notify is not None:
            notify()
        return count

    # ------------------------------------------------------------------
    def deliver(self, outcome) -> None:
        """Route one executor outcome to its point group (and the cache).

        Speculative outcomes are quarantined in their bet's record (or
        silently dropped when the bet was cancelled mid-run) — only
        outcomes of real or confirmed tasks reach the cache, the
        completed list, and the streaming callbacks.
        """
        if not isinstance(outcome, dict):
            raise RuntimeError(
                "sweep executor returned a non-outcome "
                f"{outcome!r} instead of a result dict"
            )
        index = outcome.get("index")
        token = self._spec_by_task.pop(index, None)
        if token is not None:
            record = self._speculations[token]
            record["task"] = None
            record["outcome"] = outcome
            return
        if index in self._dropped_tasks:
            self._dropped_tasks.discard(index)
            return
        key = self._by_task.pop(index, None)
        if key is None:
            raise RuntimeError(
                "sweep executor returned a result for an unknown "
                f"or already-completed task index "
                f"{outcome.get('index')!r}"
            )
        if outcome["status"] == "ok" and self.cache is not None:
            self.cache.store(
                self.points[self._groups[key][0]].config,
                outcome["payload"],
            )
        self._finish_group(key, outcome)

    def _finish_group(self, key: str, outcome: dict) -> None:
        self._outcomes[key] = outcome
        for position in self._groups[key]:
            self._finish(position, outcome)

    def _finish(self, position: int, outcome: dict) -> None:
        point = self.points[position]
        status = outcome["status"]
        if status == "timeout":
            # A hung-worker timeout is recorded as a failed point; the
            # distinct executor status keeps the error text specific.
            status = "failed"
        result = PointResult(
            label=point.label,
            key=point.config.cache_key(),
            status=status,
            payload=outcome.get("payload"),
            error=outcome.get("error"),
            traceback=outcome.get("traceback"),
            duration=outcome.get("duration", 0.0),
            config=point.config,
            index=point.index,
        )
        self.results[position] = result
        self._completed.append(result)
        if result.status == "cached":
            self._log(f"cached   {result.label}")
        else:
            self._log(f"{result.status:8s} {result.label} "
                      f"({result.duration:.1f}s)")
        if self.on_point is not None:
            self.on_point(result, position, len(self.points))

    # ------------------------------------------------------------------
    def partial_result(self) -> "SweepResult":
        """Completed points only (for :class:`SweepInterrupted`)."""
        return SweepResult(
            name=self.name,
            points=[r for r in self.results if r is not None],
            cache_stats=self.cache_stats,
            speculation_stats=self.speculation_stats,
        )

    def result(self) -> "SweepResult":
        """The finished :class:`SweepResult`; raises on lost points."""
        lost = [
            point.label
            for point, result in zip(self.points, self.results)
            if result is None
        ]
        if lost:
            raise RuntimeError(
                f"sweep executor lost {len(lost)} point(s): "
                + ", ".join(lost)
            )
        return SweepResult(name=self.name, points=list(self.results),
                           cache_stats=self.cache_stats,
                           speculation_stats=self.speculation_stats)


class SweepRunner:
    """Drives a scheduler's proposals through an executor backend.

    Parameters
    ----------
    jobs:
        Worker processes; 1 (default) runs serially in-process.
    cache:
        A :class:`~repro.orchestration.cache.ResultCache` or None to
        disable caching entirely.
    progress:
        Optional ``callable(str)`` receiving one line per point event.
    execute:
        Point executor (injectable for tests/instrumentation); must have
        :func:`execute_point`'s contract and be picklable for ``jobs > 1``.
    on_point:
        Optional ``callable(result, position, total)`` streaming each
        :class:`PointResult` (cached ones included) as it completes;
        ``position`` indexes the run's growing point list and ``total``
        is the number of points scheduled so far.
    on_schedule:
        Optional ``callable(new_points, total)`` fired whenever the
        scheduler appends a batch; streaming writers use it to emit
        pending placeholders before any of the batch finishes.
    task_timeout:
        Optional per-task wall-clock budget in seconds (``jobs > 1``
        only): a worker hung past it becomes a structured failed point
        and the pool is recycled (see
        :class:`~repro.orchestration.executor.ProcessExecutor`).
    interrupt:
        Optional zero-argument callable polled between (and, for
        process pools, during) waits; once it returns true the run
        stops cleanly, shutting the executor down and raising
        :class:`SweepInterrupted` with the completed points.
    """

    def __init__(self, jobs: int = 1, cache=None, progress=None,
                 execute=execute_point, on_point=None, on_schedule=None,
                 task_timeout: float | None = None, interrupt=None):
        if jobs < 1:
            raise ValueError("jobs must be >= 1")
        self.jobs = jobs
        self.cache = cache
        self.progress = progress
        self.execute = execute
        self.on_point = on_point
        self.on_schedule = on_schedule
        self.task_timeout = task_timeout
        self.interrupt = interrupt

    def _log(self, message: str) -> None:
        if self.progress is not None:
            self.progress(message)

    def _make_executor(self):
        if self.jobs == 1:
            return SerialExecutor(self.execute, interrupt=self.interrupt)
        return ProcessExecutor(self.jobs, self.execute,
                               task_timeout=self.task_timeout,
                               interrupt=self.interrupt)

    # ------------------------------------------------------------------
    def run(self, sweep, points=None) -> SweepResult:
        """Execute ``sweep`` (a SweepConfig or list of SweepPoints).

        ``points`` optionally supplies the pre-expanded (possibly
        sharded) point list of a SweepConfig, so callers that already
        expanded for validation or sharding never pay for — or risk
        diverging from — a second expansion.
        """
        if isinstance(sweep, SweepConfig):
            name = sweep.name
            points = list(points) if points is not None else expand(sweep)
        else:
            if points is not None:
                raise TypeError(
                    "pass the point list either as `sweep` or as `points`, "
                    "not both"
                )
            points = list(sweep)
            name = points[0].config.name if points else "sweep"
        return self.run_scheduler(StaticScheduler(points), name=name)

    # ------------------------------------------------------------------
    def run_scheduler(self, scheduler: Scheduler,
                      name: str | None = None) -> SweepResult:
        """Drive ``scheduler`` to completion; the core driver loop.

        The scheduler is consulted before anything runs and again after
        every completed point; each proposed batch is deduplicated by
        cache key (against itself *and* every earlier point of the run),
        checked against the result cache, and the remainder submitted to
        the executor.  The loop ends when the scheduler returns
        :data:`~repro.orchestration.scheduler.DONE` and nothing is in
        flight.  A scheduler that proposes nothing while nothing is in
        flight (a deadlock — no event could ever unblock it) raises.

        All bookkeeping lives in a :class:`SchedulerDrive`; this method
        adds only the blocking executor loop around it (the asyncio
        service master drives the same class without blocking).
        """
        with self._make_executor() as executor:
            drive = SchedulerDrive(
                scheduler, name=name, cache=self.cache, log=self._log,
                on_point=self.on_point, on_schedule=self.on_schedule,
                on_cancel=executor.cancel,
            )
            while True:
                if self.interrupt is not None and self.interrupt():
                    raise SweepInterrupted(drive.partial_result(),
                                           pending=drive.in_flight)
                for task in drive.round():
                    executor.submit(task)
                if drive.done and not drive.in_flight:
                    break
                if getattr(executor, "pending", None) == 0:
                    # The executor swallowed submissions: tasks are
                    # unaccounted for and no event can ever deliver them.
                    lost = [
                        drive.points[position].label
                        for position in range(len(drive.points))
                        if drive.results[position] is None
                    ]
                    raise RuntimeError(
                        f"sweep executor lost {len(lost)} point(s): "
                        + ", ".join(lost)
                    )
                try:
                    outcome = executor.next_result()
                except TaskInterrupted:
                    raise SweepInterrupted(
                        drive.partial_result(), pending=drive.in_flight
                    ) from None
                drive.deliver(outcome)
        return drive.result()
