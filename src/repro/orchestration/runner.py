"""Sweep execution: serial or multiprocessing workers, cache-aware.

The runner takes a :class:`~repro.orchestration.sweep.SweepConfig` (or a
pre-expanded point list), skips points whose configs already have cache
entries, executes the rest — in ``multiprocessing`` workers when
``jobs > 1``, serially otherwise — and aggregates every point's rows
into one :class:`~repro.core.report.SweepReport`.

Each worker rebuilds its experiment from the point's config dict alone
(:func:`execute_point` is a pure function of its payload), so parallel
results are bit-identical to serial ones: all stochasticity flows from
the config's seeds.  A failing point is captured as a structured
:class:`PointResult` with the traceback — one bad point never kills the
sweep.
"""

from __future__ import annotations

import multiprocessing
import time
import traceback
from dataclasses import dataclass, field

from repro.api.config import ExperimentConfig
from repro.core.report import SweepEntry, SweepReport
from repro.orchestration.sweep import SweepConfig, SweepPoint, expand


# Artifact keys recording where *this* invocation wrote files; they are
# run-local bookkeeping, not results, so cached payloads exclude them
# (otherwise identical runs would produce unequal cache entries).
LOCAL_ARTIFACT_KEYS = ("exports", "checkpoint")


def cacheable_artifacts(artifacts: dict) -> dict:
    """JSON-safe artifacts minus run-local path bookkeeping."""
    from repro.api.context import _json_safe_artifacts

    return {
        key: value
        for key, value in _json_safe_artifacts(artifacts).items()
        if key not in LOCAL_ARTIFACT_KEYS
    }


def run_payload(report, artifacts: dict) -> dict:
    """The canonical cache-entry payload of one completed run.

    Single source of truth for the payload shape: both sweep workers
    and ``repro run --cache`` must write identical entries for the
    shared cache to work.
    """
    from repro.core.export import report_to_dict

    return {
        "report": report_to_dict(report),
        "artifacts": cacheable_artifacts(artifacts),
    }


def execute_point(task: dict) -> dict:
    """Run one sweep point from its config dict (worker entry point).

    Worker-safe: everything is built fresh from ``task["config"]``; no
    state is shared with the parent process beyond the payload.
    """
    index = task["index"]
    started = time.time()
    try:
        from repro.api.experiments import Experiment

        config = ExperimentConfig.from_dict(task["config"])
        experiment = Experiment(config)
        report = experiment.run()
        return {
            "index": index,
            "status": "ok",
            "payload": run_payload(report, experiment.artifacts),
            "duration": time.time() - started,
        }
    except Exception as error:  # structured capture; the sweep survives
        return {
            "index": index,
            "status": "failed",
            "error": f"{type(error).__name__}: {error}",
            "traceback": traceback.format_exc(),
            "duration": time.time() - started,
        }


@dataclass
class PointResult:
    """Outcome of one sweep point."""

    label: str
    key: str
    status: str  # "ok" | "cached" | "failed"
    payload: dict | None = None
    error: str | None = None
    traceback: str | None = None
    duration: float = 0.0
    config: ExperimentConfig | None = None


@dataclass
class SweepResult:
    """All point results plus execution statistics."""

    name: str
    points: list[PointResult] = field(default_factory=list)

    @property
    def stats(self) -> dict:
        counts = {"total": len(self.points), "executed": 0, "cached": 0,
                  "failed": 0}
        for point in self.points:
            if point.status == "ok":
                counts["executed"] += 1
            elif point.status in counts:
                counts[point.status] += 1
        return counts

    @property
    def ok(self) -> bool:
        return all(p.status != "failed" for p in self.points)

    def aggregate(self) -> SweepReport:
        """Fold every point into one cross-run :class:`SweepReport`."""
        from repro.core.export import report_from_dict

        entries = []
        for point in self.points:
            report = None
            if point.payload is not None:
                report = report_from_dict(point.payload["report"])
            entries.append(SweepEntry(
                label=point.label,
                report=report,
                status=point.status,
                key=point.key,
                error=point.error,
            ))
        return SweepReport(name=self.name, entries=entries)

    def to_dict(self) -> dict:
        """JSON-serializable form (the ``repro sweep --out`` payload)."""
        return {
            "sweep": self.name,
            "stats": self.stats,
            "points": [
                {
                    "label": point.label,
                    "key": point.key,
                    "status": point.status,
                    "config": (
                        point.config.to_dict() if point.config is not None else None
                    ),
                    "report": (
                        point.payload.get("report")
                        if point.payload is not None
                        else None
                    ),
                    "artifacts": (
                        point.payload.get("artifacts", {})
                        if point.payload is not None
                        else {}
                    ),
                    "error": point.error,
                    "duration": point.duration,
                }
                for point in self.points
            ],
        }


class SweepRunner:
    """Executes sweep points with caching and optional parallelism.

    Parameters
    ----------
    jobs:
        Worker processes; 1 (default) runs serially in-process.
    cache:
        A :class:`~repro.orchestration.cache.ResultCache` or None to
        disable caching entirely.
    progress:
        Optional ``callable(str)`` receiving one line per point event.
    execute:
        Point executor (injectable for tests/instrumentation); must have
        :func:`execute_point`'s contract and be picklable for ``jobs > 1``.
    """

    def __init__(self, jobs: int = 1, cache=None, progress=None,
                 execute=execute_point):
        if jobs < 1:
            raise ValueError("jobs must be >= 1")
        self.jobs = jobs
        self.cache = cache
        self.progress = progress
        self.execute = execute

    def _log(self, message: str) -> None:
        if self.progress is not None:
            self.progress(message)

    # ------------------------------------------------------------------
    def run(self, sweep) -> SweepResult:
        """Execute ``sweep`` (a SweepConfig or list of SweepPoints)."""
        if isinstance(sweep, SweepConfig):
            name = sweep.name
            points = expand(sweep)
        else:
            points = list(sweep)
            name = points[0].config.name if points else "sweep"
        for point in points:
            if not isinstance(point, SweepPoint):
                raise TypeError(f"not a SweepPoint: {point!r}")

        results: list[PointResult | None] = [None] * len(points)
        pending: list[tuple[int, SweepPoint]] = []
        for index, point in enumerate(points):
            key = point.config.cache_key()
            payload = self.cache.load(point.config) if self.cache else None
            if payload is not None:
                results[index] = PointResult(
                    label=point.label, key=key, status="cached",
                    payload=payload, config=point.config,
                )
                self._log(f"cached   {point.label}")
            else:
                pending.append((index, point))

        if pending:
            tasks = [
                {"index": index, "config": point.config.to_dict()}
                for index, point in pending
            ]
            by_index = dict(pending)
            for outcome in self._execute_all(tasks):
                index = outcome["index"]
                point = by_index[index]
                result = PointResult(
                    label=point.label,
                    key=point.config.cache_key(),
                    status=outcome["status"],
                    payload=outcome.get("payload"),
                    error=outcome.get("error"),
                    traceback=outcome.get("traceback"),
                    duration=outcome.get("duration", 0.0),
                    config=point.config,
                )
                if result.status == "ok" and self.cache is not None:
                    self.cache.store(point.config, result.payload)
                results[index] = result
                self._log(f"{result.status:8s} {point.label} "
                          f"({result.duration:.1f}s)")

        return SweepResult(name=name, points=[r for r in results if r])

    def _execute_all(self, tasks: list[dict]):
        """Yield outcomes for every task (unordered when parallel)."""
        if self.jobs == 1 or len(tasks) == 1:
            for task in tasks:
                yield self.execute(task)
            return
        processes = min(self.jobs, len(tasks))
        with multiprocessing.Pool(processes=processes) as pool:
            yield from pool.imap_unordered(self.execute, tasks)
