"""Sweep configs: fan one experiment out over a grid of overrides.

The paper's tables are grids — model x dataset x schedule x prune
toggle x seed — and a :class:`SweepConfig` is their declarative form:
a frozen base :class:`~repro.api.config.ExperimentConfig` (or a list of
registry presets) plus :class:`SweepAxis` override axes.  ``expand()``
turns the sweep into concrete :class:`SweepPoint` objects, each carrying
a fully-evolved config; everything stochastic flows from that config's
seeds, so every point is deterministic no matter which worker runs it.

Axes address config fields by dotted path (``"quant.initial_bits"``,
``"lr"``); the special path ``"seed"`` sets ``model.seed`` and
``data.seed`` together, matching the CLI's ``--seed`` override so sweep
points share cache entries with equivalent ``repro run`` invocations.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field, fields

from repro.api.config import ExperimentConfig, _from_dict

SWEEP_MODES = ("grid", "zip")


@dataclass(frozen=True)
class SweepAxis:
    """One override axis: a dotted config path and the values to try."""

    path: str
    values: tuple = ()

    def __post_init__(self):
        if not self.path:
            raise ValueError("axis path must be non-empty")
        if not self.values:
            raise ValueError(f"axis {self.path!r} has no values")

    def override_for(self, value) -> dict:
        """The nested ``evolve`` payload selecting ``value`` on this axis."""
        if self.path == "seed":
            return {"model": {"seed": value}, "data": {"seed": value}}
        parts = self.path.split(".")
        override: dict = {parts[-1]: value}
        for part in reversed(parts[:-1]):
            override = {part: override}
        return override

    @property
    def label(self) -> str:
        return self.path.split(".")[-1]


@dataclass(frozen=True)
class SweepConfig:
    """A named sweep: base config(s) x override axes.

    Exactly one of ``base`` / ``presets`` supplies the base config(s);
    ``presets`` names experiment-registry entries and always expands as
    an outer product with the axes.  ``mode`` controls how multiple axes
    combine: ``"grid"`` takes the cartesian product, ``"zip"`` pairs
    values index-by-index (all axes must then share one length).
    ``seeds`` is shorthand for an extra ``"seed"`` axis.
    """

    name: str
    base: ExperimentConfig | None = None
    presets: tuple = ()
    axes: tuple = ()
    mode: str = "grid"
    seeds: tuple = ()
    description: str = ""

    def __post_init__(self):
        if not self.name:
            raise ValueError("sweep name must be non-empty")
        if self.mode not in SWEEP_MODES:
            raise ValueError(
                f"unknown sweep mode {self.mode!r} (choose from {SWEEP_MODES})"
            )
        if (self.base is None) == (not self.presets):
            raise ValueError("provide exactly one of base / presets")
        for axis in self.axes:
            if not isinstance(axis, SweepAxis):
                raise TypeError(f"not a SweepAxis: {axis!r}")
        paths = [axis.path for axis in self.effective_axes()]
        duplicates = {path for path in paths if paths.count(path) > 1}
        if duplicates:
            raise ValueError(
                f"duplicate sweep axes {sorted(duplicates)}: each config "
                "path (including the `seeds` shorthand) may appear once"
            )
        if self.mode == "zip" and self.effective_axes():
            lengths = {len(axis.values) for axis in self.effective_axes()}
            if len(lengths) > 1:
                raise ValueError(
                    f"zip mode needs equal-length axes, got lengths {sorted(lengths)}"
                )

    def effective_axes(self) -> tuple:
        """Declared axes plus the ``seeds`` shorthand axis, if any."""
        axes = tuple(self.axes)
        if self.seeds:
            axes = axes + (SweepAxis("seed", tuple(self.seeds)),)
        return axes

    # ------------------------------------------------------------------
    # Dict/JSON round-trip (axes need custom handling: tuple of
    # dataclasses, and ``base`` may be None)
    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "base": None if self.base is None else self.base.to_dict(),
            "presets": list(self.presets),
            "axes": [
                {"path": axis.path, "values": list(axis.values)}
                for axis in self.axes
            ],
            "mode": self.mode,
            "seeds": list(self.seeds),
            "description": self.description,
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "SweepConfig":
        if not isinstance(payload, dict):
            raise TypeError(
                f"SweepConfig payload must be a dict, got {type(payload).__name__}"
            )
        known = {f.name for f in fields(cls)}
        unknown = set(payload) - known
        if unknown:
            raise ValueError(
                f"unknown SweepConfig keys: {sorted(unknown)} (known: {sorted(known)})"
            )
        base = payload.get("base")
        if isinstance(base, dict):
            base = _from_dict(ExperimentConfig, base)
        axes = tuple(
            axis
            if isinstance(axis, SweepAxis)
            else SweepAxis(axis["path"], tuple(axis["values"]))
            for axis in payload.get("axes", ())
        )
        return cls(
            name=payload["name"],
            base=base,
            presets=tuple(payload.get("presets", ())),
            axes=axes,
            mode=payload.get("mode", "grid"),
            seeds=tuple(payload.get("seeds", ())),
            description=payload.get("description", ""),
        )

    def to_json(self, path) -> None:
        from repro.utils.serialization import save_json

        save_json(path, self.to_dict())

    @classmethod
    def from_json(cls, path) -> "SweepConfig":
        from repro.utils.serialization import load_json

        return cls.from_dict(load_json(path))


@dataclass(frozen=True)
class SweepPoint:
    """One concrete run of a sweep: a label plus its evolved config."""

    label: str
    config: ExperimentConfig
    overrides: tuple = field(default_factory=tuple)  # ((axis label, value), ...)


def _merge_overrides(overrides: list[dict]) -> dict:
    """Deep-merge several nested evolve payloads (later wins on clash)."""
    merged: dict = {}
    for override in overrides:
        stack = [(merged, override)]
        while stack:
            target, source = stack.pop()
            for key, value in source.items():
                if isinstance(value, dict) and isinstance(target.get(key), dict):
                    stack.append((target[key], value))
                else:
                    target[key] = value
    return merged


def _base_configs(sweep: SweepConfig) -> list[ExperimentConfig]:
    if sweep.base is not None:
        return [sweep.base]
    from repro.api import experiments

    return [experiments.get_config(name) for name in sweep.presets]


def expand(sweep: SweepConfig) -> list[SweepPoint]:
    """All concrete points of ``sweep``, in deterministic order.

    Order is: base configs outermost, then axis combinations (cartesian
    in ``grid`` mode, index-paired in ``zip`` mode).  A sweep with no
    axes yields one point per base config.
    """
    axes = sweep.effective_axes()
    if not axes:
        combos: list[tuple] = [()]
    elif sweep.mode == "zip":
        combos = list(zip(*(axis.values for axis in axes)))
    else:
        combos = list(itertools.product(*(axis.values for axis in axes)))

    points = []
    for config in _base_configs(sweep):
        for combo in combos:
            pairs = tuple(zip((axis.label for axis in axes), combo))
            overrides = _merge_overrides(
                [axis.override_for(value) for axis, value in zip(axes, combo)]
            )
            point_config = config.evolve(**overrides) if overrides else config
            suffix = ",".join(f"{label}={value}" for label, value in pairs)
            label = f"{config.name}[{suffix}]" if suffix else config.name
            points.append(
                SweepPoint(label=label, config=point_config, overrides=pairs)
            )
    return points
