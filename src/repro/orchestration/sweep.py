"""Sweep configs: fan one experiment out over a grid of overrides.

The paper's tables are grids — model x dataset x schedule x prune
toggle x seed — and a :class:`SweepConfig` is their declarative form:
a frozen base :class:`~repro.api.config.ExperimentConfig` (or a list of
registry presets) plus :class:`SweepAxis` override axes.  ``expand()``
turns the sweep into concrete :class:`SweepPoint` objects, each carrying
a fully-evolved config; everything stochastic flows from that config's
seeds, so every point is deterministic no matter which worker runs it.

Axes address config fields by dotted path (``"quant.initial_bits"``,
``"lr"``); the special path ``"seed"`` sets ``model.seed`` and
``data.seed`` together, matching the CLI's ``--seed`` override so sweep
points share cache entries with equivalent ``repro run`` invocations.

Because every point is content-addressed (its config's ``cache_key()``),
a sweep can also be *sharded* across hosts with zero coordination:
:func:`shard_points` assigns each point to one of ``N`` shards by its
cache key, so ``repro sweep --shard i/N`` on N machines covers the full
grid exactly once.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field, fields

from repro.api.config import ExperimentConfig, _from_dict

SWEEP_MODES = ("grid", "zip")


@dataclass(frozen=True)
class SweepAxis:
    """One override axis: a dotted config path and the values to try."""

    path: str
    values: tuple = ()

    def __post_init__(self):
        if not self.path:
            raise ValueError("axis path must be non-empty")
        if not self.values:
            raise ValueError(f"axis {self.path!r} has no values")

    def override_for(self, value) -> dict:
        """The nested ``evolve`` payload selecting ``value`` on this axis."""
        if self.path == "seed":
            return {"model": {"seed": value}, "data": {"seed": value}}
        parts = self.path.split(".")
        override: dict = {parts[-1]: value}
        for part in reversed(parts[:-1]):
            override = {part: override}
        return override

    @property
    def label(self) -> str:
        """Shorthand label of this axis in isolation (last dotted segment).

        Point labels use :func:`axis_labels` instead, which lengthens the
        suffix when two axes of one sweep would otherwise collide (e.g.
        ``model.seed`` vs ``data.seed``).
        """
        return self.path.split(".")[-1]


def axis_labels(axes) -> list[str]:
    """Minimal distinguishing dotted-path suffix for each axis.

    Every label starts as the last path segment and grows leftward only
    while it collides with another axis' label, so ``quant.initial_bits``
    alone labels ``initial_bits`` but ``model.seed`` next to ``data.seed``
    labels ``model.seed`` / ``data.seed``.
    """
    segments = [axis.path.split(".") for axis in axes]
    depths = [1] * len(axes)
    while True:
        labels = [
            ".".join(parts[-depth:]) for parts, depth in zip(segments, depths)
        ]
        collisions = {label for label in labels if labels.count(label) > 1}
        if not collisions:
            return labels
        grew = False
        for i, label in enumerate(labels):
            if label in collisions and depths[i] < len(segments[i]):
                depths[i] += 1
                grew = True
        if not grew:
            # Identical full paths; SweepConfig.__post_init__ rejects
            # those, so this only happens for bare axis tuples.
            return labels


@dataclass(frozen=True)
class SweepConfig:
    """A named sweep: base config(s) x override axes.

    Exactly one of ``base`` / ``presets`` supplies the base config(s);
    ``presets`` names experiment-registry entries and always expands as
    an outer product with the axes.  ``mode`` controls how multiple axes
    combine: ``"grid"`` takes the cartesian product, ``"zip"`` pairs
    values index-by-index (all axes must then share one length).
    ``seeds`` is shorthand for an extra ``"seed"`` axis.
    """

    name: str
    base: ExperimentConfig | None = None
    presets: tuple = ()
    axes: tuple = ()
    mode: str = "grid"
    seeds: tuple = ()
    description: str = ""

    def __post_init__(self):
        if not self.name:
            raise ValueError("sweep name must be non-empty")
        if self.mode not in SWEEP_MODES:
            raise ValueError(
                f"unknown sweep mode {self.mode!r} (choose from {SWEEP_MODES})"
            )
        if (self.base is None) == (not self.presets):
            raise ValueError("provide exactly one of base / presets")
        for axis in self.axes:
            if not isinstance(axis, SweepAxis):
                raise TypeError(f"not a SweepAxis: {axis!r}")
        paths = [axis.path for axis in self.effective_axes()]
        duplicates = {path for path in paths if paths.count(path) > 1}
        if duplicates:
            raise ValueError(
                f"duplicate sweep axes {sorted(duplicates)}: each config "
                "path (including the `seeds` shorthand) may appear once"
            )
        overlap = {"model.seed", "data.seed"} & set(paths)
        if "seed" in paths and overlap:
            raise ValueError(
                f"the `seed` axis (or `seeds` shorthand) already sets "
                f"{sorted(overlap)}; drop one of the overlapping axes"
            )
        if self.mode == "zip" and self.effective_axes():
            lengths = {len(axis.values) for axis in self.effective_axes()}
            if len(lengths) > 1:
                raise ValueError(
                    f"zip mode needs equal-length axes, got lengths {sorted(lengths)}"
                )

    def effective_axes(self) -> tuple:
        """Declared axes plus the ``seeds`` shorthand axis, if any."""
        axes = tuple(self.axes)
        if self.seeds:
            axes = axes + (SweepAxis("seed", tuple(self.seeds)),)
        return axes

    # ------------------------------------------------------------------
    # Dict/JSON round-trip (axes need custom handling: tuple of
    # dataclasses, and ``base`` may be None)
    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "base": None if self.base is None else self.base.to_dict(),
            "presets": list(self.presets),
            "axes": [
                {"path": axis.path, "values": list(axis.values)}
                for axis in self.axes
            ],
            "mode": self.mode,
            "seeds": list(self.seeds),
            "description": self.description,
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "SweepConfig":
        if not isinstance(payload, dict):
            raise TypeError(
                f"SweepConfig payload must be a dict, got {type(payload).__name__}"
            )
        known = {f.name for f in fields(cls)}
        unknown = set(payload) - known
        if unknown:
            raise ValueError(
                f"unknown SweepConfig keys: {sorted(unknown)} (known: {sorted(known)})"
            )
        base = payload.get("base")
        if isinstance(base, dict):
            base = _from_dict(ExperimentConfig, base)
        axes = tuple(
            axis
            if isinstance(axis, SweepAxis)
            else SweepAxis(axis["path"], tuple(axis["values"]))
            for axis in payload.get("axes", ())
        )
        return cls(
            name=payload["name"],
            base=base,
            presets=tuple(payload.get("presets", ())),
            axes=axes,
            mode=payload.get("mode", "grid"),
            seeds=tuple(payload.get("seeds", ())),
            description=payload.get("description", ""),
        )

    def to_json(self, path) -> None:
        from repro.utils.serialization import save_json

        save_json(path, self.to_dict())

    @classmethod
    def from_json(cls, path) -> "SweepConfig":
        from repro.utils.serialization import load_json

        return cls.from_dict(load_json(path))


@dataclass(frozen=True)
class SweepPoint:
    """One concrete run of a sweep: a label plus its evolved config.

    ``index`` is the point's position in the *full* expansion order;
    :func:`shard_points` preserves it, so shard ``--out`` files can be
    re-joined into the unsharded order by ``repro merge-sweeps``.
    """

    label: str
    config: ExperimentConfig
    overrides: tuple = field(default_factory=tuple)  # ((axis label, value), ...)
    index: int | None = None


def _merge_overrides(overrides: list[dict]) -> dict:
    """Deep-merge several nested evolve payloads (later wins on clash)."""
    merged: dict = {}
    for override in overrides:
        stack = [(merged, override)]
        while stack:
            target, source = stack.pop()
            for key, value in source.items():
                if isinstance(value, dict) and isinstance(target.get(key), dict):
                    stack.append((target[key], value))
                else:
                    target[key] = value
    return merged


def _base_configs(sweep: SweepConfig) -> list[ExperimentConfig]:
    if sweep.base is not None:
        return [sweep.base]
    from repro.api import experiments

    return [experiments.get_config(name) for name in sweep.presets]


def expand(sweep: SweepConfig) -> list[SweepPoint]:
    """All concrete points of ``sweep``, in deterministic order.

    Order is: base configs outermost, then axis combinations (cartesian
    in ``grid`` mode, index-paired in ``zip`` mode).  A sweep with no
    axes yields one point per base config.
    """
    axes = sweep.effective_axes()
    if not axes:
        combos: list[tuple] = [()]
    elif sweep.mode == "zip":
        combos = list(zip(*(axis.values for axis in axes)))
    else:
        combos = list(itertools.product(*(axis.values for axis in axes)))

    labels = axis_labels(axes)
    points = []
    for config in _base_configs(sweep):
        for combo in combos:
            pairs = tuple(zip(labels, combo))
            overrides = _merge_overrides(
                [axis.override_for(value) for axis, value in zip(axes, combo)]
            )
            point_config = config.evolve(**overrides) if overrides else config
            suffix = ",".join(f"{label}={value}" for label, value in pairs)
            label = f"{config.name}[{suffix}]" if suffix else config.name
            points.append(
                SweepPoint(label=label, config=point_config, overrides=pairs,
                           index=len(points))
            )
    return points


# ---------------------------------------------------------------------------
# Sharding: partition an expanded point list across hosts.
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class ShardSpec:
    """One slice of an N-way sweep partition (``index`` of ``total``)."""

    index: int
    total: int

    def __post_init__(self):
        if self.total < 1:
            raise ValueError(f"shard total must be >= 1, got {self.total}")
        if not 0 <= self.index < self.total:
            raise ValueError(
                f"shard index must be in [0, {self.total}), got {self.index}"
            )

    @classmethod
    def parse(cls, spec: str) -> "ShardSpec":
        """Parse an ``"i/N"`` CLI spec (e.g. ``"0/4"``)."""
        index_text, sep, total_text = spec.partition("/")
        try:
            if not sep:
                raise ValueError(spec)
            index, total = int(index_text), int(total_text)
        except ValueError:
            raise ValueError(
                f"bad shard spec {spec!r} (expected I/N, e.g. 0/4)"
            ) from None
        return cls(index, total)

    def __str__(self) -> str:
        return f"{self.index}/{self.total}"


def shard_assignment(point: SweepPoint, total: int) -> int:
    """The shard (in ``[0, total)``) that owns ``point``.

    Derived from the point's config ``cache_key()``, so the assignment
    is a pure function of content: stable across processes and hosts,
    independent of expansion order, and identical for duplicate points
    (which therefore always land on the same shard).
    """
    return int(point.config.cache_key(), 16) % total


def shard_points(points, shard: ShardSpec) -> list[SweepPoint]:
    """The subset of ``points`` owned by ``shard``, in original order.

    The N shards of a point list are pairwise disjoint and their union
    is exactly the input — N hosts running ``repro sweep --shard i/N``
    against the same sweep cover the full grid exactly once with zero
    coordination.
    """
    if shard.total == 1:
        return list(points)
    return [
        point for point in points
        if shard_assignment(point, shard.total) == shard.index
    ]
