"""Checkpoint/resume: survive interruption mid-pipeline.

Two granularities, both writing the same ``.npz`` format through
:func:`repro.utils.serialization.save_checkpoint`:

* :class:`CheckpointStage` — an explicit pipeline stage; when it runs,
  everything before it is complete, so its checkpoint records a stage
  cursor pointing just past itself.
* :class:`CheckpointCallback` — hooks ``on_iteration_end``, capturing
  state after every reported Table row; its cursor points *at* the
  current stage, and the re-entrant stages
  (:class:`~repro.api.stages.QuantizeStage` /
  :class:`~repro.api.stages.PruneStage`) continue mid-loop from the
  restored rows.

:meth:`repro.api.pipeline.Pipeline.resume` restores the newest capture
and re-runs from the recorded cursor; because the snapshot carries the
model, optimizer slots, loader RNG state, AD history and meters, the
resumed run is bit-identical to an uninterrupted one.
"""

from __future__ import annotations

from pathlib import Path

from repro.api.pipeline import PipelineCallback
from repro.api.stages import Stage
from repro.utils.serialization import save_checkpoint


def write_checkpoint(ctx, path, stage_cursor: int, mid_stage: bool = False) -> Path:
    """Snapshot ``ctx`` to ``path`` with the given resume cursor.

    ``mid_stage`` records whether the capture happened *inside* the
    stage at ``stage_cursor`` (an iteration hook, its latest row already
    reported) rather than at a stage boundary pointing to it — the
    distinction re-entrant stages need to avoid skipping or repeating
    work on resume.
    """
    arrays, metadata = ctx.snapshot_state()
    metadata["stage_cursor"] = int(stage_cursor)
    metadata["mid_stage"] = bool(mid_stage)
    path = Path(path)
    save_checkpoint(path, arrays, metadata)
    return path


class CheckpointStage(Stage):
    """Persist the run state; a resumed run restarts just after here."""

    name = "checkpoint"

    def __init__(self, path):
        self.path = Path(path)

    def run(self, ctx) -> None:
        cursor = (ctx._stage_cursor or 0) + 1
        write_checkpoint(ctx, self.path, cursor)
        ctx.artifacts["checkpoint"] = str(self.path)

    def __repr__(self) -> str:
        return f"CheckpointStage({str(self.path)!r})"


class CheckpointCallback(PipelineCallback):
    """Checkpoint after every reported row (iteration granularity).

    ``every`` thins the writes (1 = every row).  Register this callback
    *before* observers that may raise, so the checkpoint always reflects
    the row that was just reported.
    """

    def __init__(self, path, every: int = 1):
        if every < 1:
            raise ValueError("every must be >= 1")
        self.path = Path(path)
        self.every = every
        self._rows_seen = 0
        self._synced = None  # (cursor, rows, stop flag) of the last capture

    def _state_key(self, ctx) -> tuple:
        # stop_requested is part of the captured state: a stop that
        # arrives after the row write must force a fresh capture.
        return (ctx._stage_cursor, self._rows_seen, ctx.stop_requested)

    def on_iteration_end(self, ctx, row) -> None:
        self._rows_seen += 1
        if self._rows_seen % self.every:
            return
        write_checkpoint(ctx, self.path, ctx._stage_cursor or 0, mid_stage=True)
        self._synced = self._state_key(ctx)

    def on_stage_end(self, ctx, stage) -> None:
        # A stage boundary is a safe resume point — but if the stage's
        # final row already captured this exact state, re-serializing
        # the whole model just to bump the cursor is wasted I/O (the
        # re-entrant stages make resuming *at* the stage equivalent).
        if self._synced == self._state_key(ctx):
            return
        write_checkpoint(ctx, self.path, (ctx._stage_cursor or 0) + 1)
        self._synced = None
