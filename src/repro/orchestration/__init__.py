"""Orchestration layer: schedulers, executors, searches, caching.

Sits *above* :mod:`repro.api` (which stays single-run): this package
turns one declarative :class:`~repro.api.config.ExperimentConfig` into
grids — or adaptive *searches* — of runs with content-addressed result
caching, multi-host sharding, streaming aggregation, and
checkpoint/resume.

Execution is split into three composable pieces: a
:class:`~repro.orchestration.scheduler.Scheduler` proposes points
(:class:`StaticScheduler` for pre-expanded grids,
:class:`ADSearchScheduler` / :class:`LayerBitSearchScheduler` /
:class:`SuccessiveHalvingScheduler` for
searches where finished points propose new ones, and
:class:`SpeculativeScheduler` racing a sequential search's likely next
trials bit-identically — ``--speculate K``), an executor backend
(:class:`SerialExecutor` / :class:`ProcessExecutor`, with dead-worker
detection) runs them, and the :class:`SweepRunner` driver loop joins
the two with caching, dedup, and streaming callbacks in between.

Quick tour::

    from repro.orchestration import (ResultCache, SearchConfig, SweepAxis,
                                     SweepConfig, SweepRunner, run_search)

    sweep = SweepConfig(
        name="vgg19-seeds",
        base=experiments.get_config("vgg19-cifar10-quant"),
        seeds=(0, 1, 2, 3),
    )
    result = SweepRunner(jobs=4, cache=ResultCache()).run(sweep)
    print(result.aggregate().format())

    search = SearchConfig(name="bits", preset="vgg19-cifar10-quant",
                          strategy="ad-bits", accuracy_drop=0.1)
    print(run_search(search, cache=ResultCache()).report().format())

or headless: ``repro sweep --preset table2-vgg19-seeds --jobs 4`` /
``repro search --preset search-vgg19-bits``.

Distributed: ``repro sweep --shard i/N`` runs one deterministic slice of
the grid per host (:func:`shard_points`; adaptive searches cannot shard
and say so), ``repro cache export/import/merge`` move ``.repro-cache/``
entries between hosts (:meth:`ResultCache.merge` with conflict
detection), and ``repro merge-sweeps`` joins the shard ``--out`` files
back into the unsharded aggregate (:func:`merge_sweep_payloads`).
"""

from repro.orchestration.cache import (
    DEFAULT_CACHE_DIR,
    CacheMergeConflict,
    ResultCache,
)
from repro.orchestration.checkpoint import (
    CheckpointCallback,
    CheckpointStage,
    write_checkpoint,
)
from repro.orchestration.executor import (
    ProcessExecutor,
    SerialExecutor,
    TaskInterrupted,
    cancelled_outcome,
    crash_outcome,
    timeout_outcome,
)
from repro.orchestration.runner import (
    PointResult,
    SchedulerDrive,
    SweepInterrupted,
    SweepResult,
    SweepRunner,
    execute_point,
    merge_sweep_payloads,
    pending_point_dict,
    point_dict,
    run_payload,
    sweep_out_payload,
)
from repro.orchestration.scheduler import (
    DONE,
    Cancel,
    Confirm,
    Done,
    Scheduler,
    SpeculativePoint,
    StaticScheduler,
)
from repro.orchestration.search import (
    ADSearchScheduler,
    LayerBitSearchScheduler,
    SearchConfig,
    SearchResult,
    SpeculativeScheduler,
    SuccessiveHalvingScheduler,
    bit_vector_of,
    build_scheduler,
    planned_trials,
    run_search,
    search_out_payload,
    seed_halving_grid,
)
from repro.orchestration.sweep import (
    ShardSpec,
    SweepAxis,
    SweepConfig,
    SweepPoint,
    axis_labels,
    expand,
    shard_assignment,
    shard_points,
)

__all__ = [
    "ADSearchScheduler",
    "CacheMergeConflict",
    "Cancel",
    "CheckpointCallback",
    "CheckpointStage",
    "Confirm",
    "DEFAULT_CACHE_DIR",
    "DONE",
    "Done",
    "LayerBitSearchScheduler",
    "PointResult",
    "ProcessExecutor",
    "ResultCache",
    "Scheduler",
    "SchedulerDrive",
    "SearchConfig",
    "SearchResult",
    "SerialExecutor",
    "ShardSpec",
    "SpeculativePoint",
    "SpeculativeScheduler",
    "StaticScheduler",
    "SuccessiveHalvingScheduler",
    "SweepAxis",
    "SweepConfig",
    "SweepInterrupted",
    "SweepPoint",
    "SweepResult",
    "SweepRunner",
    "TaskInterrupted",
    "axis_labels",
    "bit_vector_of",
    "build_scheduler",
    "cancelled_outcome",
    "crash_outcome",
    "execute_point",
    "expand",
    "merge_sweep_payloads",
    "pending_point_dict",
    "planned_trials",
    "point_dict",
    "run_payload",
    "run_search",
    "search_out_payload",
    "seed_halving_grid",
    "shard_assignment",
    "shard_points",
    "sweep_out_payload",
    "timeout_outcome",
    "write_checkpoint",
]
