"""Orchestration layer: sweeps, parallel workers, caching, checkpoints.

Sits *above* :mod:`repro.api` (which stays single-run): this package
turns one declarative :class:`~repro.api.config.ExperimentConfig` into
grids of runs with content-addressed result caching and
checkpoint/resume.

Quick tour::

    from repro.orchestration import (ResultCache, SweepAxis, SweepConfig,
                                     SweepRunner)

    sweep = SweepConfig(
        name="vgg19-seeds",
        base=experiments.get_config("vgg19-cifar10-quant"),
        seeds=(0, 1, 2, 3),
    )
    result = SweepRunner(jobs=4, cache=ResultCache()).run(sweep)
    print(result.aggregate().format())

or headless: ``repro sweep --preset table2-vgg19-seeds --jobs 4``.
"""

from repro.orchestration.cache import DEFAULT_CACHE_DIR, ResultCache
from repro.orchestration.checkpoint import (
    CheckpointCallback,
    CheckpointStage,
    write_checkpoint,
)
from repro.orchestration.runner import (
    PointResult,
    SweepResult,
    SweepRunner,
    execute_point,
    run_payload,
)
from repro.orchestration.sweep import SweepAxis, SweepConfig, SweepPoint, expand

__all__ = [
    "CheckpointCallback",
    "CheckpointStage",
    "DEFAULT_CACHE_DIR",
    "PointResult",
    "ResultCache",
    "SweepAxis",
    "SweepConfig",
    "SweepPoint",
    "SweepResult",
    "SweepRunner",
    "execute_point",
    "expand",
    "run_payload",
    "write_checkpoint",
]
