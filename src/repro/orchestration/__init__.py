"""Orchestration layer: sweeps, sharding, parallel workers, caching.

Sits *above* :mod:`repro.api` (which stays single-run): this package
turns one declarative :class:`~repro.api.config.ExperimentConfig` into
grids of runs with content-addressed result caching, multi-host
sharding, streaming aggregation, and checkpoint/resume.

Quick tour::

    from repro.orchestration import (ResultCache, SweepAxis, SweepConfig,
                                     SweepRunner)

    sweep = SweepConfig(
        name="vgg19-seeds",
        base=experiments.get_config("vgg19-cifar10-quant"),
        seeds=(0, 1, 2, 3),
    )
    result = SweepRunner(jobs=4, cache=ResultCache()).run(sweep)
    print(result.aggregate().format())

or headless: ``repro sweep --preset table2-vgg19-seeds --jobs 4``.

Distributed: ``repro sweep --shard i/N`` runs one deterministic slice of
the grid per host (:func:`shard_points`), ``repro cache export/import/
merge`` move ``.repro-cache/`` entries between hosts
(:meth:`ResultCache.merge` with conflict detection), and
``repro merge-sweeps`` joins the shard ``--out`` files back into the
unsharded aggregate (:func:`merge_sweep_payloads`).
"""

from repro.orchestration.cache import (
    DEFAULT_CACHE_DIR,
    CacheMergeConflict,
    ResultCache,
)
from repro.orchestration.checkpoint import (
    CheckpointCallback,
    CheckpointStage,
    write_checkpoint,
)
from repro.orchestration.runner import (
    PointResult,
    SweepResult,
    SweepRunner,
    execute_point,
    merge_sweep_payloads,
    pending_point_dict,
    point_dict,
    run_payload,
    sweep_out_payload,
)
from repro.orchestration.sweep import (
    ShardSpec,
    SweepAxis,
    SweepConfig,
    SweepPoint,
    axis_labels,
    expand,
    shard_assignment,
    shard_points,
)

__all__ = [
    "CacheMergeConflict",
    "CheckpointCallback",
    "CheckpointStage",
    "DEFAULT_CACHE_DIR",
    "PointResult",
    "ResultCache",
    "ShardSpec",
    "SweepAxis",
    "SweepConfig",
    "SweepPoint",
    "SweepResult",
    "SweepRunner",
    "axis_labels",
    "execute_point",
    "expand",
    "merge_sweep_payloads",
    "pending_point_dict",
    "point_dict",
    "run_payload",
    "shard_assignment",
    "shard_points",
    "sweep_out_payload",
    "write_checkpoint",
]
