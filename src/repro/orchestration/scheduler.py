"""Schedulers: the *what to run next* half of sweep execution.

:class:`~repro.orchestration.runner.SweepRunner` used to expand a whole
grid up front and fan it out — scheduling and execution interleaved in
one loop.  This module isolates the scheduling side behind a tiny
protocol so that *adaptive* workloads (bit-width search, successive
halving) can propose new points from completed results while the
executor half keeps running them:

* :class:`Scheduler` — the protocol: ``next_points(completed)`` returns
  the next batch of :class:`~repro.orchestration.sweep.SweepPoint`
  objects, an empty list to wait for more completions, or the
  :data:`DONE` sentinel once nothing further will ever be proposed.
* :class:`StaticScheduler` — the degenerate case: one pre-expanded point
  list, issued whole on the first call.  The driver loop running a
  ``StaticScheduler`` is bit-identical to the pre-split ``SweepRunner``.

Adaptive schedulers (:class:`~repro.orchestration.search.ADSearchScheduler`,
:class:`~repro.orchestration.search.SuccessiveHalvingScheduler`) live in
:mod:`repro.orchestration.search`.

The driver calls ``next_points`` with the cumulative tuple of completed
:class:`~repro.orchestration.runner.PointResult` objects, in completion
order, after every completion (and once before anything runs).  A
scheduler therefore never needs its own notion of time or capacity: it
reacts to results, the driver owns dispatch.

Speculative execution
---------------------

A sequential search (one proposal in flight at a time) can still use
idle workers by *betting*: alongside its batch a scheduler may emit

* :class:`SpeculativePoint` — "start running this config now, I *might*
  propose it next" — tagged with a scheduler-chosen cancel ``token``;
* :class:`Confirm` — "my real next proposal is the config speculation
  ``token`` already bet on": the driver adopts the bet's (possibly
  finished) execution for the carried authoritative point;
* :class:`Cancel` — "the bet is off": the driver drops the
  speculation's queued task for free, or abandons its running one (the
  outcome is discarded on arrival).

Speculative outcomes are quarantined by the driver: they never enter
``completed``, the result cache, or streamed output until confirmed, so
every trial decision is made from exactly the results a sequential run
would see — which is what makes speculative runs bit-identical to
sequential ones.  The four item kinds may be mixed freely in one batch
and are processed in list order.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.orchestration.sweep import SweepPoint


class Done:
    """Sentinel type: the scheduler will never propose another point.

    Compare against the module-level :data:`DONE` instance (or use
    ``isinstance``); schedulers should ``return DONE``, not raise.
    """

    _instance = None

    def __new__(cls):
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def __repr__(self) -> str:
        return "DONE"

    def __bool__(self) -> bool:
        return False


DONE = Done()


@dataclass(frozen=True)
class SpeculativePoint:
    """A bet: run ``point`` now, it *may* become the next real proposal.

    ``token`` is scheduler-chosen, unique among the scheduler's live
    speculations; a later :class:`Confirm` or :class:`Cancel` for the
    same token settles the bet.  The driver executes the point but
    quarantines its outcome — nothing about it is observable (completed
    results, cache, streamed output) unless the bet is confirmed.
    """

    point: SweepPoint
    token: int


@dataclass(frozen=True)
class Confirm:
    """Settle a speculation: the real next proposal is the bet's config.

    ``point`` is the *authoritative* sequential proposal (its label,
    overrides, and index are what a sequential run would have emitted)
    and must carry the same config — matched by cache key — as the
    speculation identified by ``token``.  The driver schedules ``point``
    normally and wires the speculation's execution (queued, running, or
    already finished) to it instead of starting a new task.
    """

    token: int
    point: SweepPoint


@dataclass(frozen=True)
class Cancel:
    """Settle a speculation the other way: the bet is abandoned.

    A still-queued speculative task is dropped for free; a running one
    is abandoned (its outcome discarded on arrival and counted as a
    wasted trial).  Nothing the speculation computed becomes visible.
    """

    token: int


class Scheduler:
    """Protocol for point proposers driving a sweep or search.

    Subclasses implement :meth:`next_points`; ``name`` labels the
    resulting :class:`~repro.orchestration.runner.SweepResult` when the
    caller does not supply one.
    """

    name: str = "sweep"

    def next_points(self, completed) -> list | Done:
        """The next batch of points given all completed results so far.

        ``completed`` is a tuple of every finished
        :class:`~repro.orchestration.runner.PointResult` (cache hits
        included), in completion order — confirmed results only, never
        speculative ones.  Return a list of new points to schedule,
        ``[]`` to wait for in-flight points to finish, or :data:`DONE`
        when the schedule is exhausted.  Returning ``[]`` while nothing
        is in flight is a deadlock and makes the driver raise.

        Batches may mix :class:`~repro.orchestration.sweep.SweepPoint`
        items with the speculation directives
        :class:`SpeculativePoint` / :class:`Confirm` / :class:`Cancel`
        (processed in list order; see the module docstring).
        """
        raise NotImplementedError


class StaticScheduler(Scheduler):
    """A fixed, pre-expanded point list: today's sweep as a scheduler.

    Issues every point in one batch on the first call and ``DONE``
    afterwards, so the driver's dispatch order — cache hits first in
    point order, then executed points as workers finish — exactly
    reproduces the pre-split ``SweepRunner`` behaviour, sharded point
    lists included.
    """

    def __init__(self, points, name: str | None = None):
        self._points = list(points)
        for point in self._points:
            if not isinstance(point, SweepPoint):
                raise TypeError(f"not a SweepPoint: {point!r}")
        self._issued = False
        if name is not None:
            self.name = name
        elif self._points:
            self.name = self._points[0].config.name

    def next_points(self, completed) -> list[SweepPoint] | Done:
        if self._issued or not self._points:
            return DONE
        self._issued = True
        return list(self._points)
