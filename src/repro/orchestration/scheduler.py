"""Schedulers: the *what to run next* half of sweep execution.

:class:`~repro.orchestration.runner.SweepRunner` used to expand a whole
grid up front and fan it out — scheduling and execution interleaved in
one loop.  This module isolates the scheduling side behind a tiny
protocol so that *adaptive* workloads (bit-width search, successive
halving) can propose new points from completed results while the
executor half keeps running them:

* :class:`Scheduler` — the protocol: ``next_points(completed)`` returns
  the next batch of :class:`~repro.orchestration.sweep.SweepPoint`
  objects, an empty list to wait for more completions, or the
  :data:`DONE` sentinel once nothing further will ever be proposed.
* :class:`StaticScheduler` — the degenerate case: one pre-expanded point
  list, issued whole on the first call.  The driver loop running a
  ``StaticScheduler`` is bit-identical to the pre-split ``SweepRunner``.

Adaptive schedulers (:class:`~repro.orchestration.search.ADSearchScheduler`,
:class:`~repro.orchestration.search.SuccessiveHalvingScheduler`) live in
:mod:`repro.orchestration.search`.

The driver calls ``next_points`` with the cumulative tuple of completed
:class:`~repro.orchestration.runner.PointResult` objects, in completion
order, after every completion (and once before anything runs).  A
scheduler therefore never needs its own notion of time or capacity: it
reacts to results, the driver owns dispatch.
"""

from __future__ import annotations

from repro.orchestration.sweep import SweepPoint


class Done:
    """Sentinel type: the scheduler will never propose another point.

    Compare against the module-level :data:`DONE` instance (or use
    ``isinstance``); schedulers should ``return DONE``, not raise.
    """

    _instance = None

    def __new__(cls):
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def __repr__(self) -> str:
        return "DONE"

    def __bool__(self) -> bool:
        return False


DONE = Done()


class Scheduler:
    """Protocol for point proposers driving a sweep or search.

    Subclasses implement :meth:`next_points`; ``name`` labels the
    resulting :class:`~repro.orchestration.runner.SweepResult` when the
    caller does not supply one.
    """

    name: str = "sweep"

    def next_points(self, completed) -> list[SweepPoint] | Done:
        """The next batch of points given all completed results so far.

        ``completed`` is a tuple of every finished
        :class:`~repro.orchestration.runner.PointResult` (cache hits
        included), in completion order.  Return a list of new points to
        schedule, ``[]`` to wait for in-flight points to finish, or
        :data:`DONE` when the schedule is exhausted.  Returning ``[]``
        while nothing is in flight is a deadlock and makes the driver
        raise.
        """
        raise NotImplementedError


class StaticScheduler(Scheduler):
    """A fixed, pre-expanded point list: today's sweep as a scheduler.

    Issues every point in one batch on the first call and ``DONE``
    afterwards, so the driver's dispatch order — cache hits first in
    point order, then executed points as workers finish — exactly
    reproduces the pre-split ``SweepRunner`` behaviour, sharded point
    lists included.
    """

    def __init__(self, points, name: str | None = None):
        self._points = list(points)
        for point in self._points:
            if not isinstance(point, SweepPoint):
                raise TypeError(f"not a SweepPoint: {point!r}")
        self._issued = False
        if name is not None:
            self.name = name
        elif self._points:
            self.name = self._points[0].config.name

    def next_points(self, completed) -> list[SweepPoint] | Done:
        if self._issued or not self._points:
            return DONE
        self._issued = True
        return list(self._points)
