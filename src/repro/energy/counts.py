"""Operation-count formulas of paper §IV-A.

For a p x p convolution with I input channels, O output channels,
N x N input feature map and M x M output feature map:

    N_Mem = N^2 * I + p^2 * I * O     (activations read + weights read)
    N_MAC = M^2 * I * p^2 * O

Fully connected layers are the p=1, N=M=1 degenerate case with I/O the
feature counts.
"""

from __future__ import annotations


def _check_positive(**kwargs: int) -> None:
    for name, value in kwargs.items():
        if value < 1:
            raise ValueError(f"{name} must be >= 1, got {value}")


def conv_mem_accesses(input_size: int, in_channels: int, out_channels: int, kernel: int) -> int:
    """N_Mem = N^2 * I + p^2 * I * O."""
    _check_positive(
        input_size=input_size,
        in_channels=in_channels,
        out_channels=out_channels,
        kernel=kernel,
    )
    return input_size**2 * in_channels + kernel**2 * in_channels * out_channels


def conv_mac_ops(output_size: int, in_channels: int, out_channels: int, kernel: int) -> int:
    """N_MAC = M^2 * I * p^2 * O."""
    _check_positive(
        output_size=output_size,
        in_channels=in_channels,
        out_channels=out_channels,
        kernel=kernel,
    )
    return output_size**2 * in_channels * kernel**2 * out_channels


def fc_mem_accesses(in_features: int, out_features: int) -> int:
    """Input activations plus the weight matrix."""
    _check_positive(in_features=in_features, out_features=out_features)
    return in_features + in_features * out_features


def fc_mac_ops(in_features: int, out_features: int) -> int:
    """One MAC per weight."""
    _check_positive(in_features=in_features, out_features=out_features)
    return in_features * out_features
