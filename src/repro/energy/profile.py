"""Network profiling: turn a model + quantization plan into layer profiles.

A :class:`LayerProfile` is everything the energy models need to cost one
layer: operator kind, *effective* channel counts (pruning masks reduce
them), spatial geometry and bit-width.  Profiles are extracted from a
model's layer registry; geometry comes from a one-off traced forward
pass (:func:`trace_geometry`).

Registry adjacency
------------------
For both VGG and ResNet the registry order is producer order, so the
effective input-channel count of layer *i* is the active-channel count
of layer *i-1*.  ResNet downsample convs (followers of a ``conv2``
handle at registry index *i*) read the block input, i.e. the output of
handle *i-2*, and write the destination layer's channels at the
destination layer's bit-width (paper Fig. 2).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.autograd import Tensor, no_grad
from repro.models.blocks import ConvUnit
from repro.quant import QuantizationPlan


@dataclass
class LayerProfile:
    """Cost-model view of one layer instance.

    ``input_bits`` is the precision of the *incoming* activations (the
    producing layer's bit-width); on the bit-serial PIM platform it sets
    the number of input cycles, so MAC cost depends on both operand
    widths.  ``None`` means "same as ``bits``".
    """

    name: str
    kind: str  # "conv" | "linear"
    in_channels: int
    out_channels: int
    kernel: int
    input_size: int
    output_size: int
    bits: int
    input_bits: int | None = None

    def __post_init__(self):
        if self.kind not in ("conv", "linear"):
            raise ValueError(f"unknown layer kind {self.kind!r}")
        for field_name in (
            "in_channels",
            "out_channels",
            "kernel",
            "input_size",
            "output_size",
            "bits",
        ):
            if getattr(self, field_name) < 1:
                raise ValueError(f"{field_name} must be >= 1 in profile {self.name}")
        if self.input_bits is not None and self.input_bits < 1:
            raise ValueError(f"input_bits must be >= 1 in profile {self.name}")

    @property
    def effective_input_bits(self) -> int:
        return self.bits if self.input_bits is None else self.input_bits


def trace_geometry(model, input_shape: tuple[int, int, int]) -> None:
    """Run one dummy forward pass so units record their spatial sizes.

    ``input_shape`` is (channels, height, width); batch size 1 is used.
    """
    was_training = model.training
    model.eval()
    with no_grad():
        model(Tensor(np.zeros((1,) + tuple(input_shape))))
    model.train(was_training)


def _unit_geometry(unit: ConvUnit) -> tuple[int, int]:
    if unit.last_input_hw is None or unit.last_output_hw is None:
        raise RuntimeError(
            f"unit {unit.name!r} has no recorded geometry — call trace_geometry()"
        )
    return unit.last_input_hw[0], unit.last_output_hw[0]


def profile_model(
    model,
    plan: QuantizationPlan | None = None,
    default_bits: int = 16,
    include_followers: bool = True,
) -> list[LayerProfile]:
    """Build layer profiles for ``model`` under ``plan``.

    Parameters
    ----------
    plan:
        Per-layer bit-widths; ``None`` costs every layer at
        ``default_bits`` (the paper's 16-/32-bit baselines).
    include_followers:
        Whether ResNet downsample convs are costed (they are real
        hardware work even though the paper's tables omit their rows).
    """
    registry = model.layer_handles()
    profiles: list[LayerProfile] = []
    handles = list(registry)

    def bits_of(h) -> int:
        return plan.by_name(h.name).bits if plan is not None else default_bits

    for index, handle in enumerate(handles):
        bits = bits_of(handle)
        input_bits = bits_of(handles[index - 1]) if index > 0 else bits
        if handle.is_conv:
            unit = handle.unit
            input_size, output_size = _unit_geometry(unit)
            in_eff = (
                handles[index - 1].active_channels()
                if index > 0
                else unit.conv.in_channels
            )
            if not getattr(unit, "enabled", True):
                continue  # layer removed (Table II row 2a)
            profiles.append(
                LayerProfile(
                    name=handle.name,
                    kind="conv",
                    in_channels=in_eff,
                    out_channels=handle.active_channels(),
                    kernel=unit.conv.kernel_size,
                    input_size=input_size,
                    output_size=output_size,
                    bits=bits,
                    input_bits=input_bits,
                )
            )
            if include_followers:
                for follower in handle.follower_units:
                    f_in, f_out = _unit_geometry(follower)
                    producer = handles[index - 2] if index >= 2 else None
                    f_in_channels = (
                        producer.active_channels()
                        if producer is not None
                        else follower.conv.in_channels
                    )
                    profiles.append(
                        LayerProfile(
                            name=follower.name,
                            kind="conv",
                            in_channels=f_in_channels,
                            out_channels=handle.active_channels(),
                            kernel=follower.conv.kernel_size,
                            input_size=f_in,
                            output_size=f_out,
                            bits=bits,
                            input_bits=(
                                bits_of(producer) if producer is not None else bits
                            ),
                        )
                    )
        else:
            in_eff = (
                handles[index - 1].active_channels()
                if index > 0
                else handle.unit.fc.in_features
            )
            profiles.append(
                LayerProfile(
                    name=handle.name,
                    kind="linear",
                    in_channels=in_eff,
                    out_channels=handle.unit.fc.out_features,
                    kernel=1,
                    input_size=1,
                    output_size=1,
                    bits=bits,
                    input_bits=input_bits,
                )
            )
    return profiles
