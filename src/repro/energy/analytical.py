"""Analytical per-layer and network energy (paper §IV-A).

``E_l = N_Mem * E_Mem|k + N_MAC * E_MAC|k`` summed over layers.  The
MAC-only component is exposed separately because the training-complexity
metric (eqn. 4) weights epochs by *MAC reduction*, and the conclusion
equates the headline "4.5x benefit" with OPS reduction.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.energy.constants import DEFAULT_CONSTANTS, EnergyConstants
from repro.energy.counts import (
    conv_mac_ops,
    conv_mem_accesses,
    fc_mac_ops,
    fc_mem_accesses,
)
from repro.energy.profile import LayerProfile


@dataclass
class NetworkEnergyBreakdown:
    """Total energy with per-layer and per-component detail (pJ)."""

    total_pj: float
    mac_pj: float
    mem_pj: float
    per_layer_pj: dict[str, float]

    def __post_init__(self):
        if self.total_pj < 0 or self.mac_pj < 0 or self.mem_pj < 0:
            raise ValueError("energies must be non-negative")


class AnalyticalEnergyModel:
    """Costs layer profiles with Table-I constants."""

    def __init__(self, constants: EnergyConstants | None = None):
        self.constants = constants or DEFAULT_CONSTANTS

    # ------------------------------------------------------------------
    def layer_counts(self, profile: LayerProfile) -> tuple[int, int]:
        """(N_Mem, N_MAC) for one layer."""
        if profile.kind == "conv":
            mem = conv_mem_accesses(
                profile.input_size,
                profile.in_channels,
                profile.out_channels,
                profile.kernel,
            )
            mac = conv_mac_ops(
                profile.output_size,
                profile.in_channels,
                profile.out_channels,
                profile.kernel,
            )
        else:
            mem = fc_mem_accesses(profile.in_channels, profile.out_channels)
            mac = fc_mac_ops(profile.in_channels, profile.out_channels)
        return mem, mac

    def layer_energy_pj(self, profile: LayerProfile) -> float:
        """E_l = N_Mem * E_Mem|k + N_MAC * E_MAC|k."""
        mem, mac = self.layer_counts(profile)
        return mem * self.constants.memory_access_pj(
            profile.bits
        ) + mac * self.constants.mac_pj(profile.bits)

    def layer_mac_energy_pj(self, profile: LayerProfile) -> float:
        """MAC-only energy (drives the eqn.-4 MAC-reduction factor)."""
        _, mac = self.layer_counts(profile)
        return mac * self.constants.mac_pj(profile.bits)

    # ------------------------------------------------------------------
    def network_energy(self, profiles: list[LayerProfile]) -> NetworkEnergyBreakdown:
        """Sum layer energies; returns a full breakdown."""
        if not profiles:
            raise ValueError("no layer profiles supplied")
        per_layer: dict[str, float] = {}
        mac_total = 0.0
        mem_total = 0.0
        for profile in profiles:
            mem, mac = self.layer_counts(profile)
            mem_e = mem * self.constants.memory_access_pj(profile.bits)
            mac_e = mac * self.constants.mac_pj(profile.bits)
            per_layer[profile.name] = mem_e + mac_e
            mem_total += mem_e
            mac_total += mac_e
        return NetworkEnergyBreakdown(
            total_pj=mem_total + mac_total,
            mac_pj=mac_total,
            mem_pj=mem_total,
            per_layer_pj=per_layer,
        )

    def network_energy_pj(self, profiles: list[LayerProfile]) -> float:
        return self.network_energy(profiles).total_pj

    def mac_reduction(
        self,
        baseline_profiles: list[LayerProfile],
        model_profiles: list[LayerProfile],
    ) -> float:
        """MAC-energy ratio baseline/model (the eqn.-4 weighting factor)."""
        baseline = sum(self.layer_mac_energy_pj(p) for p in baseline_profiles)
        current = sum(self.layer_mac_energy_pj(p) for p in model_profiles)
        if current <= 0:
            raise ValueError("model MAC energy must be positive")
        return baseline / current


def energy_efficiency(
    baseline_profiles: list[LayerProfile],
    model_profiles: list[LayerProfile],
    constants: EnergyConstants | None = None,
) -> float:
    """Total-energy ratio baseline/model — the "Energy Efficiency" column."""
    model = AnalyticalEnergyModel(constants)
    baseline = model.network_energy_pj(baseline_profiles)
    current = model.network_energy_pj(model_profiles)
    if current <= 0:
        raise ValueError("model energy must be positive")
    return baseline / current
