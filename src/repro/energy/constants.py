"""Energy constants of the paper's Table I (45 nm CMOS estimates)."""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class EnergyConstants:
    """Primitive-operation energies in picojoules.

    Defaults reproduce Table I exactly:

    =============================  ==============
    Operation                      Energy (pJ)
    =============================  ==============
    k-bit memory access            2.5 * k
    32-bit multiply                3.1
    32-bit add                     0.1
    k-bit multiply-and-accumulate  3.1*k/32 + 0.1
    =============================  ==============
    """

    mem_access_per_bit_pj: float = 2.5
    mult32_pj: float = 3.1
    add32_pj: float = 0.1

    def memory_access_pj(self, bits: int) -> float:
        """E_Mem|k = 2.5 * k pJ."""
        _validate_bits(bits)
        return self.mem_access_per_bit_pj * bits

    def mac_pj(self, bits: int) -> float:
        """E_MAC|k = (3.1 * k) / 32 + 0.1 pJ.

        The multiplier array cost scales linearly with operand width
        relative to the 32-bit multiply; the accumulate add is charged
        at the full 32-bit rate (partial sums are kept wide).
        """
        _validate_bits(bits)
        return self.mult32_pj * bits / 32.0 + self.add32_pj


DEFAULT_CONSTANTS = EnergyConstants()


def _validate_bits(bits: int) -> None:
    if not isinstance(bits, (int,)) or bits < 1:
        raise ValueError(f"bit-width must be a positive integer, got {bits!r}")


def memory_access_energy_pj(bits: int) -> float:
    """Table I row 1 with default constants."""
    return DEFAULT_CONSTANTS.memory_access_pj(bits)


def mac_energy_pj(bits: int) -> float:
    """Table I row 4 with default constants."""
    return DEFAULT_CONSTANTS.mac_pj(bits)
