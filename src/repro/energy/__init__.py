"""Analytical energy estimation (paper §IV-A, Table I).

45 nm CMOS estimates: a ``k``-bit memory access costs ``2.5 k`` pJ and a
``k``-bit MAC costs ``3.1 k / 32 + 0.1`` pJ.  For a k_l-bit p x p
convolution with I input channels, O output channels, N x N input and
M x M output feature maps:

    N_Mem = N^2 * I + p^2 * I * O
    N_MAC = M^2 * I * p^2 * O
    E_l   = N_Mem * E_Mem|k + N_MAC * E_MAC|k

The paper itself notes this model "assumes impractical hardware
architecture design scenarios which tend to overestimate the efficiency
improvements"; the realistic counterpart is :mod:`repro.pim`.
"""

from repro.energy.constants import (
    EnergyConstants,
    mac_energy_pj,
    memory_access_energy_pj,
)
from repro.energy.counts import conv_mac_ops, conv_mem_accesses, fc_mac_ops, fc_mem_accesses
from repro.energy.profile import LayerProfile, profile_model, trace_geometry
from repro.energy.analytical import (
    AnalyticalEnergyModel,
    NetworkEnergyBreakdown,
    energy_efficiency,
)

__all__ = [
    "EnergyConstants",
    "memory_access_energy_pj",
    "mac_energy_pj",
    "conv_mem_accesses",
    "conv_mac_ops",
    "fc_mem_accesses",
    "fc_mac_ops",
    "LayerProfile",
    "trace_geometry",
    "profile_model",
    "AnalyticalEnergyModel",
    "NetworkEnergyBreakdown",
    "energy_efficiency",
]
