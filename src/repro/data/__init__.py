"""Datasets and loading utilities.

The paper evaluates on CIFAR-10, CIFAR-100 and TinyImageNet.  Those
datasets cannot be downloaded in this offline environment, so this
package provides deterministic *synthetic* stand-ins with the same
shapes and class counts (see ``DESIGN.md`` §2 for the substitution
rationale): class-conditional structured images on which ReLU networks
exhibit the same qualitative activation-density dynamics the method
relies on.
"""

from repro.data.datasets import ArrayDataset, DataLoader, Dataset
from repro.data.synthetic import (
    SyntheticCIFAR10,
    SyntheticCIFAR100,
    SyntheticTinyImageNet,
    make_classification_images,
)
from repro.data.transforms import (
    Compose,
    Normalize,
    RandomCrop,
    RandomHorizontalFlip,
)

__all__ = [
    "Dataset",
    "ArrayDataset",
    "DataLoader",
    "make_classification_images",
    "SyntheticCIFAR10",
    "SyntheticCIFAR100",
    "SyntheticTinyImageNet",
    "Compose",
    "Normalize",
    "RandomCrop",
    "RandomHorizontalFlip",
]
