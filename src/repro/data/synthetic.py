"""Deterministic synthetic image-classification datasets.

Substitute for CIFAR-10/CIFAR-100/TinyImageNet (no network access in the
reproduction environment).  Each class is defined by a smooth random
spatial template plus a class-specific sinusoidal frequency signature;
samples are noisy, randomly shifted renderings of their class pattern.
Training a ReLU conv net on these images reproduces the qualitative
behaviour the paper's method depends on: activation density stabilises
below 1.0 during training and responds to re-quantization.

All generation is a pure function of the seed.
"""

from __future__ import annotations

import numpy as np

from repro.data.datasets import ArrayDataset


def _smooth(field: np.ndarray, passes: int = 2) -> np.ndarray:
    """Cheap separable box smoothing (avoids a scipy dependency here)."""
    out = field
    for _ in range(passes):
        out = (
            out
            + np.roll(out, 1, axis=-1)
            + np.roll(out, -1, axis=-1)
            + np.roll(out, 1, axis=-2)
            + np.roll(out, -1, axis=-2)
        ) / 5.0
    return out


def _class_template(
    rng: np.random.Generator, channels: int, size: int
) -> np.ndarray:
    """Smooth low-frequency template + sinusoidal signature for one class."""
    template = _smooth(rng.normal(0.0, 1.0, size=(channels, size, size)), passes=3)
    yy, xx = np.meshgrid(np.arange(size), np.arange(size), indexing="ij")
    for c in range(channels):
        fx = rng.uniform(0.5, 3.0)
        fy = rng.uniform(0.5, 3.0)
        phase = rng.uniform(0.0, 2 * np.pi)
        template[c] += 0.8 * np.sin(
            2 * np.pi * (fx * xx + fy * yy) / size + phase
        )
    # Standardize each template so classes are equally "loud".
    template = (template - template.mean()) / (template.std() + 1e-8)
    return template


def make_classification_images(
    num_classes: int,
    samples_per_class: int,
    image_size: int = 32,
    channels: int = 3,
    noise: float = 0.6,
    max_shift: int = 2,
    seed: int = 0,
) -> tuple[np.ndarray, np.ndarray]:
    """Generate a structured synthetic classification set.

    Returns
    -------
    (images, labels):
        images (N, C, H, W) float64 roughly zero-mean/unit-scale,
        labels (N,) int64; samples are interleaved across classes.
    """
    if num_classes <= 1:
        raise ValueError("need at least 2 classes")
    if samples_per_class <= 0:
        raise ValueError("samples_per_class must be positive")
    rng = np.random.default_rng(seed)
    templates = [
        _class_template(rng, channels, image_size) for _ in range(num_classes)
    ]
    total = num_classes * samples_per_class
    images = np.empty((total, channels, image_size, image_size))
    labels = np.empty(total, dtype=np.int64)
    idx = 0
    for cls in range(num_classes):
        base = templates[cls]
        for _ in range(samples_per_class):
            sample = base.copy()
            if max_shift > 0:
                dy = int(rng.integers(-max_shift, max_shift + 1))
                dx = int(rng.integers(-max_shift, max_shift + 1))
                sample = np.roll(np.roll(sample, dy, axis=-2), dx, axis=-1)
            sample = sample * rng.uniform(0.8, 1.2)
            sample += rng.normal(0.0, noise, size=sample.shape)
            images[idx] = sample
            labels[idx] = cls
            idx += 1
    # Interleave classes so truncated subsets stay balanced.
    order = rng.permutation(total)
    return images[order], labels[order]


def _make_split(
    num_classes: int,
    image_size: int,
    train_per_class: int,
    test_per_class: int,
    noise: float,
    seed: int,
    transform=None,
) -> tuple[ArrayDataset, ArrayDataset]:
    """Build train/test ArrayDatasets sharing class templates.

    Train and test are drawn from the same class templates (same seed for
    template construction) but with disjoint sample noise, mimicking an
    i.i.d. split.
    """
    images, labels = make_classification_images(
        num_classes,
        train_per_class + test_per_class,
        image_size=image_size,
        noise=noise,
        seed=seed,
    )
    # Per-class split to keep both sides balanced.
    train_idx, test_idx = [], []
    per_class_seen: dict[int, int] = {}
    for i, lab in enumerate(labels):
        seen = per_class_seen.get(int(lab), 0)
        if seen < train_per_class:
            train_idx.append(i)
        else:
            test_idx.append(i)
        per_class_seen[int(lab)] = seen + 1
    train = ArrayDataset(images[train_idx], labels[train_idx], transform=transform)
    test = ArrayDataset(images[test_idx], labels[test_idx])
    return train, test


def SyntheticCIFAR10(
    train_per_class: int = 100,
    test_per_class: int = 20,
    image_size: int = 32,
    noise: float = 0.6,
    seed: int = 0,
    transform=None,
) -> tuple[ArrayDataset, ArrayDataset]:
    """CIFAR-10 stand-in: 10 classes, 3x32x32 (resolution configurable)."""
    return _make_split(10, image_size, train_per_class, test_per_class, noise, seed, transform)


def SyntheticCIFAR100(
    train_per_class: int = 20,
    test_per_class: int = 5,
    image_size: int = 32,
    noise: float = 0.6,
    seed: int = 1,
    transform=None,
) -> tuple[ArrayDataset, ArrayDataset]:
    """CIFAR-100 stand-in: 100 classes, 3x32x32."""
    return _make_split(100, image_size, train_per_class, test_per_class, noise, seed, transform)


def SyntheticTinyImageNet(
    train_per_class: int = 10,
    test_per_class: int = 3,
    image_size: int = 64,
    noise: float = 0.6,
    seed: int = 2,
    transform=None,
) -> tuple[ArrayDataset, ArrayDataset]:
    """TinyImageNet stand-in: 200 classes, 3x64x64 (resolution configurable)."""
    return _make_split(200, image_size, train_per_class, test_per_class, noise, seed, transform)
