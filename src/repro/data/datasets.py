"""Dataset abstractions and a minibatch loader."""

from __future__ import annotations

import numpy as np


class Dataset:
    """Minimal map-style dataset interface."""

    def __len__(self) -> int:
        raise NotImplementedError

    def __getitem__(self, index: int):
        raise NotImplementedError


class ArrayDataset(Dataset):
    """Dataset backed by in-memory arrays of images and integer labels.

    Parameters
    ----------
    images:
        Array of shape (N, C, H, W), float.
    labels:
        Array of shape (N,), integer class indices.
    transform:
        Optional callable applied per-sample at access time.
    """

    def __init__(self, images: np.ndarray, labels: np.ndarray, transform=None):
        images = np.asarray(images, dtype=np.float64)
        labels = np.asarray(labels, dtype=np.int64)
        if images.ndim != 4:
            raise ValueError("images must have shape (N, C, H, W)")
        if labels.ndim != 1 or labels.shape[0] != images.shape[0]:
            raise ValueError("labels must be 1-D and aligned with images")
        self.images = images
        self.labels = labels
        self.transform = transform

    def __len__(self) -> int:
        return self.images.shape[0]

    def __getitem__(self, index: int):
        image = self.images[index]
        if self.transform is not None:
            image = self.transform(image)
        return image, self.labels[index]

    @property
    def num_classes(self) -> int:
        return int(self.labels.max()) + 1 if len(self.labels) else 0


class DataLoader:
    """Iterates a dataset in shuffled minibatches of stacked arrays.

    Yields ``(images, labels)`` where images has shape (B, C, H, W).
    Shuffling uses the provided generator so epochs are reproducible.
    """

    def __init__(
        self,
        dataset: Dataset,
        batch_size: int,
        shuffle: bool = False,
        rng: np.random.Generator | None = None,
        drop_last: bool = False,
    ):
        if batch_size <= 0:
            raise ValueError("batch_size must be positive")
        self.dataset = dataset
        self.batch_size = batch_size
        self.shuffle = shuffle
        self.rng = rng or np.random.default_rng()
        self.drop_last = drop_last

    def __len__(self) -> int:
        n = len(self.dataset)
        if self.drop_last:
            return n // self.batch_size
        return (n + self.batch_size - 1) // self.batch_size

    def __iter__(self):
        n = len(self.dataset)
        order = np.arange(n)
        if self.shuffle:
            self.rng.shuffle(order)
        for start in range(0, n, self.batch_size):
            idx = order[start : start + self.batch_size]
            if self.drop_last and len(idx) < self.batch_size:
                return
            samples = [self.dataset[i] for i in idx]
            images = np.stack([s[0] for s in samples])
            labels = np.array([s[1] for s in samples], dtype=np.int64)
            yield images, labels
