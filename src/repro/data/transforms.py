"""Per-sample image transforms (augmentation and normalization).

Transforms operate on single images of shape (C, H, W) and are composed
with :class:`Compose`.  Random transforms take an explicit generator for
reproducibility.
"""

from __future__ import annotations

import numpy as np


class Compose:
    """Apply a sequence of transforms in order."""

    def __init__(self, transforms: list):
        self.transforms = list(transforms)

    def __call__(self, image: np.ndarray) -> np.ndarray:
        for transform in self.transforms:
            image = transform(image)
        return image


class Normalize:
    """Channel-wise standardization: (x - mean) / std."""

    def __init__(self, mean, std):
        self.mean = np.asarray(mean, dtype=np.float64).reshape(-1, 1, 1)
        self.std = np.asarray(std, dtype=np.float64).reshape(-1, 1, 1)
        if np.any(self.std <= 0):
            raise ValueError("std entries must be positive")

    def __call__(self, image: np.ndarray) -> np.ndarray:
        return (image - self.mean) / self.std


class RandomHorizontalFlip:
    """Flip the image left-right with probability ``p``."""

    def __init__(self, p: float = 0.5, rng: np.random.Generator | None = None):
        if not 0.0 <= p <= 1.0:
            raise ValueError("p must be in [0, 1]")
        self.p = p
        self.rng = rng or np.random.default_rng()

    def __call__(self, image: np.ndarray) -> np.ndarray:
        if self.rng.random() < self.p:
            return image[:, :, ::-1].copy()
        return image


class RandomCrop:
    """Pad by ``padding`` pixels then crop back to the original size."""

    def __init__(self, padding: int = 4, rng: np.random.Generator | None = None):
        if padding < 0:
            raise ValueError("padding must be non-negative")
        self.padding = padding
        self.rng = rng or np.random.default_rng()

    def __call__(self, image: np.ndarray) -> np.ndarray:
        if self.padding == 0:
            return image
        c, h, w = image.shape
        padded = np.pad(
            image,
            ((0, 0), (self.padding, self.padding), (self.padding, self.padding)),
        )
        top = int(self.rng.integers(0, 2 * self.padding + 1))
        left = int(self.rng.integers(0, 2 * self.padding + 1))
        return padded[:, top : top + h, left : left + w]
