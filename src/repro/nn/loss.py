"""Loss functions."""

from __future__ import annotations

import numpy as np

from repro.autograd import Tensor
from repro.autograd import functional as F
from repro.backend import active_backend, fusion_enabled
from repro.nn.module import Module


class CrossEntropyLoss(Module):
    """Mean cross-entropy over integer class targets (fused log-softmax)."""

    def forward(self, logits: Tensor, targets: np.ndarray) -> Tensor:
        return F.cross_entropy(logits, targets)

    def __repr__(self) -> str:
        return "CrossEntropyLoss()"


class MSELoss(Module):
    """Mean squared error between a tensor and an array-like target."""

    def forward(self, prediction: Tensor, target) -> Tensor:
        target = target if isinstance(target, Tensor) else Tensor(target)
        if fusion_enabled() and prediction.data.shape == target.data.shape:
            backend = active_backend()
            loss, residual = backend.mse_fwd(prediction.data, target.data)
            needs_target_grad = target.requires_grad

            def backward(grad):
                gp = backend.mse_bwd(grad, residual)
                return (gp, -gp if needs_target_grad else None)

            return Tensor.from_op(loss, (prediction, target), backward, "mse")
        diff = prediction - target
        return (diff * diff).mean()

    def __repr__(self) -> str:
        return "MSELoss()"
