"""Loss functions."""

from __future__ import annotations

import numpy as np

from repro.autograd import Tensor
from repro.autograd import functional as F
from repro.nn.module import Module


class CrossEntropyLoss(Module):
    """Mean cross-entropy over integer class targets (fused log-softmax)."""

    def forward(self, logits: Tensor, targets: np.ndarray) -> Tensor:
        return F.cross_entropy(logits, targets)

    def __repr__(self) -> str:
        return "CrossEntropyLoss()"


class MSELoss(Module):
    """Mean squared error between a tensor and an array-like target."""

    def forward(self, prediction: Tensor, target) -> Tensor:
        target = target if isinstance(target, Tensor) else Tensor(target)
        diff = prediction - target
        return (diff * diff).mean()

    def __repr__(self) -> str:
        return "MSELoss()"
