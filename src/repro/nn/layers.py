"""Layers required by the paper's VGG19/ResNet18 experiments.

Quantization hook
-----------------
``Conv2d`` and ``Linear`` expose a ``weight_fake_quant`` attribute
(default ``None``).  The quantization machinery in :mod:`repro.quant`
installs a :class:`~repro.quant.fakequant.FakeQuantize` there; when set,
the weight is passed through it on every forward, implementing the
paper's in-training quantized forward propagation (W_q used in forward,
float master weights updated in backward — a straight-through estimator).
"""

from __future__ import annotations

import numpy as np

from repro.autograd import Tensor
from repro.autograd import conv as conv_ops
from repro.autograd import functional as F
from repro.backend import active_backend, fusion_enabled
from repro.nn import init
from repro.nn.module import Module, Parameter


class Conv2d(Module):
    """2-D convolution with square kernels.

    Parameters
    ----------
    in_channels, out_channels:
        Channel counts; ``weight`` has shape (O, I, k, k).
    kernel_size, stride, padding:
        Spatial hyper-parameters (square/symmetric only).
    bias:
        Whether to add a per-output-channel bias.
    rng:
        Generator for Kaiming-normal weight init (fresh default if None).
    """

    def __init__(
        self,
        in_channels: int,
        out_channels: int,
        kernel_size: int,
        stride: int = 1,
        padding: int = 0,
        bias: bool = True,
        rng: np.random.Generator | None = None,
    ):
        super().__init__()
        if in_channels <= 0 or out_channels <= 0:
            raise ValueError("channel counts must be positive")
        rng = rng or np.random.default_rng()
        self.in_channels = in_channels
        self.out_channels = out_channels
        self.kernel_size = kernel_size
        self.stride = stride
        self.padding = padding
        shape = (out_channels, in_channels, kernel_size, kernel_size)
        self.weight = Parameter(init.kaiming_normal(shape, rng))
        self.bias = Parameter(np.zeros(out_channels)) if bias else None
        self.weight_fake_quant = None

    def effective_weight(self) -> Tensor:
        """Weight as used in forward: fake-quantized when configured."""
        if self.weight_fake_quant is not None:
            return self.weight_fake_quant(self.weight)
        return self.weight

    def forward(self, x: Tensor) -> Tensor:
        return conv_ops.conv2d(
            x,
            self.effective_weight(),
            self.bias,
            stride=self.stride,
            padding=self.padding,
        )

    def __repr__(self) -> str:
        return (
            f"Conv2d({self.in_channels}, {self.out_channels}, "
            f"k={self.kernel_size}, s={self.stride}, p={self.padding})"
        )


class Linear(Module):
    """Fully connected layer: ``y = x W^T + b`` with weight (O, I)."""

    def __init__(
        self,
        in_features: int,
        out_features: int,
        bias: bool = True,
        rng: np.random.Generator | None = None,
    ):
        super().__init__()
        if in_features <= 0 or out_features <= 0:
            raise ValueError("feature counts must be positive")
        rng = rng or np.random.default_rng()
        self.in_features = in_features
        self.out_features = out_features
        self.weight = Parameter(init.kaiming_normal((out_features, in_features), rng))
        self.bias = Parameter(np.zeros(out_features)) if bias else None
        self.weight_fake_quant = None

    def effective_weight(self) -> Tensor:
        if self.weight_fake_quant is not None:
            return self.weight_fake_quant(self.weight)
        return self.weight

    def forward(self, x: Tensor) -> Tensor:
        weight = self.effective_weight()
        if fusion_enabled() and x.data.ndim == 2:
            backend = active_backend()
            bias = self.bias
            out = backend.linear_fwd(
                x.data, weight.data, None if bias is None else bias.data
            )
            parents = (x, weight) if bias is None else (x, weight, bias)

            def backward(grad):
                gx, gw, gb = backend.linear_bwd(
                    grad, x.data, weight.data, bias is not None
                )
                return (gx, gw) if bias is None else (gx, gw, gb)

            return Tensor.from_op(out, parents, backward, "linear")
        out = x @ weight.transpose()
        if self.bias is not None:
            out = out + self.bias
        return out

    def __repr__(self) -> str:
        return f"Linear({self.in_features}, {self.out_features})"


class BatchNorm2d(Module):
    """Batch normalization over (N, H, W) per channel, fused fwd/bwd.

    Tracks running statistics with exponential averaging for eval mode.
    """

    def __init__(self, num_features: int, eps: float = 1e-5, momentum: float = 0.1):
        super().__init__()
        self.num_features = num_features
        self.eps = eps
        self.momentum = momentum
        backend = active_backend()
        self.gamma = Parameter(backend.ones(num_features))
        self.beta = Parameter(backend.zeros(num_features))
        # Running stats follow the backend dtype: float64 buffers would
        # otherwise promote every eval-mode forward under a float32 run.
        self.register_buffer("running_mean", backend.zeros(num_features))
        self.register_buffer("running_var", backend.ones(num_features))

    def forward(self, x: Tensor) -> Tensor:
        return self.forward_fused(x, fuse_relu=False)

    def forward_fused(self, x: Tensor, fuse_relu: bool = False) -> Tensor:
        """Forward pass, optionally folding a trailing relu into the node.

        ``fuse_relu`` is how :class:`~repro.models.blocks.ConvUnit`
        collapses its bn -> relu pair into one graph node; plain
        ``forward`` never fuses, so standalone BatchNorm2d semantics are
        unchanged.
        """
        if x.data.ndim != 4:
            raise ValueError("BatchNorm2d expects (N, C, H, W) input")
        if x.data.shape[1] != self.num_features:
            raise ValueError(
                f"expected {self.num_features} channels, got {x.data.shape[1]}"
            )
        gamma, beta = self.gamma, self.beta
        if fusion_enabled():
            backend = active_backend()
            training = self.training
            if training:
                out, mean, var, residual = backend.batchnorm_train(
                    x.data, gamma.data, beta.data, self.eps, fuse_relu
                )
                m = x.data.shape[0] * x.data.shape[2] * x.data.shape[3]
                unbiased = var * m / max(m - 1, 1)
                self._set_buffer(
                    "running_mean",
                    (1 - self.momentum) * self.running_mean + self.momentum * mean,
                )
                self._set_buffer(
                    "running_var",
                    (1 - self.momentum) * self.running_var + self.momentum * unbiased,
                )
            else:
                out, residual = backend.batchnorm_eval(
                    x.data, gamma.data, beta.data, self.running_mean,
                    self.running_var, self.eps, fuse_relu,
                )

            def backward(grad):
                return backend.batchnorm_bwd(grad, gamma.data, residual, training)

            op = "batchnorm2d_relu" if fuse_relu else "batchnorm2d"
            return Tensor.from_op(out, (x, gamma, beta), backward, op)

        out = self._forward_unfused(x)
        if fuse_relu:
            out = out.relu()
        return out

    def _forward_unfused(self, x: Tensor) -> Tensor:
        """The per-primitive seed path, kept for ``use_fusion(False)``."""
        gamma, beta = self.gamma, self.beta
        axes = (0, 2, 3)
        if self.training:
            mean = x.data.mean(axis=axes)
            var = x.data.var(axis=axes)
            m = x.data.shape[0] * x.data.shape[2] * x.data.shape[3]
            unbiased = var * m / max(m - 1, 1)
            self._set_buffer(
                "running_mean",
                (1 - self.momentum) * self.running_mean + self.momentum * mean,
            )
            self._set_buffer(
                "running_var",
                (1 - self.momentum) * self.running_var + self.momentum * unbiased,
            )
        else:
            mean = self.running_mean
            var = self.running_var

        inv_std = 1.0 / np.sqrt(var + self.eps)
        x_hat = (x.data - mean[None, :, None, None]) * inv_std[None, :, None, None]
        out = gamma.data[None, :, None, None] * x_hat + beta.data[None, :, None, None]
        training = self.training

        def backward(grad):
            grad_gamma = (grad * x_hat).sum(axis=axes)
            grad_beta = grad.sum(axis=axes)
            scale = (gamma.data * inv_std)[None, :, None, None]
            if not training:
                return (grad * scale, grad_gamma, grad_beta)
            mean_dy = grad.mean(axis=axes)[None, :, None, None]
            mean_dy_xhat = (grad * x_hat).mean(axis=axes)[None, :, None, None]
            grad_x = scale * (grad - mean_dy - x_hat * mean_dy_xhat)
            return (grad_x, grad_gamma, grad_beta)

        return Tensor.from_op(out, (x, gamma, beta), backward, "batchnorm2d")

    def __repr__(self) -> str:
        return f"BatchNorm2d({self.num_features})"


class ReLU(Module):
    """Rectified linear unit — the source of activation sparsity (AD)."""

    def forward(self, x: Tensor) -> Tensor:
        return x.relu()

    def __repr__(self) -> str:
        return "ReLU()"


class MaxPool2d(Module):
    def __init__(self, kernel_size: int, stride: int | None = None):
        super().__init__()
        self.kernel_size = kernel_size
        self.stride = stride or kernel_size

    def forward(self, x: Tensor) -> Tensor:
        return conv_ops.max_pool2d(x, self.kernel_size, self.stride)

    def __repr__(self) -> str:
        return f"MaxPool2d(k={self.kernel_size}, s={self.stride})"


class AvgPool2d(Module):
    def __init__(self, kernel_size: int, stride: int | None = None):
        super().__init__()
        self.kernel_size = kernel_size
        self.stride = stride or kernel_size

    def forward(self, x: Tensor) -> Tensor:
        return conv_ops.avg_pool2d(x, self.kernel_size, self.stride)

    def __repr__(self) -> str:
        return f"AvgPool2d(k={self.kernel_size}, s={self.stride})"


class GlobalAvgPool2d(Module):
    def forward(self, x: Tensor) -> Tensor:
        return conv_ops.global_avg_pool2d(x)

    def __repr__(self) -> str:
        return "GlobalAvgPool2d()"


class Flatten(Module):
    def __init__(self, start_dim: int = 1):
        super().__init__()
        self.start_dim = start_dim

    def forward(self, x: Tensor) -> Tensor:
        return x.flatten_from(self.start_dim)

    def __repr__(self) -> str:
        return f"Flatten(start_dim={self.start_dim})"


class Dropout(Module):
    def __init__(self, p: float = 0.5, rng: np.random.Generator | None = None):
        super().__init__()
        if not 0.0 <= p < 1.0:
            raise ValueError("dropout probability must be in [0, 1)")
        self.p = p
        self.rng = rng or np.random.default_rng()

    def forward(self, x: Tensor) -> Tensor:
        return F.dropout(x, self.p, self.rng, training=self.training)

    def __repr__(self) -> str:
        return f"Dropout(p={self.p})"


class Identity(Module):
    def forward(self, x: Tensor) -> Tensor:
        return x

    def __repr__(self) -> str:
        return "Identity()"
