"""Module system: parameter registration, hierarchy traversal, state dicts.

Mirrors the familiar torch.nn design closely enough that the paper's
training code translates directly, while staying small and explicit.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Iterator

import numpy as np

from repro.autograd import Tensor
from repro.backend import active_backend


class Parameter(Tensor):
    """A trainable :class:`Tensor`; always requires gradients."""

    def __init__(self, data):
        super().__init__(data, requires_grad=True)

    def __repr__(self) -> str:
        return f"Parameter(shape={self.shape})"


class Module:
    """Base class for all layers and models.

    Subclasses assign :class:`Parameter`, :class:`Module` and buffer
    (plain numpy array registered via :meth:`register_buffer`) attributes;
    registration happens automatically in ``__setattr__``.
    """

    def __init__(self):
        object.__setattr__(self, "_parameters", OrderedDict())
        object.__setattr__(self, "_modules", OrderedDict())
        object.__setattr__(self, "_buffers", OrderedDict())
        object.__setattr__(self, "training", True)

    # ------------------------------------------------------------------
    # Registration
    # ------------------------------------------------------------------
    def __setattr__(self, name, value):
        if isinstance(value, Parameter):
            self._parameters[name] = value
        elif isinstance(value, Module):
            self._modules[name] = value
        elif name in getattr(self, "_parameters", {}):
            del self._parameters[name]
        elif name in getattr(self, "_modules", {}):
            del self._modules[name]
        object.__setattr__(self, name, value)

    def register_buffer(self, name: str, value: np.ndarray) -> None:
        """Register non-trainable persistent state (e.g. BN running stats)."""
        self._buffers[name] = value
        object.__setattr__(self, name, value)

    def _set_buffer(self, name: str, value: np.ndarray) -> None:
        """Update a registered buffer in place of the registry entry."""
        if name not in self._buffers:
            raise KeyError(f"no buffer named {name}")
        self._buffers[name] = value
        object.__setattr__(self, name, value)

    # ------------------------------------------------------------------
    # Traversal
    # ------------------------------------------------------------------
    def parameters(self) -> Iterator[Parameter]:
        for _, param in self.named_parameters():
            yield param

    def named_parameters(self, prefix: str = "") -> Iterator[tuple[str, Parameter]]:
        for name, param in self._parameters.items():
            yield prefix + name, param
        for mod_name, module in self._modules.items():
            yield from module.named_parameters(prefix + mod_name + ".")

    def named_buffers(self, prefix: str = "") -> Iterator[tuple[str, np.ndarray]]:
        for name in self._buffers:
            yield prefix + name, getattr(self, name)
        for mod_name, module in self._modules.items():
            yield from module.named_buffers(prefix + mod_name + ".")

    def modules(self) -> Iterator["Module"]:
        yield self
        for module in self._modules.values():
            yield from module.modules()

    def named_modules(self, prefix: str = "") -> Iterator[tuple[str, "Module"]]:
        yield prefix.rstrip("."), self
        for mod_name, module in self._modules.items():
            yield from module.named_modules(prefix + mod_name + ".")

    def children(self) -> Iterator["Module"]:
        yield from self._modules.values()

    # ------------------------------------------------------------------
    # Modes
    # ------------------------------------------------------------------
    def train(self, mode: bool = True) -> "Module":
        object.__setattr__(self, "training", mode)
        for module in self._modules.values():
            module.train(mode)
        return self

    def eval(self) -> "Module":
        return self.train(False)

    def zero_grad(self) -> None:
        for param in self.parameters():
            param.zero_grad()

    # ------------------------------------------------------------------
    # Serialization
    # ------------------------------------------------------------------
    def state_dict(self) -> "OrderedDict[str, np.ndarray]":
        state = OrderedDict()
        for name, param in self.named_parameters():
            state[name] = param.data.copy()
        for name, buf in self.named_buffers():
            state[name] = np.array(buf, copy=True)
        return state

    def load_state_dict(self, state: dict) -> None:
        params = dict(self.named_parameters())
        missing = []
        for name, value in state.items():
            if name in params:
                if params[name].data.shape != value.shape:
                    raise ValueError(
                        f"shape mismatch for {name}: "
                        f"{params[name].data.shape} vs {value.shape}"
                    )
                params[name].data = np.array(value, dtype=active_backend().dtype)
            else:
                missing.append(name)
        # Buffers live on possibly nested modules; walk and assign.
        buffer_owners = {}
        for mod_name, module in self.named_modules():
            for buf_name in module._buffers:
                full = f"{mod_name}.{buf_name}" if mod_name else buf_name
                buffer_owners[full] = (module, buf_name)
        for name in list(missing):
            if name in buffer_owners:
                module, buf_name = buffer_owners[name]
                module._set_buffer(
                    buf_name, np.array(state[name], dtype=active_backend().dtype)
                )
                missing.remove(name)
        if missing:
            raise KeyError(f"unknown entries in state dict: {missing}")

    # ------------------------------------------------------------------
    # Invocation
    # ------------------------------------------------------------------
    def forward(self, *args, **kwargs):
        raise NotImplementedError

    def __call__(self, *args, **kwargs):
        return self.forward(*args, **kwargs)

    def __repr__(self) -> str:
        child_lines = [
            f"  ({name}): {module!r}".replace("\n", "\n  ")
            for name, module in self._modules.items()
        ]
        header = self.__class__.__name__
        if not child_lines:
            return f"{header}()"
        return header + "(\n" + "\n".join(child_lines) + "\n)"

    def count_parameters(self) -> int:
        """Total number of trainable scalar parameters."""
        return sum(p.data.size for p in self.parameters())


class Sequential(Module):
    """Chain of modules applied in order."""

    def __init__(self, *modules: Module):
        super().__init__()
        for idx, module in enumerate(modules):
            setattr(self, str(idx), module)

    def forward(self, x: Tensor) -> Tensor:
        for module in self._modules.values():
            x = module(x)
        return x

    def __len__(self) -> int:
        return len(self._modules)

    def __iter__(self):
        return iter(self._modules.values())

    def __getitem__(self, index: int) -> Module:
        return list(self._modules.values())[index]

    def append(self, module: Module) -> "Sequential":
        setattr(self, str(len(self._modules)), module)
        return self


class ModuleList(Module):
    """List container whose entries are registered as submodules."""

    def __init__(self, modules=()):
        super().__init__()
        for idx, module in enumerate(modules):
            setattr(self, str(idx), module)

    def append(self, module: Module) -> "ModuleList":
        setattr(self, str(len(self._modules)), module)
        return self

    def __len__(self) -> int:
        return len(self._modules)

    def __iter__(self):
        return iter(self._modules.values())

    def __getitem__(self, index: int) -> Module:
        return list(self._modules.values())[index]

    def forward(self, *args, **kwargs):
        raise RuntimeError("ModuleList is a container and cannot be called")
