"""Optimizers and learning-rate schedules.

The paper trains with "Adam optimizer under standard settings"; SGD with
momentum is provided as well for baselines and tests.
"""

from __future__ import annotations

import numpy as np

from repro.backend import active_backend
from repro.nn.module import Parameter


class Optimizer:
    """Base optimizer over an explicit parameter list."""

    def __init__(self, parameters, lr: float):
        self.parameters: list[Parameter] = list(parameters)
        if not self.parameters:
            raise ValueError("optimizer received no parameters")
        if lr <= 0:
            raise ValueError("learning rate must be positive")
        self.lr = lr

    def zero_grad(self) -> None:
        for param in self.parameters:
            param.zero_grad()

    def step(self) -> None:
        raise NotImplementedError

    # ------------------------------------------------------------------
    # Checkpointing: slot arrays + scalar state, both keyed by name so
    # they can ride in an ``.npz`` checkpoint next to the model state.
    # ------------------------------------------------------------------
    def state_arrays(self) -> dict[str, np.ndarray]:
        """Per-parameter slot arrays (momentum/moment buffers)."""
        return {}

    def state_meta(self) -> dict:
        """JSON-serializable scalar state (step counters etc.)."""
        return {}

    def load_state(self, arrays: dict[str, np.ndarray], meta: dict) -> None:
        """Restore :meth:`state_arrays` / :meth:`state_meta` output."""

    def _load_slots(self, slots: dict[str, list], arrays: dict) -> None:
        for slot, buffers in slots.items():
            for index, buffer in enumerate(buffers):
                key = f"{slot}.{index}"
                if key not in arrays:
                    raise KeyError(f"optimizer state missing {key!r}")
                value = np.asarray(arrays[key])
                if value.shape != buffer.shape:
                    raise ValueError(
                        f"optimizer slot {key!r} shape mismatch: "
                        f"{buffer.shape} vs {value.shape}"
                    )
                buffer[...] = value


class SGD(Optimizer):
    """Stochastic gradient descent with momentum and weight decay."""

    def __init__(self, parameters, lr: float, momentum: float = 0.0, weight_decay: float = 0.0):
        super().__init__(parameters, lr)
        if not 0.0 <= momentum < 1.0:
            raise ValueError("momentum must be in [0, 1)")
        self.momentum = momentum
        self.weight_decay = weight_decay
        self._velocity = [np.zeros_like(p.data) for p in self.parameters]

    def step(self) -> None:
        backend = active_backend()
        for param, velocity in zip(self.parameters, self._velocity):
            if param.grad is None:
                continue
            param.data = backend.sgd_update(
                param.data,
                param.grad,
                velocity,
                self.lr,
                self.momentum,
                self.weight_decay,
            )

    def state_arrays(self) -> dict[str, np.ndarray]:
        return {f"velocity.{i}": v for i, v in enumerate(self._velocity)}

    def load_state(self, arrays, meta) -> None:
        self._load_slots({"velocity": self._velocity}, arrays)


class Adam(Optimizer):
    """Adam with bias correction (the paper's training optimizer)."""

    def __init__(
        self,
        parameters,
        lr: float = 1e-3,
        betas: tuple[float, float] = (0.9, 0.999),
        eps: float = 1e-8,
        weight_decay: float = 0.0,
    ):
        super().__init__(parameters, lr)
        self.beta1, self.beta2 = betas
        self.eps = eps
        self.weight_decay = weight_decay
        self._step_count = 0
        self._m = [np.zeros_like(p.data) for p in self.parameters]
        self._v = [np.zeros_like(p.data) for p in self.parameters]

    def step(self) -> None:
        backend = active_backend()
        self._step_count += 1
        bias1 = 1.0 - self.beta1**self._step_count
        bias2 = 1.0 - self.beta2**self._step_count
        for param, m, v in zip(self.parameters, self._m, self._v):
            if param.grad is None:
                continue
            param.data = backend.adam_update(
                param.data,
                param.grad,
                m,
                v,
                self.lr,
                self.beta1,
                self.beta2,
                self.eps,
                self.weight_decay,
                bias1,
                bias2,
            )

    def state_arrays(self) -> dict[str, np.ndarray]:
        out = {f"m.{i}": m for i, m in enumerate(self._m)}
        out.update({f"v.{i}": v for i, v in enumerate(self._v)})
        return out

    def state_meta(self) -> dict:
        return {"step_count": self._step_count}

    def load_state(self, arrays, meta) -> None:
        self._load_slots({"m": self._m, "v": self._v}, arrays)
        self._step_count = int(meta.get("step_count", 0))


class LRScheduler:
    """Base learning-rate schedule stepping once per epoch."""

    def __init__(self, optimizer: Optimizer):
        self.optimizer = optimizer
        self.base_lr = optimizer.lr
        self.epoch = 0

    def get_lr(self) -> float:
        raise NotImplementedError

    def step(self) -> None:
        self.epoch += 1
        self.optimizer.lr = self.get_lr()


class StepLR(LRScheduler):
    """Multiply the LR by ``gamma`` every ``step_size`` epochs."""

    def __init__(self, optimizer: Optimizer, step_size: int, gamma: float = 0.1):
        super().__init__(optimizer)
        if step_size <= 0:
            raise ValueError("step_size must be positive")
        self.step_size = step_size
        self.gamma = gamma

    def get_lr(self) -> float:
        return self.base_lr * self.gamma ** (self.epoch // self.step_size)


class CosineAnnealingLR(LRScheduler):
    """Cosine decay from the base LR to ``eta_min`` over ``t_max`` epochs."""

    def __init__(self, optimizer: Optimizer, t_max: int, eta_min: float = 0.0):
        super().__init__(optimizer)
        if t_max <= 0:
            raise ValueError("t_max must be positive")
        self.t_max = t_max
        self.eta_min = eta_min

    def get_lr(self) -> float:
        progress = min(self.epoch, self.t_max) / self.t_max
        return self.eta_min + 0.5 * (self.base_lr - self.eta_min) * (
            1 + np.cos(np.pi * progress)
        )
