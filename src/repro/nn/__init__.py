"""Neural-network library built on :mod:`repro.autograd`.

Provides the module system (parameter registration, train/eval modes,
state dicts), the layers required by VGG19/ResNet18, weight
initialization schemes, losses, and optimizers (SGD with momentum, Adam —
the paper trains with Adam under standard settings).
"""

from repro.nn.module import Module, Parameter, Sequential, ModuleList
from repro.nn.layers import (
    AvgPool2d,
    BatchNorm2d,
    Conv2d,
    Dropout,
    Flatten,
    GlobalAvgPool2d,
    Identity,
    Linear,
    MaxPool2d,
    ReLU,
)
from repro.nn.loss import CrossEntropyLoss, MSELoss
from repro.nn.optim import SGD, Adam, CosineAnnealingLR, StepLR
from repro.nn import init

__all__ = [
    "Module",
    "Parameter",
    "Sequential",
    "ModuleList",
    "Conv2d",
    "Linear",
    "BatchNorm2d",
    "ReLU",
    "MaxPool2d",
    "AvgPool2d",
    "GlobalAvgPool2d",
    "Flatten",
    "Dropout",
    "Identity",
    "CrossEntropyLoss",
    "MSELoss",
    "SGD",
    "Adam",
    "StepLR",
    "CosineAnnealingLR",
    "init",
]
