"""Weight initialization schemes (Kaiming/He, Xavier/Glorot, constants).

All initializers take an explicit ``rng`` so experiments are reproducible
end to end; the paper initializes models "with random weights" and we fix
seeds per experiment config.

Random draws always happen in float64 — the generator stream is therefore
identical on every backend — and are then narrowed to the active
backend's dtype, so a float32 run cannot mix float64 parameters.
"""

from __future__ import annotations

import numpy as np

from repro.backend import active_backend


def _fan_in_fan_out(shape: tuple) -> tuple[int, int]:
    """Compute fan-in/fan-out for linear (O, I) and conv (O, I, k, k) shapes."""
    if len(shape) == 2:
        fan_out, fan_in = shape
    elif len(shape) == 4:
        receptive = shape[2] * shape[3]
        fan_in = shape[1] * receptive
        fan_out = shape[0] * receptive
    else:
        raise ValueError(f"unsupported weight shape {shape}")
    return fan_in, fan_out


def kaiming_normal(shape: tuple, rng: np.random.Generator, gain: float = np.sqrt(2.0)) -> np.ndarray:
    """He-normal initialization suited to ReLU networks."""
    fan_in, _ = _fan_in_fan_out(shape)
    std = gain / np.sqrt(fan_in)
    return active_backend().rng_array(rng.normal(0.0, std, size=shape))


def kaiming_uniform(shape: tuple, rng: np.random.Generator, gain: float = np.sqrt(2.0)) -> np.ndarray:
    """He-uniform initialization."""
    fan_in, _ = _fan_in_fan_out(shape)
    bound = gain * np.sqrt(3.0 / fan_in)
    return active_backend().rng_array(rng.uniform(-bound, bound, size=shape))


def xavier_normal(shape: tuple, rng: np.random.Generator, gain: float = 1.0) -> np.ndarray:
    """Glorot-normal initialization."""
    fan_in, fan_out = _fan_in_fan_out(shape)
    std = gain * np.sqrt(2.0 / (fan_in + fan_out))
    return active_backend().rng_array(rng.normal(0.0, std, size=shape))


def xavier_uniform(shape: tuple, rng: np.random.Generator, gain: float = 1.0) -> np.ndarray:
    """Glorot-uniform initialization."""
    fan_in, fan_out = _fan_in_fan_out(shape)
    bound = gain * np.sqrt(6.0 / (fan_in + fan_out))
    return active_backend().rng_array(rng.uniform(-bound, bound, size=shape))


def zeros(shape: tuple) -> np.ndarray:
    return active_backend().zeros(shape)


def ones(shape: tuple) -> np.ndarray:
    return active_backend().ones(shape)
