"""Setup shim for offline environments without the `wheel` package.

`pip install -e . --no-build-isolation` requires bdist_wheel; in fully
offline environments `python setup.py develop` provides the same
editable install through setuptools' legacy path.
"""

from setuptools import setup

setup()
