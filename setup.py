"""Setup shim for offline environments without the `wheel` package.

`pip install -e . --no-build-isolation` requires bdist_wheel; in fully
offline environments `python setup.py develop` provides the same
editable install through setuptools' legacy path.
"""

from setuptools import find_packages, setup

setup(
    name="repro-ad-quant",
    version="1.1.0",
    description=(
        "Reproduction of 'Activation Density based Mixed-Precision "
        "Quantization for Energy Efficient Neural Networks' (DATE 2021)"
    ),
    package_dir={"": "src"},
    packages=find_packages("src"),
    python_requires=">=3.10",
    install_requires=["numpy"],
    entry_points={
        "console_scripts": [
            "repro = repro.cli:main",
        ],
    },
)
