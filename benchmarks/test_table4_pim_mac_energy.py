"""E8 — Table IV: PIM MAC energy per precision + functional validation.

Prints the Table IV per-MAC energies and runs the functional PIM
accelerator at every supported precision, verifying exact integer
arithmetic and reporting component activity per MAC.  The timed section
benchmarks the bit-serial GEMV datapath.
"""

import numpy as np
import pytest

from repro.pim import TABLE_IV_MAC_ENERGY_FJ, PIMAccelerator, PIMEnergyModel
from repro.utils import format_table


def test_table4_pim_mac_energy(benchmark):
    model = PIMEnergyModel()
    rows = []
    activity = {}
    rng = np.random.default_rng(0)
    for bits in (2, 4, 8, 16):
        k_dim, o_dim = 64, 16
        weights = rng.integers(0, 1 << bits, size=(k_dim, o_dim))
        acts = rng.integers(0, 1 << bits, size=(8, k_dim))
        accelerator = PIMAccelerator(rows=64, cols=bits * o_dim)
        accelerator.load_matrix(weights, bits)
        result = accelerator.matmul(acts)
        assert np.array_equal(result, acts @ weights)  # exact arithmetic
        report = accelerator.activity()
        macs = 8 * k_dim * o_dim
        activity[bits] = report
        rows.append(
            [
                f"{bits}-bit",
                f"{TABLE_IV_MAC_ENERGY_FJ[bits]:.3f}",
                f"{report.cell_ops / macs:.2f}",
                f"{report.accumulator.acc4_ops / macs:.2f}",
                f"{report.accumulator.acc8_ops / macs:.2f}",
                f"{report.accumulator.acc16_ops / macs:.2f}",
            ]
        )
    print()
    print(
        format_table(
            ["Precision", "E_MAC (fJ, Table IV)", "cell ops/MAC",
             "ACC4/MAC", "ACC8/MAC", "ACC16/MAC"],
            rows,
            title="Table IV — PIM MAC energy and simulated activity",
        )
    )

    # Exact Table IV values.
    assert model.mac_energy(2) == pytest.approx(2.942)
    assert model.mac_energy(4) == pytest.approx(16.968)
    assert model.mac_energy(8) == pytest.approx(66.714)
    assert model.mac_energy(16) == pytest.approx(276.676)
    # Super-linear precision scaling (the basis of the PIM advantage).
    assert TABLE_IV_MAC_ENERGY_FJ[16] / TABLE_IV_MAC_ENERGY_FJ[2] > 50
    # Simulated cell activity grows ~quadratically with precision.
    assert activity[16].cell_ops > 10 * activity[4].cell_ops

    # Timed: bit-serial GEMV at 4-bit.
    weights = rng.integers(0, 16, size=(64, 16))
    acts = rng.integers(0, 16, size=(64,))
    accelerator = PIMAccelerator(rows=64, cols=64)
    accelerator.load_matrix(weights, 4)
    benchmark(accelerator.matvec, acts)
