"""E2 — Fig. 4: AD vs epochs under AD-based quantization (iteration 2).

The paper contrasts Fig. 3 (baseline, AD < 1) with Fig. 4 (after one
eqn.-3 re-quantization, AD moves toward 1, i.e. better utilization).
The bench runs two Algorithm-1 iterations through the declarative API
(a two-iteration evolution of the ``vgg19-cifar10-quant`` preset) and
prints the AD trajectories of both phases.  The measured contrast at
this scale is recorded in EXPERIMENTS.md; the structural assertions are
that the re-quantized model trains stably and that the AD trajectory
remains valid.
"""

from repro.api import experiments
from repro.utils import format_table


def two_iteration_config():
    return experiments.get_config("vgg19-cifar10-quant").evolve(
        name="fig4-ad-quantized",
        description="Fig. 4: AD trajectory across one re-quantization.",
        tables=["Fig. 4"],
        model={"batch_norm": False},
        lr=1e-3,
        quant={
            "max_iterations": 2,
            "max_epochs_per_iteration": 10,
            "min_epochs_per_iteration": 6,
            "saturation_window": 3,
            "saturation_tolerance": 0.08,
        },
        energy={"analytical": False},
    )


def run_two_iterations():
    experiment = experiments.Experiment(two_iteration_config())
    report = experiment.run()
    return experiment, report


def test_fig4_ad_trend_under_quantization(benchmark):
    experiment, report = benchmark.pedantic(run_two_iterations, rounds=1, iterations=1)
    monitor = experiment.trainer.monitor
    iter1_epochs = report.rows[0].epochs
    final_plan = experiment.quantizer.plan

    print()
    headers = ["Layer", "AD end iter1 (16b)", "bits iter2", "AD end iter2"]
    rows = []
    for name in monitor.layer_names:
        series = monitor.series(name)
        bits = final_plan.by_name(name).bits
        rows.append(
            [name, f"{series[iter1_epochs - 1]:.2f}", bits, f"{series[-1]:.2f}"]
        )
    print(
        format_table(
            headers, rows, title="Fig. 4 — AD before/after eqn.-3 re-quantization"
        )
    )
    print(
        f"iter1: {iter1_epochs} epochs @16b, total AD {report.rows[0].total_ad:.3f}; "
        f"iter2: {report.rows[-1].epochs} epochs mixed, "
        f"total AD {report.rows[-1].total_ad:.3f}"
    )

    assert len(report.rows) == 2
    # The re-quantized model carries heterogeneous bit-widths from eqn. 3.
    hidden_bits = report.rows[-1].bit_widths[1:-1]
    assert min(hidden_bits) < 16
    # Training remained stable (valid densities and finite accuracy).
    assert 0.0 <= report.rows[-1].total_ad <= 1.0
    assert report.rows[-1].test_accuracy is not None
