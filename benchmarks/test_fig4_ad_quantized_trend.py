"""E2 — Fig. 4: AD vs epochs under AD-based quantization (iteration 2).

The paper contrasts Fig. 3 (baseline, AD < 1) with Fig. 4 (after one
eqn.-3 re-quantization, AD moves toward 1, i.e. better utilization).
The bench trains the 16-bit baseline to saturation, applies eqn. 3, and
trains the mixed-precision model, printing the AD trajectories of both
phases.  The measured contrast at this scale is recorded in
EXPERIMENTS.md; the structural assertions are that the re-quantized
model trains stably and that the AD trajectory remains valid.
"""

import numpy as np

from repro.core import ADQuantizer, QuantizationSchedule, Trainer
from repro.density import SaturationDetector
from repro.models import vgg19
from repro.nn import Adam, CrossEntropyLoss
from repro.utils import format_table

from common import IMAGE_SIZE, cifar10_loaders


def run_two_iterations():
    train_loader, test_loader = cifar10_loaders()
    model = vgg19(
        num_classes=10,
        width_multiplier=0.125,
        image_size=IMAGE_SIZE,
        batch_norm=False,
        rng=np.random.default_rng(0),
    )
    trainer = Trainer(model, Adam(model.parameters(), lr=1e-3), CrossEntropyLoss())
    quantizer = ADQuantizer(
        trainer,
        QuantizationSchedule(
            max_iterations=2, max_epochs_per_iteration=10, min_epochs_per_iteration=6
        ),
        SaturationDetector(window=3, tolerance=0.08),
    )
    records = quantizer.run(train_loader, test_loader)
    return trainer, records


def test_fig4_ad_trend_under_quantization(benchmark):
    trainer, records = benchmark.pedantic(run_two_iterations, rounds=1, iterations=1)
    monitor = trainer.monitor
    iter1_epochs = records[0].epochs_trained

    print()
    headers = ["Layer", "AD end iter1 (16b)", "bits iter2", "AD end iter2"]
    rows = []
    for name in monitor.layer_names:
        series = monitor.series(name)
        bits = records[-1].plan.by_name(name).bits
        rows.append(
            [name, f"{series[iter1_epochs - 1]:.2f}", bits, f"{series[-1]:.2f}"]
        )
    print(
        format_table(
            headers, rows, title="Fig. 4 — AD before/after eqn.-3 re-quantization"
        )
    )
    print(
        f"iter1: {iter1_epochs} epochs @16b, total AD {records[0].total_density:.3f}; "
        f"iter2: {records[-1].epochs_trained} epochs mixed, "
        f"total AD {records[-1].total_density:.3f}"
    )

    assert len(records) == 2
    # The re-quantized model carries heterogeneous bit-widths from eqn. 3.
    hidden_bits = records[-1].plan.bit_widths()[1:-1]
    assert min(hidden_bits) < 16
    # Training remained stable (valid densities and finite accuracy).
    assert 0.0 <= records[-1].total_density <= 1.0
    assert records[-1].test_accuracy is not None
