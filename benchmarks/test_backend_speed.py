"""E14 — Fast-backend wall-clock speedup on the bench search trial.

Times one quantization-schedule trial (the ``vgg19-cifar10-quant``
search base at bench width 0.5 / 32x32 inputs, one iteration) on the
float64 reference backend and on the float32 fast backend, from the
same seeds.  Each backend is timed ``REPRO_BENCH_REPEATS`` times (the
host is shared, so the *minimum* is the honest cost of the code) and
the measured pair is written to ``BENCH_PR8.json`` at the repo root —
the recorded file is the PR's performance claim.  The test fails if
the fast path drops under 2x (the CI floor; the recorded measurement
itself is >5x).

The fast run must also land in the reference run's accuracy
neighbourhood: a speedup bought with a broken training loop is a bug,
not a win.
"""

import json
import os
import time
from pathlib import Path

from repro.api import experiments

BENCH_PATH = Path(__file__).resolve().parents[1] / "BENCH_PR8.json"
WORKLOAD = {
    "preset": "vgg19-cifar10-quant",
    "width_multiplier": 0.5,
    "image_size": 32,
    "max_iterations": 1,
    "epochs_per_iteration": 1,
}
MIN_SPEEDUP = 2.0


def _trial(backend: str):
    config = experiments.get_config(WORKLOAD["preset"]).evolve(
        backend=backend,
        model={"width_multiplier": WORKLOAD["width_multiplier"],
               "image_size": WORKLOAD["image_size"]},
        data={"image_size": WORKLOAD["image_size"]},
        quant={"max_iterations": WORKLOAD["max_iterations"],
               "max_epochs_per_iteration": WORKLOAD["epochs_per_iteration"],
               "min_epochs_per_iteration": WORKLOAD["epochs_per_iteration"]},
    )
    start = time.perf_counter()
    report = experiments.Experiment(config).run()
    seconds = time.perf_counter() - start
    return seconds, report.rows[-1].test_accuracy


def test_fast_backend_speedup_on_bench_trial():
    repeats = max(1, int(os.environ.get("REPRO_BENCH_REPEATS", "2")))
    fast_times, reference_times = [], []
    for _ in range(repeats):
        seconds, fast_accuracy = _trial("fast")
        fast_times.append(seconds)
        seconds, reference_accuracy = _trial("reference")
        reference_times.append(seconds)
    fast_seconds = min(fast_times)
    reference_seconds = min(reference_times)
    speedup = reference_seconds / fast_seconds

    payload = {
        "workload": WORKLOAD,
        "repeats": repeats,
        "reference_seconds": round(reference_seconds, 3),
        "fast_seconds": round(fast_seconds, 3),
        "speedup": round(speedup, 2),
        "reference_accuracy": round(reference_accuracy, 4),
        "fast_accuracy": round(fast_accuracy, 4),
    }
    BENCH_PATH.write_text(json.dumps(payload, indent=2) + "\n")

    print()
    print(f"reference: {reference_seconds:6.2f}s  "
          f"(acc {reference_accuracy:.3f})")
    print(f"fast:      {fast_seconds:6.2f}s  (acc {fast_accuracy:.3f})")
    print(f"speedup:   {speedup:.2f}x  -> {BENCH_PATH.name}")

    assert abs(fast_accuracy - reference_accuracy) <= 0.15
    assert speedup >= MIN_SPEEDUP, (
        f"fast backend is only {speedup:.2f}x over reference "
        f"(floor {MIN_SPEEDUP}x)"
    )
