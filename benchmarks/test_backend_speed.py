"""E14/E18 — Fast-backend wall-clock speedup on the bench search trial.

Times one quantization-schedule trial (the ``vgg19-cifar10-quant``
search base at bench width 0.5 / 32x32 inputs, one iteration) on three
configurations from the same seeds:

* ``fused fast`` — the float32 backend as shipped: fused elementwise
  chains (relu / batchnorm / softmax / losses / maxpool) with the
  numba-or-C kernel tiers probed per call;
* ``pr8 fast`` — the pre-fusion fast path, reconstructed by disabling
  fusion and every kernel added with it (``REPRO_DISABLE_KERNELS`` +
  ``REPRO_NO_CKERNELS``; the numba sgd/fake-quant kernels PR8 shipped
  stay on where numba is present);
* ``reference`` — the float64 reference engine.

Each leg is timed ``REPRO_BENCH_REPEATS`` times (the host is shared, so
the *minimum* is the honest cost of the code) and the measured triple
is written to ``REPRO_BENCH_OUT`` (default ``BENCH_PR10.json``) at the
repo root — the recorded file is the PR's performance claim.  The test
fails if fusion drops under 1.2x over the pre-fusion fast path or 5x
over the reference.

The fast runs must also land in the reference run's accuracy
neighbourhood: a speedup bought with a broken training loop is a bug,
not a win.
"""

import json
import os
import time
from pathlib import Path

from repro.api import experiments
from repro.backend import use_fusion

WORKLOAD = {
    "preset": "vgg19-cifar10-quant",
    "width_multiplier": 0.5,
    "image_size": 32,
    "max_iterations": 1,
    "epochs_per_iteration": 1,
}
MIN_FUSED_OVER_PR8 = 1.2
MIN_FUSED_OVER_REFERENCE = 5.0
# Everything the fused-kernel PR added on top of the PR8 fast path.
PR8_DISABLED_KERNELS = (
    "im2col,col2im,batchnorm_train_fwd,batchnorm_eval_fwd,batchnorm_bwd,"
    "adam_update,maxpool_fwd,maxpool_bwd"
)


def _bench_path() -> Path:
    name = os.environ.get("REPRO_BENCH_OUT", "BENCH_PR10.json")
    return Path(__file__).resolve().parents[1] / name


def _trial(backend: str):
    config = experiments.get_config(WORKLOAD["preset"]).evolve(
        backend=backend,
        model={"width_multiplier": WORKLOAD["width_multiplier"],
               "image_size": WORKLOAD["image_size"]},
        data={"image_size": WORKLOAD["image_size"]},
        quant={"max_iterations": WORKLOAD["max_iterations"],
               "max_epochs_per_iteration": WORKLOAD["epochs_per_iteration"],
               "min_epochs_per_iteration": WORKLOAD["epochs_per_iteration"]},
    )
    start = time.perf_counter()
    report = experiments.Experiment(config).run()
    seconds = time.perf_counter() - start
    return seconds, report.rows[-1].test_accuracy


def _pr8_trial():
    """The fast backend with every post-PR8 kernel switched off."""
    saved = {key: os.environ.get(key)
             for key in ("REPRO_NO_CKERNELS", "REPRO_DISABLE_KERNELS")}
    os.environ["REPRO_NO_CKERNELS"] = "1"
    os.environ["REPRO_DISABLE_KERNELS"] = PR8_DISABLED_KERNELS
    try:
        with use_fusion(False):
            return _trial("fast")
    finally:
        for key, value in saved.items():
            if value is None:
                os.environ.pop(key, None)
            else:
                os.environ[key] = value


def test_fused_fast_backend_speedup_on_bench_trial():
    repeats = max(1, int(os.environ.get("REPRO_BENCH_REPEATS", "2")))
    _trial("fast")  # warmup: kernel builds, allocator growth, BLAS init
    fused_times, pr8_times, reference_times = [], [], []
    for _ in range(repeats):
        seconds, fused_accuracy = _trial("fast")
        fused_times.append(seconds)
        seconds, pr8_accuracy = _pr8_trial()
        pr8_times.append(seconds)
        seconds, reference_accuracy = _trial("reference")
        reference_times.append(seconds)
    fused_seconds = min(fused_times)
    pr8_seconds = min(pr8_times)
    reference_seconds = min(reference_times)
    fused_over_pr8 = pr8_seconds / fused_seconds
    fused_over_reference = reference_seconds / fused_seconds

    bench_path = _bench_path()
    payload = {
        "workload": WORKLOAD,
        "repeats": repeats,
        "reference_seconds": round(reference_seconds, 3),
        "pr8_fast_seconds": round(pr8_seconds, 3),
        "fused_fast_seconds": round(fused_seconds, 3),
        "fused_over_pr8": round(fused_over_pr8, 2),
        "fused_over_reference": round(fused_over_reference, 2),
        "reference_accuracy": round(reference_accuracy, 4),
        "pr8_accuracy": round(pr8_accuracy, 4),
        "fused_accuracy": round(fused_accuracy, 4),
    }
    bench_path.write_text(json.dumps(payload, indent=2) + "\n")

    print()
    print(f"reference:  {reference_seconds:6.2f}s  "
          f"(acc {reference_accuracy:.3f})")
    print(f"pr8 fast:   {pr8_seconds:6.2f}s  (acc {pr8_accuracy:.3f})")
    print(f"fused fast: {fused_seconds:6.2f}s  (acc {fused_accuracy:.3f})")
    print(f"fused/pr8:  {fused_over_pr8:.2f}x   "
          f"fused/reference: {fused_over_reference:.2f}x  "
          f"-> {bench_path.name}")

    assert abs(fused_accuracy - reference_accuracy) <= 0.15
    assert abs(pr8_accuracy - reference_accuracy) <= 0.15
    assert fused_over_pr8 >= MIN_FUSED_OVER_PR8, (
        f"fused kernels are only {fused_over_pr8:.2f}x over the PR8 fast "
        f"path (floor {MIN_FUSED_OVER_PR8}x)"
    )
    assert fused_over_reference >= MIN_FUSED_OVER_REFERENCE, (
        f"fused fast is only {fused_over_reference:.2f}x over reference "
        f"(floor {MIN_FUSED_OVER_REFERENCE}x)"
    )
