"""E13 — Adaptive bit-width search vs. the paper's Table II assignment.

Runs the ``search-vgg19-bits`` preset (AD-guided descent over the
schedule's starting precision, eqn. 3 lifted to the experiment level)
and costs the searched mixed-precision assignment against the paper's
Table II(a) iteration-2 bit vector on the *same* bench-scale VGG19
geometry and analytical energy model.  Expected shape (not absolute
numbers): the search stays within its accuracy-drop budget, beats the
uniform-16 network by the paper's ~4x band, and lands in the same
energy regime as the paper's hand-reported assignment.
"""

from repro.api import experiments
from repro.energy import (
    AnalyticalEnergyModel,
    profile_model,
    trace_geometry,
)
from repro.models import vgg19
from repro.orchestration import run_search
from repro.orchestration.search import trial_metrics
from repro.quant import LayerQuantSpec, QuantizationPlan
from repro.utils import format_table

from common import PAPER_VGG19_BITS_ITER2


def assignment_energy_pj(model, bits):
    names = model.layer_handles().names()
    assert len(names) == len(bits)
    plan = QuantizationPlan(
        [LayerQuantSpec(n, b) for n, b in zip(names, bits)]
    )
    return AnalyticalEnergyModel().network_energy_pj(
        profile_model(model, plan=plan)
    )


def test_searched_assignment_vs_paper_table2(benchmark):
    search = experiments.get_search("search-vgg19-bits")

    def run():
        return run_search(search)

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    assert result.ok and result.best is not None

    best = trial_metrics(result.best)
    baseline = trial_metrics(result.baseline)

    # Cost the searched and the paper's assignments on one geometry:
    # the bench-scale VGG19 the search trained (width 0.125, 16x16).
    model_config = experiments.get_config("vgg19-cifar10-quant").model
    model = vgg19(num_classes=model_config.num_classes,
                  width_multiplier=model_config.width_multiplier,
                  image_size=model_config.image_size)
    trace_geometry(model, (3, model_config.image_size,
                           model_config.image_size))
    uniform_pj = assignment_energy_pj(model, [16] * 17)
    searched_pj = assignment_energy_pj(model, best["bit_widths"])
    paper_pj = assignment_energy_pj(model, PAPER_VGG19_BITS_ITER2)

    print()
    print(format_table(
        ["Assignment", "Bit-widths", "Energy (pJ)", "Eff vs 16-bit"],
        [
            ["uniform 16-bit", str([16] * 17), f"{uniform_pj:.3e}", "1.00x"],
            ["searched best", str(best["bit_widths"]),
             f"{searched_pj:.3e}", f"{uniform_pj / searched_pj:.2f}x"],
            ["paper Table II(a)", str(PAPER_VGG19_BITS_ITER2),
             f"{paper_pj:.3e}", f"{uniform_pj / paper_pj:.2f}x"],
        ],
        title="Searched vs. paper bit-width assignment (VGG19, bench scale)",
    ))
    print(f"search trials: {result.stats['total']}, "
          f"best: {result.best.label}")

    # Within the configured accuracy-drop budget, by construction —
    # asserted against the trial metrics to keep the guarantee honest.
    assert best["test_accuracy"] \
        >= baseline["test_accuracy"] - search.accuracy_drop
    # Beats the uniform-precision network in the paper's band.
    assert uniform_pj / searched_pj > 2.0
    # Same energy regime as the paper's hand-reported assignment: the
    # searched assignment must reach at least half the paper vector's
    # efficiency (the paper's own rows vary ~4.1-4.2x at full scale).
    assert uniform_pj / searched_pj >= 0.5 * (uniform_pj / paper_pj)
    # And the search's own absolute-energy bookkeeping agrees with the
    # assignment costing done here (same model, same constants).
    assert abs(best["model_total_pj"] - searched_pj) / searched_pj < 1e-6
