"""E6 — Table III: AD quantization fused with AD channel pruning.

Runs through the ``*-quant-prune`` registry presets: each eqn.-3
re-quantization step also applies eqn.-5 channel pruning from the same
AD snapshot.  Paper shape: energy efficiency explodes (hundreds of x
analytically) at a moderate (~5 point) accuracy cost; channel counts
shrink monotonically.
"""

from repro.api import experiments


def run_vgg():
    # The paper's Table III(a) reports exactly two iterations for VGG19;
    # a third quant+prune round over-compresses the width-scaled model.
    return experiments.build("vgg19-cifar10-quant-prune").run()


def run_resnet():
    return experiments.build("resnet18-cifar100-quant-prune").run()


def _check_report(report):
    baseline = report.rows[0]
    final = report.rows[-1]
    assert baseline.channel_counts is not None
    # Channel counts shrink monotonically across iterations (eqn. 5).
    for earlier, later in zip(report.rows, report.rows[1:]):
        assert all(
            b <= a for a, b in zip(earlier.channel_counts, later.channel_counts)
        )
    if len(report.rows) > 1:
        assert sum(final.channel_counts) < sum(baseline.channel_counts)
        # Pruning compounds with quantization: efficiency beyond quant-only.
        assert final.energy_efficiency > 2.0
        assert final.train_complexity < 1.0
    return baseline, final


def test_table3a_vgg19_quant_plus_prune(benchmark):
    report = benchmark.pedantic(run_vgg, rounds=1, iterations=1)
    print()
    print(report.format())
    baseline, final = _check_report(report)
    # Paper tolerates ~5 points accuracy drop; allow a wider micro-scale
    # envelope but catch collapse.
    assert final.test_accuracy >= baseline.test_accuracy - 0.25


def test_table3b_resnet18_quant_plus_prune(benchmark):
    report = benchmark.pedantic(run_resnet, rounds=1, iterations=1)
    print()
    print(report.format())
    _check_report(report)
