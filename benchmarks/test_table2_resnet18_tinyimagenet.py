"""E5 — Table II(c): ResNet18 on (synthetic) TinyImageNet, 32-bit start.

Runs through the ``resnet18-tinyimagenet-quant`` registry preset.
Distinctive features of the paper's TinyImageNet runs: the initial model
is 32-bit full precision, eqn. 3 therefore produces intermediate
bit-widths above 16 (e.g. 22, 24), frozen boundary layers are listed at
16-bit, and the method converges over up to 4 iterations to ~4.5x
energy efficiency.
"""

from repro.api import experiments


def run_experiment():
    return experiments.build("resnet18-tinyimagenet-quant").run()


def test_table2c_resnet18_tinyimagenet(benchmark):
    report = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    print()
    print(report.format())

    baseline = report.rows[0]
    final = report.rows[-1]
    # 32-bit initial model with 16-bit frozen ends (as listed in II(c)).
    assert baseline.bit_widths[0] == 16
    assert baseline.bit_widths[-1] == 16
    assert all(b == 32 for b in baseline.bit_widths[1:-1])
    assert baseline.energy_efficiency == 1.0

    assert len(report.rows) >= 2
    second = report.rows[1]
    # Eqn. 3 from a 32-bit start can land above 16 bits (paper: 22, 24).
    assert all(b <= 32 for b in second.bit_widths)
    assert any(b < 32 for b in second.bit_widths[1:-1])
    assert final.energy_efficiency > 1.5
    assert final.train_complexity < 1.0
    assert final.test_accuracy > 1.0 / 200  # above chance on 200 classes
