"""E9 — Table V: PIM energy, mixed-precision vs 16-bit full precision.

This bench needs no training: it costs the paper's own Table II bit
vectors on paper-size (width 1.0, 32x32) models, exactly as the paper's
hardware evaluation does.  Our 16-bit VGG19 energy matches the paper's
110.154 uJ to <1%; mixed-precision rows land within the same ~5x
reduction band (see EXPERIMENTS.md for the measured numbers).
"""

import pytest

from repro.energy import profile_model, trace_geometry
from repro.models import resnet18, vgg19
from repro.pim import PIMEnergyModel
from repro.quant import LayerQuantSpec, QuantizationPlan
from repro.utils import format_table

from common import (
    PAPER_RESNET18_BITS_ITER3,
    PAPER_TABLE_V,
    PAPER_VGG19_BITS_ITER2,
)


def plan_for(model, bits):
    names = model.layer_handles().names()
    assert len(names) == len(bits)
    return QuantizationPlan([LayerQuantSpec(n, b) for n, b in zip(names, bits)])


def evaluate_network(model, bits):
    trace_geometry(model, (3, 32, 32))
    pim = PIMEnergyModel()
    full = pim.network_energy(profile_model(model, default_bits=16)).total_uj
    mixed = pim.network_energy(
        profile_model(model, plan=plan_for(model, bits))
    ).total_uj
    return mixed, full


def test_table5_pim_mixed_vs_full(benchmark):
    def run():
        vgg = vgg19(num_classes=10, width_multiplier=1.0)
        resnet = resnet18(num_classes=100, width_multiplier=1.0)
        return {
            "VGG19/CIFAR-10": evaluate_network(vgg, PAPER_VGG19_BITS_ITER2),
            "ResNet18/CIFAR-100": evaluate_network(resnet, PAPER_RESNET18_BITS_ITER3),
        }

    results = benchmark.pedantic(run, rounds=1, iterations=1)

    print()
    rows = []
    for network, (mixed, full) in results.items():
        paper = PAPER_TABLE_V[network]
        rows.append(
            [
                network,
                f"{mixed:.3f}",
                f"{full:.3f}",
                f"{full / mixed:.2f}x",
                f"{paper['mixed_uj']:.3f} / {paper['full_uj']:.3f} "
                f"= {paper['reduction']:.2f}x",
            ]
        )
    print(
        format_table(
            ["Network", "Mixed (uJ)", "Full 16-bit (uJ)", "Reduction", "Paper"],
            rows,
            title="Table V — PIM MAC energy, mixed vs full precision",
        )
    )

    vgg_mixed, vgg_full = results["VGG19/CIFAR-10"]
    # Full-precision energy reproduces the paper's absolute number.
    assert vgg_full == pytest.approx(PAPER_TABLE_V["VGG19/CIFAR-10"]["full_uj"], rel=0.01)
    # Mixed-precision reduction in the paper's band (5.12x reported).
    assert 3.0 < vgg_full / vgg_mixed < 8.0

    res_mixed, res_full = results["ResNet18/CIFAR-100"]
    assert res_full == pytest.approx(
        PAPER_TABLE_V["ResNet18/CIFAR-100"]["full_uj"], rel=0.05
    )
    assert 3.0 < res_full / res_mixed < 8.0
