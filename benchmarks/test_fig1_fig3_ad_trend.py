"""E1 — Figs. 1 & 3: per-layer AD vs training epochs, 16-bit baseline.

The paper's observation (basis of Algorithm 1): AD stabilizes during
training at values < 1.0, with a heterogeneous per-layer profile.  The
bench trains a BN-free VGG19 (classic VGG — BatchNorm pins post-ReLU
density near 0.5 and hides the per-layer heterogeneity of the paper's
curves) at 16-bit and prints each layer's AD trajectory.

Runs through the declarative API: the ``vgg19-cifar10-quant`` registry
preset evolved to a single fixed-length 16-bit iteration (min epochs ==
max epochs disables early saturation exit), so the baseline shares every
scale knob with the Table II(a) preset instead of duplicating them.
"""

import numpy as np

from repro.api import experiments
from repro.density import SaturationDetector
from repro.utils import format_table

EPOCHS = 14


def baseline_config():
    return experiments.get_config("vgg19-cifar10-quant").evolve(
        name="fig1-fig3-ad-baseline",
        description="Figs. 1/3: 16-bit AD trajectory baseline.",
        tables=["Fig. 1", "Fig. 3"],
        model={"batch_norm": False},
        lr=1e-3,
        quant={
            "max_iterations": 1,
            "max_epochs_per_iteration": EPOCHS,
            "min_epochs_per_iteration": EPOCHS,
        },
        energy={"analytical": False},
    )


def run_baseline():
    experiment = experiments.Experiment(baseline_config())
    experiment.run()
    return experiment.trainer


def test_fig1_fig3_ad_saturates_below_one(benchmark):
    trainer = benchmark.pedantic(run_baseline, rounds=1, iterations=1)
    monitor = trainer.monitor

    print()
    headers = ["Layer"] + [f"ep{e}" for e in range(0, EPOCHS, 2)]
    rows = []
    for name in monitor.layer_names:
        series = monitor.series(name)
        rows.append([name] + [f"{series[e]:.2f}" for e in range(0, EPOCHS, 2)])
    print(format_table(headers, rows, title="Fig. 1/3 — AD vs epochs (16-bit baseline)"))

    final = monitor.latest()
    # Paper: "AD converges to a value < 1.0 for all layers".
    assert all(value < 1.0 for value in final.values())
    # Network-level AD well below 1 => redundancy exists to exploit.
    assert monitor.total_density() < 0.8
    # Heterogeneous per-layer profile, as in Fig. 3.
    values = np.array(list(final.values()))
    assert values.max() - values.min() > 0.2
    # Saturation: the trailing epochs move less than the early ones.
    detector = SaturationDetector(window=4, tolerance=0.15)
    saturated = detector.saturated_layers(monitor.history)
    print(f"saturated layers ({len(saturated)}/{len(monitor.layer_names)}): {saturated}")
    assert len(saturated) >= len(monitor.layer_names) // 2
