"""E1 — Figs. 1 & 3: per-layer AD vs training epochs, 16-bit baseline.

The paper's observation (basis of Algorithm 1): AD stabilizes during
training at values < 1.0, with a heterogeneous per-layer profile.  The
bench trains a BN-free VGG19 (classic VGG — BatchNorm pins post-ReLU
density near 0.5 and hides the per-layer heterogeneity of the paper's
curves) at 16-bit and prints each layer's AD trajectory.
"""

import numpy as np

from repro.core import Trainer
from repro.density import SaturationDetector
from repro.models import vgg19
from repro.nn import Adam, CrossEntropyLoss
from repro.utils import format_table

from common import IMAGE_SIZE, cifar10_loaders

EPOCHS = 14


def run_baseline():
    train_loader, _ = cifar10_loaders()
    model = vgg19(
        num_classes=10,
        width_multiplier=0.125,
        image_size=IMAGE_SIZE,
        batch_norm=False,
        rng=np.random.default_rng(0),
    )
    for handle in model.layer_handles():
        handle.apply_bits(16)
    trainer = Trainer(model, Adam(model.parameters(), lr=1e-3), CrossEntropyLoss())
    trainer.fit(train_loader, epochs=EPOCHS)
    return trainer


def test_fig1_fig3_ad_saturates_below_one(benchmark):
    trainer = benchmark.pedantic(run_baseline, rounds=1, iterations=1)
    monitor = trainer.monitor

    print()
    headers = ["Layer"] + [f"ep{e}" for e in range(0, EPOCHS, 2)]
    rows = []
    for name in monitor.layer_names:
        series = monitor.series(name)
        rows.append([name] + [f"{series[e]:.2f}" for e in range(0, EPOCHS, 2)])
    print(format_table(headers, rows, title="Fig. 1/3 — AD vs epochs (16-bit baseline)"))

    final = monitor.latest()
    # Paper: "AD converges to a value < 1.0 for all layers".
    assert all(value < 1.0 for value in final.values())
    # Network-level AD well below 1 => redundancy exists to exploit.
    assert monitor.total_density() < 0.8
    # Heterogeneous per-layer profile, as in Fig. 3.
    values = np.array(list(final.values()))
    assert values.max() - values.min() > 0.2
    # Saturation: the trailing epochs move less than the early ones.
    detector = SaturationDetector(window=4, tolerance=0.15)
    saturated = detector.saturated_layers(monitor.history)
    print(f"saturated layers ({len(saturated)}/{len(monitor.layer_names)}): {saturated}")
    assert len(saturated) >= len(monitor.layer_names) // 2
