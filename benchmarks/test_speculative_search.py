"""E15 — Speculative search wall-clock speedup on the bench search.

Drives the real ``search-vgg19-layer-bits`` stack — the layer-bits
scheduler over the Table II(a) vgg19 config, wrapped in
``SpeculativeScheduler``, through the real ``SweepRunner`` and
executors with live confirm/cancel traffic — twice: strictly
sequentially (``jobs=1``) and speculatively (``--jobs 4 --speculate
3``, racing the eqn.-3 step, its fallbacks, and the energy-ranked
layer moves on idle workers).

Trials are *fixed-latency surrogates*: each sleeps ``TRIAL_SECONDS``
and returns a deterministic payload that is a pure function of its
config (the same landscape family the bit-identity regression uses,
widened to a 17-layer vgg19-shaped vector).  Surrogates rather than
real compute because speculation's entire win is overlap — racing
predicted trials on otherwise-idle workers — and real trials are
CPU-bound, so measuring them benchmarks the host's core count, not
the orchestration (the bench container pins to a single core, where
CPU-bound overlap is physically zero).  Fixed-latency trials overlap
on any host, so the number below is the pipelining win of the
speculation machinery itself; on a multi-core host the same overlap
applies to real fast-backend trials, which is what ``--speculate``
ships for.

Each mode is timed ``REPRO_BENCH_REPEATS`` times (the *minimum* is
the honest cost) and the measured pair is written to
``BENCH_PR9.json`` at the repo root — the recorded file is the PR's
performance claim.  The test fails if speculation drops under 1.3x
(the CI floor).

Speculation is an execution knob, not a search knob, so the test also
asserts the two runs chose the *same trials* and the same winning bit
vector — a speedup that changed the search's answer would be a bug,
not a win.
"""

import json
import os
import time
from pathlib import Path

from repro.api import experiments
from repro.orchestration.search import run_search

BENCH_PATH = Path(__file__).resolve().parents[1] / "BENCH_PR9.json"
TRIAL_SECONDS = 0.75
LAYERS = tuple(f"layer{i:02d}" for i in range(17))
# Geometrically decaying per-layer energy weights: the decay factor
# stays under (bits-1)/bits for every reachable width, so one-bit
# moves never reorder the energy ranking and the layer search's
# accept-guess bets (ranked with stale incumbent energies) line up
# with the sequential moves — the landscape rewards speculation the
# way a clearly-separated real energy profile does.
WEIGHTS = {name: 40.0 * 0.6 ** i for i, name in enumerate(LAYERS)}
FEASIBLE_MEAN_BITS = 3.75
WORKLOAD = {
    "preset": "search-vgg19-layer-bits",
    "trial_model": "fixed-latency surrogate (see module docstring)",
    "trial_seconds": TRIAL_SECONDS,
    "layers": len(LAYERS),
    "jobs": 4,
    "speculate": 3,
}
MIN_SPEEDUP = 1.3


def _vector_of(config_dict: dict) -> dict:
    quant = config_dict["quant"]
    pinned = quant.get("layer_bits") or {}
    return {
        name: pinned.get(name, quant["initial_bits"]) for name in LAYERS
    }


def surrogate_execute(task: dict) -> dict:
    """A trial of fixed latency whose outcome is pure in the config.

    Module-level so it pickles into process-pool workers.  The sleep
    stands in for training; the payload mirrors real runs closely
    enough for the search machinery (report row with bit widths /
    accuracy / total AD, analytical per-layer energies).
    """
    time.sleep(TRIAL_SECONDS)
    vector = _vector_of(task["config"])
    mean_bits = sum(vector.values()) / len(vector)
    accuracy = 0.9 if mean_bits >= FEASIBLE_MEAN_BITS else 0.6
    total_ad = min(0.95, max(0.05, 0.55 + 0.02 * (mean_bits - 8)))
    per_layer = {name: bits * WEIGHTS[name] for name, bits in vector.items()}
    model_pj = sum(per_layer.values())
    baseline_pj = 16 * sum(WEIGHTS.values())
    return {
        "index": task["index"],
        "status": "ok",
        "payload": {
            "report": {
                "architecture": "bench-vgg19",
                "dataset": "bench-data",
                "layer_names": list(LAYERS),
                "rows": [{
                    "iteration": 1,
                    "label": "bench",
                    "bit_widths": [vector[name] for name in LAYERS],
                    "channel_counts": None,
                    "test_accuracy": accuracy,
                    "total_ad": total_ad,
                    "energy_efficiency": baseline_pj / model_pj,
                    "epochs": 1,
                    "train_complexity": 1.0,
                }],
            },
            "artifacts": {
                "analytical_energy": {
                    "model_total_pj": model_pj,
                    "baseline_total_pj": baseline_pj,
                    "per_layer_pj": per_layer,
                },
            },
        },
        "duration": TRIAL_SECONDS,
    }


def _bench_search(speculation: int):
    search = experiments.get_search(WORKLOAD["preset"])
    base = experiments.get_config(search.preset)
    return search.evolve(base=base, preset="", speculation=speculation)


def _timed_run(speculation: int, jobs: int):
    start = time.perf_counter()
    result = run_search(_bench_search(speculation), jobs=jobs,
                        execute=surrogate_execute)
    seconds = time.perf_counter() - start
    return seconds, result


def test_speculative_search_speedup():
    repeats = max(1, int(os.environ.get("REPRO_BENCH_REPEATS", "2")))
    sequential_times, speculative_times = [], []
    for _ in range(repeats):
        seconds, sequential = _timed_run(0, jobs=1)
        sequential_times.append(seconds)
        seconds, speculative = _timed_run(
            WORKLOAD["speculate"], jobs=WORKLOAD["jobs"])
        speculative_times.append(seconds)
    sequential_seconds = min(sequential_times)
    speculative_seconds = min(speculative_times)
    speedup = sequential_seconds / speculative_seconds
    stats = speculative.stats

    payload = {
        "workload": WORKLOAD,
        "repeats": repeats,
        "sequential_seconds": round(sequential_seconds, 3),
        "speculative_seconds": round(speculative_seconds, 3),
        "speedup": round(speedup, 2),
        "trials": len(sequential.points),
        "speculated": stats["speculated"],
        "confirmed": stats["confirmed"],
        "cancelled": stats["cancelled"],
        "wasted_trials": stats["wasted_trials"],
    }
    BENCH_PATH.write_text(json.dumps(payload, indent=2) + "\n")

    print()
    print(f"sequential:  {sequential_seconds:6.2f}s  "
          f"({len(sequential.points)} trials)")
    print(f"speculative: {speculative_seconds:6.2f}s  "
          f"({stats['confirmed']}/{stats['speculated']} bets confirmed, "
          f"{stats['wasted_trials']} wasted)")
    print(f"speedup:     {speedup:.2f}x  -> {BENCH_PATH.name}")

    # Bit-identity first: the races must not change the search's answer.
    assert [p.label for p in speculative.points] \
        == [p.label for p in sequential.points]
    assert (speculative.best.key if speculative.best else None) \
        == (sequential.best.key if sequential.best else None)
    assert stats["speculated"] == stats["confirmed"] + stats["cancelled"]
    assert speedup >= MIN_SPEEDUP, (
        f"speculative search is only {speedup:.2f}x over sequential "
        f"(floor {MIN_SPEEDUP}x)"
    )
