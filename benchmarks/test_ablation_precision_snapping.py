"""Ablation — PIM design choices called out in DESIGN.md §5.

1. Hardware precision snapping {2,4,8,16} vs ideal per-bit widths: how
   much efficiency does the restricted precision set cost?
2. Operand-precision accounting: operand-max (bit-serial input at the
   producer's width) vs weight-only (idealized).
"""

from repro.energy import profile_model, trace_geometry
from repro.models import vgg19
from repro.pim import PIMEnergyModel
from repro.quant import LayerQuantSpec, QuantizationPlan
from repro.utils import format_table

from common import PAPER_VGG19_BITS_ITER2


def interpolated_energy_table():
    """A fictional PIM supporting every integer precision 1..16.

    Per-MAC energy interpolated from Table IV with the observed
    super-linear exponent."""
    table = {}
    # Fit E = a * k^p through (2, 2.942) and (16, 276.676).
    import math

    p = math.log(276.676 / 2.942) / math.log(16 / 2)
    a = 2.942 / (2**p)
    for bits in range(1, 17):
        table[bits] = a * bits**p
    return table


def run():
    model = vgg19(num_classes=10, width_multiplier=1.0)
    trace_geometry(model, (3, 32, 32))
    names = model.layer_handles().names()
    plan = QuantizationPlan(
        [LayerQuantSpec(n, b) for n, b in zip(names, PAPER_VGG19_BITS_ITER2)]
    )
    baseline = profile_model(model, default_bits=16)
    mixed = profile_model(model, plan=plan)

    snapped = PIMEnergyModel()  # {2,4,8,16}, operand-max
    ideal_grid = PIMEnergyModel(interpolated_energy_table())  # every width
    weight_only = PIMEnergyModel(precision_rule="weight-only")

    return {
        "snapped + operand-max": snapped.energy_reduction(baseline, mixed),
        "ideal per-bit grid": ideal_grid.energy_reduction(baseline, mixed),
        "snapped + weight-only": weight_only.energy_reduction(baseline, mixed),
    }


def test_ablation_precision_snapping_and_rule(benchmark):
    results = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    print(
        format_table(
            ["Configuration", "Energy reduction (VGG19 mixed)"],
            [[name, f"{value:.2f}x"] for name, value in results.items()],
            title="Ablation — precision snapping and operand accounting",
        )
    )
    # Supporting arbitrary widths would only help (snapping rounds up).
    assert results["ideal per-bit grid"] >= results["snapped + operand-max"]
    # Ignoring input-activation width inflates the estimated benefit.
    assert results["snapped + weight-only"] > results["snapped + operand-max"]
