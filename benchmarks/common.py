"""Shared workload builders for the benchmark harnesses.

Scaling note (see DESIGN.md §2): benchmarks run the *paper topologies*
(VGG19 = 16 conv + FC; ResNet18 = stem + 16 block convs + FC) at reduced
channel width and input resolution so that CPU-only numpy training
completes in minutes.  Layer counts, the AD-quantization algorithm, the
energy models and every reported column are identical to the full-scale
configuration; the hardware-energy benches (Tables IV-VI) run at the
paper's full width since they need no training.

The table benchmarks (II/III) now run through the experiment registry
(`repro.api.experiments`) whose presets carry these same settings; the
builders below remain for the figure/ablation benches that drive the
trainer and quantizer directly.
"""

from __future__ import annotations

import numpy as np

from repro.data import (
    DataLoader,
    SyntheticCIFAR10,
    SyntheticCIFAR100,
    SyntheticTinyImageNet,
)
from repro.models import resnet18, vgg19

# Scale knobs for the figure/ablation benches below.  The Table II/III
# benches no longer read these: their scale lives in the registry presets
# (src/repro/api/experiments.py) — widen both places together.
VGG_WIDTH = 0.125
RESNET_WIDTH = 0.125
IMAGE_SIZE = 16
NOISE = 0.8


def cifar10_loaders(seed: int = 0, train_per_class: int = 24, test_per_class: int = 8):
    rng = np.random.default_rng(seed)
    train, test = SyntheticCIFAR10(
        train_per_class=train_per_class,
        test_per_class=test_per_class,
        image_size=IMAGE_SIZE,
        noise=NOISE,
        seed=seed,
    )
    return (
        DataLoader(train, batch_size=25, shuffle=True, rng=rng),
        DataLoader(test, batch_size=50),
    )


def cifar100_loaders(seed: int = 1, train_per_class: int = 8, test_per_class: int = 3):
    rng = np.random.default_rng(seed)
    train, test = SyntheticCIFAR100(
        train_per_class=train_per_class,
        test_per_class=test_per_class,
        image_size=IMAGE_SIZE,
        noise=0.6,  # 100-way at micro scale needs a cleaner signal
        seed=seed,
    )
    return (
        DataLoader(train, batch_size=40, shuffle=True, rng=rng),
        DataLoader(test, batch_size=50),
    )


def tinyimagenet_loaders(seed: int = 2, train_per_class: int = 2, test_per_class: int = 1):
    rng = np.random.default_rng(seed)
    train, test = SyntheticTinyImageNet(
        train_per_class=train_per_class,
        test_per_class=test_per_class,
        image_size=IMAGE_SIZE,  # 64 in the paper; reduced for CPU scale
        noise=NOISE,
        seed=seed,
    )
    return (
        DataLoader(train, batch_size=40, shuffle=True, rng=rng),
        DataLoader(test, batch_size=50),
    )


def make_vgg19(num_classes: int = 10, seed: int = 0, width: float | None = None):
    return vgg19(
        num_classes=num_classes,
        width_multiplier=VGG_WIDTH if width is None else width,
        image_size=IMAGE_SIZE,
        rng=np.random.default_rng(seed),
    )


def make_resnet18(num_classes: int = 100, seed: int = 0, width: float | None = None):
    return resnet18(
        num_classes=num_classes,
        width_multiplier=RESNET_WIDTH if width is None else width,
        rng=np.random.default_rng(seed),
    )


# ---------------------------------------------------------------------------
# Paper reference vectors (for the training-free hardware benches).
# ---------------------------------------------------------------------------
# Table II(a) iteration 2 bit-widths for VGG19/CIFAR-10 (17 layers).
PAPER_VGG19_BITS_ITER2 = [16, 4, 5, 4, 3, 2, 2, 2, 3, 3, 3, 4, 3, 3, 3, 3, 16]

# Table III(a) iteration 2 channel counts for VGG19 (16 conv layers).
PAPER_VGG19_PRUNED_CHANNELS = [
    19, 22, 38, 24, 45, 37, 44, 54, 103, 126, 150, 125, 122, 112, 111, 8,
]

# ResNet18 18-layer bit vector assembled from Table II(b) iteration 3:
# stem + 8 blocks x (conv1, conv2) + fc.
PAPER_RESNET18_BITS_ITER3 = [
    16, 5, 3, 3, 5, 1, 1, 8, 4, 4, 6, 4, 4, 8, 3, 3, 9, 16,
]

# Table III(b) iteration 2 channel counts (stem + 16 block convs).
PAPER_RESNET18_PRUNED_CHANNELS = [
    21, 12, 44, 6, 47, 34, 87, 34, 89, 58, 156, 50, 146, 110, 192, 59, 59,
]

PAPER_TABLE_V = {
    "VGG19/CIFAR-10": {"mixed_uj": 21.506, "full_uj": 110.154, "reduction": 5.12},
    "ResNet18/CIFAR-100": {"mixed_uj": 33.186, "full_uj": 159.501, "reduction": 4.81},
}

PAPER_TABLE_VI = {
    "VGG19/CIFAR-10": {"pruned_uj": 0.558, "full_uj": 110.154, "reduction": 197.55},
    "ResNet18/CIFAR-100": {"pruned_uj": 3.630, "full_uj": 159.501, "reduction": 43.941},
}
