"""Shared paper reference vectors for the benchmark harnesses.

Scaling note (see DESIGN.md §2): the trained benchmarks run the *paper
topologies* (VGG19 = 16 conv + FC; ResNet18 = stem + 16 block convs +
FC) at reduced channel width and input resolution so that CPU-only
numpy training completes in minutes.  Those scale knobs live in the
experiment registry presets (``src/repro/api/experiments.py``), which
every trained bench — tables, figures and ablations alike — now
resolves through (the figure/ablation benches evolve the Table II(a)
preset; the saturation ablation runs the registered
``ablation-saturation`` sweep).  The hardware-energy benches (Tables
IV-VI) run at the paper's full width since they need no training; the
constants below are the paper's own bit/channel vectors they evaluate.
"""

from __future__ import annotations

# Table II(a) iteration 2 bit-widths for VGG19/CIFAR-10 (17 layers).
PAPER_VGG19_BITS_ITER2 = [16, 4, 5, 4, 3, 2, 2, 2, 3, 3, 3, 4, 3, 3, 3, 3, 16]

# Table III(a) iteration 2 channel counts for VGG19 (16 conv layers).
PAPER_VGG19_PRUNED_CHANNELS = [
    19, 22, 38, 24, 45, 37, 44, 54, 103, 126, 150, 125, 122, 112, 111, 8,
]

# ResNet18 18-layer bit vector assembled from Table II(b) iteration 3:
# stem + 8 blocks x (conv1, conv2) + fc.
PAPER_RESNET18_BITS_ITER3 = [
    16, 5, 3, 3, 5, 1, 1, 8, 4, 4, 6, 4, 4, 8, 3, 3, 9, 16,
]

# Table III(b) iteration 2 channel counts (stem + 16 block convs).
PAPER_RESNET18_PRUNED_CHANNELS = [
    21, 12, 44, 6, 47, 34, 87, 34, 89, 58, 156, 50, 146, 110, 192, 59, 59,
]

PAPER_TABLE_V = {
    "VGG19/CIFAR-10": {"mixed_uj": 21.506, "full_uj": 110.154, "reduction": 5.12},
    "ResNet18/CIFAR-100": {"mixed_uj": 33.186, "full_uj": 159.501, "reduction": 4.81},
}

PAPER_TABLE_VI = {
    "VGG19/CIFAR-10": {"pruned_uj": 0.558, "full_uj": 110.154, "reduction": 197.55},
    "ResNet18/CIFAR-100": {"pruned_uj": 3.630, "full_uj": 159.501, "reduction": 43.941},
}
