"""E10 — Table VI: PIM energy of pruned + mixed-precision models.

Costs the paper's Table III channel counts combined with its mixed
bit-widths on paper-size models.  (The paper's Table III(a) bit list has
21 entries, which does not map 1:1 onto VGG19's 17 weighted layers; we
pair the Table III channel vector with the Table II(a) bit vector —
the bit-widths of the shared layers agree between the two tables.)
Paper shape: ~197x (VGG19) and ~44x (ResNet18) vs unpruned 16-bit.
"""

import numpy as np
import pytest

from repro.energy import profile_model, trace_geometry
from repro.models import resnet18, vgg19
from repro.pim import PIMEnergyModel
from repro.quant import LayerQuantSpec, QuantizationPlan
from repro.utils import format_table

from common import (
    PAPER_RESNET18_BITS_ITER3,
    PAPER_RESNET18_PRUNED_CHANNELS,
    PAPER_TABLE_VI,
    PAPER_VGG19_BITS_ITER2,
    PAPER_VGG19_PRUNED_CHANNELS,
)


def apply_channel_budgets(model, budgets):
    """Install masks keeping the first `budget` channels of each layer.

    Which channels survive does not affect energy accounting — only the
    counts do.
    """
    prunable = [h for h in model.layer_handles() if h.prunable and h.is_conv]
    assert len(prunable) == len(budgets)
    for handle, budget in zip(prunable, budgets):
        total = handle.out_channels
        kept = min(total, max(1, budget))
        mask = np.zeros(total)
        mask[:kept] = 1.0
        handle.set_channel_mask(mask)


def evaluate(model, bits, channels):
    trace_geometry(model, (3, 32, 32))
    pim = PIMEnergyModel()
    full = pim.network_energy(profile_model(model, default_bits=16)).total_uj
    apply_channel_budgets(model, channels)
    names = model.layer_handles().names()
    plan = QuantizationPlan([LayerQuantSpec(n, b) for n, b in zip(names, bits)])
    pruned = pim.network_energy(profile_model(model, plan=plan)).total_uj
    return pruned, full


def test_table6_pim_pruned_mixed_vs_full(benchmark):
    def run():
        vgg = vgg19(num_classes=10, width_multiplier=1.0)
        resnet = resnet18(num_classes=100, width_multiplier=1.0)
        return {
            "VGG19/CIFAR-10": evaluate(
                vgg, PAPER_VGG19_BITS_ITER2, PAPER_VGG19_PRUNED_CHANNELS[:-1]
            ),
            "ResNet18/CIFAR-100": evaluate(
                resnet,
                PAPER_RESNET18_BITS_ITER3,
                PAPER_RESNET18_PRUNED_CHANNELS[1:],
            ),
        }

    results = benchmark.pedantic(run, rounds=1, iterations=1)

    print()
    rows = []
    for network, (pruned, full) in results.items():
        paper = PAPER_TABLE_VI[network]
        rows.append(
            [
                network,
                f"{pruned:.3f}",
                f"{full:.3f}",
                f"{full / pruned:.2f}x",
                f"{paper['pruned_uj']:.3f} / {paper['full_uj']:.3f} "
                f"= {paper['reduction']:.2f}x",
            ]
        )
    print(
        format_table(
            ["Network", "Pruned+mixed (uJ)", "Full 16-bit (uJ)", "Reduction", "Paper"],
            rows,
            title="Table VI — PIM energy, pruned mixed-precision vs full",
        )
    )

    vgg_pruned, vgg_full = results["VGG19/CIFAR-10"]
    res_pruned, res_full = results["ResNet18/CIFAR-100"]
    # Order-of-magnitude agreement with the paper's reductions.
    assert vgg_full / vgg_pruned > 20.0
    assert res_full / res_pruned > 10.0
    # Pruning+quantization decisively beats quantization alone (~5x).
    assert vgg_full / vgg_pruned > 10.0
    assert vgg_full == pytest.approx(
        PAPER_TABLE_VI["VGG19/CIFAR-10"]["full_uj"], rel=0.01
    )
