"""E4 — Table II(b): AD quantization, ResNet18 on (synthetic) CIFAR-100.

Runs through the ``resnet18-cifar100-quant`` registry preset.  Paper
shape: 2.76-3.19x energy efficiency at near-iso accuracy, training
complexity ~0.6-0.7x, with skip branches following destination-layer
bit-widths (Fig. 2).
"""

from repro.api import experiments


def run_experiment():
    experiment = experiments.build("resnet18-cifar100-quant")
    return experiment.run(), experiment


def test_table2b_resnet18_cifar100(benchmark):
    report, experiment = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    print()
    print(report.format())

    baseline = report.rows[0]
    final = report.rows[-1]
    assert baseline.energy_efficiency == 1.0
    assert len(baseline.bit_widths) == 18  # stem + 16 block convs + fc
    assert final.energy_efficiency > 1.5
    assert final.train_complexity < 1.0
    # 100-way classification at micro scale: accuracy above chance and not
    # collapsed relative to baseline.
    assert final.test_accuracy > 1.0 / 100
    assert final.test_accuracy >= baseline.test_accuracy - 0.10

    # Fig. 2 invariant: every block's skip machinery carries the
    # destination layer's bit-width.
    model = experiment.model
    for handle in model.layer_handles():
        if handle.name.endswith("conv2"):
            block = handle.host
            assert block.skip_quant.bits == handle.current_bits()
            if handle.follower_units:
                downsample = handle.follower_units[0]
                assert downsample.conv.weight_fake_quant.bits == handle.current_bits()
