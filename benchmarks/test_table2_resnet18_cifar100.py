"""E4 — Table II(b): AD quantization, ResNet18 on (synthetic) CIFAR-100.

Paper shape: 2.76-3.19x energy efficiency at near-iso accuracy, training
complexity ~0.6-0.7x, with skip branches following destination-layer
bit-widths (Fig. 2).
"""

from common import cifar100_loaders, make_resnet18, make_runner


def run_experiment():
    train_loader, test_loader = cifar100_loaders()
    model = make_resnet18(num_classes=100, seed=1)
    runner = make_runner(
        model,
        train_loader,
        test_loader,
        max_iterations=3,
        epochs_cap=8,
        min_epochs=4,
        architecture="ResNet18",
        dataset="SyntheticCIFAR100",
    )
    return runner.run(), runner


def test_table2b_resnet18_cifar100(benchmark):
    report, runner = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    print()
    print(report.format())

    baseline = report.rows[0]
    final = report.rows[-1]
    assert baseline.energy_efficiency == 1.0
    assert len(baseline.bit_widths) == 18  # stem + 16 block convs + fc
    assert final.energy_efficiency > 1.5
    assert final.train_complexity < 1.0
    # 100-way classification at micro scale: accuracy above chance and not
    # collapsed relative to baseline.
    assert final.test_accuracy > 1.0 / 100
    assert final.test_accuracy >= baseline.test_accuracy - 0.10

    # Fig. 2 invariant: every block's skip machinery carries the
    # destination layer's bit-width.
    model = runner.model
    for handle in model.layer_handles():
        if handle.name.endswith("conv2"):
            block = handle.host
            assert block.skip_quant.bits == handle.current_bits()
            if handle.follower_units:
                downsample = handle.follower_units[0]
                assert downsample.conv.weight_fake_quant.bits == handle.current_bits()
