"""E14 — Per-layer bit-vector search vs. the paper's Table II(b) assignment.

Runs a ``layer-bits`` search (scalar AD descent seeding energy-ranked
per-layer -1-bit moves) on the Table II(b) workload (ResNet18 on
CIFAR-100) and costs the searched per-layer assignment against the
paper's iteration-3 bit vector on the *same* bench-scale ResNet18
geometry and analytical energy model.  Expected shape (not absolute
numbers): the search stays within its accuracy-drop budget, its winner
costs no more than the seed phase's scalar winner (the moves only ever
lower analytical energy), and the assignment lands in the same energy
regime as the paper's hand-reported vector.
"""

from repro.api import experiments
from repro.energy import (
    AnalyticalEnergyModel,
    profile_model,
    trace_geometry,
)
from repro.models import resnet18
from repro.orchestration import SearchConfig, run_search
from repro.orchestration.search import bit_vector_of, trial_metrics
from repro.quant import QuantizationPlan
from repro.utils import format_table

from common import PAPER_RESNET18_BITS_ITER3


def assignment_energy_pj(model, bits):
    names = model.layer_handles().names()
    assert len(names) == len(bits)
    plan = QuantizationPlan.from_bit_vector(zip(names, bits))
    return AnalyticalEnergyModel().network_energy_pj(
        profile_model(model, plan=plan)
    )


def test_layer_searched_assignment_vs_paper_table2b(benchmark):
    search = SearchConfig(
        name="bench-resnet18-layer-bits",
        description=("Table II(b) per-layer refinement at bench budget: "
                     "2 scalar seed trials, then layer moves."),
        preset="resnet18-cifar100-quant",
        strategy="layer-bits",
        objective="energy_efficiency",
        accuracy_drop=0.10,
        max_trials=5,
        seed_trials=2,
        min_bits=2,
    )

    def run():
        return run_search(search)

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    assert result.ok and result.best is not None

    best = trial_metrics(result.best)
    baseline = trial_metrics(result.baseline)
    vector = bit_vector_of(result.best)

    # Cost the searched and the paper's assignments on one geometry:
    # the bench-scale ResNet18 the search trained (width 0.125).
    model_config = experiments.get_config("resnet18-cifar100-quant").model
    data_config = experiments.get_config("resnet18-cifar100-quant").data
    model = resnet18(num_classes=model_config.num_classes,
                     width_multiplier=model_config.width_multiplier)
    trace_geometry(model, (3, data_config.image_size,
                           data_config.image_size))
    layer_count = len(model.layer_handles())
    uniform_pj = assignment_energy_pj(model, [16] * layer_count)
    searched_pj = assignment_energy_pj(model, best["bit_widths"])
    paper_pj = assignment_energy_pj(model, PAPER_RESNET18_BITS_ITER3)

    print()
    print(format_table(
        ["Assignment", "Bit-widths", "Energy (pJ)", "Eff vs 16-bit"],
        [
            ["uniform 16-bit", str([16] * layer_count),
             f"{uniform_pj:.3e}", "1.00x"],
            ["searched best", str(best["bit_widths"]),
             f"{searched_pj:.3e}", f"{uniform_pj / searched_pj:.2f}x"],
            ["paper Table II(b)", str(PAPER_RESNET18_BITS_ITER3),
             f"{paper_pj:.3e}", f"{uniform_pj / paper_pj:.2f}x"],
        ],
        title="Layer-searched vs. paper bit vector (ResNet18, bench scale)",
    ))
    print(f"search trials: {result.stats['total']}, "
          f"best: {result.best.label}")
    print(f"winning vector: {vector}")

    # Within the configured accuracy-drop budget, by construction —
    # asserted against the trial metrics to keep the guarantee honest.
    assert best["test_accuracy"] \
        >= baseline["test_accuracy"] - search.accuracy_drop
    # The layer moves never cost more than the scalar seed's winner.
    assert best["model_total_pj"] <= baseline["model_total_pj"]
    # Beats the uniform-precision network outright.
    assert uniform_pj / searched_pj > 1.5
    # Same energy regime as the paper's hand-reported assignment: at
    # least half the paper vector's efficiency on this geometry.
    assert uniform_pj / searched_pj >= 0.5 * (uniform_pj / paper_pj)
    # The search's own absolute-energy bookkeeping agrees with the
    # assignment costing done here (same model, same constants).
    assert abs(best["model_total_pj"] - searched_pj) / searched_pj < 1e-6
