"""E7 — Table I: analytical energy constants.

Regenerates the paper's Table I rows exactly (they are the model's
constants) and benchmarks the analytical energy computation over a
full VGG19 profile.
"""

import pytest

from repro.energy import (
    AnalyticalEnergyModel,
    mac_energy_pj,
    memory_access_energy_pj,
    profile_model,
    trace_geometry,
)
from repro.models import vgg19
from repro.utils import format_table


def test_table1_energy_constants(benchmark):
    rows = []
    for bits in (2, 4, 8, 16, 32):
        rows.append(
            [
                f"{bits}-bit",
                f"{memory_access_energy_pj(bits):.2f}",
                f"{mac_energy_pj(bits):.5f}",
            ]
        )
    print()
    print(
        format_table(
            ["Precision", "E_Mem (pJ) = 2.5k", "E_MAC (pJ) = 3.1k/32+0.1"],
            rows,
            title="Table I — energy constants (45nm CMOS)",
        )
    )
    # Exact Table I anchor points.
    assert memory_access_energy_pj(1) == 2.5
    assert mac_energy_pj(32) == pytest.approx(3.1 + 0.1)

    model = vgg19(width_multiplier=1.0)
    trace_geometry(model, (3, 32, 32))
    profiles = profile_model(model, default_bits=16)
    energy_model = AnalyticalEnergyModel()

    result = benchmark(energy_model.network_energy, profiles)
    print(
        f"VGG19 16-bit analytical energy: {result.total_pj / 1e6:.2f} uJ "
        f"(MAC {result.mac_pj / 1e6:.2f} + Mem {result.mem_pj / 1e6:.2f})"
    )
    assert result.total_pj > 0
    # At 16-bit a memory access (40 pJ) costs ~24x a MAC (1.65 pJ), so
    # the memory term is a large share of the analytical estimate — one
    # reason the paper contrasts it with the PIM platform, where memory
    # access energy is absorbed into the array.
    assert result.mem_pj > 0.3 * result.total_pj
