"""Ablation — saturation-detector sensitivity (DESIGN.md §5).

Algorithm 1 re-quantizes when AD "saturates"; the window/tolerance of
the detector controls how long each iteration trains.  The bench runs
the registered ``ablation-saturation`` sweep preset through the
orchestration layer's :class:`SweepRunner` (the same grid as
``repro sweep --preset ablation-saturation``) and reports
epochs-per-iteration and final efficiency, verifying the intuitive
monotonicity: looser tolerance -> earlier re-quantization -> fewer
epochs per iteration.
"""

from repro.api import experiments
from repro.orchestration import SweepRunner
from repro.utils import format_table


def run_sweep():
    sweep = experiments.get_sweep("ablation-saturation")
    result = SweepRunner(jobs=1).run(sweep)
    assert result.ok, [p.error for p in result.points if p.status == "failed"]
    return result


def test_ablation_saturation_tolerance(benchmark):
    result = benchmark.pedantic(run_sweep, rounds=1, iterations=1)
    report = result.aggregate()

    print()
    rows = []
    first_iter_epochs = {}
    for point, entry in zip(result.points, report.entries):
        tolerance = point.config.quant.saturation_tolerance
        epochs = [row.epochs for row in entry.report.rows]
        first_iter_epochs[tolerance] = epochs[0]
        final = entry.report.rows[-1]
        rows.append(
            [
                f"{tolerance:g}",
                str(epochs),
                f"{final.total_ad:.3f}",
                f"{final.test_accuracy * 100:.1f}%",
            ]
        )
    print(
        format_table(
            ["Tolerance", "Epochs per iter", "Final total AD", "Final acc"],
            rows,
            title="Ablation — saturation tolerance sweep",
        )
    )

    # Looser tolerance never trains longer before re-quantizing.
    assert (
        first_iter_epochs[0.5]
        <= first_iter_epochs[0.05]
        <= first_iter_epochs[0.005]
    )
    # Loosest setting fires at the window bound.
    assert first_iter_epochs[0.5] == 3
