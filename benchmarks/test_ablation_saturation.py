"""Ablation — saturation-detector sensitivity (DESIGN.md §5).

Algorithm 1 re-quantizes when AD "saturates"; the window/tolerance of
the detector controls how long each iteration trains.  The bench sweeps
the tolerance and reports epochs-per-iteration and final efficiency,
verifying the intuitive monotonicity: looser tolerance -> earlier
re-quantization -> fewer epochs per iteration.
"""

from repro.core import ADQuantizer, QuantizationSchedule, Trainer
from repro.density import SaturationDetector
from repro.nn import Adam, CrossEntropyLoss
from repro.utils import format_table

from common import cifar10_loaders, make_vgg19


def run_with_tolerance(tolerance: float):
    train_loader, test_loader = cifar10_loaders(seed=5)
    model = make_vgg19(seed=5)
    trainer = Trainer(model, Adam(model.parameters(), lr=3e-3), CrossEntropyLoss())
    quantizer = ADQuantizer(
        trainer,
        QuantizationSchedule(
            max_iterations=2, max_epochs_per_iteration=12, min_epochs_per_iteration=3
        ),
        SaturationDetector(window=3, tolerance=tolerance),
    )
    records = quantizer.run(train_loader, test_loader)
    return records


def test_ablation_saturation_tolerance(benchmark):
    def run_all():
        return {tol: run_with_tolerance(tol) for tol in (0.005, 0.05, 0.5)}

    results = benchmark.pedantic(run_all, rounds=1, iterations=1)

    print()
    rows = []
    first_iter_epochs = {}
    for tolerance, records in results.items():
        epochs = [r.epochs_trained for r in records]
        first_iter_epochs[tolerance] = epochs[0]
        rows.append(
            [
                f"{tolerance:g}",
                str(epochs),
                f"{records[-1].total_density:.3f}",
                f"{records[-1].test_accuracy * 100:.1f}%",
            ]
        )
    print(
        format_table(
            ["Tolerance", "Epochs per iter", "Final total AD", "Final acc"],
            rows,
            title="Ablation — saturation tolerance sweep",
        )
    )

    # Looser tolerance never trains longer before re-quantizing.
    assert (
        first_iter_epochs[0.5]
        <= first_iter_epochs[0.05]
        <= first_iter_epochs[0.005]
    )
    # Loosest setting fires at the window bound.
    assert first_iter_epochs[0.5] == 3
