"""E11 — §V-B claim: analytical estimates overestimate PIM efficiency.

"During analytical estimations in Table III, we get overestimated energy
efficiencies ~5-7x greater than practical hardware implementations
(Table VI)."  The bench computes both efficiency estimates for the
pruned + mixed-precision models and reports their ratio.
"""

from repro.energy import AnalyticalEnergyModel, profile_model, trace_geometry
from repro.models import vgg19
from repro.pim import PIMEnergyModel
from repro.quant import LayerQuantSpec, QuantizationPlan
from repro.utils import format_table

from common import PAPER_VGG19_BITS_ITER2, PAPER_VGG19_PRUNED_CHANNELS
from test_table6_pim_pruned import apply_channel_budgets


def run():
    model = vgg19(num_classes=10, width_multiplier=1.0)
    trace_geometry(model, (3, 32, 32))
    baseline_profiles = profile_model(model, default_bits=16)

    apply_channel_budgets(model, PAPER_VGG19_PRUNED_CHANNELS[:-1])
    names = model.layer_handles().names()
    plan = QuantizationPlan(
        [LayerQuantSpec(n, b) for n, b in zip(names, PAPER_VGG19_BITS_ITER2)]
    )
    pruned_profiles = profile_model(model, plan=plan)

    analytical = AnalyticalEnergyModel()
    analytical_eff = analytical.network_energy_pj(
        baseline_profiles
    ) / analytical.network_energy_pj(pruned_profiles)
    pim = PIMEnergyModel()
    pim_eff = pim.energy_reduction(baseline_profiles, pruned_profiles)
    return analytical_eff, pim_eff


def test_analytical_overestimates_pim_efficiency(benchmark):
    analytical_eff, pim_eff = benchmark.pedantic(run, rounds=1, iterations=1)
    ratio = analytical_eff / pim_eff
    print()
    print(
        format_table(
            ["Estimator", "Efficiency vs 16-bit unpruned", "Notes"],
            [
                ["Analytical (§IV-A)", f"{analytical_eff:.1f}x",
                 "ideal fractional-bit MAC+memory scaling"],
                ["PIM platform (§V)", f"{pim_eff:.1f}x",
                 "Table IV energies, {2,4,8,16} snapping, operand-max"],
                ["Overestimate ratio", f"{ratio:.2f}x", "paper reports ~5-7x"],
            ],
            title="Analytical vs PIM efficiency (VGG19 pruned+mixed)",
        )
    )
    # Direction of the paper's claim: analytical > PIM.
    assert ratio > 1.5
    # And within an order of magnitude of the reported 5-7x band.
    assert ratio < 30.0
