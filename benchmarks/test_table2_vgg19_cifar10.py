"""E3 — Table II(a): AD quantization, VGG19 on (synthetic) CIFAR-10.

Runs Algorithm 1 end to end through the ``vgg19-cifar10-quant`` registry
preset and prints the paper's columns per iteration, including the
row-2a variant that removes the dead last conv layer.  Expected shape
(not absolute numbers): iso-accuracy with the baseline, energy
efficiency ~4x by the final iteration, training complexity < 1x.
"""

from repro.api import experiments, remove_layer_and_retrain


def run_experiment():
    experiment = experiments.build("vgg19-cifar10-quant")
    report = experiment.run()
    # Row 2a: drop the last conv layer (512->512, shape-preserving) and
    # retrain briefly, as in the paper's iteration-2a row.
    row_2a = remove_layer_and_retrain(
        experiment.context, "conv16", epochs=3, label="2a"
    )
    report.rows.append(row_2a)
    return report


def test_table2a_vgg19_cifar10(benchmark):
    report = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    print()
    print(report.format())

    baseline, *rest = report.rows
    final_quant = rest[-2] if len(rest) >= 2 else rest[-1]
    row_2a = report.rows[-1]

    # Row 1 is the reference by construction.
    assert baseline.energy_efficiency == 1.0
    assert baseline.bit_widths == [16] * 17
    # Quantized rows: mixed precision with frozen 16-bit ends.
    assert final_quant.bit_widths[0] == 16 and final_quant.bit_widths[-1] == 16
    assert any(b < 16 for b in final_quant.bit_widths[1:-1])
    # Energy efficiency in the paper's band (they report 4.16-4.19x).
    assert final_quant.energy_efficiency > 2.0
    # Iso-accuracy: within 10 points of the baseline at this micro scale.
    assert final_quant.test_accuracy >= baseline.test_accuracy - 0.10
    # Training complexity reduced (paper: ~0.5x).
    assert final_quant.train_complexity < 1.0
    # Row 2a drops one layer => 16 bit-width entries, efficiency >= final.
    assert len(row_2a.bit_widths) == 16
    assert row_2a.energy_efficiency >= final_quant.energy_efficiency
