"""Executor backends: mid-stream worker death must not hang the driver.

The process backend is exercised with a worker that genuinely *dies*
(``os._exit``, no exception, no cleanup — the shape of an OOM kill or
segfault); the serial backend with an injected ``execute`` that raises
(the closest in-process analogue: a crash escaping
``execute_point``'s structured capture).  In both cases the driver loop
must come back with a structured ``failed`` point for every submitted
task — never a hang, never a silently shorter sweep.
"""

import os

import pytest

from repro.api import experiments
from repro.orchestration import (
    ProcessExecutor,
    Scheduler,
    SerialExecutor,
    SweepPoint,
    SweepRunner,
    execute_point,
)
from repro.orchestration.scheduler import DONE


def micro_config(seed=0):
    return experiments.get_config("vgg11-micro-smoke").evolve(
        quant={"max_iterations": 1, "max_epochs_per_iteration": 1,
               "min_epochs_per_iteration": 1},
        model={"seed": seed}, data={"seed": seed},
    )


DEATH_SEED = 7


def die_on_marked_seed(task):
    """Worker entry point that *dies* (not raises) on the marked seed.

    Module-level so it pickles into pool workers.  ``os._exit`` skips
    all exception handling and interpreter cleanup — the worker process
    simply vanishes, exactly like an external kill.
    """
    if task["config"]["model"]["seed"] == DEATH_SEED:
        os._exit(1)
    return execute_point(task)


def raise_instead_of_outcome(task):
    """An execute seam violating the capture-everything contract."""
    if task["config"]["model"]["seed"] == DEATH_SEED:
        raise RuntimeError("worker crashed before producing an outcome")
    return execute_point(task)


class TestSerialBackend:
    def test_crashing_execute_becomes_failed_point(self):
        result = SweepRunner(execute=raise_instead_of_outcome).run([
            SweepPoint(label="ok", config=micro_config(0)),
            SweepPoint(label="dies", config=micro_config(DEATH_SEED)),
            SweepPoint(label="ok-too", config=micro_config(1)),
        ])
        assert [p.status for p in result.points] == ["ok", "failed", "ok"]
        failed = result.points[1]
        assert "executor crashed" in failed.error
        assert "worker crashed" in failed.error
        assert failed.traceback
        assert result.stats["failed"] == 1
        assert not result.ok

    def test_next_result_without_submissions_raises(self):
        with pytest.raises(RuntimeError, match="no tasks pending"):
            SerialExecutor(execute_point).next_result()


class TestProcessBackend:
    def test_dying_worker_becomes_failed_point(self):
        # jobs=2 with a single dying task: the pool breaks, the driver
        # must get a structured failure back instead of hanging.
        result = SweepRunner(jobs=2, execute=die_on_marked_seed).run([
            SweepPoint(label="dies", config=micro_config(DEATH_SEED)),
        ])
        (point,) = result.points
        assert point.status == "failed"
        assert "executor crashed" in point.error
        assert result.stats == {"total": 1, "executed": 0, "cached": 0,
                                "failed": 1}

    def test_every_dying_worker_accounted_for(self):
        # Two tasks dying in-flight together: both must come back as
        # structured failures (the broken pool fails all its futures).
        bad = micro_config(DEATH_SEED)
        result = SweepRunner(jobs=2, execute=die_on_marked_seed).run([
            SweepPoint(label="dies-a", config=bad),
            SweepPoint(label="dies-b", config=bad.evolve(
                data={"noise": 0.5})),
        ])
        assert [p.status for p in result.points] == ["failed", "failed"]
        assert all("executor crashed" in p.error for p in result.points)

    def test_pool_recreated_after_death_for_later_proposals(self):
        # An adaptive scheduler proposing a good point *after* a worker
        # death must get a fresh pool, not the broken one.
        points = [
            SweepPoint(label="dies", config=micro_config(DEATH_SEED)),
            SweepPoint(label="recovers", config=micro_config(0)),
        ]

        class AfterFailure(Scheduler):
            def __init__(self):
                self._issued = 0

            def next_points(self, completed):
                if len(completed) < self._issued:
                    return []
                if self._issued < len(points):
                    point = points[self._issued]
                    self._issued += 1
                    return [point]
                return DONE

        result = SweepRunner(
            jobs=2, execute=die_on_marked_seed
        ).run_scheduler(AfterFailure(), name="recovery")
        assert [p.status for p in result.points] == ["failed", "ok"]
        assert result.points[1].payload["report"]["rows"]

    def test_next_result_without_submissions_raises(self):
        executor = ProcessExecutor(2, execute_point)
        with pytest.raises(RuntimeError, match="no tasks pending"):
            executor.next_result()

    def test_rejects_single_job(self):
        with pytest.raises(ValueError, match="jobs >= 2"):
            ProcessExecutor(1, execute_point)
