"""Executor backends: mid-stream worker death must not hang the driver.

The process backend is exercised with a worker that genuinely *dies*
(``os._exit``, no exception, no cleanup — the shape of an OOM kill or
segfault); the serial backend with an injected ``execute`` that raises
(the closest in-process analogue: a crash escaping
``execute_point``'s structured capture).  In both cases the driver loop
must come back with a structured ``failed`` point for every submitted
task — never a hang, never a silently shorter sweep.
"""

import os

import pytest

from repro.api import experiments
from repro.orchestration import (
    ProcessExecutor,
    Scheduler,
    SerialExecutor,
    SweepPoint,
    SweepRunner,
    execute_point,
)
from repro.orchestration.scheduler import DONE


def micro_config(seed=0):
    return experiments.get_config("vgg11-micro-smoke").evolve(
        quant={"max_iterations": 1, "max_epochs_per_iteration": 1,
               "min_epochs_per_iteration": 1},
        model={"seed": seed}, data={"seed": seed},
    )


DEATH_SEED = 7


def die_on_marked_seed(task):
    """Worker entry point that *dies* (not raises) on the marked seed.

    Module-level so it pickles into pool workers.  ``os._exit`` skips
    all exception handling and interpreter cleanup — the worker process
    simply vanishes, exactly like an external kill.
    """
    if task["config"]["model"]["seed"] == DEATH_SEED:
        os._exit(1)
    return execute_point(task)


def raise_instead_of_outcome(task):
    """An execute seam violating the capture-everything contract."""
    if task["config"]["model"]["seed"] == DEATH_SEED:
        raise RuntimeError("worker crashed before producing an outcome")
    return execute_point(task)


class TestSerialBackend:
    def test_crashing_execute_becomes_failed_point(self):
        result = SweepRunner(execute=raise_instead_of_outcome).run([
            SweepPoint(label="ok", config=micro_config(0)),
            SweepPoint(label="dies", config=micro_config(DEATH_SEED)),
            SweepPoint(label="ok-too", config=micro_config(1)),
        ])
        assert [p.status for p in result.points] == ["ok", "failed", "ok"]
        failed = result.points[1]
        assert "executor crashed" in failed.error
        assert "worker crashed" in failed.error
        assert failed.traceback
        assert result.stats["failed"] == 1
        assert not result.ok

    def test_next_result_without_submissions_raises(self):
        with pytest.raises(RuntimeError, match="no tasks pending"):
            SerialExecutor(execute_point).next_result()


class TestProcessBackend:
    def test_dying_worker_becomes_failed_point(self):
        # jobs=2 with a single dying task: the pool breaks, the driver
        # must get a structured failure back instead of hanging.
        result = SweepRunner(jobs=2, execute=die_on_marked_seed).run([
            SweepPoint(label="dies", config=micro_config(DEATH_SEED)),
        ])
        (point,) = result.points
        assert point.status == "failed"
        assert "executor crashed" in point.error
        assert result.stats == {"total": 1, "executed": 0, "cached": 0,
                                "failed": 1}

    def test_every_dying_worker_accounted_for(self):
        # Two tasks dying in-flight together: both must come back as
        # structured failures (the broken pool fails all its futures).
        bad = micro_config(DEATH_SEED)
        result = SweepRunner(jobs=2, execute=die_on_marked_seed).run([
            SweepPoint(label="dies-a", config=bad),
            SweepPoint(label="dies-b", config=bad.evolve(
                data={"noise": 0.5})),
        ])
        assert [p.status for p in result.points] == ["failed", "failed"]
        assert all("executor crashed" in p.error for p in result.points)

    def test_pool_recreated_after_death_for_later_proposals(self):
        # An adaptive scheduler proposing a good point *after* a worker
        # death must get a fresh pool, not the broken one.
        points = [
            SweepPoint(label="dies", config=micro_config(DEATH_SEED)),
            SweepPoint(label="recovers", config=micro_config(0)),
        ]

        class AfterFailure(Scheduler):
            def __init__(self):
                self._issued = 0

            def next_points(self, completed):
                if len(completed) < self._issued:
                    return []
                if self._issued < len(points):
                    point = points[self._issued]
                    self._issued += 1
                    return [point]
                return DONE

        result = SweepRunner(
            jobs=2, execute=die_on_marked_seed
        ).run_scheduler(AfterFailure(), name="recovery")
        assert [p.status for p in result.points] == ["failed", "ok"]
        assert result.points[1].payload["report"]["rows"]

    def test_next_result_without_submissions_raises(self):
        executor = ProcessExecutor(2, execute_point)
        with pytest.raises(RuntimeError, match="no tasks pending"):
            executor.next_result()

    def test_rejects_single_job(self):
        with pytest.raises(ValueError, match="jobs >= 2"):
            ProcessExecutor(1, execute_point)


HANG_SEED = 9
NAP_SEED_FLOOR = 20   # seeds >= this sleep briefly (timeout-clock tests)


def fast_or_hang(task):
    """Worker entry point that hangs forever on the marked seed.

    Everything else returns a canned outcome immediately, so timeout
    tests measure the *timeout* machinery, not training time.
    """
    import time

    seed = task["config"]["model"]["seed"]
    if seed == HANG_SEED:
        time.sleep(600)
    if seed >= NAP_SEED_FLOOR:
        time.sleep(1.0)
    return {"index": task["index"], "status": "ok",
            "payload": {"report": {"seed": seed}, "artifacts": {}},
            "duration": 0.0}


class TestTaskTimeout:
    def test_hung_task_becomes_structured_timeout_failure(self):
        result = SweepRunner(
            jobs=2, execute=fast_or_hang, task_timeout=1.0
        ).run([
            SweepPoint(label="quick", config=micro_config(0)),
            SweepPoint(label="hangs", config=micro_config(HANG_SEED)),
        ])
        by_label = {p.label: p for p in result.points}
        assert by_label["quick"].status == "ok"
        hung = by_label["hangs"]
        assert hung.status == "failed"
        assert "task_timeout" in hung.error
        assert "recycled" in hung.error
        assert result.stats["failed"] == 1

    def test_pool_recycled_after_timeout_for_later_proposals(self):
        # A point proposed *after* a timeout must run on a fresh pool.
        points = [
            SweepPoint(label="hangs", config=micro_config(HANG_SEED)),
            SweepPoint(label="recovers", config=micro_config(3)),
        ]

        class AfterTimeout(Scheduler):
            def __init__(self):
                self._issued = 0

            def next_points(self, completed):
                if len(completed) < self._issued:
                    return []
                if self._issued < len(points):
                    point = points[self._issued]
                    self._issued += 1
                    return [point]
                return DONE

        result = SweepRunner(
            jobs=2, execute=fast_or_hang, task_timeout=1.0
        ).run_scheduler(AfterTimeout(), name="timeout-recovery")
        assert [p.status for p in result.points] == ["failed", "ok"]
        assert result.points[1].payload["report"]["seed"] == 3

    def test_clock_starts_when_the_task_runs_not_when_queued(self):
        # Three 1s naps on two workers: the third task *waits* ~1s for
        # a slot before its 1s run.  Wall time exceeds the 1.6s timeout,
        # per-task runtime does not — nothing may time out.
        result = SweepRunner(
            jobs=2, execute=fast_or_hang, task_timeout=1.6
        ).run([
            SweepPoint(label=f"nap{i}",
                       config=micro_config(NAP_SEED_FLOOR + i))
            for i in range(3)
        ])
        assert [p.status for p in result.points] == ["ok", "ok", "ok"]

    def test_nonpositive_timeout_rejected(self):
        with pytest.raises(ValueError, match="task_timeout"):
            ProcessExecutor(2, execute_point, task_timeout=0)

    def test_timeout_outcome_shape_matches_crash_outcome(self):
        from repro.orchestration import crash_outcome, timeout_outcome

        task = {"index": 4, "config": {}}
        timeout = timeout_outcome(task, 2.0, 2.3)
        crash = crash_outcome(task, error=RuntimeError("x"))
        assert set(timeout) == set(crash)
        assert timeout["index"] == 4
        assert timeout["status"] == "timeout"


def _task(index, seed):
    return {"index": index, "config": micro_config(seed).to_dict()}


class TestCancel:
    """The ``cancel`` seam speculative search and job discard ride on."""

    def test_serial_cancel_queued_is_free(self):
        executor = SerialExecutor(fast_or_hang)
        for index in range(3):
            executor.submit(_task(index, NAP_SEED_FLOOR + index))
        assert executor.cancel(1) == "queued"
        assert executor.pending == 2
        # The dropped task never executes and never yields an outcome.
        assert {executor.next_result()["index"],
                executor.next_result()["index"]} == {0, 2}
        with pytest.raises(RuntimeError, match="no tasks pending"):
            executor.next_result()

    def test_serial_cancel_unknown_index(self):
        executor = SerialExecutor(fast_or_hang)
        assert executor.cancel(7) == "unknown"
        executor.submit(_task(0, 0))
        executor.next_result()
        # Already executed and returned: nothing left to cancel.
        assert executor.cancel(0) == "unknown"

    def test_process_cancel_queued_never_consumes_a_slot(self):
        # Two naps fill both workers; the third task sits in the
        # backlog.  Cancelling it is free — it must never be fed to a
        # worker, and exactly two outcomes arrive.
        with ProcessExecutor(2, fast_or_hang) as executor:
            for index in range(2):
                executor.submit(_task(index, NAP_SEED_FLOOR + index))
            executor.submit(_task(2, 0))
            assert executor.cancel(2) == "queued"
            assert executor.pending == 2
            collected = {executor.next_result()["index"],
                         executor.next_result()["index"]}
            assert collected == {0, 1}
            assert executor.pending == 0

    def test_process_cancel_running_discards_the_outcome(self):
        import time

        with ProcessExecutor(2, fast_or_hang) as executor:
            executor.submit(_task(0, NAP_SEED_FLOOR))
            time.sleep(0.5)  # let a worker pick the task up
            assert executor.cancel(0) == "running"
            outcome = executor.next_result()
            # The worker's result is discarded: a structured cancelled
            # marker arrives instead, payload-free, so the abandoned
            # bet can never reach a cache or an --out file.
            assert outcome["index"] == 0
            assert outcome["status"] == "cancelled"
            assert "payload" not in outcome
            assert outcome["error"] is None

    def test_process_cancel_racing_completion_first_writer_wins(self):
        import time

        # The task *finishes* before the cancel lands: the cancel still
        # reports "running" (the outcome is already computed, so it was
        # not free) and the computed payload is still replaced by the
        # cancelled marker — exactly one outcome per task either way.
        with ProcessExecutor(2, fast_or_hang) as executor:
            executor.submit(_task(0, 0))
            executor.submit(_task(1, 1))
            time.sleep(1.0)  # both instant tasks have long finished
            assert executor.cancel(1) == "running"
            outcomes = [executor.next_result(), executor.next_result()]
            by_index = {o["index"]: o for o in outcomes}
            assert set(by_index) == {0, 1}
            assert by_index[0]["status"] == "ok"
            assert by_index[1]["status"] == "cancelled"
            assert "payload" not in by_index[1]
            assert executor.pending == 0

    def test_process_cancel_after_collection_is_unknown(self):
        with ProcessExecutor(2, fast_or_hang) as executor:
            executor.submit(_task(0, 0))
            assert executor.next_result()["status"] == "ok"
            assert executor.cancel(0) == "unknown"

    def test_process_cancel_unknown_index(self):
        with ProcessExecutor(2, fast_or_hang) as executor:
            assert executor.cancel(99) == "unknown"


class TestInterrupt:
    def test_serial_interrupt_stops_between_tasks(self):
        from repro.orchestration import SweepInterrupted

        class Flag:
            fired = False

            def __call__(self):
                return self.fired

        flag = Flag()

        def execute_and_fire(task):
            flag.fired = True
            return {"index": task["index"], "status": "ok",
                    "payload": {"report": {}, "artifacts": {}},
                    "duration": 0.0}

        runner = SweepRunner(execute=execute_and_fire, interrupt=flag)
        with pytest.raises(SweepInterrupted) as err:
            runner.run([
                SweepPoint(label=f"p{i}", config=micro_config(i))
                for i in range(3)
            ])
        # The in-flight point finished; the rest were abandoned cleanly.
        assert len(err.value.result.points) == 1
        assert err.value.pending == 2

    def test_process_interrupt_unblocks_a_waiting_driver(self):
        import threading
        import time

        from repro.orchestration import SweepInterrupted

        class Flag:
            fired = False

            def __call__(self):
                return self.fired

        flag = Flag()
        # Both workers nap ~1s; the flag fires mid-wait and must
        # unblock the driver within an interrupt poll interval, not
        # after the naps complete.
        threading.Timer(0.3, lambda: setattr(flag, "fired", True)).start()
        runner = SweepRunner(jobs=2, execute=fast_or_hang, interrupt=flag)
        t0 = time.time()
        with pytest.raises(SweepInterrupted):
            runner.run([
                SweepPoint(label=f"nap{i}",
                           config=micro_config(NAP_SEED_FLOOR + i))
                for i in range(2)
            ])
        assert time.time() - t0 < 0.95  # well before the 1s naps end
