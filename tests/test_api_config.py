"""Config layer: validation, dict/JSON round-trips, evolve semantics."""

import pytest

from repro.api import (
    DataConfig,
    EnergyConfig,
    ExperimentConfig,
    ModelConfig,
    PruneConfig,
    QuantConfig,
)


def micro_config(**updates) -> ExperimentConfig:
    config = ExperimentConfig(
        name="micro",
        architecture="VGG11",
        dataset="SyntheticCIFAR10",
        model=ModelConfig(arch="vgg11", num_classes=10, width_multiplier=0.0625,
                          image_size=8, seed=0),
        data=DataConfig(dataset="synthetic-cifar10", train_per_class=3,
                        test_per_class=1, image_size=8, seed=0,
                        train_batch_size=15, test_batch_size=10),
        quant=QuantConfig(max_iterations=2, max_epochs_per_iteration=1,
                          min_epochs_per_iteration=1, saturation_window=2,
                          saturation_tolerance=0.9),
        tables=("Table II(a)",),
    )
    return config.evolve(**updates) if updates else config


class TestValidation:
    def test_defaults_are_valid(self):
        ExperimentConfig()

    def test_unknown_arch_rejected(self):
        with pytest.raises(ValueError, match="unknown arch"):
            ModelConfig(arch="alexnet")

    def test_unknown_dataset_rejected(self):
        with pytest.raises(ValueError, match="unknown dataset"):
            DataConfig(dataset="imagenet")

    def test_class_count_mismatch_rejected(self):
        with pytest.raises(ValueError, match="num_classes"):
            micro_config(model={"num_classes": 100})

    def test_vgg_image_size_mismatch_rejected(self):
        with pytest.raises(ValueError, match="image_size"):
            micro_config(model={"image_size": 32})

    def test_resnet_ignores_image_size_mismatch(self):
        # ResNets are resolution-agnostic (global average pooling).
        micro_config(
            architecture="ResNet18",
            model={"arch": "resnet18", "image_size": 32},
        )

    def test_bad_optimizer_rejected(self):
        with pytest.raises(ValueError, match="optimizer"):
            micro_config(optimizer="rmsprop")

    def test_nonpositive_lr_rejected(self):
        with pytest.raises(ValueError, match="lr"):
            micro_config(lr=0.0)

    def test_quant_schedule_validation_reused(self):
        with pytest.raises(ValueError):
            QuantConfig(max_epochs_per_iteration=1, min_epochs_per_iteration=2)

    def test_saturation_window_bounds(self):
        with pytest.raises(ValueError, match="saturation_window"):
            QuantConfig(saturation_window=1)

    def test_prune_min_channels_bounds(self):
        with pytest.raises(ValueError, match="min_channels"):
            PruneConfig(min_channels=0)

    def test_energy_baseline_bits_bounds(self):
        with pytest.raises(ValueError, match="baseline_bits"):
            EnergyConfig(baseline_bits=0)

    def test_configs_are_frozen(self):
        with pytest.raises(Exception):
            micro_config().lr = 1.0


class TestRoundTrip:
    def test_dict_round_trip(self):
        config = micro_config(prune={"enabled": True}, lr=1e-3)
        assert ExperimentConfig.from_dict(config.to_dict()) == config

    def test_json_round_trip(self, tmp_path):
        config = micro_config(energy={"pim": True})
        path = tmp_path / "config.json"
        config.to_json(path)
        assert ExperimentConfig.from_json(path) == config

    def test_tables_survive_as_tuples(self):
        payload = micro_config().to_dict()
        assert payload["tables"] == ["Table II(a)"]
        assert ExperimentConfig.from_dict(payload).tables == ("Table II(a)",)

    def test_unknown_key_rejected(self):
        payload = micro_config().to_dict()
        payload["typo_field"] = 1
        with pytest.raises(ValueError, match="typo_field"):
            ExperimentConfig.from_dict(payload)

    def test_unknown_nested_key_rejected(self):
        payload = micro_config().to_dict()
        payload["quant"]["typo"] = 1
        with pytest.raises(ValueError, match="typo"):
            ExperimentConfig.from_dict(payload)

    def test_non_dict_nested_value_rejected_cleanly(self):
        payload = micro_config().to_dict()
        payload["model"] = None
        with pytest.raises(TypeError, match="model must be a dict"):
            ExperimentConfig.from_dict(payload)


class TestEvolve:
    def test_nested_merge_keeps_other_fields(self):
        base = micro_config()
        changed = base.evolve(quant={"max_iterations": 4})
        assert changed.quant.max_iterations == 4
        assert changed.quant.saturation_window == base.quant.saturation_window
        assert base.quant.max_iterations == 2  # original untouched

    def test_flat_override(self):
        assert micro_config().evolve(lr=1e-4).lr == 1e-4

    def test_unknown_field_rejected(self):
        with pytest.raises(ValueError, match="nonexistent"):
            micro_config().evolve(nonexistent=1)

    def test_evolve_normalizes_lists_to_tuples(self):
        config = micro_config().evolve(tables=["Table X"])
        assert config.tables == ("Table X",)
        hash(config)  # frozen configs must stay hashable
        assert ExperimentConfig.from_dict(config.to_dict()) == config

    def test_evolve_revalidates(self):
        with pytest.raises(ValueError, match="num_classes"):
            micro_config().evolve(model={"num_classes": 7})


class TestDerived:
    def test_input_shape_follows_data(self):
        assert micro_config().input_shape == (3, 8, 8)

    def test_data_num_classes(self):
        assert DataConfig(dataset="synthetic-cifar100").num_classes == 100

    def test_quant_to_schedule_and_saturation(self):
        quant = QuantConfig(max_iterations=3, saturation_window=4,
                            saturation_tolerance=0.1)
        schedule = quant.to_schedule()
        assert schedule.max_iterations == 3
        detector = quant.to_saturation()
        assert detector.window == 4
        assert detector.tolerance == 0.1
