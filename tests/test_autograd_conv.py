"""Convolution/pooling: correctness vs naive loops, gradient checks."""

import numpy as np
import pytest

from repro.autograd import Tensor, grad_check
from repro.autograd.conv import (
    avg_pool2d,
    col2im,
    conv2d,
    conv_output_size,
    global_avg_pool2d,
    im2col,
    max_pool2d,
)


def naive_conv2d(x, w, b=None, stride=1, padding=0):
    """Reference implementation with explicit loops."""
    n, c, h, width = x.shape
    o, _, k, _ = w.shape
    if padding:
        x = np.pad(x, ((0, 0), (0, 0), (padding, padding), (padding, padding)))
    out_h = (h + 2 * padding - k) // stride + 1
    out_w = (width + 2 * padding - k) // stride + 1
    out = np.zeros((n, o, out_h, out_w))
    for img in range(n):
        for oc in range(o):
            for i in range(out_h):
                for j in range(out_w):
                    patch = x[img, :, i * stride : i * stride + k, j * stride : j * stride + k]
                    out[img, oc, i, j] = (patch * w[oc]).sum()
            if b is not None:
                out[img, oc] += b[oc]
    return out


class TestOutputSize:
    def test_basic(self):
        assert conv_output_size(32, 3, 1, 1) == 32
        assert conv_output_size(32, 2, 2, 0) == 16
        assert conv_output_size(7, 3, 2, 0) == 3

    def test_invalid_raises(self):
        with pytest.raises(ValueError):
            conv_output_size(2, 5, 1, 0)


class TestIm2col:
    def test_roundtrip_col2im_accumulates(self, rng):
        x = rng.normal(size=(2, 3, 6, 6))
        cols, out_h, out_w = im2col(x, kernel=3, stride=1, padding=1)
        assert cols.shape == (3 * 9, 2 * out_h * out_w)
        back = col2im(np.ones_like(cols), x.shape, 3, 1, 1)
        # Every interior pixel participates in 9 patches.
        assert back[0, 0, 3, 3] == 9.0

    def test_stride_two_shapes(self, rng):
        x = rng.normal(size=(1, 2, 8, 8))
        cols, out_h, out_w = im2col(x, kernel=2, stride=2, padding=0)
        assert (out_h, out_w) == (4, 4)
        assert cols.shape == (2 * 4, 16)


class TestConv2d:
    @pytest.mark.parametrize("stride,padding", [(1, 0), (1, 1), (2, 0), (2, 1)])
    def test_matches_naive(self, rng, stride, padding):
        x = rng.normal(size=(2, 3, 7, 7))
        w = rng.normal(size=(4, 3, 3, 3))
        b = rng.normal(size=4)
        out = conv2d(Tensor(x), Tensor(w), Tensor(b), stride=stride, padding=padding)
        expected = naive_conv2d(x, w, b, stride=stride, padding=padding)
        assert np.allclose(out.data, expected)

    def test_no_bias(self, rng):
        x = rng.normal(size=(1, 2, 5, 5))
        w = rng.normal(size=(3, 2, 3, 3))
        out = conv2d(Tensor(x), Tensor(w))
        assert np.allclose(out.data, naive_conv2d(x, w))

    def test_gradients_numerically(self, rng):
        x = Tensor(rng.normal(size=(2, 2, 5, 5)), requires_grad=True)
        w = Tensor(rng.normal(size=(3, 2, 3, 3)), requires_grad=True)
        b = Tensor(rng.normal(size=3), requires_grad=True)
        assert grad_check(
            lambda x_, w_, b_: conv2d(x_, w_, b_, stride=1, padding=1),
            [x, w, b],
            atol=1e-5,
        )

    def test_gradients_strided(self, rng):
        x = Tensor(rng.normal(size=(1, 2, 6, 6)), requires_grad=True)
        w = Tensor(rng.normal(size=(2, 2, 3, 3)), requires_grad=True)
        assert grad_check(
            lambda x_, w_: conv2d(x_, w_, stride=2, padding=1), [x, w], atol=1e-5
        )

    def test_channel_mismatch_raises(self, rng):
        x = Tensor(rng.normal(size=(1, 3, 5, 5)))
        w = Tensor(rng.normal(size=(2, 4, 3, 3)))
        with pytest.raises(ValueError):
            conv2d(x, w)

    def test_non_square_kernel_rejected(self, rng):
        x = Tensor(rng.normal(size=(1, 1, 5, 5)))
        w = Tensor(rng.normal(size=(1, 1, 3, 2)))
        with pytest.raises(ValueError):
            conv2d(x, w)

    def test_1x1_conv(self, rng):
        x = rng.normal(size=(2, 4, 5, 5))
        w = rng.normal(size=(6, 4, 1, 1))
        out = conv2d(Tensor(x), Tensor(w))
        expected = np.einsum("nchw,oc->nohw", x, w[:, :, 0, 0])
        assert np.allclose(out.data, expected)


class TestMaxPool:
    def test_values_fast_path(self):
        x = np.arange(16.0).reshape(1, 1, 4, 4)
        out = max_pool2d(Tensor(x), 2)
        assert np.allclose(out.data, [[[[5.0, 7.0], [13.0, 15.0]]]])

    def test_grad_routes_to_max(self):
        x = Tensor(np.arange(16.0).reshape(1, 1, 4, 4), requires_grad=True)
        max_pool2d(x, 2).sum().backward()
        expected = np.zeros((1, 1, 4, 4))
        expected[0, 0, 1, 1] = expected[0, 0, 1, 3] = 1.0
        expected[0, 0, 3, 1] = expected[0, 0, 3, 3] = 1.0
        assert np.allclose(x.grad, expected)

    def test_strided_slow_path_matches_naive(self, rng):
        x = rng.normal(size=(2, 3, 7, 7))
        out = max_pool2d(Tensor(x), 3, stride=2)
        assert out.shape == (2, 3, 3, 3)
        for i in range(3):
            for j in range(3):
                window = x[:, :, 2 * i : 2 * i + 3, 2 * j : 2 * j + 3]
                assert np.allclose(out.data[:, :, i, j], window.max(axis=(2, 3)))

    def test_grad_check_slow_path(self, rng):
        x = Tensor(rng.normal(size=(1, 2, 5, 5)), requires_grad=True)
        assert grad_check(lambda x_: max_pool2d(x_, 3, stride=2), [x], atol=1e-5)


class TestAvgPool:
    def test_values(self):
        x = np.arange(16.0).reshape(1, 1, 4, 4)
        out = avg_pool2d(Tensor(x), 2)
        assert np.allclose(out.data, [[[[2.5, 4.5], [10.5, 12.5]]]])

    def test_grad_uniform(self):
        x = Tensor(np.ones((1, 1, 4, 4)), requires_grad=True)
        avg_pool2d(x, 2).sum().backward()
        assert np.allclose(x.grad, np.full((1, 1, 4, 4), 0.25))

    def test_strided_grad_check(self, rng):
        x = Tensor(rng.normal(size=(1, 2, 6, 6)), requires_grad=True)
        assert grad_check(lambda x_: avg_pool2d(x_, 3, stride=3), [x], atol=1e-5)


class TestGlobalAvgPool:
    def test_values_and_shape(self, rng):
        x = rng.normal(size=(2, 3, 5, 5))
        out = global_avg_pool2d(Tensor(x))
        assert out.shape == (2, 3, 1, 1)
        assert np.allclose(out.data[..., 0, 0], x.mean(axis=(2, 3)))

    def test_grad(self, rng):
        x = Tensor(rng.normal(size=(1, 2, 4, 4)), requires_grad=True)
        global_avg_pool2d(x).sum().backward()
        assert np.allclose(x.grad, np.full((1, 2, 4, 4), 1.0 / 16.0))
