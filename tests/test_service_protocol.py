"""Service protocol: framing round-trips, typed errors, correlation."""

import json

import pytest

from repro.service import protocol
from repro.service.protocol import ProtocolError


class TestRoundTrips:
    def test_request_round_trip(self):
        message = protocol.request(7, "submit", {"preset": "x", "priority": 3})
        line = protocol.encode(message)
        assert line.endswith(b"\n")
        assert b"\n" not in line[:-1]
        decoded = protocol.decode_line(line)
        assert decoded == message
        assert protocol.kind_of(decoded) == "request"

    def test_response_round_trip(self):
        message = protocol.response(7, {"job": 1})
        decoded = protocol.decode_line(protocol.encode(message))
        assert decoded == message
        assert protocol.kind_of(decoded) == "response"

    def test_error_response_round_trip(self):
        message = protocol.error_response(None, protocol.E_PARSE, "nope")
        decoded = protocol.decode_line(protocol.encode(message))
        assert decoded["error"] == {"code": "parse_error", "message": "nope"}
        assert protocol.kind_of(decoded) == "response"

    def test_event_round_trip(self):
        message = protocol.event("point", data={"label": "p"}, job=4)
        decoded = protocol.decode_line(protocol.encode(message))
        assert decoded == message
        assert protocol.kind_of(decoded) == "event"

    def test_params_with_newlines_stay_one_line(self):
        # ensure_ascii escapes everything; framing cannot be broken by
        # payload content.
        message = protocol.request(1, "submit",
                                   {"note": "line1\nline2 "})
        line = protocol.encode(message)
        assert line.count(b"\n") == 1
        assert protocol.decode_line(line)["params"]["note"] \
            == "line1\nline2 "

    def test_str_input_accepted(self):
        message = protocol.decode_line(
            json.dumps({"v": 1, "id": 1, "method": "status"})
        )
        assert message["method"] == "status"


class TestTypedErrors:
    def assert_code(self, line, code):
        with pytest.raises(ProtocolError) as err:
            protocol.decode_line(line)
        assert err.value.code == code

    def test_garbage_is_parse_error(self):
        self.assert_code(b"not json at all\n", protocol.E_PARSE)

    def test_non_utf8_is_parse_error(self):
        self.assert_code(b"\xff\xfe{}\n", protocol.E_PARSE)

    def test_non_object_is_invalid(self):
        self.assert_code(b"[1,2,3]\n", protocol.E_INVALID)

    def test_oversized_line_is_typed(self):
        line = b'{"v":1,"pad":"' + b"x" * protocol.MAX_LINE_BYTES + b'"}'
        self.assert_code(line, protocol.E_OVERSIZED)

    def test_missing_version_is_protocol_mismatch(self):
        self.assert_code(b'{"id":1,"method":"status"}', protocol.E_PROTOCOL)

    def test_wrong_version_is_protocol_mismatch(self):
        self.assert_code(b'{"v":99,"id":1,"method":"status"}',
                         protocol.E_PROTOCOL)

    def test_shapeless_object_is_invalid(self):
        self.assert_code(b'{"v":1,"something":"else"}', protocol.E_INVALID)

    def test_request_without_id_is_invalid(self):
        self.assert_code(b'{"v":1,"method":"status"}', protocol.E_INVALID)

    def test_error_with_unknown_code_is_invalid(self):
        bad = {"v": 1, "id": 1, "error": {"code": "made_up", "message": "x"}}
        self.assert_code(json.dumps(bad).encode(), protocol.E_INVALID)

    def test_oversized_encode_refused(self):
        with pytest.raises(ProtocolError) as err:
            protocol.encode({"v": 1, "event": "e", "job": None,
                             "data": "x" * protocol.MAX_LINE_BYTES})
        assert err.value.code == protocol.E_OVERSIZED

    def test_protocol_error_rejects_unknown_code(self):
        with pytest.raises(ValueError):
            ProtocolError("not_a_code", "boom")

    def test_to_error_carries_request_id(self):
        err = ProtocolError(protocol.E_BAD_PARAMS, "bad")
        message = err.to_error(42)
        assert message["id"] == 42
        assert message["error"]["code"] == "bad_params"


class TestHandshake:
    def test_hello_event_carries_protocol_and_version(self):
        hello = protocol.hello_event()
        data = protocol.check_hello(hello)
        assert data["protocol"] == protocol.PROTOCOL_VERSION
        assert data["version"] == protocol.repro_version()

    def test_check_hello_rejects_other_events(self):
        with pytest.raises(ProtocolError) as err:
            protocol.check_hello(protocol.event("point", data={}))
        assert err.value.code == protocol.E_INVALID

    def test_check_hello_rejects_version_mismatch(self):
        hello = protocol.event("hello",
                               data={"protocol": 99, "version": "9.9.9"})
        with pytest.raises(ProtocolError) as err:
            protocol.check_hello(hello)
        assert err.value.code == protocol.E_PROTOCOL

    def test_repro_version_matches_package(self):
        from repro import __version__

        assert protocol.repro_version() == __version__
