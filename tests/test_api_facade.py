"""Façade equivalence: ExperimentRunner == config-built Pipeline.

The runner is a thin façade over the pipeline API; under a fixed seed
both entry points must produce *identical* TableRows.  Also covers the
satellite fixes: the pre-run RuntimeError guard and the deprecation shim
for the old private training method.
"""

import numpy as np
import pytest

from repro.api import (
    DataConfig,
    ExperimentConfig,
    ModelConfig,
    Pipeline,
    PruneConfig,
    QuantConfig,
    QuantizeStage,
    build_context,
)
from repro.core import ExperimentRunner
from repro.data import DataLoader
from repro.data.synthetic import SyntheticCIFAR10
from repro.models import vgg11
from repro.nn import Adam, CrossEntropyLoss


def micro_config(prune: bool = False) -> ExperimentConfig:
    return ExperimentConfig(
        name="equivalence",
        architecture="VGG11",
        dataset="SyntheticCIFAR10",
        model=ModelConfig(arch="vgg11", num_classes=10, width_multiplier=0.0625,
                          image_size=8, seed=7),
        data=DataConfig(dataset="synthetic-cifar10", train_per_class=4,
                        test_per_class=2, image_size=8, noise=0.6, seed=3,
                        train_batch_size=20, test_batch_size=20),
        quant=QuantConfig(max_iterations=3, max_epochs_per_iteration=2,
                          min_epochs_per_iteration=1, saturation_window=2,
                          saturation_tolerance=0.5),
        prune=PruneConfig(enabled=prune),
    )


def build_runner(config: ExperimentConfig) -> ExperimentRunner:
    """Hand-wire the same workload the config describes (legacy style)."""
    data = config.data
    rng = np.random.default_rng(data.seed)
    train_set, test_set = SyntheticCIFAR10(
        train_per_class=data.train_per_class,
        test_per_class=data.test_per_class,
        image_size=data.image_size,
        noise=data.noise,
        seed=data.seed,
    )
    model = vgg11(
        num_classes=config.model.num_classes,
        width_multiplier=config.model.width_multiplier,
        image_size=config.model.image_size,
        rng=np.random.default_rng(config.model.seed),
    )
    return ExperimentRunner(
        model,
        DataLoader(train_set, batch_size=data.train_batch_size, shuffle=True, rng=rng),
        DataLoader(test_set, batch_size=data.test_batch_size),
        Adam(model.parameters(), lr=config.lr),
        CrossEntropyLoss(),
        input_shape=config.input_shape,
        schedule=config.quant.to_schedule(),
        saturation=config.quant.to_saturation(),
        prune=config.prune.enabled,
        architecture=config.architecture,
        dataset=config.dataset,
    )


class TestFacadeEquivalence:
    @pytest.mark.parametrize("prune", [False, True])
    def test_runner_and_pipeline_rows_identical(self, prune):
        config = micro_config(prune=prune)
        runner_report = build_runner(config).run()
        pipeline_report = Pipeline([QuantizeStage()]).run(build_context(config))
        assert runner_report.rows == pipeline_report.rows
        assert runner_report.layer_names == pipeline_report.layer_names

    def test_run_twice_restarts_the_experiment(self):
        runner = build_runner(micro_config())
        first = runner.run()
        second = runner.run()
        # Pre-façade contract: each run() returns a fresh report (the
        # initial plan is re-applied; trained weights persist).
        assert second is not first
        assert len(second.rows) <= runner.schedule.max_iterations
        assert second.rows[0].bit_widths == first.rows[0].bit_widths
        assert second.rows[0].energy_efficiency == 1.0

    def test_runner_exposes_context_state(self):
        config = micro_config()
        runner = build_runner(config)
        report = runner.run()
        # Legacy attribute surface still works (tests/examples rely on it).
        assert runner.quantizer.plan.bit_widths() == report.rows[-1].bit_widths
        assert runner._complexity is runner.ctx.complexity
        assert runner._baseline_profiles is runner.ctx.baseline_profiles
        assert runner.trainer is runner.ctx.trainer
        assert runner.schedule.max_iterations == 3


class TestPreRunGuard:
    def test_remove_layer_before_run_raises_runtime_error(self):
        runner = build_runner(micro_config())
        with pytest.raises(RuntimeError, match="run\\(\\) must be called first"):
            runner.remove_layer_and_retrain("conv2", epochs=1)

    def test_remove_layer_after_run_works(self):
        runner = build_runner(micro_config())
        runner.run()
        # conv2 of VGG11 maps 128->128 at this scale: shape-preserving.
        handles = runner.model.layer_handles()
        name = next(
            h.name for h in handles
            if h.is_conv and h.unit.conv.in_channels == h.unit.conv.out_channels
        )
        row = runner.remove_layer_and_retrain(name, epochs=1)
        assert row.label == "2a"
        assert len(row.bit_widths) == len(handles) - 1


class TestPublicTrainUntilSaturation:
    def test_public_name_is_the_api(self):
        # The deprecation shim for the old `_`-prefixed name is gone;
        # the public method is the only spelling.
        runner = build_runner(micro_config())
        runner.ctx.prepare()
        assert not hasattr(runner.quantizer, "_train_until_saturation")
        epochs, accuracy = runner.quantizer.train_until_saturation(
            runner.train_loader
        )
        assert epochs >= 1
        assert 0.0 <= accuracy <= 1.0
