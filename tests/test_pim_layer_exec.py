"""Full-layer execution on the PIM platform (float -> integer -> float).

The invariant: executing a layer on the simulated hardware must equal a
float computation over the *fake-quantized* operands — i.e. the
accelerator realizes exactly the arithmetic the quantization-aware
training assumed.
"""

import numpy as np
import pytest

from repro.autograd import Tensor
from repro.autograd.conv import conv2d
from repro.pim import PIMAccelerator, execute_conv_layer, execute_linear_layer
from repro.quant import UniformQuantizer


def fake_quant_static(x, bits):
    return UniformQuantizer(bits, dynamic=False).calibrate(x).fake_quant(x)


class TestLinearExecution:
    @pytest.mark.parametrize("bits", [2, 4, 8])
    def test_matches_fake_quant_float_product(self, rng, bits):
        acts = np.abs(rng.normal(size=(6, 20)))
        weights = rng.normal(size=(20, 9))
        result = execute_linear_layer(acts, weights, bits)
        expected = fake_quant_static(acts, bits) @ fake_quant_static(weights, bits)
        assert np.allclose(result.output, expected, atol=1e-9)

    def test_snapping_reported(self, rng):
        acts = rng.normal(size=(2, 8))
        weights = rng.normal(size=(8, 3))
        result = execute_linear_layer(acts, weights, bits=5)
        assert result.weight_bits == 8
        assert result.activation_bits == 8

    def test_activity_populated(self, rng):
        result = execute_linear_layer(
            rng.normal(size=(3, 10)), rng.normal(size=(10, 4)), 4
        )
        assert result.activity.matvecs == 3
        assert result.activity.cell_ops > 0

    def test_custom_accelerator_used(self, rng):
        accelerator = PIMAccelerator(rows=4, cols=8)
        execute_linear_layer(
            rng.normal(size=(2, 10)), rng.normal(size=(10, 2)), 2, accelerator
        )
        assert accelerator.activity().matvecs == 2

    def test_shape_validation(self, rng):
        with pytest.raises(ValueError):
            execute_linear_layer(rng.normal(size=(2, 3)), rng.normal(size=(4, 2)), 4)
        with pytest.raises(ValueError):
            execute_linear_layer(rng.normal(size=3), rng.normal(size=(3, 2)), 4)


class TestConvExecution:
    @pytest.mark.parametrize("stride,padding", [(1, 0), (1, 1), (2, 1)])
    def test_matches_fake_quant_conv(self, rng, stride, padding):
        bits = 4
        inputs = np.abs(rng.normal(size=(2, 3, 8, 8)))  # post-ReLU-like
        weights = rng.normal(size=(5, 3, 3, 3))
        result = execute_conv_layer(inputs, weights, bits, stride, padding)
        # Reference: float conv over statically fake-quantized operands.
        # Note: quantization ranges must match the matrix-form ranges,
        # which are global min/max — identical for tensor and matrix
        # views of the same data, except im2col padding introduces zeros.
        if padding > 0:
            padded = np.pad(
                inputs, ((0, 0), (0, 0), (padding, padding), (padding, padding))
            )
            lo, hi = padded.min(), padded.max()
        else:
            lo, hi = inputs.min(), inputs.max()
        iq = UniformQuantizer(bits, dynamic=False)
        iq.x_min, iq.x_max = float(lo), float(hi)
        fq_inputs = iq.fake_quant(inputs)
        fq_weights = fake_quant_static(weights, bits)
        expected = conv2d(
            Tensor(fq_inputs), Tensor(fq_weights), stride=stride, padding=padding
        ).data
        assert np.allclose(result.output, expected, atol=1e-8)

    def test_output_shape(self, rng):
        result = execute_conv_layer(
            rng.normal(size=(1, 2, 6, 6)), rng.normal(size=(4, 2, 3, 3)), 2,
            stride=1, padding=1,
        )
        assert result.output.shape == (1, 4, 6, 6)

    def test_incompatible_shapes(self, rng):
        with pytest.raises(ValueError):
            execute_conv_layer(
                rng.normal(size=(1, 3, 6, 6)), rng.normal(size=(4, 2, 3, 3)), 4
            )

    def test_trained_quantized_layer_runs_on_hardware(self, rng):
        """End-to-end: take a ConvUnit trained with fake quantization and
        execute its math on the accelerator."""
        from repro.models.blocks import ConvUnit, MeasurementContext

        unit = ConvUnit(
            "u", 3, 4, 3, MeasurementContext(), padding=1,
            batch_norm=False, bias=False, rng=rng,
        )
        inputs = np.abs(rng.normal(size=(2, 3, 6, 6)))
        result = execute_conv_layer(inputs, unit.conv.weight.data, bits=8, padding=1)
        assert result.output.shape == (2, 4, 6, 6)
        assert np.isfinite(result.output).all()
        # 8-bit quantization error is small relative to the float conv.
        float_out = conv2d(Tensor(inputs), unit.conv.weight, padding=1).data
        rel_err = np.abs(result.output - float_out).max() / (
            np.abs(float_out).max() + 1e-12
        )
        assert rel_err < 0.05
