"""Hypothesis property tests on cross-module invariants.

These cover the contracts that the reproduction's conclusions rest on:
energy monotonicity in precision, snapping correctness, AD bounds under
arbitrary activations, eqn-3 bit-width dynamics, and PIM exactness under
mixed operand widths.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.ad_quant import scale_bits
from repro.energy import LayerProfile
from repro.energy.analytical import AnalyticalEnergyModel
from repro.pim import PIMAccelerator, PIMEnergyModel
from repro.quant import QuantizationPlan, snap_to_hardware_precision

BITS = st.integers(min_value=1, max_value=32)
DENSITY = st.floats(min_value=0.0, max_value=1.0, allow_nan=False)


class TestSnappingProperties:
    @given(BITS)
    @settings(max_examples=60, deadline=None)
    def test_snap_never_shrinks_below_input_within_range(self, bits):
        snapped = snap_to_hardware_precision(bits)
        assert snapped in (2, 4, 8, 16)
        if bits <= 16:
            assert snapped >= bits

    @given(BITS)
    @settings(max_examples=60, deadline=None)
    def test_snap_idempotent(self, bits):
        snapped = snap_to_hardware_precision(bits)
        assert snap_to_hardware_precision(snapped) == snapped

    @given(st.integers(min_value=1, max_value=31))
    @settings(max_examples=60, deadline=None)
    def test_snap_monotone(self, bits):
        assert snap_to_hardware_precision(bits + 1) >= snap_to_hardware_precision(bits)

    @given(st.integers(min_value=17, max_value=64))
    @settings(max_examples=40, deadline=None)
    def test_snap_saturates_at_the_largest_supported(self, bits):
        """Table II(c)'s 22-/24-bit widths execute as 16-bit."""
        assert snap_to_hardware_precision(bits) == 16

    @given(BITS, st.permutations([2, 4, 8, 16]))
    @settings(max_examples=40, deadline=None)
    def test_snap_unsorted_supported_is_order_independent(self, bits, order):
        assert snap_to_hardware_precision(bits, tuple(order)) == \
            snap_to_hardware_precision(bits)

    def test_snap_rejects_empty_supported(self):
        with pytest.raises(ValueError, match="non-empty"):
            snap_to_hardware_precision(8, ())

    def test_snap_rejects_nonpositive_precisions(self):
        with pytest.raises(ValueError, match=">= 1"):
            snap_to_hardware_precision(8, (0, 4, 8))


class TestScaleBitsProperties:
    @given(BITS, DENSITY, DENSITY)
    @settings(max_examples=80, deadline=None)
    def test_monotone_in_density(self, bits, low, high):
        low, high = sorted((low, high))
        assert scale_bits(bits, low) <= scale_bits(bits, high)

    @given(BITS, DENSITY, st.integers(min_value=1, max_value=8))
    @settings(max_examples=80, deadline=None)
    def test_clamps_at_min_bits_and_never_increases(self, bits, density,
                                                    min_bits):
        scaled = scale_bits(bits, density, min_bits)
        assert scaled >= min_bits
        assert scaled <= max(bits, min_bits)

    @given(BITS)
    @settings(max_examples=40, deadline=None)
    def test_density_one_is_a_fixpoint(self, bits):
        assert scale_bits(bits, 1.0) == bits

    @given(BITS)
    @settings(max_examples=20, deadline=None)
    def test_out_of_range_density_rejected(self, bits):
        with pytest.raises(ValueError):
            scale_bits(bits, 1.5)
        with pytest.raises(ValueError):
            scale_bits(bits, -0.1)


LAYER_VECTORS = st.lists(
    st.tuples(st.integers(min_value=0, max_value=99), BITS),
    min_size=1, max_size=8, unique_by=lambda pair: pair[0],
)


class TestBitVectorRoundTripProperties:
    @given(LAYER_VECTORS)
    @settings(max_examples=60, deadline=None)
    def test_plan_vector_round_trip(self, pairs):
        vector = {f"layer{i}": bits for i, bits in pairs}
        plan = QuantizationPlan.from_bit_vector(vector)
        assert plan.to_bit_vector() == vector
        assert plan.bit_widths() == list(vector.values())
        # A second round trip is the identity.
        again = QuantizationPlan.from_bit_vector(plan.to_bit_vector())
        assert again.to_bit_vector() == vector


def profile_with_bits(bits, input_bits=None):
    return LayerProfile(
        name="l", kind="conv", in_channels=4, out_channels=8, kernel=3,
        input_size=8, output_size=8, bits=bits, input_bits=input_bits,
    )


class TestEnergyMonotonicity:
    @given(st.integers(min_value=1, max_value=31))
    @settings(max_examples=40, deadline=None)
    def test_analytical_energy_monotone_in_bits(self, bits):
        model = AnalyticalEnergyModel()
        assert model.layer_energy_pj(profile_with_bits(bits)) < model.layer_energy_pj(
            profile_with_bits(bits + 1)
        )

    @given(st.integers(min_value=1, max_value=15), st.integers(min_value=1, max_value=15))
    @settings(max_examples=40, deadline=None)
    def test_pim_energy_monotone_under_snapping(self, low, extra):
        high = low + extra
        model = PIMEnergyModel()
        low_e = model.layer_energy_uj(profile_with_bits(low, input_bits=low))
        high_e = model.layer_energy_uj(profile_with_bits(high, input_bits=high))
        assert high_e >= low_e

    @given(BITS, BITS)
    @settings(max_examples=40, deadline=None)
    def test_operand_max_rule_symmetric_bound(self, weight_bits, input_bits):
        """operand-max energy >= weight-only energy, always."""
        operand_max = PIMEnergyModel()
        weight_only = PIMEnergyModel(precision_rule="weight-only")
        profile = profile_with_bits(weight_bits, input_bits=input_bits)
        assert operand_max.layer_energy_uj(profile) >= weight_only.layer_energy_uj(
            profile
        )


class TestEqn3Dynamics:
    @given(
        st.integers(min_value=1, max_value=32),
        st.floats(min_value=0.0, max_value=1.0, allow_nan=False),
    )
    @settings(max_examples=80, deadline=None)
    def test_bits_never_increase(self, bits, density):
        new_bits = max(1, round(bits * density))
        assert 1 <= new_bits <= bits

    @given(st.integers(min_value=1, max_value=32))
    @settings(max_examples=40, deadline=None)
    def test_density_one_is_fixed_point(self, bits):
        assert max(1, round(bits * 1.0)) == bits

    @given(
        st.lists(
            st.floats(min_value=0.0, max_value=1.0, allow_nan=False),
            min_size=1,
            max_size=6,
        )
    )
    @settings(max_examples=40, deadline=None)
    def test_iterated_eqn3_terminates(self, densities):
        """Repeatedly applying eqn. 3 with any density sequence reaches a
        fixed point in finitely many steps (bits are positive integers
        and non-increasing)."""
        bits = 16
        for density in densities * 10:
            new_bits = max(1, round(bits * density))
            assert new_bits <= bits
            bits = new_bits
        assert bits >= 1


class TestPIMExactnessMixedWidths:
    @given(
        st.sampled_from([2, 4, 8]),
        st.sampled_from([2, 4, 8, 16]),
        st.integers(min_value=0, max_value=2**31 - 1),
    )
    @settings(max_examples=20, deadline=None)
    def test_property_mixed_width_gemv_exact(self, w_bits, a_bits, seed):
        rng = np.random.default_rng(seed)
        weights = rng.integers(0, 1 << w_bits, size=(12, 5))
        acts = rng.integers(0, 1 << a_bits, size=(2, 12))
        accelerator = PIMAccelerator(rows=8, cols=8 * w_bits)
        accelerator.load_matrix(weights, w_bits, activation_bits=a_bits)
        assert np.array_equal(accelerator.matmul(acts), acts @ weights)

    @given(st.integers(min_value=0, max_value=2**31 - 1))
    @settings(max_examples=20, deadline=None)
    def test_property_zero_activation_zero_output(self, seed):
        rng = np.random.default_rng(seed)
        weights = rng.integers(0, 16, size=(10, 4))
        accelerator = PIMAccelerator(rows=16, cols=16)
        accelerator.load_matrix(weights, 4)
        assert np.array_equal(
            accelerator.matvec(np.zeros(10, dtype=int)), np.zeros(4, dtype=int)
        )


class TestDensityUnderQuantization:
    @given(
        st.integers(min_value=1, max_value=8),
        st.integers(min_value=0, max_value=2**31 - 1),
    )
    @settings(max_examples=30, deadline=None)
    def test_fake_quant_never_creates_nonzeros_from_relu_zeros(self, bits, seed):
        """Quantizing a post-ReLU tensor cannot turn zeros into non-zeros
        (x_min = 0 maps to code 0 maps back to 0), so measured AD can
        only stay equal or drop under activation quantization."""
        from repro.quant import UniformQuantizer

        rng = np.random.default_rng(seed)
        acts = np.maximum(rng.normal(size=100), 0.0)
        quantized = UniformQuantizer(bits).fake_quant(acts)
        zero_positions = acts == 0.0
        assert np.all(quantized[zero_positions] == 0.0)
        before = np.count_nonzero(acts)
        after = np.count_nonzero(quantized)
        assert after <= before
