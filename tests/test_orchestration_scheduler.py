"""Scheduler protocol, StaticScheduler bit-identity, driver semantics."""

import pytest

from repro.api import experiments
from repro.orchestration import (
    DONE,
    ResultCache,
    Scheduler,
    StaticScheduler,
    SweepConfig,
    SweepPoint,
    SweepRunner,
    execute_point,
    expand,
    sweep_out_payload,
)


def micro_sweep(seeds=(0, 1), **quant):
    overrides = {"max_iterations": 1, "max_epochs_per_iteration": 1,
                 "min_epochs_per_iteration": 1}
    overrides.update(quant)
    return SweepConfig(
        name="micro",
        base=experiments.get_config("vgg11-micro-smoke").evolve(
            quant=overrides
        ),
        seeds=tuple(seeds),
    )


def micro_point(label, seed=0):
    config = experiments.get_config("vgg11-micro-smoke").evolve(
        quant={"max_iterations": 1, "max_epochs_per_iteration": 1,
               "min_epochs_per_iteration": 1},
        model={"seed": seed}, data={"seed": seed},
    )
    return SweepPoint(label=label, config=config)


# ---------------------------------------------------------------------------
# The pre-split SweepRunner.run, reimplemented verbatim (serial path) as
# the reference for the bit-identity regression: the scheduler/executor
# driver must reproduce its results, stats, and streamed payloads
# exactly on a static point list.
# ---------------------------------------------------------------------------

def legacy_run(points, name, cache=None, on_point=None):
    from repro.orchestration import PointResult

    points = list(points)
    total = len(points)
    results = [None] * total

    def finish(position, result):
        results[position] = result
        if on_point is not None:
            on_point(result, position, total)

    groups = {}
    for position, point in enumerate(points):
        groups.setdefault(point.config.cache_key(), []).append(position)

    pending = []
    for key, positions in groups.items():
        payload = cache.load(points[positions[0]].config) if cache else None
        if payload is None:
            pending.append(key)
            continue
        for position in positions:
            point = points[position]
            finish(position, PointResult(
                label=point.label, key=key, status="cached",
                payload=payload, config=point.config, index=point.index,
            ))

    for key in pending:
        leader = groups[key][0]
        outcome = execute_point(
            {"index": leader, "config": points[leader].config.to_dict()}
        )
        if outcome["status"] == "ok" and cache is not None:
            cache.store(points[leader].config, outcome["payload"])
        for position in groups[key]:
            point = points[position]
            finish(position, PointResult(
                label=point.label, key=key, status=outcome["status"],
                payload=outcome.get("payload"),
                error=outcome.get("error"),
                traceback=outcome.get("traceback"),
                duration=outcome.get("duration", 0.0),
                config=point.config, index=point.index,
            ))

    from repro.orchestration import SweepResult

    return SweepResult(name=name, points=list(results))


def _normalized(payload):
    """A sweep payload with run-local durations zeroed."""
    import copy

    payload = copy.deepcopy(payload)
    for point in payload["points"]:
        point["duration"] = 0.0
    return payload


class StreamCapture:
    """Records the sweep --out payload after every finished point."""

    def __init__(self, name, points):
        self.name = name
        self.points = list(points)
        self.results = [None] * len(self.points)
        self.writes = []

    def on_point(self, result, position, total):
        self.results[position] = result
        self.writes.append(_normalized(
            sweep_out_payload(self.name, self.points, self.results)
        ))


class TestStaticBitIdentity:
    """Acceptance: the refactored driver is bit-identical to the
    pre-split runner on the ``smoke-seeds`` preset — result rows, stats,
    and every intermediate streamed ``--out`` payload, cold and warm."""

    def test_smoke_seeds_cold_and_warm(self, tmp_path):
        sweep = experiments.get_sweep("smoke-seeds")
        points = expand(sweep)

        for label, caches in (
            ("cold", (None, None)),
            ("warm", (ResultCache(tmp_path / "legacy"),
                      ResultCache(tmp_path / "driver"))),
        ):
            legacy_cache, driver_cache = caches
            if label == "warm":  # populate both caches identically first
                legacy_run(points, sweep.name, cache=legacy_cache)
                SweepRunner(cache=driver_cache).run(sweep, points=points)

            legacy_stream = StreamCapture(sweep.name, points)
            legacy = legacy_run(points, sweep.name, cache=legacy_cache,
                                on_point=legacy_stream.on_point)
            driver_stream = StreamCapture(sweep.name, points)
            driver = SweepRunner(
                cache=driver_cache, on_point=driver_stream.on_point
            ).run(sweep, points=points)

            assert _normalized(driver.to_dict()) \
                == _normalized(legacy.to_dict()), label
            assert [p.status for p in driver.points] \
                == [p.status for p in legacy.points], label
            assert [p.payload for p in driver.points] \
                == [p.payload for p in legacy.points], label
            # The streamed payload sequence — every intermediate state of
            # a hypothetical --out file — matches write for write.
            assert driver_stream.writes == legacy_stream.writes, label

    def test_scheduler_path_equals_run_path(self):
        sweep = micro_sweep()
        points = expand(sweep)
        via_run = SweepRunner().run(sweep, points=points)
        via_scheduler = SweepRunner().run_scheduler(
            StaticScheduler(points), name=sweep.name
        )
        assert _normalized(via_scheduler.to_dict()) \
            == _normalized(via_run.to_dict())


class TestStaticScheduler:
    def test_issues_once_then_done(self):
        points = [micro_point("a"), micro_point("b", seed=1)]
        scheduler = StaticScheduler(points)
        assert scheduler.next_points(()) == points
        assert scheduler.next_points(()) is DONE

    def test_empty_list_is_done_immediately(self):
        scheduler = StaticScheduler([])
        assert scheduler.next_points(()) is DONE
        result = SweepRunner().run([])
        assert result.points == [] and result.stats["total"] == 0

    def test_rejects_non_points(self):
        with pytest.raises(TypeError, match="not a SweepPoint"):
            StaticScheduler(["nope"])

    def test_done_sentinel_is_falsy_singleton(self):
        from repro.orchestration import Done

        assert not DONE
        assert Done() is DONE
        assert repr(DONE) == "DONE"


class OneAtATime(Scheduler):
    """Toy adaptive scheduler: proposes each point only after the
    previous one completed, then re-proposes the first config (the
    driver must hand the recorded result back without re-running)."""

    name = "one-at-a-time"

    def __init__(self, points, repropose_first=False):
        self.points = list(points)
        self.repropose_first = repropose_first
        self._issued = 0
        self._extra_issued = False

    def next_points(self, completed):
        if len(completed) < self._issued:
            return []  # wait for the in-flight point
        if self._issued < len(self.points):
            point = self.points[self._issued]
            self._issued += 1
            return [point]
        if self.repropose_first and not self._extra_issued:
            self._extra_issued = True
            self._issued += 1
            duplicate = self.points[0]
            return [SweepPoint(label=f"{duplicate.label}-again",
                               config=duplicate.config)]
        return DONE


class TestAdaptiveDriving:
    def test_sequential_proposals_complete(self):
        points = expand(micro_sweep(seeds=(0, 1, 2)))
        result = SweepRunner().run_scheduler(OneAtATime(points))
        assert result.stats["total"] == 3
        assert [p.label for p in result.points] \
            == [p.label for p in points]

    def test_reproposed_config_reuses_recorded_result(self):
        class CountingExecutor:
            def __init__(self):
                self.calls = 0

            def __call__(self, task):
                self.calls += 1
                return execute_point(task)

        points = expand(micro_sweep(seeds=(0, 1)))
        executor = CountingExecutor()
        result = SweepRunner(execute=executor).run_scheduler(
            OneAtATime(points, repropose_first=True)
        )
        # Three points completed but only two configs ever trained.
        assert executor.calls == 2
        assert result.stats["total"] == 3
        assert result.points[2].label == f"{points[0].label}-again"
        assert result.points[2].payload == result.points[0].payload

    def test_deadlocked_scheduler_raises(self):
        class Stuck(Scheduler):
            def next_points(self, completed):
                return []

        with pytest.raises(RuntimeError, match="wait forever"):
            SweepRunner().run_scheduler(Stuck())

    def test_on_schedule_reports_growing_point_list(self):
        batches = []

        def on_schedule(new_points, total):
            batches.append(([p.label for p in new_points], total))

        points = expand(micro_sweep(seeds=(0, 1)))
        SweepRunner(on_schedule=on_schedule).run_scheduler(
            OneAtATime(points)
        )
        assert batches == [
            ([points[0].label], 1),
            ([points[1].label], 2),
        ]

    def test_parallel_adaptive_batches(self):
        # A scheduler issuing a 2-point batch under jobs=2 exercises the
        # process backend inside the driver loop.
        points = expand(micro_sweep(seeds=(0, 1)))
        serial = SweepRunner(jobs=1).run(micro_sweep(seeds=(0, 1)))
        parallel = SweepRunner(jobs=2).run_scheduler(StaticScheduler(points))
        assert [p.payload for p in parallel.points] \
            == [p.payload for p in serial.points]
