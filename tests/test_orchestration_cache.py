"""Cache-key stability and corruption tolerance of the result cache."""

import json
import subprocess
import sys
from pathlib import Path

from repro.api import ExperimentConfig, experiments
from repro.api.config import canonical_json, config_hash
from repro.orchestration import ResultCache

SRC = str(Path(__file__).resolve().parents[1] / "src")


def config():
    return experiments.get_config("vgg11-micro-smoke")


class TestKeyStability:
    def test_equal_configs_hash_equal(self):
        assert config().cache_key() == config().cache_key()

    def test_hash_survives_dict_round_trip(self):
        clone = ExperimentConfig.from_dict(config().to_dict())
        assert clone.cache_key() == config().cache_key()

    def test_hash_independent_of_dict_ordering(self):
        payload = config().to_dict()
        shuffled = dict(reversed(list(payload.items())))
        shuffled["quant"] = dict(reversed(list(payload["quant"].items())))
        assert config_hash(shuffled) == config_hash(payload)
        # And a config rebuilt from the shuffled dict agrees too.
        assert ExperimentConfig.from_dict(shuffled).cache_key() \
            == config().cache_key()

    def test_hash_stable_across_processes(self):
        script = (
            "import sys; sys.path.insert(0, sys.argv[1])\n"
            "from repro.api import experiments\n"
            "print(experiments.get_config('vgg11-micro-smoke').cache_key())\n"
        )
        out = subprocess.run(
            [sys.executable, "-c", script, SRC],
            capture_output=True, text=True, check=True,
        )
        assert out.stdout.strip() == config().cache_key()

    def test_top_level_field_change_changes_key(self):
        assert config().evolve(lr=1e-4).cache_key() != config().cache_key()

    def test_nested_evolve_changes_key(self):
        base_key = config().cache_key()
        assert config().evolve(quant={"max_iterations": 9}).cache_key() != base_key
        assert config().evolve(model={"seed": 99}).cache_key() != base_key
        assert config().evolve(prune={"enabled": True}).cache_key() != base_key

    def test_every_field_perturbation_changes_key(self):
        base_key = config().cache_key()
        perturbations = [
            {"name": "other"},
            {"description": "other"},
            {"optimizer": "sgd"},
            {"data": {"noise": 0.123}},
            {"energy": {"baseline_bits": 8}},
            {"quant": {"saturation_tolerance": 0.123}},
        ]
        keys = {config().evolve(**p).cache_key() for p in perturbations}
        assert base_key not in keys
        assert len(keys) == len(perturbations)  # all distinct

    def test_canonical_json_sorts_keys(self):
        assert canonical_json({"b": 1, "a": 2}) == '{"a":2,"b":1}'


class TestCacheStore:
    PAYLOAD = {"report": {"architecture": "x", "dataset": "y",
                          "layer_names": [], "rows": []}, "artifacts": {}}

    def test_round_trip(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        assert cache.load(config()) is None
        cache.store(config(), self.PAYLOAD)
        assert cache.load(config()) == self.PAYLOAD
        assert config() in cache
        assert cache.entry_count() == 1

    def test_entries_are_content_addressed_files(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        path = cache.store(config(), self.PAYLOAD)
        key = config().cache_key()
        assert path == tmp_path / "cache" / key[:2] / f"{key}.json"
        assert json.loads(path.read_text())["key"] == key

    def test_corrupted_entry_is_a_miss(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        path = cache.store(config(), self.PAYLOAD)
        path.write_text("{not json")
        assert cache.load(config()) is None
        # Recomputation overwrites the bad entry.
        cache.store(config(), self.PAYLOAD)
        assert cache.load(config()) == self.PAYLOAD

    def test_wrong_version_or_key_is_a_miss(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        path = cache.store(config(), self.PAYLOAD)
        entry = json.loads(path.read_text())
        entry["version"] = 999
        path.write_text(json.dumps(entry))
        assert cache.load(config()) is None
        entry["version"] = 1
        entry["key"] = "0" * 64
        path.write_text(json.dumps(entry))
        assert cache.load(config()) is None

    def test_structurally_invalid_payload_is_a_miss(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        path = cache.store(config(), self.PAYLOAD)
        entry = json.loads(path.read_text())
        entry["payload"] = {"no-report": True}
        path.write_text(json.dumps(entry))
        assert cache.load(config()) is None

    def test_missing_root_is_empty(self, tmp_path):
        cache = ResultCache(tmp_path / "nope")
        assert cache.load(config()) is None
        assert cache.entry_count() == 0
