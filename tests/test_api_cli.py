"""CLI: presets listing, config show, headless runs, JSON config input."""

import json

import pytest

from repro.api import ExperimentConfig, experiments
from repro.cli import main


class TestPresets:
    def test_presets_lists_registry(self, capsys):
        assert main(["presets"]) == 0
        out = capsys.readouterr().out.split()
        assert set(out) == set(experiments.names())

    def test_presets_verbose_includes_tables(self, capsys):
        assert main(["presets", "--verbose"]) == 0
        assert "Table II(a)" in capsys.readouterr().out


class TestShow:
    def test_show_prints_valid_config_json(self, capsys):
        assert main(["show", "--preset", "vgg11-micro-smoke"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert ExperimentConfig.from_dict(payload) == experiments.get_config(
            "vgg11-micro-smoke"
        )

    def test_show_applies_overrides(self, capsys):
        assert main(["show", "--preset", "vgg11-micro-smoke",
                     "--max-iterations", "9"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["quant"]["max_iterations"] == 9


class TestRun:
    def test_run_writes_json_report(self, tmp_path, capsys):
        out = tmp_path / "report.json"
        code = main(["run", "--preset", "vgg11-micro-smoke", "--out", str(out),
                     "--quiet", "--max-iterations", "1", "--max-epochs", "1",
                     "--min-epochs", "1"])
        assert code == 0
        payload = json.loads(out.read_text())
        assert payload["config"]["name"] == "vgg11-micro-smoke"
        assert len(payload["report"]["rows"]) == 1
        assert payload["report"]["rows"][0]["energy_efficiency"] == 1.0

    def test_run_csv_format(self, tmp_path):
        out = tmp_path / "report.csv"
        code = main(["run", "--preset", "vgg11-micro-smoke", "--out", str(out),
                     "--quiet", "--format", "csv", "--max-iterations", "1",
                     "--max-epochs", "1", "--min-epochs", "1"])
        assert code == 0
        assert out.read_text().startswith("architecture,")

    def test_run_from_config_file(self, tmp_path):
        config_path = tmp_path / "config.json"
        experiments.get_config("vgg11-micro-smoke").evolve(
            quant={"max_iterations": 1, "max_epochs_per_iteration": 1,
                   "min_epochs_per_iteration": 1}
        ).to_json(config_path)
        out = tmp_path / "report.json"
        code = main(["run", "--config", str(config_path), "--out", str(out),
                     "--quiet"])
        assert code == 0
        assert json.loads(out.read_text())["report"]["rows"]

    def test_run_seed_override_changes_both_seeds(self, capsys):
        assert main(["show", "--preset", "vgg11-micro-smoke", "--seed", "42"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["model"]["seed"] == 42
        assert payload["data"]["seed"] == 42

    def test_run_requires_source(self):
        with pytest.raises(SystemExit):
            main(["run"])

    def test_unknown_preset_is_clean_error(self, capsys):
        assert main(["run", "--preset", "nope"]) == 2
        err = capsys.readouterr().err
        assert err.startswith("repro: error: unknown preset")
        assert "Traceback" not in err

    def test_bad_override_is_clean_error(self, capsys):
        assert main(["run", "--preset", "vgg11-micro-smoke",
                     "--max-iterations", "-1"]) == 2
        assert "max_iterations" in capsys.readouterr().err

    def test_missing_config_file_is_clean_error(self, capsys):
        assert main(["run", "--config", "/nonexistent/config.json"]) == 2
        assert "repro: error:" in capsys.readouterr().err


FAST = ["--max-iterations", "1", "--max-epochs", "1", "--min-epochs", "1"]


class TestRunOutPath:
    def test_out_creates_missing_parent_directories(self, tmp_path):
        out = tmp_path / "deeply" / "nested" / "report.json"
        code = main(["run", "--preset", "vgg11-micro-smoke", "--quiet",
                     "--out", str(out), *FAST])
        assert code == 0
        assert json.loads(out.read_text())["report"]["rows"]

    def test_unwritable_out_exits_2_before_training(self, tmp_path, capsys):
        blocker = tmp_path / "file"
        blocker.write_text("")
        # Parent "directory" is a regular file -> cannot be created.
        code = main(["run", "--preset", "vgg11-micro-smoke", "--quiet",
                     "--out", str(blocker / "report.json"), *FAST])
        assert code == 2
        err = capsys.readouterr().err
        assert err.startswith("repro: error:")
        assert "Traceback" not in err

    def test_out_pointing_at_directory_exits_2(self, tmp_path, capsys):
        code = main(["run", "--preset", "vgg11-micro-smoke", "--quiet",
                     "--out", str(tmp_path), *FAST])
        assert code == 2
        assert "is a directory" in capsys.readouterr().err


class TestRunCache:
    def test_cache_skips_second_run(self, tmp_path, capsys):
        cache_dir = tmp_path / "cache"
        args = ["run", "--preset", "vgg11-micro-smoke", "--cache",
                "--cache-dir", str(cache_dir), *FAST]
        assert main([*args, "--quiet"]) == 0
        assert main(args) == 0
        out = capsys.readouterr().out
        assert "cache hit" in out

    def test_cache_hit_writes_identical_out(self, tmp_path):
        cache_dir = tmp_path / "cache"
        first = tmp_path / "first.json"
        second = tmp_path / "second.json"
        base = ["run", "--preset", "vgg11-micro-smoke", "--cache",
                "--cache-dir", str(cache_dir), "--quiet", *FAST]
        assert main([*base, "--out", str(first)]) == 0
        assert main([*base, "--out", str(second)]) == 0
        assert json.loads(first.read_text()) == json.loads(second.read_text())

    def test_no_cache_is_default(self, tmp_path, monkeypatch):
        monkeypatch.chdir(tmp_path)
        assert main(["run", "--preset", "vgg11-micro-smoke", "--quiet",
                     *FAST]) == 0
        assert not (tmp_path / ".repro-cache").exists()


class TestRunResume:
    def test_resume_requires_checkpoint_flag(self, capsys):
        assert main(["run", "--preset", "vgg11-micro-smoke", "--resume",
                     "--quiet"]) == 2
        assert "--checkpoint" in capsys.readouterr().err

    def test_checkpoint_then_resume_completes(self, tmp_path, capsys):
        checkpoint = tmp_path / "run.ckpt.npz"
        args = ["run", "--preset", "vgg11-micro-smoke", "--quiet",
                "--checkpoint", str(checkpoint), *FAST]
        assert main(args) == 0
        assert checkpoint.exists()
        # Resuming a completed run replays nothing and reports the same rows.
        assert main([*args, "--resume"]) == 0

    def test_resume_with_corrupt_checkpoint_is_clean_error(
        self, tmp_path, capsys
    ):
        checkpoint = tmp_path / "run.ckpt.npz"
        checkpoint.write_bytes(b"PK\x03\x04 truncated garbage")
        code = main(["run", "--preset", "vgg11-micro-smoke", "--quiet",
                     "--checkpoint", str(checkpoint), "--resume", *FAST])
        assert code == 2
        err = capsys.readouterr().err
        assert "cannot resume" in err
        assert "Traceback" not in err

    def test_resume_with_other_config_is_clean_error(self, tmp_path, capsys):
        checkpoint = tmp_path / "run.ckpt.npz"
        assert main(["run", "--preset", "vgg11-micro-smoke", "--quiet",
                     "--checkpoint", str(checkpoint), *FAST]) == 0
        code = main(["run", "--preset", "vgg11-micro-smoke", "--seed", "9",
                     "--quiet", "--checkpoint", str(checkpoint), "--resume",
                     *FAST])
        assert code == 2
        assert "different config" in capsys.readouterr().err


class TestSweepCLI:
    def test_sweeps_lists_registry_with_point_counts(self, capsys):
        from repro.orchestration import expand

        assert main(["sweeps"]) == 0
        lines = capsys.readouterr().out.splitlines()
        listed = {line.split()[0] for line in lines}
        assert listed == set(experiments.sweep_names())
        # Every line sizes its sweep so users can plan before launching.
        for line in lines:
            name, count, unit = line.split()
            assert unit == "points"
            assert int(count) == len(expand(experiments.get_sweep(name)))

    def test_sweep_parallel_rows_match_serial_runs(self, tmp_path):
        """Acceptance: a 4-point seed sweep at --jobs 2 is bit-identical
        to four serial `repro run` invocations, and a second invocation
        completes entirely from cache."""
        cache_dir = tmp_path / "cache"
        sweep_out = tmp_path / "sweep.json"
        args = ["sweep", "--preset", "vgg11-micro-smoke",
                "--seeds", "0,1,2,3", "--jobs", "2",
                "--cache-dir", str(cache_dir), "--quiet"]
        assert main([*args, "--out", str(sweep_out)]) == 0
        payload = json.loads(sweep_out.read_text())
        assert payload["stats"] == {"total": 4, "executed": 4, "cached": 0,
                                    "failed": 0}

        for point in payload["points"]:
            seed = point["config"]["model"]["seed"]
            run_out = tmp_path / f"run-{seed}.json"
            assert main(["run", "--preset", "vgg11-micro-smoke",
                         "--seed", str(seed), "--quiet",
                         "--out", str(run_out)]) == 0
            serial = json.loads(run_out.read_text())
            assert point["report"]["rows"] == serial["report"]["rows"]
            assert point["config"] == serial["config"]

        # Second sweep invocation: pure cache, no re-training.
        second_out = tmp_path / "sweep2.json"
        assert main([*args, "--out", str(second_out)]) == 0
        second = json.loads(second_out.read_text())
        assert second["stats"] == {"total": 4, "executed": 0, "cached": 4,
                                   "failed": 0}
        assert [p["report"] for p in second["points"]] \
            == [p["report"] for p in payload["points"]]

    def test_sweep_axis_override(self, tmp_path, capsys):
        out = tmp_path / "sweep.json"
        code = main(["sweep", "--preset", "vgg11-micro-smoke",
                     "--axis", "quant.max_iterations=1",
                     "--axis", "quant.max_epochs_per_iteration=1",
                     "--axis", "quant.min_epochs_per_iteration=1",
                     "--no-cache", "--quiet", "--out", str(out)])
        assert code == 0
        payload = json.loads(out.read_text())
        assert payload["stats"]["total"] == 1
        assert payload["points"][0]["config"]["quant"]["max_iterations"] == 1

    def test_sweep_preset_from_sweep_registry(self, capsys):
        # Resolution only (no run): unknown presets give a clean error
        # that names both registries.
        assert main(["sweep", "--preset", "nope", "--quiet"]) == 2
        err = capsys.readouterr().err
        assert "sweep presets:" in err and "experiment presets:" in err
        assert "Traceback" not in err

    def test_sweep_bad_axis_is_clean_error(self, capsys):
        assert main(["sweep", "--preset", "vgg11-micro-smoke",
                     "--axis", "nonsense", "--quiet"]) == 2
        assert "bad --axis" in capsys.readouterr().err

    def test_sweep_unknown_axis_path_is_clean_error(self, capsys):
        assert main(["sweep", "--preset", "vgg11-micro-smoke",
                     "--axis", "quant.nonexistent=1", "--quiet"]) == 2
        err = capsys.readouterr().err
        assert "nonexistent" in err
        assert "Traceback" not in err

    def test_sweep_duplicate_axis_is_clean_error(self, capsys):
        assert main(["sweep", "--preset", "vgg11-micro-smoke",
                     "--seeds", "0,1", "--axis", "seed=2,3", "--quiet"]) == 2
        err = capsys.readouterr().err
        assert "duplicate sweep axes" in err
        assert "Traceback" not in err

    def test_sweep_invalid_axis_value_is_clean_error(self, capsys):
        assert main(["sweep", "--preset", "vgg11-micro-smoke",
                     "--axis", "quant.max_iterations=-1", "--quiet"]) == 2
        err = capsys.readouterr().err
        assert "max_iterations" in err
        assert "Traceback" not in err
