"""CLI: presets listing, config show, headless runs, JSON config input."""

import json

import pytest

from repro.api import ExperimentConfig, experiments
from repro.cli import main


class TestPresets:
    def test_presets_lists_registry(self, capsys):
        assert main(["presets"]) == 0
        out = capsys.readouterr().out.split()
        assert set(out) == set(experiments.names())

    def test_presets_verbose_includes_tables(self, capsys):
        assert main(["presets", "--verbose"]) == 0
        assert "Table II(a)" in capsys.readouterr().out


class TestShow:
    def test_show_prints_valid_config_json(self, capsys):
        assert main(["show", "--preset", "vgg11-micro-smoke"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert ExperimentConfig.from_dict(payload) == experiments.get_config(
            "vgg11-micro-smoke"
        )

    def test_show_applies_overrides(self, capsys):
        assert main(["show", "--preset", "vgg11-micro-smoke",
                     "--max-iterations", "9"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["quant"]["max_iterations"] == 9


class TestRun:
    def test_run_writes_json_report(self, tmp_path, capsys):
        out = tmp_path / "report.json"
        code = main(["run", "--preset", "vgg11-micro-smoke", "--out", str(out),
                     "--quiet", "--max-iterations", "1", "--max-epochs", "1",
                     "--min-epochs", "1"])
        assert code == 0
        payload = json.loads(out.read_text())
        assert payload["config"]["name"] == "vgg11-micro-smoke"
        assert len(payload["report"]["rows"]) == 1
        assert payload["report"]["rows"][0]["energy_efficiency"] == 1.0

    def test_run_csv_format(self, tmp_path):
        out = tmp_path / "report.csv"
        code = main(["run", "--preset", "vgg11-micro-smoke", "--out", str(out),
                     "--quiet", "--format", "csv", "--max-iterations", "1",
                     "--max-epochs", "1", "--min-epochs", "1"])
        assert code == 0
        assert out.read_text().startswith("architecture,")

    def test_run_from_config_file(self, tmp_path):
        config_path = tmp_path / "config.json"
        experiments.get_config("vgg11-micro-smoke").evolve(
            quant={"max_iterations": 1, "max_epochs_per_iteration": 1,
                   "min_epochs_per_iteration": 1}
        ).to_json(config_path)
        out = tmp_path / "report.json"
        code = main(["run", "--config", str(config_path), "--out", str(out),
                     "--quiet"])
        assert code == 0
        assert json.loads(out.read_text())["report"]["rows"]

    def test_run_seed_override_changes_both_seeds(self, capsys):
        assert main(["show", "--preset", "vgg11-micro-smoke", "--seed", "42"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["model"]["seed"] == 42
        assert payload["data"]["seed"] == 42

    def test_run_requires_source(self):
        with pytest.raises(SystemExit):
            main(["run"])

    def test_unknown_preset_is_clean_error(self, capsys):
        assert main(["run", "--preset", "nope"]) == 2
        err = capsys.readouterr().err
        assert err.startswith("repro: error: unknown preset")
        assert "Traceback" not in err

    def test_bad_override_is_clean_error(self, capsys):
        assert main(["run", "--preset", "vgg11-micro-smoke",
                     "--max-iterations", "-1"]) == 2
        assert "max_iterations" in capsys.readouterr().err

    def test_missing_config_file_is_clean_error(self, capsys):
        assert main(["run", "--config", "/nonexistent/config.json"]) == 2
        assert "repro: error:" in capsys.readouterr().err
