"""Streaming aggregation: on_point events, incremental report folding."""

import json

import pytest

from repro.api import experiments
from repro.core.report import SweepReport
from repro.orchestration import (
    ResultCache,
    SweepConfig,
    SweepPoint,
    SweepRunner,
    execute_point,
    expand,
    merge_sweep_payloads,
    sweep_out_payload,
)


def micro_sweep(seeds=(0, 1)):
    return SweepConfig(
        name="micro",
        base=experiments.get_config("vgg11-micro-smoke").evolve(
            quant={"max_iterations": 1, "max_epochs_per_iteration": 1,
                   "min_epochs_per_iteration": 1}
        ),
        seeds=tuple(seeds),
    )


class TestOnPoint:
    def test_every_point_streams_exactly_once(self):
        events = []
        result = SweepRunner(
            on_point=lambda r, position, total: events.append(
                (r.label, r.status, position, total)
            )
        ).run(micro_sweep())
        assert sorted(events) == sorted([
            ("vgg11-micro-smoke[seed=0]", "ok", 0, 2),
            ("vgg11-micro-smoke[seed=1]", "ok", 1, 2),
        ])
        assert result.stats["executed"] == 2

    def test_cached_points_stream_too(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        SweepRunner(cache=cache).run(micro_sweep())
        statuses = []
        SweepRunner(
            cache=cache,
            on_point=lambda r, position, total: statuses.append(r.status),
        ).run(micro_sweep())
        assert statuses == ["cached", "cached"]

    def test_parallel_streaming_covers_every_point(self):
        labels = set()
        SweepRunner(
            jobs=2,
            on_point=lambda r, position, total: labels.add(r.label),
        ).run(micro_sweep(seeds=(0, 1, 2)))
        assert labels == {
            "vgg11-micro-smoke[seed=0]",
            "vgg11-micro-smoke[seed=1]",
            "vgg11-micro-smoke[seed=2]",
        }

    def test_failed_points_stream_with_error(self):
        bad = experiments.get_config("vgg11-micro-smoke").evolve(
            prune={"enabled": True, "fused": True, "min_channels": 10000}
        )
        events = []
        SweepRunner(
            on_point=lambda r, position, total: events.append(r)
        ).run([SweepPoint(label="bad", config=bad)])
        (event,) = events
        assert event.status == "failed" and event.error

    def test_streamed_fold_matches_batch_aggregate(self):
        streamed = SweepReport(name="micro")
        result = SweepRunner(
            on_point=lambda r, position, total: streamed.add(r.to_entry())
        ).run(micro_sweep())
        assert streamed == result.aggregate()


class TestOutPayload:
    def test_partial_payload_marks_pending(self):
        points = expand(micro_sweep())
        first = SweepRunner().run([points[0]]).points[0]
        payload = sweep_out_payload("micro", points, [first, None])
        assert payload["stats"] == {"total": 2, "executed": 1, "cached": 0,
                                    "failed": 0, "pending": 1}
        assert [p["status"] for p in payload["points"]] == ["ok", "pending"]
        assert payload["points"][1]["label"] == points[1].label
        json.dumps(payload)  # JSON-serializable at any moment

    def test_complete_payload_equals_to_dict(self):
        points = expand(micro_sweep())
        result = SweepRunner().run(micro_sweep(), points=points)
        assert sweep_out_payload("micro", points, result.points) \
            == result.to_dict()

    def test_point_dicts_carry_expansion_indices(self):
        result = SweepRunner().run(micro_sweep())
        assert [p["index"] for p in result.to_dict()["points"]] == [0, 1]


class TestMergeSweepPayloads:
    def complete_payload(self):
        points = expand(micro_sweep())
        return SweepRunner().run(micro_sweep(), points=points).to_dict()

    def split(self, payload):
        halves = []
        for keep in (lambda i: i % 2 == 0, lambda i: i % 2 == 1):
            half = dict(payload)
            half["points"] = [
                p for i, p in enumerate(payload["points"]) if keep(i)
            ]
            halves.append(half)
        return halves

    def test_merge_restores_unsharded_payload(self):
        payload = self.complete_payload()
        merged = merge_sweep_payloads(self.split(payload))
        assert merged == payload

    def test_overlapping_identical_points_deduplicate(self):
        payload = self.complete_payload()
        merged = merge_sweep_payloads([payload, payload])
        assert merged == payload

    def test_conflicting_duplicates_rejected(self):
        payload = self.complete_payload()
        clone = json.loads(json.dumps(payload))
        clone["points"][0]["key"] = "0" * 64
        with pytest.raises(ValueError, match="conflicting results"):
            merge_sweep_payloads([payload, clone])

    def test_missing_indices_rejected(self):
        # A gap below the highest index means a shard file is absent.
        # (A missing *tail* is undetectable without coordination.)
        payload = self.complete_payload()
        (_, odd_half) = self.split(payload)
        with pytest.raises(ValueError, match="missing point indices"):
            merge_sweep_payloads([odd_half])

    def test_pending_points_rejected(self):
        payload = self.complete_payload()
        payload["points"][0]["status"] = "pending"
        with pytest.raises(ValueError, match="pending"):
            merge_sweep_payloads([payload])

    def test_differing_names_need_explicit_name(self):
        payload = self.complete_payload()
        other = dict(payload, sweep="other")
        with pytest.raises(ValueError, match="names differ"):
            merge_sweep_payloads([payload, other])
        merged = merge_sweep_payloads([payload, other], name="joined")
        assert merged["sweep"] == "joined"

    def test_missing_tail_detected_via_expansion_total(self):
        # Without a recorded expansion size a missing *suffix* is
        # invisible; shard --out files carry `expansion_total` so a
        # forgotten tail shard file fails loudly too.
        payload = self.complete_payload()
        payload["expansion_total"] = len(payload["points"])
        head = dict(payload)
        head["points"] = payload["points"][:1]
        with pytest.raises(ValueError, match="missing point indices"):
            merge_sweep_payloads([head])

    def test_expansion_total_disagreement_rejected(self):
        payload = self.complete_payload()
        a = dict(payload, expansion_total=2)
        b = dict(payload, expansion_total=3)
        with pytest.raises(ValueError, match="disagree on the sweep's"):
            merge_sweep_payloads([a, b])

    def test_indices_beyond_expansion_total_rejected(self):
        payload = self.complete_payload()
        payload["expansion_total"] = 1
        with pytest.raises(ValueError, match="beyond"):
            merge_sweep_payloads([payload])

    def test_expansion_total_carried_into_merged_payload(self):
        payload = self.complete_payload()
        payload["expansion_total"] = len(payload["points"])
        assert merge_sweep_payloads([payload])["expansion_total"] \
            == len(payload["points"])

    def test_index_free_points_rejected(self):
        payload = self.complete_payload()
        del payload["points"][0]["index"]
        with pytest.raises(ValueError, match="no expansion index"):
            merge_sweep_payloads([payload])

    def test_empty_input_rejected(self):
        with pytest.raises(ValueError, match="no sweep payloads"):
            merge_sweep_payloads([])

    def test_non_sweep_payloads_rejected(self):
        # A `repro run` report (or any other JSON) must fail loudly,
        # not merge into an empty aggregate.
        run_report = {"config": {"name": "x"}, "report": {"rows": []}}
        with pytest.raises(ValueError, match="not a sweep --out payload"):
            merge_sweep_payloads([run_report])
        with pytest.raises(ValueError, match="not a sweep --out payload"):
            merge_sweep_payloads([self.complete_payload(),
                                  {"sweep": None, "points": []}])
        with pytest.raises(ValueError, match="not a sweep --out payload"):
            merge_sweep_payloads([{"sweep": "x", "points": None}])


class TestRunnerAccounting:
    def test_lost_result_raises_instead_of_silent_drop(self):
        # An executor backend that swallows every second submission: the
        # driver must raise, naming the unaccounted-for point, instead of
        # returning a silently shorter sweep.
        from repro.orchestration import SerialExecutor

        class SwallowingExecutor(SerialExecutor):
            def __init__(self, execute):
                super().__init__(execute)
                self._count = 0

            def submit(self, task):
                self._count += 1
                if self._count == 1:
                    super().submit(task)

        class SwallowingRunner(SweepRunner):
            def _make_executor(self):
                return SwallowingExecutor(self.execute)

        with pytest.raises(RuntimeError, match="lost 1 point"):
            SwallowingRunner().run(micro_sweep())

    def test_garbage_outcome_raises(self):
        def garbage_executor(task):
            return None  # violates the outcome-dict contract

        with pytest.raises(RuntimeError, match="non-outcome"):
            SweepRunner(execute=garbage_executor).run(micro_sweep())

    def test_mislabeled_result_raises(self):
        def mislabeling_executor(task):
            outcome = execute_point(task)
            outcome["index"] = 999
            return outcome

        with pytest.raises(RuntimeError, match="unknown"):
            SweepRunner(execute=mislabeling_executor).run(micro_sweep())

    def test_duplicate_result_index_raises(self):
        def stuck_executor(task):
            outcome = execute_point(task)
            outcome["index"] = 0
            return outcome

        with pytest.raises(RuntimeError, match="already-completed"):
            SweepRunner(execute=stuck_executor).run(micro_sweep())

    def test_stats_rejects_unknown_status(self):
        result = SweepRunner().run(micro_sweep(seeds=(0,)))
        result.points[0].status = "weird"
        with pytest.raises(ValueError, match="unknown point status"):
            result.stats
