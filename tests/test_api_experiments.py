"""Registry: presets resolve, build end-to-end, overrides apply."""

import pytest

from repro.api import ExperimentConfig, experiments
from repro.api.experiments import default_pipeline

PAPER_PRESETS = {
    "vgg19-cifar10-quant": "Table II(a)",
    "resnet18-cifar100-quant": "Table II(b)",
    "resnet18-tinyimagenet-quant": "Table II(c)",
    "vgg19-cifar10-quant-prune": "Table III(a)",
    "resnet18-cifar100-quant-prune": "Table III(b)",
}


class TestRegistry:
    def test_paper_presets_registered(self):
        for name in PAPER_PRESETS:
            assert name in experiments.names()

    def test_presets_map_to_paper_tables(self):
        for name, table in PAPER_PRESETS.items():
            assert table in experiments.get_config(name).tables

    def test_all_presets_resolve_to_valid_configs(self):
        for name in experiments.names():
            config = experiments.get_config(name)
            assert isinstance(config, ExperimentConfig)
            assert config.name == name

    def test_unknown_preset_raises_with_catalogue(self):
        with pytest.raises(KeyError, match="available"):
            experiments.get_config("vgg99-mnist")

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ValueError, match="already registered"):
            experiments.register(experiments.get_config("quickstart-vgg11"))


class TestDefaultPipeline:
    def test_quant_only(self):
        pipeline = default_pipeline(experiments.get_config("vgg19-cifar10-quant"))
        assert [s.name for s in pipeline.stages] == ["quantize", "energy-report"]

    def test_fused_prune_has_no_prune_stage(self):
        pipeline = default_pipeline(
            experiments.get_config("vgg19-cifar10-quant-prune")
        )
        assert "prune" not in [s.name for s in pipeline.stages]

    def test_unfused_prune_appends_prune_stage(self):
        config = experiments.get_config("vgg19-cifar10-quant-prune").evolve(
            prune={"fused": False, "retrain_epochs": 1}
        )
        names = [s.name for s in default_pipeline(config).stages]
        assert names.index("quantize") < names.index("prune")

    def test_final_epochs_adds_final_tune(self):
        config = experiments.get_config("vgg19-cifar10-quant").evolve(
            quant={"final_epochs": 2}
        )
        assert "final-tune" in [s.name for s in default_pipeline(config).stages]

    def test_pim_flag_adds_pim_stage(self):
        names = [
            s.name
            for s in default_pipeline(experiments.get_config("vgg11-micro-smoke")).stages
        ]
        assert "pim-eval" in names


class TestBuildAndRun:
    def test_build_applies_nested_overrides(self):
        experiment = experiments.build(
            "vgg19-cifar10-quant", quant={"max_iterations": 1}, lr=1e-3
        )
        assert experiment.config.quant.max_iterations == 1
        assert experiment.config.lr == 1e-3
        # The preset itself must stay pristine.
        assert experiments.get_config("vgg19-cifar10-quant").quant.max_iterations == 3

    def test_run_twice_restarts_with_fresh_report(self):
        experiment = experiments.build("vgg11-micro-smoke")
        first = experiment.run()
        second = experiment.run()
        assert second is not first
        iterations = [row.iteration for row in second.rows]
        assert iterations == sorted(set(iterations))  # no duplicated sequence
        assert second.rows[0].energy_efficiency == 1.0

    def test_run_callbacks_are_per_run(self):
        from repro.api import PipelineCallback

        class Counter(PipelineCallback):
            def __init__(self):
                self.fired = 0

            def on_pipeline_end(self, ctx, report):
                self.fired += 1

        counter = Counter()
        experiment = experiments.build("vgg11-micro-smoke")
        experiment.run(callbacks=[counter])
        experiment.run(callbacks=[counter])
        # Two runs, one registration each: the callback must not have
        # been permanently appended (which would double-fire hooks).
        assert counter.fired == 2
        assert experiment.pipeline.callbacks == []

    def test_micro_smoke_preset_runs_end_to_end(self):
        experiment = experiments.build("vgg11-micro-smoke")
        report = experiment.run()
        assert report.rows
        assert report.rows[0].energy_efficiency == 1.0
        assert "analytical_energy" in experiment.artifacts
        assert "pim_energy" in experiment.artifacts
        # Convenience accessors point into the context.
        assert experiment.model is experiment.context.model
        assert experiment.report is report
