"""Runner iteration semantics (regression tests for subtle bugs).

The most important one: the runner must never install an eqn.-3 plan
that will not subsequently be trained — otherwise follow-up steps
(row 2a retraining, final evaluation) run on an untrained plan.
"""

import pytest

from repro.core import ExperimentRunner, QuantizationSchedule
from repro.data import DataLoader
from repro.density import SaturationDetector
from repro.nn import Adam, CrossEntropyLoss


def make_runner(model, dataset, rng, max_iterations=2, prune=False):
    return ExperimentRunner(
        model,
        DataLoader(dataset, batch_size=8, shuffle=True, rng=rng),
        DataLoader(dataset, batch_size=16),
        Adam(model.parameters(), lr=3e-3),
        CrossEntropyLoss(),
        input_shape=(3, 8, 8),
        schedule=QuantizationSchedule(
            max_iterations=max_iterations,
            max_epochs_per_iteration=2,
            min_epochs_per_iteration=1,
        ),
        saturation=SaturationDetector(window=2, tolerance=0.9),
        prune=prune,
    )


class TestPlanInstallationSemantics:
    def test_installed_plan_matches_last_row(self, micro_vgg, tiny_dataset, rng):
        """After run(), the model carries the last *reported* plan, not
        the would-be next iteration's plan."""
        runner = make_runner(micro_vgg, tiny_dataset, rng)
        report = runner.run()
        assert runner.quantizer.plan.bit_widths() == report.rows[-1].bit_widths

    def test_model_quantizers_match_report(self, micro_vgg, tiny_dataset, rng):
        runner = make_runner(micro_vgg, tiny_dataset, rng)
        report = runner.run()
        for handle, bits in zip(micro_vgg.layer_handles(), report.rows[-1].bit_widths):
            assert handle.current_bits() == bits

    def test_pruner_not_applied_beyond_last_row(self, micro_vgg, tiny_dataset, rng):
        runner = make_runner(micro_vgg, tiny_dataset, rng, prune=True)
        report = runner.run()
        final_channels = report.rows[-1].channel_counts
        live_channels = [
            h.active_channels() for h in runner.pruner.prunable_handles()
        ]
        assert live_channels == final_channels

    def test_complexity_accumulates_across_rows(self, micro_vgg, tiny_dataset, rng):
        runner = make_runner(micro_vgg, tiny_dataset, rng)
        report = runner.run()
        if len(report.rows) > 1:
            # Cumulative eqn-4 complexity strictly grows with iterations.
            assert report.rows[1].train_complexity > 0
            raw_epochs = sum(r.epochs for r in report.rows)
            assert runner._complexity.total_epochs() == raw_epochs

    def test_rows_have_monotone_iteration_numbers(self, micro_vgg, tiny_dataset, rng):
        runner = make_runner(micro_vgg, tiny_dataset, rng, max_iterations=3)
        report = runner.run()
        numbers = [row.iteration for row in report.rows]
        assert numbers == sorted(numbers)
        assert numbers[0] == 1


class TestFinalEpochs:
    def test_final_epochs_extends_last_row(self, micro_vgg, tiny_dataset, rng):
        runner = ExperimentRunner(
            micro_vgg,
            DataLoader(tiny_dataset, batch_size=8, shuffle=True, rng=rng),
            DataLoader(tiny_dataset, batch_size=16),
            Adam(micro_vgg.parameters(), lr=3e-3),
            CrossEntropyLoss(),
            input_shape=(3, 8, 8),
            schedule=QuantizationSchedule(
                max_iterations=1,
                max_epochs_per_iteration=2,
                min_epochs_per_iteration=1,
                final_epochs=3,
            ),
            saturation=SaturationDetector(window=2, tolerance=0.9),
        )
        report = runner.run()
        assert report.rows[-1].epochs == 2 + 3


class TestBaselineSemantics:
    def test_baseline_profiles_are_initial_plan(self, micro_vgg, tiny_dataset, rng):
        """Row 1 efficiency is exactly 1.0 because the baseline is the
        iteration-1 plan itself (paper: 'Energy Efficiency 1x')."""
        runner = make_runner(micro_vgg, tiny_dataset, rng, max_iterations=1)
        report = runner.run()
        assert report.rows[0].energy_efficiency == pytest.approx(1.0)

    def test_32bit_baseline_reference(self, micro_vgg, tiny_dataset, rng):
        runner = ExperimentRunner(
            micro_vgg,
            DataLoader(tiny_dataset, batch_size=8, shuffle=True, rng=rng),
            DataLoader(tiny_dataset, batch_size=16),
            Adam(micro_vgg.parameters(), lr=3e-3),
            CrossEntropyLoss(),
            input_shape=(3, 8, 8),
            schedule=QuantizationSchedule(
                initial_bits=32,
                max_iterations=1,
                max_epochs_per_iteration=2,
                min_epochs_per_iteration=1,
            ),
            saturation=SaturationDetector(window=2, tolerance=0.9),
        )
        report = runner.run()
        assert report.rows[0].bit_widths[1] == 32
        assert report.rows[0].bit_widths[0] == 16  # frozen ends
        assert report.rows[0].energy_efficiency == pytest.approx(1.0)
