"""Checkpoint/resume: snapshot fidelity and bit-identical continuation."""

import numpy as np
import pytest

from repro.api import (
    FinalTuneStage,
    Pipeline,
    PipelineCallback,
    PruneStage,
    QuantizeStage,
    build_context,
    experiments,
)
from repro.orchestration import CheckpointCallback, CheckpointStage
from repro.utils.serialization import load_checkpoint


def micro_config(**overrides):
    config = experiments.get_config("vgg11-micro-smoke")
    return config.evolve(**overrides) if overrides else config


def row_key(report):
    return [
        (r.iteration, r.label, r.bit_widths, r.channel_counts, r.epochs,
         r.test_accuracy, r.total_ad, r.energy_efficiency, r.train_complexity)
        for r in report.rows
    ]


class Boom(Exception):
    pass


class KillAfterRow(PipelineCallback):
    """Simulates a mid-pipeline kill after the Nth reported row."""

    def __init__(self, after: int):
        self.after = after
        self.seen = 0

    def on_iteration_end(self, ctx, row):
        self.seen += 1
        if self.seen >= self.after:
            raise Boom()


class TestSnapshotRestore:
    def test_snapshot_requires_prepared_context(self):
        ctx = build_context(micro_config())
        with pytest.raises(RuntimeError, match="unprepared"):
            ctx.snapshot_state()

    def test_restore_requires_prepared_context(self):
        ctx = build_context(micro_config())
        ctx.prepare()
        arrays, metadata = ctx.snapshot_state()
        fresh = build_context(micro_config())
        with pytest.raises(RuntimeError, match="prepare"):
            fresh.restore_state(arrays, metadata)

    def test_round_trip_restores_run_state(self):
        ctx = build_context(micro_config())
        Pipeline([QuantizeStage()]).run(ctx)
        arrays, metadata = ctx.snapshot_state()

        clone = build_context(micro_config())
        clone.prepare()
        clone.restore_state(arrays, metadata)
        assert row_key(clone.report) == row_key(ctx.report)
        assert clone.quantizer.plan.bit_widths() == ctx.quantizer.plan.bit_widths()
        assert clone.trainer.epochs_completed == ctx.trainer.epochs_completed
        assert clone.trainer.monitor.history == ctx.trainer.monitor.history
        assert clone.complexity.iterations == ctx.complexity.iterations
        for name, value in ctx.model.state_dict().items():
            np.testing.assert_array_equal(clone.model.state_dict()[name], value)

    def test_restore_rejects_other_config(self):
        ctx = build_context(micro_config())
        Pipeline([QuantizeStage()]).run(ctx)
        arrays, metadata = ctx.snapshot_state()
        other = build_context(micro_config(model={"seed": 9}, data={"seed": 9}))
        other.prepare()
        with pytest.raises(ValueError, match="different config"):
            other.restore_state(arrays, metadata)


class TestStageLevelResume:
    def test_resume_after_checkpoint_stage_is_bit_identical(self, tmp_path):
        config = micro_config(quant={"final_epochs": 2})
        path = tmp_path / "run.ckpt.npz"

        reference = Pipeline([QuantizeStage(), FinalTuneStage()]).run(
            build_context(config)
        )

        # Interrupted run: dies inside FinalTuneStage, after the
        # checkpoint has been written.
        class KillStage(FinalTuneStage):
            def run(self, ctx):
                raise Boom()

        with pytest.raises(Boom):
            Pipeline([QuantizeStage(), CheckpointStage(path), KillStage()]).run(
                build_context(config)
            )

        resumed = Pipeline(
            [QuantizeStage(), CheckpointStage(path), FinalTuneStage()]
        ).resume(build_context(config), path)
        assert row_key(resumed) == row_key(reference)

    def test_resume_skips_completed_stages(self, tmp_path):
        config = micro_config()
        path = tmp_path / "run.ckpt.npz"
        ran = []

        class TracingQuantize(QuantizeStage):
            def run(self, ctx):
                ran.append("quantize")
                super().run(ctx)

        pipeline = Pipeline([TracingQuantize(), CheckpointStage(path)])
        pipeline.run(build_context(config))
        assert ran == ["quantize"]
        pipeline.resume(build_context(config), path)
        # The cursor sits past the checkpoint stage; nothing re-runs.
        assert ran == ["quantize"]

    def test_checkpoint_metadata_records_cursor(self, tmp_path):
        path = tmp_path / "ck.npz"
        Pipeline([QuantizeStage(), CheckpointStage(path)]).run(
            build_context(micro_config())
        )
        _, metadata = load_checkpoint(path)
        assert metadata["stage_cursor"] == 2
        assert metadata["mid_stage"] is False
        assert metadata["config_key"] == micro_config().cache_key()

    def test_failed_write_never_corrupts_existing_checkpoint(
        self, tmp_path, monkeypatch
    ):
        import numpy as np

        path = tmp_path / "ck.npz"
        ctx = build_context(micro_config())
        Pipeline([QuantizeStage(), CheckpointStage(path)]).run(ctx)
        good = path.read_bytes()
        monkeypatch.setattr(
            np, "savez",
            lambda *a, **k: (_ for _ in ()).throw(OSError("disk full")),
        )
        with pytest.raises(OSError):
            CheckpointStage(path).run(ctx)
        # The crash-mid-write left the previous capture untouched and no
        # temp files behind.
        assert path.read_bytes() == good
        assert list(tmp_path.glob("*.tmp")) == []


class TestIterationLevelResume:
    def test_killed_mid_quantize_resumes_bit_identical(self, tmp_path):
        config = micro_config()
        path = tmp_path / "ck.npz"
        reference = Pipeline([QuantizeStage()]).run(build_context(config))
        assert len(reference.rows) == 2

        with pytest.raises(Boom):
            Pipeline(
                [QuantizeStage()],
                callbacks=[CheckpointCallback(path), KillAfterRow(1)],
            ).run(build_context(config))

        resumed = Pipeline([QuantizeStage()]).resume(build_context(config), path)
        assert row_key(resumed) == row_key(reference)

    def test_killed_mid_fused_prune_run_resumes_bit_identical(self, tmp_path):
        config = micro_config(prune={"enabled": True, "fused": True})
        path = tmp_path / "ck.npz"
        reference = Pipeline([QuantizeStage()]).run(build_context(config))

        with pytest.raises(Boom):
            Pipeline(
                [QuantizeStage()],
                callbacks=[CheckpointCallback(path), KillAfterRow(1)],
            ).run(build_context(config))

        resumed = Pipeline([QuantizeStage()]).resume(build_context(config), path)
        assert row_key(resumed) == row_key(reference)

    def test_prune_stage_does_not_double_apply_on_reentry(self, tmp_path):
        config = micro_config(
            prune={"enabled": True, "fused": False, "retrain_epochs": 1}
        )
        path = tmp_path / "ck.npz"
        stages = [QuantizeStage(), PruneStage(retrain_epochs=1)]
        reference = Pipeline(stages).run(build_context(config))

        # Kill right after the prune row is reported: the checkpoint's
        # cursor points at PruneStage, which must detect its own row.
        with pytest.raises(Boom):
            Pipeline(
                [QuantizeStage(), PruneStage(retrain_epochs=1)],
                callbacks=[CheckpointCallback(path), KillAfterRow(3)],
            ).run(build_context(config))

        resumed = Pipeline(
            [QuantizeStage(), PruneStage(retrain_epochs=1)]
        ).resume(build_context(config), path)
        assert row_key(resumed) == row_key(reference)

    def test_callback_every_thins_writes(self, tmp_path, monkeypatch):
        import repro.orchestration.checkpoint as checkpoint_module

        writes = []
        real = checkpoint_module.write_checkpoint
        monkeypatch.setattr(
            checkpoint_module, "write_checkpoint",
            lambda ctx, path, cursor, **kw: writes.append(cursor) or real(
                ctx, path, cursor, **kw
            ),
        )
        path = tmp_path / "ck.npz"
        Pipeline(
            [QuantizeStage()], callbacks=[CheckpointCallback(path, every=2)]
        ).run(build_context(micro_config()))
        # Two rows with every=2 -> one row-level write; the stage
        # boundary is skipped because that write already captured the
        # stage's final state.
        assert writes == [0]
        assert path.exists()

    def test_stage_end_not_rewritten_when_final_row_captured(
        self, tmp_path, monkeypatch
    ):
        import repro.orchestration.checkpoint as checkpoint_module

        writes = []
        real = checkpoint_module.write_checkpoint
        monkeypatch.setattr(
            checkpoint_module, "write_checkpoint",
            lambda ctx, path, cursor, **kw: writes.append(cursor) or real(
                ctx, path, cursor, **kw
            ),
        )
        Pipeline(
            [QuantizeStage(), FinalTuneStage(epochs=1)],
            callbacks=[CheckpointCallback(tmp_path / "ck.npz")],
        ).run(build_context(micro_config()))
        # Rows 1 and 2 capture at cursor 0; quantize's stage end is a
        # duplicate (skipped); FinalTune emits no rows, so its boundary
        # still writes (cursor 2).
        assert writes == [0, 0, 2]


class TestRepeatedPruneStages:
    def test_fresh_run_executes_every_prune_stage(self):
        # Regression: the re-entry guard must not skip a legitimately
        # repeated PruneStage (iterative pruning) in a non-resumed run.
        config = micro_config(prune={"enabled": True, "fused": False})
        ctx = build_context(config)
        Pipeline(
            [QuantizeStage(), PruneStage(label="prune"), PruneStage(label="prune")]
        ).run(ctx)
        assert [r.label for r in ctx.report.rows].count("prune") == 2

    def test_boundary_checkpoint_does_not_skip_next_same_label_stage(
        self, tmp_path
    ):
        # Regression: a boundary checkpoint *pointing at* the second
        # same-label PruneStage must not be mistaken for that stage's
        # own mid-stage capture (whose row would already be reported).
        config = micro_config(prune={"enabled": True, "fused": False})
        path = tmp_path / "ck.npz"
        def stages():
            return [QuantizeStage(), PruneStage(), CheckpointStage(path),
                    PruneStage()]

        reference = Pipeline(stages()).run(build_context(config))
        assert [r.label for r in reference.rows].count("prune") == 2

        class KillStage(PruneStage):
            def run(self, ctx):
                raise Boom()

        with pytest.raises(Boom):
            Pipeline(
                [QuantizeStage(), PruneStage(), CheckpointStage(path),
                 KillStage()]
            ).run(build_context(config))
        resumed = Pipeline(stages()).resume(build_context(config), path)
        assert row_key(resumed) == row_key(reference)


class TestEarlyStopResume:
    def test_resumed_run_honours_restored_early_stop(self, tmp_path):
        # An early-stopped run checkpoints with stop_requested set; a
        # resume must not train the iterations the original declined.
        config = micro_config(quant={"max_iterations": 3})
        path = tmp_path / "ck.npz"

        class StopAfterFirst(PipelineCallback):
            def on_iteration_end(self, ctx, row):
                ctx.request_stop()

        class KillStage(FinalTuneStage):
            def run(self, ctx):
                raise Boom()

        reference = Pipeline(
            [QuantizeStage()], callbacks=[StopAfterFirst()]
        ).run(build_context(config))
        assert len(reference.rows) == 1

        with pytest.raises(Boom):
            Pipeline(
                [QuantizeStage(), KillStage()],
                callbacks=[CheckpointCallback(path), StopAfterFirst()],
            ).run(build_context(config))
        resumed = Pipeline([QuantizeStage(), FinalTuneStage()]).resume(
            build_context(config), path
        )
        assert row_key(resumed) == row_key(reference)


class TestQuantizeReentry:
    def test_completed_iterations_counts_unlabeled_rows(self):
        ctx = build_context(micro_config())
        Pipeline([QuantizeStage()]).run(ctx)
        assert QuantizeStage.completed_iterations(ctx) == 2

    def test_second_pipeline_continues_not_restarts(self):
        ctx = build_context(micro_config(quant={"max_iterations": 3}))
        stop = type(
            "Stop",
            (PipelineCallback,),
            {"on_iteration_end": lambda self, ctx, row: ctx.request_stop()},
        )()
        Pipeline([QuantizeStage()], callbacks=[stop]).run(ctx)
        assert [r.iteration for r in ctx.report.rows] == [1]
        Pipeline([QuantizeStage()]).run(ctx)
        # Iteration numbering continues instead of duplicating.
        assert [r.iteration for r in ctx.report.rows] == [1, 2, 3]
