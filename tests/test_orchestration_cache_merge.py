"""Cache transport: merge, tarball export/import, conflict detection."""

import io
import json
import tarfile

import pytest

from repro.api import experiments
from repro.orchestration import CacheMergeConflict, ResultCache


def config(seed=0):
    base = experiments.get_config("vgg11-micro-smoke")
    return base.evolve(model={"seed": seed}, data={"seed": seed})


def payload(tag="x"):
    return {"report": {"architecture": tag, "dataset": "y",
                       "layer_names": [], "rows": []}, "artifacts": {}}


class TestMerge:
    def test_merge_copies_new_entries(self, tmp_path):
        source = ResultCache(tmp_path / "src")
        source.store(config(0), payload())
        source.store(config(1), payload())
        dest = ResultCache(tmp_path / "dst")
        stats = dest.merge(source)
        assert stats == {"merged": 2, "identical": 0, "skipped_invalid": 0}
        assert dest.load(config(0)) == payload()
        assert dest.load(config(1)) == payload()

    def test_merged_entries_byte_identical_to_stored(self, tmp_path):
        source = ResultCache(tmp_path / "src")
        source.store(config(0), payload())
        dest = ResultCache(tmp_path / "dst")
        dest.merge(source)
        key = config(0).cache_key()
        assert dest.path_for(key).read_bytes() \
            == source.path_for(key).read_bytes()

    def test_identical_entries_are_not_rewritten(self, tmp_path):
        source = ResultCache(tmp_path / "src")
        source.store(config(0), payload())
        dest = ResultCache(tmp_path / "dst")
        dest.store(config(0), payload())
        stats = dest.merge(source)
        assert stats == {"merged": 0, "identical": 1, "skipped_invalid": 0}

    def test_conflict_raises_loudly(self, tmp_path):
        source = ResultCache(tmp_path / "src")
        source.store(config(0), payload("from-host-a"))
        dest = ResultCache(tmp_path / "dst")
        dest.store(config(0), payload("from-host-b"))
        with pytest.raises(CacheMergeConflict, match="conflict"):
            dest.merge(source)
        # The destination entry survives untouched.
        assert dest.load(config(0)) == payload("from-host-b")

    def test_conflict_detected_before_anything_is_written(self, tmp_path):
        # Two-phase merge: a conflict on one key must stop the whole
        # merge before the *other* (clean) key lands either.
        source = ResultCache(tmp_path / "src")
        source.store(config(0), payload("a"))
        source.store(config(1), payload())
        dest = ResultCache(tmp_path / "dst")
        dest.store(config(0), payload("b"))
        with pytest.raises(CacheMergeConflict):
            dest.merge(source)
        assert dest.load(config(1)) is None
        assert dest.entry_count() == 1

    def test_corrupt_source_entries_skipped_and_counted(self, tmp_path):
        source = ResultCache(tmp_path / "src")
        path = source.store(config(0), payload())
        path.write_text("garbage")
        source.store(config(1), payload())
        dest = ResultCache(tmp_path / "dst")
        stats = dest.merge(source)
        assert stats == {"merged": 1, "identical": 0, "skipped_invalid": 1}

    def test_merge_accepts_bare_path(self, tmp_path):
        source = ResultCache(tmp_path / "src")
        source.store(config(0), payload())
        dest = ResultCache(tmp_path / "dst")
        stats = dest.merge(tmp_path / "src")
        assert stats["merged"] == 1

    def test_merge_overwrites_corrupt_destination_entry(self, tmp_path):
        source = ResultCache(tmp_path / "src")
        source.store(config(0), payload())
        dest = ResultCache(tmp_path / "dst")
        dest.store(config(0), payload()).write_text("{broken")
        stats = dest.merge(source)
        assert stats["merged"] == 1
        assert dest.load(config(0)) == payload()


class TestArchive:
    def test_export_import_round_trip(self, tmp_path):
        source = ResultCache(tmp_path / "src")
        source.store(config(0), payload())
        source.store(config(1), payload())
        archive = tmp_path / "cache.tgz"
        stats = source.export_archive(archive)
        assert stats == {"exported": 2, "skipped_invalid": 0}

        dest = ResultCache(tmp_path / "dst")
        stats = dest.import_archive(archive)
        assert stats == {"merged": 2, "identical": 0, "skipped_invalid": 0}
        assert dest.load(config(0)) == payload()
        assert dest.load(config(1)) == payload()

    def test_archive_members_use_cache_layout(self, tmp_path):
        source = ResultCache(tmp_path / "src")
        source.store(config(0), payload())
        archive = tmp_path / "cache.tgz"
        source.export_archive(archive)
        key = config(0).cache_key()
        with tarfile.open(archive) as tar:
            assert tar.getnames() == [f"{key[:2]}/{key}.json"]

    def test_import_conflict_raises(self, tmp_path):
        source = ResultCache(tmp_path / "src")
        source.store(config(0), payload("a"))
        archive = tmp_path / "cache.tgz"
        source.export_archive(archive)
        dest = ResultCache(tmp_path / "dst")
        dest.store(config(0), payload("b"))
        with pytest.raises(CacheMergeConflict):
            dest.import_archive(archive)

    def test_import_skips_foreign_and_hostile_members(self, tmp_path):
        key = config(0).cache_key()
        entry = json.loads(
            ResultCache(tmp_path / "scratch")
            .store(config(0), payload())
            .read_text()
        )
        archive = tmp_path / "mixed.tgz"
        with tarfile.open(archive, "w:gz") as tar:
            for name, data in [
                ("../escape.json", b"{}"),
                ("README.txt", b"hello"),
                ("ab/deadbeef.json", b"{}"),  # malformed key
                (f"{key[:2]}/{key}.json",
                 json.dumps(entry).encode("utf-8")),
            ]:
                info = tarfile.TarInfo(name)
                info.size = len(data)
                tar.addfile(info, io.BytesIO(data))
        dest = ResultCache(tmp_path / "dst")
        stats = dest.import_archive(archive)
        assert stats["merged"] == 1
        assert stats["skipped_invalid"] == 3
        assert dest.load(config(0)) == payload()
        assert not (tmp_path / "escape.json").exists()

    def test_import_skips_entry_whose_key_mismatches_filename(self, tmp_path):
        entry = json.loads(
            ResultCache(tmp_path / "scratch")
            .store(config(0), payload())
            .read_text()
        )
        wrong = "0" * 64
        archive = tmp_path / "bad.tgz"
        with tarfile.open(archive, "w:gz") as tar:
            data = json.dumps(entry).encode("utf-8")
            info = tarfile.TarInfo(f"{wrong[:2]}/{wrong}.json")
            info.size = len(data)
            tar.addfile(info, io.BytesIO(data))
        dest = ResultCache(tmp_path / "dst")
        stats = dest.import_archive(archive)
        assert stats == {"merged": 0, "identical": 0, "skipped_invalid": 1}

    def test_import_duplicate_members_with_same_content_dedupe(self, tmp_path):
        key = config(0).cache_key()
        entry = json.loads(
            ResultCache(tmp_path / "scratch")
            .store(config(0), payload())
            .read_text()
        )
        archive = tmp_path / "dup.tgz"
        with tarfile.open(archive, "w:gz") as tar:
            data = json.dumps(entry).encode("utf-8")
            for _ in range(2):
                info = tarfile.TarInfo(f"{key[:2]}/{key}.json")
                info.size = len(data)
                tar.addfile(info, io.BytesIO(data))
        dest = ResultCache(tmp_path / "dst")
        stats = dest.import_archive(archive)
        assert stats == {"merged": 1, "identical": 1, "skipped_invalid": 0}
        assert dest.load(config(0)) == payload()

    def test_import_duplicate_members_with_different_content_conflict(
            self, tmp_path):
        # A re-packed archive carrying one key twice with different
        # payloads must abort, never resolve last-wins.
        key = config(0).cache_key()
        scratch = ResultCache(tmp_path / "scratch")
        entries = []
        for tag in ("a", "b"):
            entries.append(json.loads(
                scratch.store(config(0), payload(tag)).read_text()
            ))
        archive = tmp_path / "conflict.tgz"
        with tarfile.open(archive, "w:gz") as tar:
            for entry in entries:
                data = json.dumps(entry).encode("utf-8")
                info = tarfile.TarInfo(f"{key[:2]}/{key}.json")
                info.size = len(data)
                tar.addfile(info, io.BytesIO(data))
        dest = ResultCache(tmp_path / "dst")
        with pytest.raises(CacheMergeConflict):
            dest.import_archive(archive)
        assert dest.entry_count() == 0

    def test_export_empty_cache(self, tmp_path):
        archive = tmp_path / "empty.tgz"
        stats = ResultCache(tmp_path / "nope").export_archive(archive)
        assert stats["exported"] == 0
        assert ResultCache(tmp_path / "dst").import_archive(archive) \
            == {"merged": 0, "identical": 0, "skipped_invalid": 0}


class TestEntryAccess:
    def test_keys_sorted_and_filtered(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        cache.store(config(0), payload())
        cache.store(config(1), payload())
        (tmp_path / "cache" / "zz").mkdir()
        (tmp_path / "cache" / "zz" / "not-a-key.json").write_text("{}")
        expected = sorted([config(0).cache_key(), config(1).cache_key()])
        assert cache.keys() == expected

    def test_read_entry_validates(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        cache.store(config(0), payload())
        key = config(0).cache_key()
        assert cache.read_entry(key)["payload"] == payload()
        assert cache.read_entry("0" * 64) is None
