"""Datasets, loaders, synthetic generators and transforms."""

import numpy as np
import pytest

from repro.data import (
    ArrayDataset,
    Compose,
    DataLoader,
    Normalize,
    RandomCrop,
    RandomHorizontalFlip,
    SyntheticCIFAR10,
    SyntheticCIFAR100,
    SyntheticTinyImageNet,
    make_classification_images,
)


class TestArrayDataset:
    def test_len_and_getitem(self, rng):
        data = ArrayDataset(rng.normal(size=(5, 3, 4, 4)), np.arange(5))
        assert len(data) == 5
        image, label = data[2]
        assert image.shape == (3, 4, 4)
        assert label == 2

    def test_shape_validation(self, rng):
        with pytest.raises(ValueError):
            ArrayDataset(rng.normal(size=(5, 3, 4)), np.arange(5))
        with pytest.raises(ValueError):
            ArrayDataset(rng.normal(size=(5, 3, 4, 4)), np.arange(4))

    def test_transform_applied(self, rng):
        data = ArrayDataset(
            np.ones((3, 1, 2, 2)), np.zeros(3, dtype=int), transform=lambda x: x * 2
        )
        image, _ = data[0]
        assert np.allclose(image, 2.0)

    def test_num_classes(self):
        data = ArrayDataset(np.zeros((4, 1, 2, 2)), np.array([0, 1, 2, 2]))
        assert data.num_classes == 3


class TestDataLoader:
    def test_batches_cover_dataset(self, tiny_dataset):
        loader = DataLoader(tiny_dataset, batch_size=5)
        total = sum(len(labels) for _, labels in loader)
        assert total == len(tiny_dataset)

    def test_len_with_and_without_drop_last(self, tiny_dataset):
        assert len(DataLoader(tiny_dataset, batch_size=5)) == 4
        assert len(DataLoader(tiny_dataset, batch_size=5, drop_last=True)) == 3

    def test_drop_last_only_full_batches(self, tiny_dataset):
        loader = DataLoader(tiny_dataset, batch_size=5, drop_last=True)
        assert all(len(labels) == 5 for _, labels in loader)

    def test_shuffle_deterministic_with_seed(self, tiny_dataset):
        first = [
            labels.tolist()
            for _, labels in DataLoader(
                tiny_dataset, 4, shuffle=True, rng=np.random.default_rng(3)
            )
        ]
        second = [
            labels.tolist()
            for _, labels in DataLoader(
                tiny_dataset, 4, shuffle=True, rng=np.random.default_rng(3)
            )
        ]
        assert first == second

    def test_shuffle_changes_order(self, tiny_dataset):
        unshuffled = next(iter(DataLoader(tiny_dataset, 16)))[1]
        shuffled = next(
            iter(DataLoader(tiny_dataset, 16, shuffle=True, rng=np.random.default_rng(0)))
        )[1]
        assert not np.array_equal(unshuffled, shuffled)
        assert sorted(unshuffled) == sorted(shuffled)

    def test_batch_stacking_shape(self, tiny_dataset):
        images, labels = next(iter(DataLoader(tiny_dataset, 8)))
        assert images.shape == (8, 3, 8, 8)
        assert labels.shape == (8,)

    def test_invalid_batch_size(self, tiny_dataset):
        with pytest.raises(ValueError):
            DataLoader(tiny_dataset, 0)


class TestSyntheticGenerator:
    def test_shapes_and_interleaving(self):
        images, labels = make_classification_images(4, 5, image_size=8, seed=0)
        assert images.shape == (20, 3, 8, 8)
        assert sorted(np.bincount(labels)) == [5, 5, 5, 5]

    def test_deterministic(self):
        a_images, a_labels = make_classification_images(3, 4, image_size=8, seed=9)
        b_images, b_labels = make_classification_images(3, 4, image_size=8, seed=9)
        assert np.array_equal(a_images, b_images)
        assert np.array_equal(a_labels, b_labels)

    def test_different_seeds_differ(self):
        a, _ = make_classification_images(3, 4, image_size=8, seed=1)
        b, _ = make_classification_images(3, 4, image_size=8, seed=2)
        assert not np.allclose(a, b)

    def test_class_structure_learnable(self):
        """Same-class samples correlate more than cross-class ones."""
        images, labels = make_classification_images(
            2, 30, image_size=16, noise=0.3, seed=5
        )
        flat = images.reshape(len(images), -1)
        flat = flat - flat.mean(axis=1, keepdims=True)
        flat /= np.linalg.norm(flat, axis=1, keepdims=True)
        sims = flat @ flat.T
        same = sims[labels[:, None] == labels[None, :]].mean()
        cross = sims[labels[:, None] != labels[None, :]].mean()
        assert same > cross + 0.1

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            make_classification_images(1, 5)
        with pytest.raises(ValueError):
            make_classification_images(3, 0)


class TestNamedDatasets:
    def test_cifar10_shapes(self):
        train, test = SyntheticCIFAR10(train_per_class=3, test_per_class=2, image_size=16)
        assert len(train) == 30
        assert len(test) == 20
        assert train[0][0].shape == (3, 16, 16)
        assert train.num_classes == 10

    def test_cifar100_class_count(self):
        train, test = SyntheticCIFAR100(train_per_class=2, test_per_class=1, image_size=8)
        assert train.num_classes == 100
        assert len(train) == 200

    def test_tinyimagenet_default_resolution(self):
        train, _ = SyntheticTinyImageNet(train_per_class=1, test_per_class=1)
        assert train[0][0].shape == (3, 64, 64)
        assert train.num_classes == 200

    def test_split_balanced(self):
        train, test = SyntheticCIFAR10(train_per_class=4, test_per_class=2, image_size=8)
        assert sorted(np.bincount(train.labels)) == [4] * 10
        assert sorted(np.bincount(test.labels)) == [2] * 10

    def test_train_test_disjoint(self):
        train, test = SyntheticCIFAR10(train_per_class=3, test_per_class=3, image_size=8)
        train_set = {train.images[i].tobytes() for i in range(len(train))}
        test_set = {test.images[i].tobytes() for i in range(len(test))}
        assert not train_set & test_set


class TestTransforms:
    def test_normalize(self):
        t = Normalize(mean=[1.0], std=[2.0])
        out = t(np.full((1, 2, 2), 3.0))
        assert np.allclose(out, 1.0)

    def test_normalize_invalid_std(self):
        with pytest.raises(ValueError):
            Normalize([0.0], [0.0])

    def test_flip_probability_one(self):
        t = RandomHorizontalFlip(p=1.0, rng=np.random.default_rng(0))
        image = np.arange(4.0).reshape(1, 2, 2)
        assert np.allclose(t(image), image[:, :, ::-1])

    def test_flip_probability_zero(self):
        t = RandomHorizontalFlip(p=0.0, rng=np.random.default_rng(0))
        image = np.arange(4.0).reshape(1, 2, 2)
        assert np.allclose(t(image), image)

    def test_flip_invalid_p(self):
        with pytest.raises(ValueError):
            RandomHorizontalFlip(p=2.0)

    def test_crop_preserves_shape(self, rng):
        t = RandomCrop(padding=2, rng=rng)
        image = rng.normal(size=(3, 8, 8))
        assert t(image).shape == (3, 8, 8)

    def test_crop_zero_padding_identity(self, rng):
        t = RandomCrop(padding=0)
        image = rng.normal(size=(3, 8, 8))
        assert np.array_equal(t(image), image)

    def test_crop_negative_padding(self):
        with pytest.raises(ValueError):
            RandomCrop(padding=-1)

    def test_compose_order(self):
        t = Compose([lambda x: x + 1, lambda x: x * 2])
        assert np.allclose(t(np.zeros(2)), 2.0)
