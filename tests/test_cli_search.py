"""CLI: `repro search` / `repro searches`, streaming --out, cache reuse."""

import json

import pytest

from repro.api import experiments
from repro.cli import main
from repro.orchestration import SearchConfig


@pytest.fixture
def micro_search(tmp_path):
    """A seconds-scale SearchConfig JSON file plus scratch dirs."""
    base = experiments.get_config("vgg11-micro-smoke").evolve(
        quant={"max_iterations": 1, "max_epochs_per_iteration": 1,
               "min_epochs_per_iteration": 1},
    )
    search = SearchConfig(name="cli-micro-search", base=base,
                          strategy="ad-bits", accuracy_drop=0.5,
                          max_trials=3, min_bits=2)
    config_path = tmp_path / "search-config.json"
    search.to_json(config_path)
    return {
        "root": tmp_path,
        "search": search,
        "config": str(config_path),
        "cache_dir": str(tmp_path / "cache"),
    }


class TestSearchCommand:
    def test_headless_search_streams_valid_out(self, micro_search, capsys):
        out = micro_search["root"] / "search.json"
        code = main(["search", "--config", micro_search["config"],
                     "--cache-dir", micro_search["cache_dir"],
                     "--out", str(out), "--quiet"])
        assert code == 0
        payload = json.loads(out.read_text())
        assert payload["sweep"] == "cli-micro-search"
        stats = payload["stats"]
        assert stats["total"] == len(payload["points"]) <= 3
        assert stats["failed"] == 0 and "pending" not in stats
        section = payload["search"]
        assert section["strategy"] == "ad-bits"
        assert section["best"] is not None
        assert section["baseline"] is not None
        # Acceptance: the best config beats the uniform-precision
        # baseline on the analytical energy model within the budget.
        best, baseline = section["best"]["metrics"], \
            section["baseline"]["metrics"]
        assert best["model_total_pj"] < baseline["baseline_total_pj"]
        assert best["test_accuracy"] >= baseline["test_accuracy"] \
            - section["accuracy_drop"]

    def test_best_config_round_trips_as_cache_hit(self, micro_search,
                                                  capsys):
        out = micro_search["root"] / "search.json"
        assert main(["search", "--config", micro_search["config"],
                     "--cache-dir", micro_search["cache_dir"],
                     "--out", str(out), "--quiet"]) == 0
        best_config = json.loads(out.read_text())["search"]["best"]["config"]
        best_path = micro_search["root"] / "best.json"
        best_path.write_text(json.dumps(best_config))
        capsys.readouterr()
        assert main(["run", "--config", str(best_path), "--cache",
                     "--cache-dir", micro_search["cache_dir"]]) == 0
        assert "cache hit" in capsys.readouterr().out

    def test_warm_search_is_pure_cache(self, micro_search, capsys):
        args = ["search", "--config", micro_search["config"],
                "--cache-dir", micro_search["cache_dir"]]
        assert main([*args, "--quiet"]) == 0
        capsys.readouterr()
        assert main(args) == 0
        summary = capsys.readouterr().out
        assert "executed 0" in summary
        # Satellite: cache activity is visible in the summary line.
        assert "cache:" in summary and "hit(s)" in summary

    def test_search_preset_resolves(self, capsys):
        # Resolution only (bad name): the error names the registry.
        assert main(["search", "--preset", "nope", "--quiet"]) == 2
        err = capsys.readouterr().err
        assert "search-smoke-bits" in err
        assert "Traceback" not in err

    def test_shard_rejected_with_explanation(self, micro_search, capsys):
        code = main(["search", "--config", micro_search["config"],
                     "--shard", "0/2", "--quiet"])
        assert code == 2
        err = capsys.readouterr().err
        assert "cannot be sharded" in err
        assert "Traceback" not in err

    def test_override_flags_evolve_the_search(self, micro_search, capsys):
        out = micro_search["root"] / "search.json"
        assert main(["search", "--config", micro_search["config"],
                     "--max-trials", "2", "--drop", "0.9",
                     "--cache-dir", micro_search["cache_dir"],
                     "--out", str(out), "--quiet"]) == 0
        payload = json.loads(out.read_text())
        assert payload["stats"]["total"] <= 2
        assert payload["search"]["config"]["max_trials"] == 2
        assert payload["search"]["accuracy_drop"] == 0.9

    def test_strategy_override_runs_layer_bits(self, micro_search, capsys):
        out = micro_search["root"] / "layer-search.json"
        code = main(["search", "--config", micro_search["config"],
                     "--strategy", "layer-bits", "--seed-trials", "1",
                     "--max-trials", "3",
                     "--cache-dir", micro_search["cache_dir"],
                     "--out", str(out), "--quiet"])
        assert code == 0
        payload = json.loads(out.read_text())
        section = payload["search"]
        assert section["strategy"] == "layer-bits"
        # Layer-move trials carry pinned per-layer assignments.
        moves = [p for p in payload["points"]
                 if p["config"]["quant"].get("layer_bits")]
        assert moves and all(
            p["config"]["quant"]["layer_frozen"] for p in moves
        )
        # The winning bit vector is published and consistent.
        vector = section["bit_vector"]
        assert list(vector.values()) \
            == section["best"]["metrics"]["bit_widths"]

    def test_strategy_switch_away_from_layer_bits_drops_seed_trials(
            self, micro_search, capsys):
        # A layer-bits config carries seed_trials; switching it to
        # ad-bits must not drag the layer-bits-only knob along.
        layer = SearchConfig(
            name="cli-layer-search",
            base=micro_search["search"].base,
            strategy="layer-bits", accuracy_drop=0.5,
            max_trials=3, seed_trials=2, min_bits=2,
        )
        path = micro_search["root"] / "layer-config.json"
        layer.to_json(path)
        out = micro_search["root"] / "switched.json"
        code = main(["search", "--config", str(path),
                     "--strategy", "ad-bits",
                     "--cache-dir", micro_search["cache_dir"],
                     "--out", str(out), "--quiet"])
        assert code == 0
        payload = json.loads(out.read_text())
        assert payload["search"]["strategy"] == "ad-bits"
        assert payload["search"]["config"]["seed_trials"] == 0

    def test_seed_trials_rejected_outside_layer_bits(self, micro_search,
                                                     capsys):
        assert main(["search", "--config", micro_search["config"],
                     "--seed-trials", "2", "--quiet"]) == 2
        err = capsys.readouterr().err
        assert "--seed-trials" in err and "layer-bits" in err
        assert "Traceback" not in err

    def test_ad_bits_flags_rejected_for_halving(self, tmp_path, capsys):
        # --max-trials/--drop would be silently ignored by a halving
        # search; refusing them keeps the budget knobs honest.
        search = SearchConfig(
            name="halving", preset="vgg11-micro-smoke", strategy="halving",
            budgets=(1, 2),
        )
        path = tmp_path / "halving.json"
        search.to_json(path)
        assert main(["search", "--config", str(path),
                     "--max-trials", "3", "--quiet"]) == 2
        err = capsys.readouterr().err
        assert "--max-trials" in err and "halving" in err
        assert main(["search", "--config", str(path),
                     "--drop", "0.1", "--quiet"]) == 2
        assert "--drop" in capsys.readouterr().err

    def test_unwritable_out_fails_before_training(self, micro_search,
                                                  capsys):
        out = micro_search["root"]  # a directory, not a file
        assert main(["search", "--config", micro_search["config"],
                     "--out", str(out), "--quiet"]) == 2
        assert "is a directory" in capsys.readouterr().err


class TestSpeculateFlag:
    def _normalized(self, payload):
        for point in payload["points"]:
            point["duration"] = 0.0
        return payload

    def test_speculative_out_is_bit_identical_and_stats_surface(
            self, micro_search, capsys):
        # The real pipeline, twice: sequential vs --speculate 2, fresh
        # caches.  The --out payloads must match exactly (durations
        # aside) and the speculative summary line must surface the
        # accounting the payload deliberately omits.
        seq_out = micro_search["root"] / "seq.json"
        assert main(["search", "--config", micro_search["config"],
                     "--cache-dir", str(micro_search["root"] / "cache-a"),
                     "--out", str(seq_out), "--quiet"]) == 0
        capsys.readouterr()
        spec_out = micro_search["root"] / "spec.json"
        assert main(["search", "--config", micro_search["config"],
                     "--speculate", "2",
                     "--cache-dir", str(micro_search["root"] / "cache-b"),
                     "--out", str(spec_out)]) == 0
        summary = capsys.readouterr().out
        assert "speculation:" in summary and "wasted trial(s)" in summary
        sequential = self._normalized(json.loads(seq_out.read_text()))
        speculative = self._normalized(json.loads(spec_out.read_text()))
        assert speculative == sequential
        assert "speculated" not in speculative["stats"]

    def test_speculate_rejected_for_halving(self, tmp_path, capsys):
        search = SearchConfig(
            name="halving", preset="vgg11-micro-smoke",
            strategy="halving", budgets=(1, 2),
        )
        path = tmp_path / "halving.json"
        search.to_json(path)
        assert main(["search", "--config", str(path),
                     "--speculate", "2", "--quiet"]) == 2
        err = capsys.readouterr().err
        assert "--speculate" in err and "halving" in err
        assert "Traceback" not in err

    def test_negative_speculate_rejected(self, micro_search, capsys):
        assert main(["search", "--config", micro_search["config"],
                     "--speculate", "-1", "--quiet"]) == 2
        assert "--speculate" in capsys.readouterr().err


class TestSearchesListing:
    def test_searches_lists_registry_with_trial_counts(self, capsys):
        assert main(["searches"]) == 0
        lines = capsys.readouterr().out.splitlines()
        listed = {line.split()[0] for line in lines}
        assert listed == set(experiments.search_names())
        for line in lines:
            assert "trials" in line

    def test_searches_verbose_includes_descriptions(self, capsys):
        assert main(["searches", "--verbose"]) == 0
        out = capsys.readouterr().out
        assert "ad-bits" in out and "halving" in out
        assert "CI" in out  # the smoke preset's description
