"""Loss modules and weight initializers."""

import numpy as np
import pytest

from repro.autograd import Tensor
from repro.nn import CrossEntropyLoss, MSELoss
from repro.nn import init


class TestLosses:
    def test_cross_entropy_module(self, rng):
        logits = Tensor(rng.normal(size=(4, 3)), requires_grad=True)
        loss = CrossEntropyLoss()(logits, np.array([0, 1, 2, 0]))
        loss.backward()
        assert logits.grad is not None
        assert loss.item() > 0

    def test_mse_zero_for_equal(self, rng):
        x = rng.normal(size=(3, 3))
        assert MSELoss()(Tensor(x), x).item() == 0.0

    def test_mse_value(self):
        pred = Tensor(np.array([1.0, 2.0]))
        assert np.isclose(MSELoss()(pred, np.array([0.0, 0.0])).item(), 2.5)

    def test_mse_accepts_tensor_target(self, rng):
        x = rng.normal(size=(2, 2))
        assert MSELoss()(Tensor(x), Tensor(x)).item() == 0.0

    def test_mse_gradient(self):
        pred = Tensor(np.array([3.0]), requires_grad=True)
        MSELoss()(pred, np.array([1.0])).backward()
        assert np.allclose(pred.grad, [4.0])  # 2*(3-1)/1


class TestFanComputation:
    def test_linear_fans(self):
        fan_in, fan_out = init._fan_in_fan_out((10, 20))
        assert (fan_in, fan_out) == (20, 10)

    def test_conv_fans(self):
        fan_in, fan_out = init._fan_in_fan_out((8, 4, 3, 3))
        assert fan_in == 4 * 9
        assert fan_out == 8 * 9

    def test_unsupported_shape(self):
        with pytest.raises(ValueError):
            init._fan_in_fan_out((5,))


class TestInitializers:
    def test_kaiming_normal_std(self, rng):
        w = init.kaiming_normal((256, 128, 3, 3), rng)
        expected_std = np.sqrt(2.0 / (128 * 9))
        assert abs(w.std() - expected_std) / expected_std < 0.05

    def test_kaiming_uniform_bound(self, rng):
        w = init.kaiming_uniform((64, 64), rng)
        bound = np.sqrt(2.0) * np.sqrt(3.0 / 64)
        assert np.all(np.abs(w) <= bound)

    def test_xavier_normal_std(self, rng):
        w = init.xavier_normal((200, 300), rng)
        expected_std = np.sqrt(2.0 / 500)
        assert abs(w.std() - expected_std) / expected_std < 0.05

    def test_xavier_uniform_bound(self, rng):
        w = init.xavier_uniform((100, 100), rng)
        bound = np.sqrt(6.0 / 200)
        assert np.all(np.abs(w) <= bound)

    def test_zeros_ones(self):
        assert np.all(init.zeros((3, 3)) == 0)
        assert np.all(init.ones((3, 3)) == 1)

    def test_deterministic_given_rng(self):
        a = init.kaiming_normal((4, 4), np.random.default_rng(5))
        b = init.kaiming_normal((4, 4), np.random.default_rng(5))
        assert np.array_equal(a, b)
