"""Job queue: priority order, preemption, cancel/delete, persistence."""

import json

import pytest

from repro.service import queue as jobqueue
from repro.service.queue import Job, JobQueue


def submit(queue, priority=0, name="j"):
    return queue.submit("search", name, {"preset": name}, priority=priority)


class TestOrdering:
    def test_fifo_within_a_priority(self):
        queue = JobQueue()
        first = submit(queue)
        submit(queue)
        assert queue.next_runnable() is first

    def test_higher_priority_wins(self):
        queue = JobQueue()
        submit(queue, priority=0)
        urgent = submit(queue, priority=10)
        assert queue.next_runnable() is urgent

    def test_paused_job_competes_like_queued(self):
        queue = JobQueue()
        bulk = submit(queue, priority=5)
        queue.mark(bulk, jobqueue.RUNNING)
        queue.mark(bulk, jobqueue.PAUSED)
        submit(queue, priority=0)
        assert queue.next_runnable() is bulk

    def test_finished_and_running_jobs_not_offered(self):
        queue = JobQueue()
        running = submit(queue)
        queue.mark(running, jobqueue.RUNNING)
        done = submit(queue)
        queue.mark(done, jobqueue.DONE)
        assert queue.next_runnable() is None

    def test_should_preempt_requires_strictly_higher(self):
        queue = JobQueue()
        running = submit(queue, priority=5)
        queue.mark(running, jobqueue.RUNNING)
        submit(queue, priority=5)
        assert not queue.should_preempt(running)
        submit(queue, priority=6)
        assert queue.should_preempt(running)

    def test_cancel_requested_job_not_offered(self):
        queue = JobQueue()
        job = submit(queue)
        job.cancel_requested = True
        assert queue.next_runnable() is None


class TestLifecycle:
    def test_ids_are_monotonic(self):
        queue = JobQueue()
        ids = [submit(queue).id for _ in range(3)]
        assert ids == sorted(ids) and len(set(ids)) == 3

    def test_mark_stamps_times(self):
        queue = JobQueue()
        job = submit(queue)
        assert job.started_at is None
        queue.mark(job, jobqueue.RUNNING)
        assert job.started_at is not None and job.finished_at is None
        queue.mark(job, jobqueue.DONE, summary={"stats": {}})
        assert job.finished_at is not None
        assert job.finished

    def test_cancel_queued_is_immediate(self):
        queue = JobQueue()
        job = submit(queue)
        assert queue.cancel(job) == jobqueue.CANCELLED
        assert job.state == jobqueue.CANCELLED

    def test_cancel_running_is_a_request(self):
        queue = JobQueue()
        job = submit(queue)
        queue.mark(job, jobqueue.RUNNING)
        assert queue.cancel(job) == "requested"
        assert job.state == jobqueue.RUNNING and job.cancel_requested

    def test_cancel_finished_rejected(self):
        queue = JobQueue()
        job = submit(queue)
        queue.mark(job, jobqueue.DONE)
        with pytest.raises(ValueError):
            queue.cancel(job)

    def test_delete_requires_finished(self):
        queue = JobQueue()
        job = submit(queue)
        with pytest.raises(ValueError):
            queue.delete(job)
        queue.mark(job, jobqueue.FAILED, error="boom")
        queue.delete(job)
        with pytest.raises(KeyError):
            queue.get(job.id)

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            Job(id=1, kind="banana", name="x", spec={})


class TestPersistence:
    def test_state_file_written_atomically_on_mutation(self, tmp_path):
        path = tmp_path / "state.json"
        queue = JobQueue(path)
        submit(queue, name="a")
        payload = json.loads(path.read_text())
        assert payload["version"] == jobqueue.STATE_VERSION
        assert [j["name"] for j in payload["jobs"]] == ["a"]
        assert not list(tmp_path.glob("*.tmp*"))

    def test_reload_round_trips_jobs(self, tmp_path):
        path = tmp_path / "state.json"
        queue = JobQueue(path)
        job = submit(queue, priority=3, name="a")
        queue.mark(job, jobqueue.DONE, summary={"stats": {"total": 1}})
        reloaded = JobQueue.load(path)
        copy = reloaded.get(job.id)
        assert copy.state == jobqueue.DONE
        assert copy.priority == 3
        assert copy.summary == {"stats": {"total": 1}}

    def test_interrupted_jobs_reload_as_queued(self, tmp_path):
        path = tmp_path / "state.json"
        queue = JobQueue(path)
        running = submit(queue, name="r")
        queue.mark(running, jobqueue.RUNNING)
        paused = submit(queue, name="p")
        queue.mark(paused, jobqueue.RUNNING)
        queue.mark(paused, jobqueue.PAUSED)
        reloaded = JobQueue.load(path)
        assert reloaded.get(running.id).state == jobqueue.QUEUED
        assert reloaded.get(paused.id).state == jobqueue.QUEUED

    def test_pending_cancel_honoured_on_reload(self, tmp_path):
        path = tmp_path / "state.json"
        queue = JobQueue(path)
        job = submit(queue)
        queue.mark(job, jobqueue.RUNNING)
        queue.cancel(job)  # "requested"; the old master died before acting
        reloaded = JobQueue.load(path)
        copy = reloaded.get(job.id)
        assert copy.state == jobqueue.CANCELLED
        assert not copy.cancel_requested

    def test_ids_stay_monotonic_across_restart(self, tmp_path):
        path = tmp_path / "state.json"
        queue = JobQueue(path)
        old = submit(queue)
        reloaded = JobQueue.load(path)
        assert submit(reloaded).id > old.id

    def test_missing_state_file_is_empty_queue(self, tmp_path):
        queue = JobQueue.load(tmp_path / "never-written.json")
        assert len(queue) == 0

    def test_version_mismatch_rejected(self, tmp_path):
        path = tmp_path / "state.json"
        path.write_text(json.dumps({"version": 99, "jobs": []}))
        with pytest.raises(ValueError):
            JobQueue.load(path)

    def test_unknown_keys_ignored_on_load(self, tmp_path):
        # Forward compatibility: a newer master's extra per-job keys
        # must not break an older one reading the same state file.
        path = tmp_path / "state.json"
        queue = JobQueue(path)
        job = submit(queue)
        payload = json.loads(path.read_text())
        payload["jobs"][0]["from_the_future"] = True
        path.write_text(json.dumps(payload))
        assert JobQueue.load(path).get(job.id).name == job.name
