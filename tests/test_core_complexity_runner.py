"""Training complexity (eqn. 4) and the experiment runner."""

import numpy as np
import pytest

from repro.core import (
    ExperimentRunner,
    QuantizationSchedule,
    TrainingComplexity,
)
from repro.data import DataLoader
from repro.density import SaturationDetector
from repro.nn import Adam, CrossEntropyLoss


class TestTrainingComplexity:
    def test_eqn4_math(self):
        tc = TrainingComplexity(baseline_epochs=200)
        tc.add_iteration(1.0, 100)
        tc.add_iteration(4.0, 60)
        assert tc.raw() == pytest.approx(100 + 15)
        assert tc.relative() == pytest.approx(115 / 200)
        assert tc.total_epochs() == 160

    def test_reduced_training_beats_baseline(self):
        """Paper: TC drops below 1x (e.g. 0.524x for VGG19/CIFAR-10)."""
        tc = TrainingComplexity(baseline_epochs=210)
        tc.add_iteration(1.0, 100)
        tc.add_iteration(7.0, 70)
        assert tc.relative() < 1.0

    def test_validation(self):
        with pytest.raises(ValueError):
            TrainingComplexity(0)
        tc = TrainingComplexity(10)
        with pytest.raises(ValueError):
            tc.add_iteration(0.0, 5)
        with pytest.raises(ValueError):
            tc.add_iteration(1.0, -1)
        with pytest.raises(RuntimeError):
            tc.raw()


@pytest.fixture
def runner_setup(micro_vgg, tiny_dataset, rng):
    train_loader = DataLoader(tiny_dataset, batch_size=8, shuffle=True, rng=rng)
    test_loader = DataLoader(tiny_dataset, batch_size=16)
    schedule = QuantizationSchedule(
        max_iterations=2, max_epochs_per_iteration=3, min_epochs_per_iteration=2
    )
    runner = ExperimentRunner(
        micro_vgg,
        train_loader,
        test_loader,
        Adam(micro_vgg.parameters(), lr=3e-3),
        CrossEntropyLoss(),
        input_shape=(3, 8, 8),
        schedule=schedule,
        saturation=SaturationDetector(window=2, tolerance=0.5),
        architecture="VGG11",
        dataset="tiny",
    )
    return runner


class TestExperimentRunner:
    def test_report_structure(self, runner_setup):
        report = runner_setup.run()
        assert report.architecture == "VGG11"
        assert 1 <= len(report.rows) <= 2
        row = report.rows[0]
        assert row.energy_efficiency == pytest.approx(1.0)
        assert row.train_complexity == pytest.approx(1.0)
        assert len(row.bit_widths) == 9

    def test_second_row_quantized(self, runner_setup):
        report = runner_setup.run()
        if len(report.rows) > 1:
            second = report.rows[1]
            assert second.energy_efficiency >= 1.0
            hidden_bits = second.bit_widths[1:-1]
            assert any(b < 16 for b in hidden_bits)
            # Frozen ends stay 16-bit.
            assert second.bit_widths[0] == 16
            assert second.bit_widths[-1] == 16

    def test_format_renders(self, runner_setup):
        report = runner_setup.run()
        text = report.format()
        assert "VGG11 on tiny" in text
        assert "Energy Eff" in text

    def test_remove_layer_and_retrain(self, runner_setup, micro_vgg):
        report = runner_setup.run()
        removable = next(
            h.name
            for h in micro_vgg.layer_handles()
            if h.is_conv and h.unit.conv.in_channels == h.unit.conv.out_channels
        )
        row = runner_setup.remove_layer_and_retrain(removable, epochs=1)
        assert row.label == "2a"
        assert len(row.bit_widths) == len(report.rows[0].bit_widths) - 1
        assert row.energy_efficiency > report.rows[-1].energy_efficiency * 0.99

    def test_remove_layer_rejects_shape_changers(self, runner_setup, micro_vgg):
        runner_setup.run()
        with pytest.raises(ValueError):
            runner_setup.remove_layer_and_retrain("fc", epochs=1)
        shape_changer = next(
            h.name
            for h in micro_vgg.layer_handles()
            if h.is_conv and h.unit.conv.in_channels != h.unit.conv.out_channels
        )
        with pytest.raises(ValueError):
            runner_setup.remove_layer_and_retrain(shape_changer, epochs=1)

    def test_pruning_mode_reports_channels(self, micro_resnet, tiny_dataset, rng):
        train_loader = DataLoader(
            tiny_dataset, batch_size=8, shuffle=True, rng=rng
        )
        runner = ExperimentRunner(
            micro_resnet,
            train_loader,
            DataLoader(tiny_dataset, batch_size=16),
            Adam(micro_resnet.parameters(), lr=3e-3),
            CrossEntropyLoss(),
            input_shape=(3, 8, 8),
            schedule=QuantizationSchedule(
                max_iterations=2, max_epochs_per_iteration=2,
                min_epochs_per_iteration=1,
            ),
            saturation=SaturationDetector(window=2, tolerance=0.9),
            prune=True,
        )
        report = runner.run()
        assert report.rows[0].channel_counts is not None
        if len(report.rows) > 1:
            first = report.rows[0].channel_counts
            second = report.rows[1].channel_counts
            assert all(b <= a for a, b in zip(first, second))
            assert "nChannels" in report.format()
