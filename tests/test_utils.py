"""Utilities: seeding, serialization, tables."""

import numpy as np
import pytest

from repro.utils import (
    format_table,
    load_checkpoint,
    save_checkpoint,
    seed_everything,
    spawn_rngs,
)


class TestSeeding:
    def test_seed_everything_returns_generator(self):
        rng = seed_everything(7)
        assert isinstance(rng, np.random.Generator)

    def test_deterministic(self):
        a = seed_everything(5).normal(size=3)
        b = seed_everything(5).normal(size=3)
        assert np.array_equal(a, b)

    def test_spawn_rngs_independent(self):
        rngs = spawn_rngs(3, 4)
        assert len(rngs) == 4
        draws = [r.normal() for r in rngs]
        assert len(set(draws)) == 4

    def test_spawn_deterministic(self):
        a = [r.normal() for r in spawn_rngs(11, 2)]
        b = [r.normal() for r in spawn_rngs(11, 2)]
        assert a == b


class TestSerialization:
    def test_roundtrip(self, tmp_path, micro_vgg):
        path = tmp_path / "ckpt.npz"
        save_checkpoint(path, micro_vgg.state_dict(), metadata={"epoch": 3})
        state, metadata = load_checkpoint(path)
        assert metadata == {"epoch": 3}
        micro_vgg.load_state_dict(state)

    def test_no_metadata(self, tmp_path):
        path = tmp_path / "ckpt.npz"
        save_checkpoint(path, {"w": np.ones(3)})
        state, metadata = load_checkpoint(path)
        assert metadata is None
        assert np.array_equal(state["w"], np.ones(3))

    def test_creates_parent_dirs(self, tmp_path):
        path = tmp_path / "nested" / "dir" / "ckpt.npz"
        save_checkpoint(path, {"w": np.zeros(2)})
        assert path.exists()

    def test_values_preserved_exactly(self, tmp_path, rng):
        path = tmp_path / "ckpt.npz"
        original = {"a": rng.normal(size=(3, 4)), "b": rng.normal(size=7)}
        save_checkpoint(path, original)
        state, _ = load_checkpoint(path)
        for key, value in original.items():
            assert np.array_equal(state[key], value)


class TestFormatTable:
    def test_basic_layout(self):
        text = format_table(["a", "bb"], [["1", "2"], ["33", "4"]])
        lines = text.split("\n")
        assert len(lines) == 4
        assert "a" in lines[0] and "bb" in lines[0]
        assert set(lines[1]) <= {"-", "+"}

    def test_title(self):
        text = format_table(["x"], [["1"]], title="My Table")
        assert text.startswith("My Table")

    def test_float_formatting(self):
        text = format_table(["v"], [[3.14159265]])
        assert "3.142" in text

    def test_row_length_mismatch(self):
        with pytest.raises(ValueError):
            format_table(["a", "b"], [["1"]])

    def test_column_width_fits_longest(self):
        text = format_table(["h"], [["longvalue"]])
        header_line = text.split("\n")[0]
        assert len(header_line) >= len("longvalue")
