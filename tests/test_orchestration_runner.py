"""SweepRunner: execution, parallelism, caching, failure isolation."""

import pytest

from repro.api import experiments
from repro.orchestration import (
    ResultCache,
    SweepConfig,
    SweepRunner,
    execute_point,
    expand,
)


def micro_sweep(seeds=(0, 1), **quant):
    overrides = {"max_iterations": 1, "max_epochs_per_iteration": 1,
                 "min_epochs_per_iteration": 1}
    overrides.update(quant)
    return SweepConfig(
        name="micro",
        base=experiments.get_config("vgg11-micro-smoke").evolve(
            quant=overrides
        ),
        seeds=tuple(seeds),
    )


class CountingExecutor:
    """Injectable executor that counts actual (non-cached) executions."""

    def __init__(self):
        self.calls = 0

    def __call__(self, task):
        self.calls += 1
        return execute_point(task)


class TestExecution:
    def test_serial_runs_every_point(self):
        executor = CountingExecutor()
        result = SweepRunner(execute=executor).run(micro_sweep())
        assert executor.calls == 2
        assert result.stats == {"total": 2, "executed": 2, "cached": 0,
                                "failed": 0}
        for point in result.points:
            assert point.payload["report"]["rows"]

    def test_points_keep_sweep_order(self):
        result = SweepRunner().run(micro_sweep(seeds=(5, 3, 4)))
        assert [p.label for p in result.points] == [
            "vgg11-micro-smoke[seed=5]",
            "vgg11-micro-smoke[seed=3]",
            "vgg11-micro-smoke[seed=4]",
        ]

    def test_parallel_rows_bit_identical_to_serial(self):
        sweep = micro_sweep(seeds=(0, 1, 2, 3))
        serial = SweepRunner(jobs=1).run(sweep)
        parallel = SweepRunner(jobs=2).run(sweep)
        assert [p.label for p in parallel.points] \
            == [p.label for p in serial.points]
        # Full payload equality => every float in every row is identical.
        assert [p.payload for p in parallel.points] \
            == [p.payload for p in serial.points]

    def test_single_run_matches_direct_experiment(self):
        sweep = micro_sweep(seeds=(7,))
        (point,) = SweepRunner().run(sweep).points
        from repro.core.export import report_to_dict

        direct = experiments.Experiment(expand(sweep)[0].config).run()
        assert point.payload["report"] == report_to_dict(direct)

    def test_accepts_pre_expanded_points(self):
        points = expand(micro_sweep())
        result = SweepRunner().run(points)
        assert result.stats["executed"] == 2

    def test_bad_jobs_rejected(self):
        with pytest.raises(ValueError):
            SweepRunner(jobs=0)


class TestFailureIsolation:
    def test_one_bad_point_does_not_kill_the_sweep(self):
        # min_channels larger than any layer validates eagerly but blows
        # up at runtime inside the fused prune step.
        good = experiments.get_config("vgg11-micro-smoke").evolve(
            quant={"max_iterations": 1, "max_epochs_per_iteration": 1,
                   "min_epochs_per_iteration": 1}
        )
        bad = experiments.get_config("vgg11-micro-smoke").evolve(
            prune={"enabled": True, "fused": True, "min_channels": 10000}
        )
        from repro.orchestration import SweepPoint

        result = SweepRunner().run([
            SweepPoint(label="good", config=good),
            SweepPoint(label="bad", config=bad),
            SweepPoint(label="good-again", config=good.evolve(
                model={"seed": 1}, data={"seed": 1})),
        ])
        assert [p.status for p in result.points] == ["ok", "failed", "ok"]
        failed = result.points[1]
        assert failed.error and failed.traceback
        assert not result.ok
        report = result.aggregate()
        assert len(report.succeeded) == 2
        assert len(report.failed) == 1
        assert "failures:" in report.format()

    def test_failed_points_never_cached(self, tmp_path):
        bad = experiments.get_config("vgg11-micro-smoke").evolve(
            prune={"enabled": True, "fused": True, "min_channels": 10000}
        )
        from repro.orchestration import SweepPoint

        cache = ResultCache(tmp_path / "cache")
        SweepRunner(cache=cache).run([SweepPoint(label="bad", config=bad)])
        assert cache.entry_count() == 0


class TestDeduplication:
    def test_duplicate_points_execute_once(self):
        # Overlapping seed values collapse to one config -> one training
        # run, fanned out to every matching point.
        executor = CountingExecutor()
        result = SweepRunner(execute=executor).run(micro_sweep(seeds=(0, 0, 1)))
        assert executor.calls == 2
        assert result.stats == {"total": 3, "executed": 3, "cached": 0,
                                "failed": 0}
        assert result.points[0].payload == result.points[1].payload
        assert [p.label for p in result.points] == [
            "vgg11-micro-smoke[seed=0]",
            "vgg11-micro-smoke[seed=0]",
            "vgg11-micro-smoke[seed=1]",
        ]

    def test_duplicate_points_store_one_cache_entry(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        SweepRunner(cache=cache).run(micro_sweep(seeds=(0, 0)))
        assert cache.entry_count() == 1

    def test_duplicates_in_parallel_mode(self):
        result = SweepRunner(jobs=2).run(micro_sweep(seeds=(0, 1, 0)))
        assert result.points[0].payload == result.points[2].payload
        assert result.stats["executed"] == 3

    def test_cached_duplicates_all_marked_cached(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        SweepRunner(cache=cache).run(micro_sweep(seeds=(0,)))
        result = SweepRunner(cache=cache).run(micro_sweep(seeds=(0, 0)))
        assert [p.status for p in result.points] == ["cached", "cached"]


class TestCaching:
    def test_second_invocation_runs_nothing(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        sweep = micro_sweep()
        first_executor = CountingExecutor()
        first = SweepRunner(cache=cache, execute=first_executor).run(sweep)
        assert first_executor.calls == 2
        assert first.stats["executed"] == 2

        second_executor = CountingExecutor()
        second = SweepRunner(cache=cache, execute=second_executor).run(sweep)
        # Run-count instrumentation: zero training on the second pass.
        assert second_executor.calls == 0
        assert second.stats == {"total": 2, "executed": 0, "cached": 2,
                                "failed": 0, "cache_hits": 2,
                                "cache_misses": 0}
        assert [p.payload for p in second.points] \
            == [p.payload for p in first.points]

    def test_cache_activity_surfaces_in_stats(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        cold = SweepRunner(cache=cache).run(micro_sweep())
        assert cold.cache_stats == {"hits": 0, "misses": 2}
        assert cold.stats["cache_hits"] == 0
        assert cold.stats["cache_misses"] == 2
        warm = SweepRunner(cache=cache).run(micro_sweep())
        assert warm.cache_stats == {"hits": 2, "misses": 0}
        # Duplicate points share one lookup: one miss, fanned out twice.
        dup = SweepRunner(cache=ResultCache(tmp_path / "other")).run(
            micro_sweep(seeds=(9, 9))
        )
        assert dup.cache_stats == {"hits": 0, "misses": 1}
        assert dup.stats["total"] == 2

    def test_no_cache_means_no_cache_counters(self):
        result = SweepRunner().run(micro_sweep())
        assert result.cache_stats is None
        assert "cache_hits" not in result.stats
        # The transportable payload never carries run-local cache
        # counters, so warm and cold runs serialize identically.
        assert "cache_hits" not in result.to_dict()["stats"]

    def test_cached_and_fresh_points_mix(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        SweepRunner(cache=cache).run(micro_sweep(seeds=(0,)))
        executor = CountingExecutor()
        result = SweepRunner(cache=cache, execute=executor).run(
            micro_sweep(seeds=(0, 1))
        )
        assert executor.calls == 1
        assert [p.status for p in result.points] == ["cached", "ok"]

    def test_corrupted_entry_recomputed(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        sweep = micro_sweep(seeds=(0,))
        SweepRunner(cache=cache).run(sweep)
        (entry,) = (tmp_path / "cache").glob("*/*.json")
        entry.write_text("garbage")
        executor = CountingExecutor()
        result = SweepRunner(cache=cache, execute=executor).run(sweep)
        assert executor.calls == 1
        assert result.stats["executed"] == 1

    def test_aggregate_and_to_dict(self, tmp_path):
        result = SweepRunner().run(micro_sweep())
        report = result.aggregate()
        assert report.name == "micro"
        assert len(report.rows()) == 2
        assert "Sweep — micro" in report.format()
        payload = result.to_dict()
        assert payload["stats"]["executed"] == 2
        assert all(p["report"]["rows"] for p in payload["points"])
