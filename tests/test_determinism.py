"""Determinism: identical seeds must give identical experiments.

A reproduction artifact is only useful if its numbers are stable; these
tests lock the full pipeline (data generation, init, training, AD
measurement, Algorithm 1) to the seed.
"""

import numpy as np

from repro.core import ExperimentRunner, QuantizationSchedule
from repro.data import DataLoader, SyntheticCIFAR10
from repro.density import SaturationDetector
from repro.models import vgg11
from repro.nn import Adam, CrossEntropyLoss


def run_small_experiment(seed: int):
    rng = np.random.default_rng(seed)
    train, test = SyntheticCIFAR10(
        train_per_class=6, test_per_class=2, image_size=8, seed=seed
    )
    model = vgg11(
        num_classes=10, width_multiplier=0.0625, image_size=8,
        rng=np.random.default_rng(seed),
    )
    runner = ExperimentRunner(
        model,
        DataLoader(train, batch_size=15, shuffle=True, rng=rng),
        DataLoader(test, batch_size=20),
        Adam(model.parameters(), lr=3e-3),
        CrossEntropyLoss(),
        input_shape=(3, 8, 8),
        schedule=QuantizationSchedule(
            max_iterations=2, max_epochs_per_iteration=3, min_epochs_per_iteration=2
        ),
        saturation=SaturationDetector(window=2, tolerance=0.5),
    )
    return runner.run()


class TestExperimentDeterminism:
    def test_identical_seeds_identical_reports(self):
        a = run_small_experiment(31)
        b = run_small_experiment(31)
        assert len(a.rows) == len(b.rows)
        for row_a, row_b in zip(a.rows, b.rows):
            assert row_a.bit_widths == row_b.bit_widths
            assert row_a.test_accuracy == row_b.test_accuracy
            assert row_a.total_ad == row_b.total_ad
            assert row_a.energy_efficiency == row_b.energy_efficiency
            assert row_a.train_complexity == row_b.train_complexity

    def test_different_seeds_differ(self):
        a = run_small_experiment(31)
        b = run_small_experiment(32)
        assert any(
            row_a.total_ad != row_b.total_ad
            for row_a, row_b in zip(a.rows, b.rows)
        )
